#include "cluster/router.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace velox {

HashPartitioner::HashPartitioner(int32_t num_partitions)
    : num_partitions_(num_partitions) {
  VELOX_CHECK_GT(num_partitions, 0);
}

uint64_t HashPartitioner::MixHash(uint64_t key) {
  // SplitMix64 finalizer: full-avalanche 64-bit mix.
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ULL;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebULL;
  key ^= key >> 31;
  return key;
}

int32_t HashPartitioner::PartitionForKey(uint64_t key) const {
  return static_cast<int32_t>(MixHash(key) % static_cast<uint64_t>(num_partitions_));
}

ConsistentHashRouter::ConsistentHashRouter(int32_t virtual_nodes_per_node)
    : virtual_nodes_per_node_(virtual_nodes_per_node) {
  VELOX_CHECK_GT(virtual_nodes_per_node, 0);
}

Status ConsistentHashRouter::AddNode(NodeId node) {
  if (nodes_.count(node) > 0) {
    return Status::AlreadyExists(StrFormat("node %d already in ring", node));
  }
  for (int32_t v = 0; v < virtual_nodes_per_node_; ++v) {
    // The vnode position domain must be disjoint from the key hash
    // domain: without the salt, vnode (0, v) sat at MixHash(v) — the
    // exact ring position of key v — so lower_bound routed every key
    // smaller than virtual_nodes_per_node_ to node 0.
    constexpr uint64_t kVnodeSalt = 0x9e3779b97f4a7c15ULL;
    uint64_t pos = HashPartitioner::MixHash(
        kVnodeSalt ^
        ((static_cast<uint64_t>(static_cast<uint32_t>(node)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(v))));
    // Collisions across (node, vnode) pairs are resolved by linear
    // probing on the ring position; astronomically rare in practice.
    while (ring_.count(pos) > 0) ++pos;
    ring_[pos] = node;
  }
  nodes_[node] = virtual_nodes_per_node_;
  return Status::OK();
}

Status ConsistentHashRouter::RemoveNode(NodeId node) {
  if (nodes_.erase(node) == 0) {
    return Status::NotFound(StrFormat("node %d not in ring", node));
  }
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Result<NodeId> ConsistentHashRouter::NodeForKey(uint64_t key) const {
  if (ring_.empty()) return Status::FailedPrecondition("hash ring is empty");
  uint64_t pos = HashPartitioner::MixHash(key);
  auto it = ring_.lower_bound(pos);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

Result<std::vector<NodeId>> ConsistentHashRouter::NodesForKey(uint64_t key,
                                                              int32_t replicas) const {
  if (ring_.empty()) return Status::FailedPrecondition("hash ring is empty");
  if (replicas <= 0) return Status::InvalidArgument("replicas must be positive");
  std::vector<NodeId> out;
  uint64_t pos = HashPartitioner::MixHash(key);
  auto it = ring_.lower_bound(pos);
  size_t visited = 0;
  while (out.size() < static_cast<size_t>(replicas) && visited < ring_.size()) {
    if (it == ring_.end()) it = ring_.begin();
    NodeId candidate = it->second;
    bool already = false;
    for (NodeId n : out) {
      if (n == candidate) {
        already = true;
        break;
      }
    }
    if (!already) out.push_back(candidate);
    ++it;
    ++visited;
  }
  return out;
}

std::vector<NodeId> ConsistentHashRouter::nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [node, vnodes] : nodes_) out.push_back(node);
  return out;
}

}  // namespace velox
