#include "cluster/network.h"

namespace velox {

int64_t SimulatedNetwork::CostNanos(NodeId from, NodeId to, uint64_t bytes) const {
  if (from == to) {
    return options_.local_call_nanos;
  }
  return options_.remote_latency_nanos +
         static_cast<int64_t>(options_.nanos_per_byte * static_cast<double>(bytes));
}

int64_t SimulatedNetwork::Charge(NodeId from, NodeId to, uint64_t bytes) {
  int64_t cost = CostNanos(from, to, bytes);
  if (from == to) {
    local_messages_.fetch_add(1, std::memory_order_relaxed);
    local_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  } else {
    remote_messages_.fetch_add(1, std::memory_order_relaxed);
    remote_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  charged_nanos_.fetch_add(cost, std::memory_order_relaxed);
  if (clock_ != nullptr) clock_->AdvanceNanos(cost);
  return cost;
}

NetworkStats SimulatedNetwork::stats() const {
  NetworkStats s;
  s.local_messages = local_messages_.load(std::memory_order_relaxed);
  s.remote_messages = remote_messages_.load(std::memory_order_relaxed);
  s.local_bytes = local_bytes_.load(std::memory_order_relaxed);
  s.remote_bytes = remote_bytes_.load(std::memory_order_relaxed);
  s.charged_nanos = charged_nanos_.load(std::memory_order_relaxed);
  return s;
}

void SimulatedNetwork::ResetStats() {
  local_messages_.store(0, std::memory_order_relaxed);
  remote_messages_.store(0, std::memory_order_relaxed);
  local_bytes_.store(0, std::memory_order_relaxed);
  remote_bytes_.store(0, std::memory_order_relaxed);
  charged_nanos_.store(0, std::memory_order_relaxed);
}

}  // namespace velox
