#include "cluster/network.h"

#include <algorithm>
#include <cmath>

namespace velox {

namespace {

std::pair<NodeId, NodeId> OrderedPair(NodeId a, NodeId b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

double SimulatedNetwork::SlowdownFor(NodeId from, NodeId to) const {
  // Caller holds fault_mu_ or has verified shaping_ is false.
  double m = 1.0;
  auto it = slowdown_.find(from);
  if (it != slowdown_.end()) m = std::max(m, it->second);
  it = slowdown_.find(to);
  if (it != slowdown_.end()) m = std::max(m, it->second);
  return m;
}

int64_t SimulatedNetwork::CostNanos(NodeId from, NodeId to, uint64_t bytes) const {
  if (from == to) {
    return options_.local_call_nanos;
  }
  // llround, not truncation: fractional nanos-per-byte payload costs
  // would otherwise be systematically undercharged across millions of
  // messages (e.g. 0.3 ns/B * 5 B = 1.5ns -> 1ns, a 33% error).
  int64_t base = options_.remote_latency_nanos +
                 std::llround(options_.nanos_per_byte * static_cast<double>(bytes));
  if (shaping_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    base = std::llround(static_cast<double>(base) * SlowdownFor(from, to));
  }
  return base;
}

int64_t SimulatedNetwork::Charge(NodeId from, NodeId to, uint64_t bytes) {
  int64_t cost = CostNanos(from, to, bytes);
  if (from == to) {
    local_messages_.fetch_add(1, std::memory_order_relaxed);
    local_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  } else {
    remote_messages_.fetch_add(1, std::memory_order_relaxed);
    remote_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  charged_nanos_.fetch_add(cost, std::memory_order_relaxed);
  if (clock_ != nullptr) clock_->AdvanceNanos(cost);
  return cost;
}

int64_t SimulatedNetwork::ChargeFailure(NodeId from, NodeId to, uint64_t bytes,
                                        std::atomic<uint64_t>* outcome_counter) {
  // The message was sent (it costs wire bytes) but never answered; the
  // sender burns its full patience waiting.
  remote_messages_.fetch_add(1, std::memory_order_relaxed);
  remote_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  outcome_counter->fetch_add(1, std::memory_order_relaxed);
  int64_t wait = faults_.timeout_nanos;
  charged_nanos_.fetch_add(wait, std::memory_order_relaxed);
  if (clock_ != nullptr) clock_->AdvanceNanos(wait);
  return wait;
}

Result<int64_t> SimulatedNetwork::TryCharge(NodeId from, NodeId to, uint64_t bytes) {
  if (from == to || !shaping_.load(std::memory_order_acquire)) {
    return Charge(from, to, bytes);
  }
  int64_t cost;
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    if (partitions_.count(OrderedPair(from, to)) > 0) {
      ChargeFailure(from, to, bytes, &dropped_messages_);
      return Status::Unavailable("network partition between nodes");
    }
    if (faults_enabled_) {
      double drop_p = faults_.drop_probability;
      auto link = link_drop_.find({from, to});
      if (link != link_drop_.end()) drop_p = link->second;
      if (drop_p > 0.0 && fault_rng_.Bernoulli(drop_p)) {
        ChargeFailure(from, to, bytes, &dropped_messages_);
        return Status::Unavailable("message dropped");
      }
      if (faults_.timeout_probability > 0.0 &&
          fault_rng_.Bernoulli(faults_.timeout_probability)) {
        ChargeFailure(from, to, bytes, &timed_out_messages_);
        return Status::Unavailable("response timed out");
      }
    }
    int64_t base = options_.remote_latency_nanos +
                   std::llround(options_.nanos_per_byte * static_cast<double>(bytes));
    cost = std::llround(static_cast<double>(base) * SlowdownFor(from, to));
    if (faults_enabled_ && faults_.latency_jitter_nanos > 0) {
      cost += static_cast<int64_t>(
          fault_rng_.UniformU64(static_cast<uint64_t>(faults_.latency_jitter_nanos)));
    }
  }
  remote_messages_.fetch_add(1, std::memory_order_relaxed);
  remote_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  charged_nanos_.fetch_add(cost, std::memory_order_relaxed);
  if (clock_ != nullptr) clock_->AdvanceNanos(cost);
  return cost;
}

Result<int64_t> SimulatedNetwork::TryChargeBatch(NodeId from, NodeId to,
                                                 uint64_t bytes, uint32_t keys) {
  // One message on the wire regardless of key count: the header
  // (latency) is paid once, the payload bytes sum. Counted before the
  // fault roll — a dropped batch was still sent.
  batched_messages_.fetch_add(1, std::memory_order_relaxed);
  batched_keys_.fetch_add(keys, std::memory_order_relaxed);
  return TryCharge(from, to, bytes);
}

void SimulatedNetwork::ChargeWait(int64_t nanos) {
  if (nanos <= 0) return;
  charged_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  if (clock_ != nullptr) clock_->AdvanceNanos(nanos);
}

void SimulatedNetwork::ChargeAbandoned(NodeId from, NodeId to, uint64_t bytes) {
  if (from == to) {
    local_messages_.fetch_add(1, std::memory_order_relaxed);
    local_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  } else {
    remote_messages_.fetch_add(1, std::memory_order_relaxed);
    remote_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
}

void SimulatedNetwork::InjectFaults(const FaultInjectionOptions& faults) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  faults_ = faults;
  faults_enabled_ = true;
  fault_rng_ = Rng(faults.seed);
  shaping_.store(true, std::memory_order_release);
}

void SimulatedNetwork::ClearFaults() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  faults_enabled_ = false;
  faults_ = FaultInjectionOptions{};
  link_drop_.clear();
  slowdown_.clear();
  partitions_.clear();
  shaping_.store(false, std::memory_order_release);
}

void SimulatedNetwork::SetLinkDropProbability(NodeId from, NodeId to, double p) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  link_drop_[{from, to}] = p;
  // Link overrides only fire through the plan's sampling path.
  faults_enabled_ = true;
  shaping_.store(true, std::memory_order_release);
}

void SimulatedNetwork::SetNodeSlowdown(NodeId node, double multiplier) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (multiplier == 1.0) {
    slowdown_.erase(node);
  } else {
    slowdown_[node] = multiplier;
  }
  bool any = faults_enabled_ || !slowdown_.empty() || !partitions_.empty() ||
             !link_drop_.empty();
  shaping_.store(any, std::memory_order_release);
}

void SimulatedNetwork::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (partitioned) {
    partitions_.insert(OrderedPair(a, b));
  } else {
    partitions_.erase(OrderedPair(a, b));
  }
  bool any = faults_enabled_ || !slowdown_.empty() || !partitions_.empty() ||
             !link_drop_.empty();
  shaping_.store(any, std::memory_order_release);
}

int64_t SimulatedNetwork::fault_timeout_nanos() const {
  if (!shaping_.load(std::memory_order_acquire)) return 0;
  std::lock_guard<std::mutex> lock(fault_mu_);
  return faults_.timeout_nanos;
}

NetworkStats SimulatedNetwork::stats() const {
  NetworkStats s;
  s.local_messages = local_messages_.load(std::memory_order_relaxed);
  s.remote_messages = remote_messages_.load(std::memory_order_relaxed);
  s.local_bytes = local_bytes_.load(std::memory_order_relaxed);
  s.remote_bytes = remote_bytes_.load(std::memory_order_relaxed);
  s.charged_nanos = charged_nanos_.load(std::memory_order_relaxed);
  s.dropped_messages = dropped_messages_.load(std::memory_order_relaxed);
  s.timed_out_messages = timed_out_messages_.load(std::memory_order_relaxed);
  s.batched_messages = batched_messages_.load(std::memory_order_relaxed);
  s.batched_keys = batched_keys_.load(std::memory_order_relaxed);
  return s;
}

void SimulatedNetwork::ResetStats() {
  local_messages_.store(0, std::memory_order_relaxed);
  remote_messages_.store(0, std::memory_order_relaxed);
  local_bytes_.store(0, std::memory_order_relaxed);
  remote_bytes_.store(0, std::memory_order_relaxed);
  charged_nanos_.store(0, std::memory_order_relaxed);
  dropped_messages_.store(0, std::memory_order_relaxed);
  timed_out_messages_.store(0, std::memory_order_relaxed);
  batched_messages_.store(0, std::memory_order_relaxed);
  batched_keys_.store(0, std::memory_order_relaxed);
}

}  // namespace velox
