// Simulated cluster network.
//
// The paper's locality arguments (§5: partition W by uid so user-weight
// reads/writes are always local; item-feature fetches may be remote but
// are absorbed by an LRU cache because popularity is Zipfian) are about
// *which* accesses cross the network. This model charges a configurable
// latency + bandwidth cost per message to a logical clock and counts
// local vs remote traffic, which is exactly what the routing/locality
// ablation (bench/ablation_routing) reports.
#ifndef VELOX_CLUSTER_NETWORK_H_
#define VELOX_CLUSTER_NETWORK_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"

namespace velox {

using NodeId = int32_t;

struct NetworkOptions {
  // Cost of a local (same-node) call, e.g. an in-memory table lookup.
  int64_t local_call_nanos = 500;
  // One-way network latency for a remote call (per message).
  int64_t remote_latency_nanos = 150'000;  // 150us, intra-datacenter RPC
  // Payload cost: nanoseconds per byte on the wire (10 GbE ~ 0.8 ns/B).
  double nanos_per_byte = 0.8;
};

struct NetworkStats {
  uint64_t local_messages = 0;
  uint64_t remote_messages = 0;
  uint64_t local_bytes = 0;
  uint64_t remote_bytes = 0;
  int64_t charged_nanos = 0;

  double RemoteFraction() const {
    uint64_t total = local_messages + remote_messages;
    return total == 0 ? 0.0
                      : static_cast<double>(remote_messages) / static_cast<double>(total);
  }
};

class SimulatedNetwork {
 public:
  // `clock` may be null; when set, every charge advances it, so
  // end-to-end simulated time is observable.
  explicit SimulatedNetwork(NetworkOptions options = {}, SimulatedClock* clock = nullptr)
      : options_(options), clock_(clock) {}

  // Computes and records the cost of sending `bytes` from `from` to
  // `to`; returns the charged nanoseconds.
  int64_t Charge(NodeId from, NodeId to, uint64_t bytes);

  // Cost without recording (for what-if analysis).
  int64_t CostNanos(NodeId from, NodeId to, uint64_t bytes) const;

  NetworkStats stats() const;
  void ResetStats();

  const NetworkOptions& options() const { return options_; }

 private:
  NetworkOptions options_;
  SimulatedClock* clock_;
  std::atomic<uint64_t> local_messages_{0};
  std::atomic<uint64_t> remote_messages_{0};
  std::atomic<uint64_t> local_bytes_{0};
  std::atomic<uint64_t> remote_bytes_{0};
  std::atomic<int64_t> charged_nanos_{0};
};

}  // namespace velox

#endif  // VELOX_CLUSTER_NETWORK_H_
