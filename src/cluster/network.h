// Simulated cluster network.
//
// The paper's locality arguments (§5: partition W by uid so user-weight
// reads/writes are always local; item-feature fetches may be remote but
// are absorbed by an LRU cache because popularity is Zipfian) are about
// *which* accesses cross the network. This model charges a configurable
// latency + bandwidth cost per message to a logical clock and counts
// local vs remote traffic, which is exactly what the routing/locality
// ablation (bench/ablation_routing) reports.
//
// Fault injection: the paper leans on a fault-tolerant storage tier
// (§5: replication keeps serving alive through node loss), so the
// network can also *fail*. An installed FaultInjectionOptions plan adds
// per-message drops, response timeouts, latency jitter, per-node
// slow-replica multipliers, per-link drop overrides, and scripted
// partitions — all deterministic under a seeded Rng. Fault-aware
// callers use TryCharge(); Charge() remains the infallible legacy path
// (in-process calls, accounting-only charges).
#ifndef VELOX_CLUSTER_NETWORK_H_
#define VELOX_CLUSTER_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"

namespace velox {

using NodeId = int32_t;

struct NetworkOptions {
  // Cost of a local (same-node) call, e.g. an in-memory table lookup.
  int64_t local_call_nanos = 500;
  // One-way network latency for a remote call (per message).
  int64_t remote_latency_nanos = 150'000;  // 150us, intra-datacenter RPC
  // Payload cost: nanoseconds per byte on the wire (10 GbE ~ 0.8 ns/B).
  double nanos_per_byte = 0.8;
};

// A deterministic fault plan for the simulated network. Local
// (same-node) messages are never subject to faults: they model
// in-process calls, not wire traffic.
struct FaultInjectionOptions {
  // Probability that a remote message is lost in flight. The sender
  // waits `timeout_nanos` before declaring it lost.
  double drop_probability = 0.0;
  // Probability that a delivered message's response outlives the
  // sender's patience; charged exactly like a drop but counted apart so
  // loss and slowness are distinguishable in reports.
  double timeout_probability = 0.0;
  // Sender-perceived wait before a message is declared lost. Set this
  // above the typical round trip or timeouts become cheaper than
  // successes.
  int64_t timeout_nanos = 2'000'000;  // 2ms
  // Uniform extra one-way latency in [0, latency_jitter_nanos) added to
  // every delivered remote message.
  int64_t latency_jitter_nanos = 0;
  // Seed for the plan's private Rng; the same plan + seed + message
  // sequence reproduces the same faults bit-for-bit.
  uint64_t seed = 0x5eedf00dULL;
};

struct NetworkStats {
  uint64_t local_messages = 0;
  uint64_t remote_messages = 0;
  uint64_t local_bytes = 0;
  uint64_t remote_bytes = 0;
  int64_t charged_nanos = 0;
  // Fault-plan outcomes (all zero when no plan is installed).
  uint64_t dropped_messages = 0;
  uint64_t timed_out_messages = 0;
  // Batched (MultiGet/MultiPut sub-batch) messages and the keys they
  // carried. A batched message is also counted in the local/remote
  // totals above: it is one message on the wire, whatever it carries.
  uint64_t batched_messages = 0;
  uint64_t batched_keys = 0;

  double RemoteFraction() const {
    uint64_t total = local_messages + remote_messages;
    return total == 0 ? 0.0
                      : static_cast<double>(remote_messages) / static_cast<double>(total);
  }
};

class SimulatedNetwork {
 public:
  // `clock` may be null; when set, every charge advances it, so
  // end-to-end simulated time is observable.
  explicit SimulatedNetwork(NetworkOptions options = {}, SimulatedClock* clock = nullptr)
      : options_(options), clock_(clock) {}

  // Computes and records the cost of sending `bytes` from `from` to
  // `to`; returns the charged nanoseconds. Never fails — faults are
  // only applied on the TryCharge path.
  int64_t Charge(NodeId from, NodeId to, uint64_t bytes);

  // Fault-aware delivery. On success charges the (slowed, jittered)
  // cost and returns it; on a drop, timeout, or partition charges the
  // sender's timeout wait, counts the outcome, and returns Unavailable.
  // Equivalent to Charge() when no fault plan is installed.
  Result<int64_t> TryCharge(NodeId from, NodeId to, uint64_t bytes);

  // Batched delivery: one message carrying `keys` keys worth of
  // payload. Costs exactly one header charge (latency) plus the summed
  // payload bytes — the round-trip amortization MultiGet/MultiPut
  // exists for — and counts toward the batched_* stats. Faults apply
  // to the message as a whole: a drop loses every key it carried.
  Result<int64_t> TryChargeBatch(NodeId from, NodeId to, uint64_t bytes,
                                 uint32_t keys);

  // Cost without recording (for what-if analysis and hedging
  // decisions). Includes per-node slowdown multipliers but not jitter.
  int64_t CostNanos(NodeId from, NodeId to, uint64_t bytes) const;

  // Charges `nanos` of pure waiting (retry backoff, hedge delays) to
  // the ledger and the clock without counting a message.
  void ChargeWait(int64_t nanos);

  // Counts a message and its bytes without charging time: the sender
  // abandoned it (a fired hedge's primary request) so its latency
  // overlaps a wait that was already charged, but it still occupies
  // the wire.
  void ChargeAbandoned(NodeId from, NodeId to, uint64_t bytes);

  // ---- fault plan ----
  // Installs (or replaces) the fault plan; reseeds the plan Rng.
  void InjectFaults(const FaultInjectionOptions& faults);
  // Removes the plan plus all link/node/partition overrides.
  void ClearFaults();
  // Overrides the drop probability for the directed link from->to.
  void SetLinkDropProbability(NodeId from, NodeId to, double p);
  // Slow-replica multiplier: messages to or from `node` take
  // `multiplier`x the modeled latency. 1.0 removes the entry.
  void SetNodeSlowdown(NodeId node, double multiplier);
  // Scripted partition: while set, messages between `a` and `b` (both
  // directions) are always dropped.
  void SetPartitioned(NodeId a, NodeId b, bool partitioned);
  // Sender-perceived wait charged for a failed delivery (0 when no
  // plan is installed).
  int64_t fault_timeout_nanos() const;

  NetworkStats stats() const;
  void ResetStats();

  const NetworkOptions& options() const { return options_; }

 private:
  // Charged nanos for a failed delivery; also advances the clock.
  int64_t ChargeFailure(NodeId from, NodeId to, uint64_t bytes,
                        std::atomic<uint64_t>* outcome_counter);
  double SlowdownFor(NodeId from, NodeId to) const;

  NetworkOptions options_;
  SimulatedClock* clock_;
  std::atomic<uint64_t> local_messages_{0};
  std::atomic<uint64_t> remote_messages_{0};
  std::atomic<uint64_t> local_bytes_{0};
  std::atomic<uint64_t> remote_bytes_{0};
  std::atomic<int64_t> charged_nanos_{0};
  std::atomic<uint64_t> dropped_messages_{0};
  std::atomic<uint64_t> timed_out_messages_{0};
  std::atomic<uint64_t> batched_messages_{0};
  std::atomic<uint64_t> batched_keys_{0};

  // True whenever a plan or any override is installed; lets the
  // fault-free hot path skip fault_mu_ entirely.
  std::atomic<bool> shaping_{false};
  mutable std::mutex fault_mu_;
  bool faults_enabled_ = false;
  FaultInjectionOptions faults_;
  Rng fault_rng_;
  std::map<std::pair<NodeId, NodeId>, double> link_drop_;
  std::map<NodeId, double> slowdown_;
  std::set<std::pair<NodeId, NodeId>> partitions_;
};

}  // namespace velox

#endif  // VELOX_CLUSTER_NETWORK_H_
