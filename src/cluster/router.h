// Request routing and data partitioning.
//
// Paper §5: "we exploit the fact that every prediction is associated
// with a specific user and partition W, the user weight vectors table,
// by uid. We then deploy a routing protocol for incoming user requests
// to ensure that they are served by the node containing that user's
// model."
//
// HashPartitioner is the table-partitioning function (mod-hash over a
// fixed partition count). ConsistentHashRouter maps keys to nodes via
// a virtual-node hash ring, so node additions/removals only remap
// O(1/num_nodes) of the key space — the membership-change path of the
// model manager.
#ifndef VELOX_CLUSTER_ROUTER_H_
#define VELOX_CLUSTER_ROUTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/network.h"
#include "common/result.h"

namespace velox {

// Stateless mod-hash partitioner with avalanche mixing so sequential
// uids spread evenly.
class HashPartitioner {
 public:
  explicit HashPartitioner(int32_t num_partitions);

  int32_t PartitionForKey(uint64_t key) const;
  int32_t num_partitions() const { return num_partitions_; }

  // The 64-bit mix used throughout the routing tier.
  static uint64_t MixHash(uint64_t key);

 private:
  int32_t num_partitions_;
};

// Consistent-hash ring with virtual nodes.
class ConsistentHashRouter {
 public:
  explicit ConsistentHashRouter(int32_t virtual_nodes_per_node = 64);

  Status AddNode(NodeId node);
  Status RemoveNode(NodeId node);

  // Node owning `key`. Fails if the ring is empty.
  Result<NodeId> NodeForKey(uint64_t key) const;

  // The first `replicas` distinct nodes clockwise from the key's
  // position (primary first) — the replica placement list.
  Result<std::vector<NodeId>> NodesForKey(uint64_t key, int32_t replicas) const;

  size_t num_nodes() const { return nodes_.size(); }
  std::vector<NodeId> nodes() const;

 private:
  int32_t virtual_nodes_per_node_;
  std::map<uint64_t, NodeId> ring_;  // position -> node
  std::map<NodeId, int32_t> nodes_;  // node -> vnode count
};

}  // namespace velox

#endif  // VELOX_CLUSTER_ROUTER_H_
