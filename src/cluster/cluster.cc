#include "cluster/cluster.h"

#include "common/string_util.h"

namespace velox {

Status Cluster::AddNode(NodeId id, std::string address) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& n : nodes_) {
    if (n.id == id) return Status::AlreadyExists(StrFormat("node %d exists", id));
  }
  nodes_.push_back(NodeInfo{id, std::move(address), NodeState::kAlive});
  ++generation_;
  return Status::OK();
}

Status Cluster::MarkDead(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& n : nodes_) {
    if (n.id == id) {
      n.state = NodeState::kDead;
      ++generation_;
      return Status::OK();
    }
  }
  return Status::NotFound(StrFormat("node %d not found", id));
}

Status Cluster::MarkDraining(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& n : nodes_) {
    if (n.id == id) {
      n.state = NodeState::kDraining;
      ++generation_;
      return Status::OK();
    }
  }
  return Status::NotFound(StrFormat("node %d not found", id));
}

Result<NodeInfo> Cluster::GetNode(NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& n : nodes_) {
    if (n.id == id) return n;
  }
  return Status::NotFound(StrFormat("node %d not found", id));
}

std::vector<NodeInfo> Cluster::AliveNodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeInfo> out;
  for (const auto& n : nodes_) {
    if (n.state == NodeState::kAlive) out.push_back(n);
  }
  return out;
}

size_t Cluster::num_alive() const { return AliveNodes().size(); }

uint64_t Cluster::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

}  // namespace velox
