// Cluster membership: the set of simulated nodes a Velox deployment
// runs on. The paper's architecture co-locates a model manager and
// model predictor with each Tachyon worker; here each Node carries the
// per-node serving state and the Cluster tracks membership changes with
// a generation counter so routers and storage can detect topology
// changes.
#ifndef VELOX_CLUSTER_CLUSTER_H_
#define VELOX_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/network.h"
#include "common/result.h"

namespace velox {

enum class NodeState { kAlive, kDraining, kDead };

struct NodeInfo {
  NodeId id = -1;
  std::string address;  // informational ("host:port"-style label)
  NodeState state = NodeState::kAlive;
};

class Cluster {
 public:
  Cluster() = default;

  // Adds a node; fails on duplicate id.
  Status AddNode(NodeId id, std::string address);
  // Marks a node dead; it stays in history but is excluded from
  // AliveNodes().
  Status MarkDead(NodeId id);
  Status MarkDraining(NodeId id);

  Result<NodeInfo> GetNode(NodeId id) const;
  std::vector<NodeInfo> AliveNodes() const;
  size_t num_alive() const;

  // Monotonic counter bumped on every membership change.
  uint64_t generation() const;

 private:
  mutable std::mutex mu_;
  std::vector<NodeInfo> nodes_;
  uint64_t generation_ = 0;
};

}  // namespace velox

#endif  // VELOX_CLUSTER_CLUSTER_H_
