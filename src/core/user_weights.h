// UserWeightStore: the per-node table of user weight vectors w_u and
// their online-learning sufficient statistics.
//
// Paper §5: W is partitioned by uid and every user's reads/writes are
// node-local; §4.2: online learning "exploits the independence of the
// user weights ... to permit lightweight conflict free per user
// updates". Each user's state is guarded by a striped lock (updates
// for one user never contend with another user's, matching the
// conflict-free claim while staying safe under arbitrary clients).
//
// Two update strategies implement Eq. 2:
//  * kNaiveNormalEquations — maintain (FᵀF, FᵀY), re-solve with
//    Cholesky per observation: O(d²) update + O(d³) solve. This is the
//    paper's "naive implementation" measured in Figure 3.
//  * kShermanMorrison — maintain (FᵀF + λI)^{-1} directly via rank-one
//    updates: O(d²) total, as the paper prescribes for production.
#ifndef VELOX_CORE_USER_WEIGHTS_H_
#define VELOX_CORE_USER_WEIGHTS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/bootstrap.h"
#include "linalg/ridge.h"
#include "linalg/sherman_morrison.h"
#include "linalg/vector.h"
#include "ml/als.h"
#include "ml/eval_metrics.h"
#include "storage/snapshot.h"

namespace velox {

enum class UpdateStrategy {
  kNaiveNormalEquations,
  kShermanMorrison,
};

const char* UpdateStrategyName(UpdateStrategy strategy);

struct UserWeightStoreOptions {
  size_t dim = 10;
  double lambda = 0.1;
  UpdateStrategy strategy = UpdateStrategy::kShermanMorrison;
  // Lock stripes for per-user mutual exclusion. Keep <= 63: the
  // snapshot consistency cut and version reset hold every stripe plus
  // the journal's WAL mutex at once, and TSan's deadlock detector
  // tracks at most 64 simultaneously-held locks per thread.
  size_t num_stripes = 32;
};

class UserWeightStore {
 public:
  // Fallback lookup for users missing from memory — e.g., after a node
  // failure remaps a user here, their last persisted weights are
  // fetched from the (replicated) storage tier. Returns nullopt when
  // nothing is recoverable.
  using RecoveryFn = std::function<std::optional<DenseVector>(uint64_t)>;

  // `bootstrapper` (may be null) is kept in sync with every user
  // add/update so new users can start from the mean weight vector.
  UserWeightStore(UserWeightStoreOptions options, Bootstrapper* bootstrapper);

  // Installs the recovery fallback consulted before bootstrapping an
  // unknown user. Not thread-safe against concurrent requests: wire it
  // during server construction.
  void SetRecoveryFunction(RecoveryFn fn) { recovery_ = std::move(fn); }

  // Attaches the durability journal (non-owning; must outlive the
  // store). Once attached, every mutation — seeds, online updates,
  // cold-start creations, version resets — appends one
  // UserWeightWalRecord under the mutated user's stripe lock, so
  // replaying the journal through ApplyWalRecord reproduces this
  // store's state exactly. Wire during server construction, before any
  // mutation.
  void AttachJournal(UserWeightJournal* journal) { journal_ = journal; }
  UserWeightJournal* journal() const { return journal_; }

  // Result of absorbing one observation.
  struct UpdateResult {
    // Prediction with the *pre-update* weights (prequential loss input).
    double prediction_before = 0.0;
    DenseVector new_weights;
    uint64_t new_epoch = 0;
    int64_t num_observations = 0;
  };

  // Current weights; NotFound for unknown users.
  Result<DenseVector> GetWeights(uint64_t uid) const;

  // Current weights, creating the user from `bootstrap_weights` if
  // absent (the §5 cold-start path).
  DenseVector GetOrBootstrapWeights(uint64_t uid, const DenseVector& bootstrap_weights);

  bool HasUser(uint64_t uid) const;

  // Installs `weights` as the user's state (offline-trained W),
  // resetting online statistics. Tagged with the model version.
  void SeedUser(uint64_t uid, const DenseVector& weights, int32_t model_version);

  // Applies Eq. 2 for one (f, y) example under the configured strategy.
  // Creates the user (from zero weights) if absent.
  Result<UpdateResult> ApplyObservation(uint64_t uid, const DenseVector& features,
                                        double label);

  // LinUCB uncertainty sqrt(fᵀ(FᵀF+λI)^{-1}f). Exact under
  // kShermanMorrison; under the naive strategy falls back to the
  // count-based proxy 1/sqrt(1 + n_u) (the inverse is not maintained).
  double Uncertainty(uint64_t uid, const DenseVector& features) const;

  // Monotone per-user change counter (prediction-cache keying); 0 for
  // unknown users.
  uint64_t Epoch(uint64_t uid) const;

  int64_t NumObservations(uint64_t uid) const;

  // Drops all users and re-seeds from an offline-trained W (model
  // version swap). Online sufficient statistics reset: they were
  // accumulated against the old θ.
  void ResetForNewVersion(const FactorMap& trained_weights, int32_t model_version);

  // Copy of all current weights (input to warm-started retraining).
  FactorMap ExportWeights() const;

  // --- Durability (storage/snapshot.h) ---

  // Serializes the complete table — weights, priors, epochs,
  // observation counts, strategy sufficient statistics, and the
  // bootstrapper's running mean — into an opaque snapshot blob. Users
  // are emitted sorted by uid, so two stores with identical state
  // produce identical bytes regardless of hash-map iteration order.
  std::vector<uint8_t> SerializeState() const;

  // Replaces the table (and bootstrapper state) with a snapshot blob.
  // Never journals; callers replay the WAL suffix afterwards.
  Status RestoreState(const std::vector<uint8_t>& state);

  // Applies one journal record without re-journaling it: kSeed and
  // kObservationUpdate run the same state machine as SeedUser /
  // ApplyObservation (so sufficient statistics evolve bit-identically),
  // kVersionReset wipes the table. Replay never consults the recovery
  // fallback or storage — records are self-contained.
  Status ApplyWalRecord(const UserWeightWalRecord& record);

  // If a journal is attached and its snapshot interval elapsed, takes a
  // consistent cut (all stripe locks held while the in-memory image is
  // serialized; the file write proceeds with mutators running) and
  // persists it. Cheap no-op otherwise; call from the observe path.
  Status MaybeSnapshot();

  size_t num_users() const;
  const UserWeightStoreOptions& options() const { return options_; }

 private:
  struct UserState {
    DenseVector weights;
    // Ridge prior mean w₀ — the offline-trained (or bootstrap) weights
    // the user started from; online updates blend data with this prior
    // rather than relearning from zero.
    DenseVector prior;
    int64_t num_observations = 0;
    uint64_t epoch = 0;
    int32_t model_version = 0;
    // Strategy-specific state (only the configured one is populated).
    std::unique_ptr<RidgeAccumulator> acc;
    std::unique_ptr<ShermanMorrisonSolver> sm;
  };

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, UserState> users;
  };

  Stripe& StripeFor(uint64_t uid) const;
  // Creates strategy state for a fresh user.
  UserState MakeState(const DenseVector& weights, int32_t model_version) const;
  // Recovery attempt for an absent user; empty optional if none.
  std::optional<DenseVector> TryRecover(uint64_t uid) const;
  // SeedUser body; `journal` false on the WAL replay path.
  Status SeedUserInternal(uint64_t uid, const DenseVector& weights,
                          int32_t model_version, bool journal);
  // ApplyObservation body; `journal` false on the WAL replay path and
  // `allow_recovery` false there too (records are self-contained).
  Result<UpdateResult> ApplyObservationInternal(uint64_t uid,
                                                const DenseVector& features,
                                                double label, bool journal,
                                                bool allow_recovery);
  // Appends to the attached journal if any; mutation proceeds even if
  // the append fails (serving availability over durability), matching
  // the observe path's degraded-mode policy.
  void JournalAppend(const UserWeightWalRecord& record);
  // SerializeState body; caller holds every stripe lock.
  std::vector<uint8_t> SerializeStateLocked() const;

  UserWeightStoreOptions options_;
  Bootstrapper* bootstrapper_;
  RecoveryFn recovery_;
  UserWeightJournal* journal_ = nullptr;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace velox

#endif  // VELOX_CORE_USER_WEIGHTS_H_
