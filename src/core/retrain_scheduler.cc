#include "core/retrain_scheduler.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "ml/feature_function.h"
#include "storage/storage_client.h"

namespace velox {

namespace {

// Factor-distribution batch size: large enough that the per-message
// header amortizes away, small enough that one MultiPut cannot trip
// the per-op deadline on big tables.
constexpr size_t kDistributeChunk = 256;

// Wraps the model's retrain procedure as a batch job (the "opaque
// Spark UDF" of §4.2).
class RetrainJob final : public BatchJob {
 public:
  RetrainJob(const VeloxModel* model, const std::vector<Observation>* observations,
             const FactorMap* warm_weights)
      : model_(model), observations_(observations), warm_weights_(warm_weights) {}

  std::string name() const override { return "retrain:" + model_->name(); }

  Status Run(BatchExecutor* executor) override {
    auto result = model_->Retrain(executor, *observations_, *warm_weights_);
    VELOX_RETURN_NOT_OK(result.status());
    output_ = std::move(result).value();
    return Status::OK();
  }

  RetrainOutput& output() { return output_; }

 private:
  const VeloxModel* model_;
  const std::vector<Observation>* observations_;
  const FactorMap* warm_weights_;
  RetrainOutput output_;
};

// The nearline counterpart: the restricted solve + merge runs on the
// same batch substrate (and the same executor type) as the full job,
// which is what makes the select-all refresh bit-identical to it.
class IncrementalJob final : public BatchJob {
 public:
  IncrementalJob(const VeloxModel* model, const std::vector<Observation>* observations,
                 const FactorMap* warm_weights, const ModelVersion* previous,
                 const std::vector<uint64_t>* refresh_items)
      : model_(model),
        observations_(observations),
        warm_weights_(warm_weights),
        previous_(previous),
        refresh_items_(refresh_items) {}

  std::string name() const override { return "incremental:" + model_->name(); }

  Status Run(BatchExecutor* executor) override {
    IncrementalTrainer trainer(model_);
    auto result = trainer.Refresh(executor, *observations_, *warm_weights_,
                                  *previous_, *refresh_items_);
    VELOX_RETURN_NOT_OK(result.status());
    output_ = std::move(result).value();
    return Status::OK();
  }

  RetrainOutput& output() { return output_; }

 private:
  const VeloxModel* model_;
  const std::vector<Observation>* observations_;
  const FactorMap* warm_weights_;
  const ModelVersion* previous_;
  const std::vector<uint64_t>* refresh_items_;
  RetrainOutput output_;
};

}  // namespace

const char* RetrainModeName(RetrainMode mode) {
  switch (mode) {
    case RetrainMode::kFull:
      return "full";
    case RetrainMode::kIncremental:
      return "incremental";
    case RetrainMode::kAuto:
      return "auto";
  }
  return "unknown";
}

RetrainScheduler::RetrainScheduler(RetrainSchedulerOptions options,
                                   const VeloxModel* model, ModelRegistry* registry,
                                   Evaluator* evaluator, JobDriver* driver,
                                   StorageCluster* storage,
                                   std::vector<NodeComponents> nodes)
    : options_(options),
      model_(model),
      registry_(registry),
      evaluator_(evaluator),
      driver_(driver),
      storage_(storage),
      nodes_(std::move(nodes)) {
  VELOX_CHECK(model_ != nullptr);
  VELOX_CHECK(registry_ != nullptr);
  VELOX_CHECK(evaluator_ != nullptr);
  VELOX_CHECK(driver_ != nullptr);
  VELOX_CHECK(storage_ != nullptr);
  VELOX_CHECK(!nodes_.empty());
}

Result<bool> RetrainScheduler::MaybeRetrain() {
  if (!evaluator_->IsStale()) return false;
  VELOX_RETURN_NOT_OK(Retrain(options_.mode).status());
  return true;
}

Result<RetrainReport> RetrainScheduler::RetrainNow() {
  return Retrain(RetrainMode::kFull);
}

Result<RetrainReport> RetrainScheduler::Retrain(RetrainMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (mode) {
    case RetrainMode::kFull:
      return RunFullLocked();
    case RetrainMode::kIncremental:
      return RunIncrementalLocked(/*refresh_all=*/false, /*via_auto=*/false);
    case RetrainMode::kAuto:
      return RunIncrementalLocked(/*refresh_all=*/false, /*via_auto=*/true);
  }
  return Status::InvalidArgument("unknown retrain mode");
}

Result<RetrainReport> RetrainScheduler::RetrainIncremental(bool refresh_all) {
  std::lock_guard<std::mutex> lock(mu_);
  return RunIncrementalLocked(refresh_all, /*via_auto=*/false);
}

Result<std::vector<Observation>> RetrainScheduler::SnapshotLog() const {
  std::vector<Observation> observations = storage_->AllObservations();
  if (observations.empty()) {
    return Status::FailedPrecondition("no observations to retrain on");
  }
  if (options_.max_observations > 0 &&
      static_cast<int64_t>(observations.size()) > options_.max_observations) {
    // Windowed retraining: keep the most recent observations by logical
    // timestamp (shards interleave, so order globally first).
    std::sort(observations.begin(), observations.end(),
              [](const Observation& a, const Observation& b) {
                return a.timestamp < b.timestamp;
              });
    observations.erase(observations.begin(),
                       observations.end() - options_.max_observations);
  }
  return observations;
}

FactorMap RetrainScheduler::ExportWarmWeights() const {
  // Warm-start from the live, online-updated weights across all nodes
  // (§4.2: retraining "depends on the current user weights").
  FactorMap current_weights;
  for (const NodeComponents& node : nodes_) {
    FactorMap shard = node.weights->ExportWeights();
    for (auto& [uid, w] : shard) current_weights[uid] = std::move(w);
  }
  return current_weights;
}

Result<RetrainReport> RetrainScheduler::RunFullLocked() {
  Stopwatch watch;
  VELOX_ASSIGN_OR_RETURN(std::vector<Observation> observations, SnapshotLog());
  FactorMap current_weights = ExportWarmWeights();

  RetrainJob job(model_, &observations, &current_weights);
  VELOX_RETURN_NOT_OK(driver_->Submit(&job));

  VELOX_ASSIGN_OR_RETURN(RetrainReport report,
                         InstallOutput(job.output(), observations.size(),
                                       &observations));
  report.wall_millis = watch.ElapsedMillis();
  report.mode_used = RetrainMode::kFull;
  ++retrains_completed_;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.full_retrains;
  }
  return report;
}

DriftSelection RetrainScheduler::CheckDriftLocked() const {
  std::vector<const ItemDriftTracker*> trackers;
  trackers.reserve(nodes_.size());
  for (const NodeComponents& node : nodes_) trackers.push_back(node.drift);
  std::vector<ItemDriftStat> merged = MergeDriftSnapshots(trackers);

  size_t catalog_items = 0;
  if (auto current = registry_->Current(); current.ok()) {
    const auto* materialized = dynamic_cast<const MaterializedFeatureFunction*>(
        current.value()->features.get());
    if (materialized != nullptr) catalog_items = materialized->table().size();
  }
  return SelectDriftedItems(merged, options_.incremental, catalog_items);
}

Result<RetrainReport> RetrainScheduler::RunIncrementalLocked(bool refresh_all,
                                                             bool via_auto) {
  Stopwatch watch;
  auto current = registry_->Current();
  if (!current.ok()) {
    // Nothing to merge into yet. kAuto bootstraps with a full retrain;
    // an explicit incremental request is a caller error.
    if (via_auto) {
      VELOX_ASSIGN_OR_RETURN(RetrainReport report, RunFullLocked());
      report.escalated = true;
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.auto_escalations;
      return report;
    }
    return Status::FailedPrecondition(
        "incremental retrain requires an installed model version");
  }
  VELOX_ASSIGN_OR_RETURN(std::vector<Observation> observations, SnapshotLog());

  StageTimer timer(stages_);
  StageTimer::Scope drift_span(timer, Stage::kDriftCheck);
  DriftSelection selection;
  if (refresh_all) {
    // Bit-identity path: select every item θ or the log mentions, so
    // the restricted solve degenerates to the full computation.
    std::set<uint64_t> all_items;
    if (const auto* materialized = dynamic_cast<const MaterializedFeatureFunction*>(
            current.value()->features.get())) {
      for (const auto& [item_id, factor] : materialized->table()) {
        all_items.insert(item_id);
      }
      selection.catalog_items = materialized->table().size();
    }
    for (const Observation& obs : observations) all_items.insert(obs.item_id);
    selection.items.assign(all_items.begin(), all_items.end());
    selection.candidates = selection.items.size();
    selection.drift_fraction = 1.0;
  } else {
    selection = CheckDriftLocked();
  }
  drift_span.Stop();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.last_drift_candidates = selection.candidates;
    stats_.last_drift_fraction = selection.drift_fraction;
  }

  // Drift-mass staleness: when most of the catalog needs re-solving
  // (or nothing qualifies but a retrain was demanded anyway), the
  // restricted path stops paying for itself — run the batch job.
  if (via_auto &&
      (selection.items.empty() ||
       selection.drift_fraction >= options_.incremental.auto_full_fraction)) {
    VELOX_ASSIGN_OR_RETURN(RetrainReport report, RunFullLocked());
    report.escalated = true;
    report.drift_candidates = selection.candidates;
    report.drift_fraction = selection.drift_fraction;
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.auto_escalations;
    return report;
  }
  if (selection.items.empty()) {
    return Status::FailedPrecondition("no items crossed the drift threshold");
  }

  FactorMap current_weights = ExportWarmWeights();
  StageTimer::Scope solve_span(timer, Stage::kIncrementalSolve);
  IncrementalJob job(model_, &observations, &current_weights,
                     current.value().get(), &selection.items);
  VELOX_RETURN_NOT_OK(driver_->Submit(&job));
  solve_span.Stop();

  VELOX_ASSIGN_OR_RETURN(RetrainReport report,
                         InstallOutput(job.output(), observations.size(),
                                       &observations, &selection.items));
  report.wall_millis = watch.ElapsedMillis();
  report.mode_used = RetrainMode::kIncremental;
  report.items_refreshed = selection.items.size();
  report.drift_candidates = selection.candidates;
  report.drift_fraction = selection.drift_fraction;
  ++retrains_completed_;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.incremental_retrains;
    stats_.items_refreshed += selection.items.size();
  }
  return report;
}

Result<RetrainReport> RetrainScheduler::InstallOutput(
    const RetrainOutput& output, size_t observations_used,
    const std::vector<Observation>* observations,
    const std::vector<uint64_t>* refreshed_items) {
  if (output.features == nullptr) {
    return Status::InvalidArgument("retrain produced no feature function");
  }
  RetrainReport report;
  report.observations_used = observations_used;
  report.training_rmse = output.training_rmse;

  // 1. Capture the warm set *before* the swap (§4.2).
  std::vector<std::vector<uint64_t>> hot_items(nodes_.size());
  std::vector<std::vector<PredictionKey>> hot_predictions(nodes_.size());
  if (options_.warm_caches) {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      hot_items[i] = nodes_[i].feature_cache->HotItems(options_.warm_hot_entries_per_shard);
      hot_predictions[i] =
          nodes_[i].prediction_cache->HotKeys(options_.warm_hot_entries_per_shard);
    }
  }

  // 2. Register the new immutable version.
  auto weights_snapshot = std::make_shared<FactorMap>(output.user_weights);
  int32_t version = registry_->Register(
      output.features, std::shared_ptr<const FactorMap>(weights_snapshot),
      output.training_rmse);
  report.new_version = version;

  // 3. Publish the new materialized feature table into distributed
  //    storage (batch output write; charged from the driver, node 0).
  if (options_.distribute_item_features) {
    const auto* materialized =
        dynamic_cast<const MaterializedFeatureFunction*>(output.features.get());
    if (materialized == nullptr) {
      return Status::FailedPrecondition(
          "distribute_item_features requires a materialized feature function");
    }
    std::string table = StrFormat("%s_v%d", options_.feature_table_prefix.c_str(),
                                  version);
    VELOX_RETURN_NOT_OK(storage_->CreateTable(table));
    // Batch publish: the driver ships the table as chunked MultiPuts —
    // one message per storage node per chunk instead of one per
    // (item, replica). MultiPut itself writes every replica, so reads
    // can still fall back (and hedge) along the whole replica list.
    StorageClient driver(storage_, 0);
    std::vector<std::pair<Key, Value>> chunk;
    chunk.reserve(kDistributeChunk);
    auto flush = [&]() -> Status {
      if (chunk.empty()) return Status::OK();
      std::vector<Status> statuses = driver.MultiPut(table, std::move(chunk));
      chunk.clear();
      for (const Status& s : statuses) VELOX_RETURN_NOT_OK(s);
      return Status::OK();
    };
    for (const auto& [item_id, factor] : materialized->table()) {
      chunk.emplace_back(item_id, EncodeFactor(factor));
      if (chunk.size() >= kDistributeChunk) VELOX_RETURN_NOT_OK(flush());
    }
    VELOX_RETURN_NOT_OK(flush());
  }

  // 3b. Publish the new W into the replicated user-weights table the
  //     failover recovery path reads. Same chunked-MultiPut shape as
  //     the feature table: without this write, a user who never saw an
  //     online update after the swap has no persisted weights, and a
  //     node crash would lose their retrained vector.
  if (options_.persist_user_weights && !options_.user_weights_table.empty() &&
      !output.user_weights.empty()) {
    StorageClient driver(storage_, 0);
    std::vector<std::pair<Key, Value>> chunk;
    chunk.reserve(kDistributeChunk);
    auto flush_weights = [&]() -> Status {
      if (chunk.empty()) return Status::OK();
      std::vector<Status> statuses =
          driver.MultiPut(options_.user_weights_table, std::move(chunk));
      chunk.clear();
      for (const Status& s : statuses) VELOX_RETURN_NOT_OK(s);
      return Status::OK();
    };
    for (const auto& [uid, w] : output.user_weights) {
      chunk.emplace_back(uid, EncodeFactor(w));
      if (chunk.size() >= kDistributeChunk) VELOX_RETURN_NOT_OK(flush_weights());
    }
    VELOX_RETURN_NOT_OK(flush_weights());
  }

  // 4. Swap-time invalidation: the offline phase "invalidates both
  //    prediction and feature caches" (§4.2).
  for (const NodeComponents& node : nodes_) {
    node.feature_cache->Clear();
    node.prediction_cache->Clear();
  }

  // 4b. Drift-stat epoch: refreshed items restart accumulation at zero.
  //     A full retrain (or direct install) re-solved everything, so the
  //     whole tracker resets; an incremental refresh forgets only the
  //     items it actually re-solved — near-threshold drift on the rest
  //     keeps accumulating toward the next refresh.
  for (const NodeComponents& node : nodes_) {
    if (node.drift == nullptr) continue;
    if (refreshed_items != nullptr) {
      node.drift->ResetItems(*refreshed_items);
    } else {
      node.drift->Clear();
    }
  }

  // 5. Re-seed user weights from the new W, placing each user on its
  //    owning node.
  if (nodes_.size() == 1) {
    nodes_[0].weights->ResetForNewVersion(output.user_weights, version);
  } else {
    std::vector<FactorMap> per_node(nodes_.size());
    for (const auto& [uid, w] : output.user_weights) {
      VELOX_ASSIGN_OR_RETURN(NodeId owner, storage_->OwnerOf(uid));
      per_node[static_cast<size_t>(owner)][uid] = w;
    }
    for (size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i].weights->ResetForNewVersion(per_node[i], version);
    }
  }

  // 5b. Replay the observation log into the online user state: each
  //     w_u becomes the exact Eq. 2 solution over all of the user's
  //     observations under the new θ, with the sufficient statistics
  //     (FᵀF or its inverse) primed for subsequent online updates.
  if (options_.replay_observations && observations != nullptr &&
      output.features->is_materialized()) {
    auto current = registry_->Current();
    if (current.ok()) {
      for (const Observation& obs : *observations) {
        NodeComponents* node = &nodes_[0];
        if (nodes_.size() > 1) {
          VELOX_ASSIGN_OR_RETURN(NodeId owner, storage_->OwnerOf(obs.uid));
          node = &nodes_[static_cast<size_t>(owner)];
        }
        Item item;
        item.id = obs.item_id;
        auto features =
            node->prediction_service->ResolveFeatures(*current.value(), item);
        if (!features.ok()) {
          ++report.replay_skipped;  // item absent from the new θ
          continue;
        }
        auto applied =
            node->weights->ApplyObservation(obs.uid, *features.value(), obs.label);
        // A single bad observation (corrupt entry, stale-dimension
        // factor) must not abort the install: at this point the caches
        // are cleared and weights reseeded, so failing here would strand
        // the node half-installed. Skip it and surface the count.
        if (!applied.ok()) ++report.replay_skipped;
      }
    }
  }

  // 6. Repopulate caches from the warm set against the new version
  //    (materialized features only: computational features require the
  //    item's raw attributes, which the cache keys do not carry).
  if (options_.warm_caches &&
      (output.features->is_materialized() || options_.distribute_item_features)) {
    auto current = registry_->Current();
    if (current.ok()) {
      for (size_t i = 0; i < nodes_.size(); ++i) {
        PredictionService* ps = nodes_[i].prediction_service;
        if (ps == nullptr) continue;
        // One coalesced MultiGet warms the whole hot set instead of a
        // storage round trip per item.
        report.warmed_features += ps->WarmFeatures(*current.value(), hot_items[i]);
        // Dedup on the exact (uid, item) pair: a 64-bit hash of the
        // pair can collide and silently drop a distinct warm entry.
        std::set<std::pair<uint64_t, uint64_t>> warmed_pairs;
        for (const PredictionKey& key : hot_predictions[i]) {
          if (!warmed_pairs.emplace(key.uid, key.item_id).second) continue;
          Item item;
          item.id = key.item_id;
          if (ps->Predict(key.uid, item).ok()) {
            ++report.warmed_predictions;
          }
        }
      }
    }
  }

  // 7. New quality baseline: mean squared loss of the fresh model.
  evaluator_->ResetBaseline(0.5 * output.training_rmse * output.training_rmse);
  return report;
}

Status RetrainScheduler::Rollback(int32_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  VELOX_RETURN_NOT_OK(registry_->Rollback(version));
  VELOX_ASSIGN_OR_RETURN(std::shared_ptr<const ModelVersion> current,
                         registry_->Current());
  for (const NodeComponents& node : nodes_) {
    node.feature_cache->Clear();
    node.prediction_cache->Clear();
    // Drift accumulated against the rolled-away θ is meaningless now.
    if (node.drift != nullptr) node.drift->Clear();
  }
  if (nodes_.size() == 1) {
    nodes_[0].weights->ResetForNewVersion(*current->trained_user_weights, version);
  } else {
    std::vector<FactorMap> per_node(nodes_.size());
    for (const auto& [uid, w] : *current->trained_user_weights) {
      VELOX_ASSIGN_OR_RETURN(NodeId owner, storage_->OwnerOf(uid));
      per_node[static_cast<size_t>(owner)][uid] = w;
    }
    for (size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i].weights->ResetForNewVersion(per_node[i], version);
    }
  }
  evaluator_->ResetBaseline(0.5 * current->training_rmse * current->training_rmse);
  return Status::OK();
}

uint64_t RetrainScheduler::retrains_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retrains_completed_;
}

RetrainSchedulerStats RetrainScheduler::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace velox
