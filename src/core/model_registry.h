// Model version registry.
//
// Paper §2.1 ("Model lifecycle management"): "Velox maintains
// statistics about model performance and version histories, enabling
// easier diagnostics of model quality regression and simple rollbacks
// to earlier model versions." And §6: after offline training "Velox
// automatically instantiates a new VeloxModel and new W — incrementing
// the version — and transparently upgrades incoming prediction
// requests."
//
// A ModelVersion is an immutable snapshot: θ (as a FeatureFunction),
// the user weights W produced by training, and quality stats. The
// registry swaps an atomic current-version pointer; readers hold
// shared_ptrs so in-flight requests finish against the version they
// started with.
#ifndef VELOX_CORE_MODEL_REGISTRY_H_
#define VELOX_CORE_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/als.h"
#include "ml/feature_function.h"

namespace velox {

struct ModelVersion {
  int32_t version = 0;
  std::string model_name;
  std::shared_ptr<const FeatureFunction> features;
  // Contiguous scoring plane over the materialized factors, attached
  // at Register() when `features` is a MaterializedFeatureFunction
  // (null for computational models). Immutable like the version;
  // full-catalog top-K scans stream it lock-free.
  std::shared_ptr<const ItemFactorPlane> item_plane;
  // W as produced by the (re)training run; the live, online-updated
  // weights live in UserWeightStore and are re-seeded from this on swap.
  std::shared_ptr<const FactorMap> trained_user_weights;
  double training_rmse = 0.0;
  int64_t created_at_nanos = 0;
};

struct ModelVersionInfo {
  int32_t version = 0;
  double training_rmse = 0.0;
  int64_t created_at_nanos = 0;
  bool is_current = false;
};

class ModelRegistry {
 public:
  explicit ModelRegistry(std::string model_name);

  // Snapshots `features`/`weights` into a new version, makes it
  // current, and returns the assigned version number (1-based).
  int32_t Register(std::shared_ptr<const FeatureFunction> features,
                   std::shared_ptr<const FactorMap> trained_user_weights,
                   double training_rmse);

  // Current version; FailedPrecondition before the first Register.
  Result<std::shared_ptr<const ModelVersion>> Current() const;
  int32_t current_version() const;

  // Makes a historical version current again (rollback).
  Status Rollback(int32_t version);

  std::vector<ModelVersionInfo> History() const;
  const std::string& model_name() const { return model_name_; }

 private:
  std::string model_name_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const ModelVersion>> versions_;
  std::shared_ptr<const ModelVersion> current_;
};

}  // namespace velox

#endif  // VELOX_CORE_MODEL_REGISTRY_H_
