// Model version registry.
//
// Paper §2.1 ("Model lifecycle management"): "Velox maintains
// statistics about model performance and version histories, enabling
// easier diagnostics of model quality regression and simple rollbacks
// to earlier model versions." And §6: after offline training "Velox
// automatically instantiates a new VeloxModel and new W — incrementing
// the version — and transparently upgrades incoming prediction
// requests."
//
// A ModelVersion is an immutable snapshot: θ (as a FeatureFunction),
// the user weights W produced by training, and quality stats. The
// registry swaps an atomic current-version pointer; readers hold
// shared_ptrs so in-flight requests finish against the version they
// started with.
#ifndef VELOX_CORE_MODEL_REGISTRY_H_
#define VELOX_CORE_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ann/ivf_index.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "ml/als.h"
#include "ml/feature_function.h"

namespace velox {

// When and how the registry builds an ANN index at install time.
// Building is part of install (before the version becomes current), so
// a served version either has its index or never will — the serving
// path never races a half-built index.
struct AnnBuildPolicy {
  bool enabled = true;
  // Planes smaller than this serve fine from the exact scan; skip the
  // build cost. Chosen so unit-test-sized catalogs never pay it.
  size_t min_items = 32768;
  AnnIndexOptions index;
};

struct ModelVersion {
  int32_t version = 0;
  std::string model_name;
  std::shared_ptr<const FeatureFunction> features;
  // Contiguous scoring plane over the materialized factors, attached
  // at Register() when `features` is a MaterializedFeatureFunction
  // (null for computational models). Immutable like the version;
  // full-catalog top-K scans stream it lock-free.
  std::shared_ptr<const ItemFactorPlane> item_plane;
  // IVF(+PQ) candidate index over item_plane, built at Register() when
  // the registry's AnnBuildPolicy applies (null otherwise — exact scans
  // only). Immutable like the version.
  std::shared_ptr<const IvfIndex> ann_index;
  // W as produced by the (re)training run; the live, online-updated
  // weights live in UserWeightStore and are re-seeded from this on swap.
  std::shared_ptr<const FactorMap> trained_user_weights;
  double training_rmse = 0.0;
  int64_t created_at_nanos = 0;
};

struct ModelVersionInfo {
  int32_t version = 0;
  double training_rmse = 0.0;
  int64_t created_at_nanos = 0;
  bool is_current = false;
};

class ModelRegistry {
 public:
  explicit ModelRegistry(std::string model_name);

  // Snapshots `features`/`weights` into a new version, makes it
  // current, and returns the assigned version number (1-based).
  int32_t Register(std::shared_ptr<const FeatureFunction> features,
                   std::shared_ptr<const FactorMap> trained_user_weights,
                   double training_rmse);

  // Current version; FailedPrecondition before the first Register.
  Result<std::shared_ptr<const ModelVersion>> Current() const;
  int32_t current_version() const;

  // Makes a historical version current again (rollback).
  Status Rollback(int32_t version);

  // Enables ANN index construction for subsequent Register() calls
  // (materialized models whose plane has >= policy.min_items rows).
  // `pool` (borrowed, may be null) parallelizes the build; the index
  // bytes are identical either way. Wire before the first Register.
  void SetAnnBuild(AnnBuildPolicy policy, ThreadPool* pool) {
    ann_policy_ = std::move(policy);
    ann_pool_ = pool;
  }
  const AnnBuildPolicy& ann_policy() const { return ann_policy_; }

  std::vector<ModelVersionInfo> History() const;
  const std::string& model_name() const { return model_name_; }

 private:
  // ANN builds are opt-in: disabled until SetAnnBuild().
  static AnnBuildPolicy DisabledAnnPolicy() {
    AnnBuildPolicy p;
    p.enabled = false;
    return p;
  }

  std::string model_name_;
  AnnBuildPolicy ann_policy_ = DisabledAnnPolicy();
  ThreadPool* ann_pool_ = nullptr;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const ModelVersion>> versions_;
  std::shared_ptr<const ModelVersion> current_;
};

}  // namespace velox

#endif  // VELOX_CORE_MODEL_REGISTRY_H_
