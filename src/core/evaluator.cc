#include "core/evaluator.h"

#include <algorithm>

#include "common/logging.h"

namespace velox {

Evaluator::Evaluator(EvaluatorOptions options)
    : options_(options), heldout_ewma_(options.ewma_alpha), rng_(options.seed) {
  VELOX_CHECK_GT(options_.staleness_threshold_ratio, 1.0);
  VELOX_CHECK_GE(options_.min_observations, 0);
  validation_pool_.reserve(options_.validation_pool_capacity);
}

void Evaluator::RecordOnlineLoss(uint64_t uid, double loss) {
  std::lock_guard<std::mutex> lock(mu_);
  per_user_loss_[uid].Add(loss);
  global_online_loss_.Add(loss);
  ++observations_since_baseline_;
}

void Evaluator::RecordHeldOutLoss(uint64_t /*uid*/, double loss) {
  std::lock_guard<std::mutex> lock(mu_);
  if (baseline_set_ && calibration_count_ < options_.baseline_from_heldout_samples) {
    calibration_sum_ += loss;
    ++calibration_count_;
  }
  heldout_ewma_.Add(loss);
}

void Evaluator::RecordValidationExample(const ValidationExample& example) {
  std::lock_guard<std::mutex> lock(mu_);
  ++validation_seen_;
  if (validation_pool_.size() < options_.validation_pool_capacity) {
    validation_pool_.push_back(example);
    return;
  }
  // Reservoir sampling: replace a random slot with probability
  // capacity / seen.
  uint64_t slot = rng_.UniformU64(validation_seen_);
  if (slot < validation_pool_.size()) {
    validation_pool_[static_cast<size_t>(slot)] = example;
  }
}

std::vector<ValidationExample> Evaluator::ValidationPool() const {
  std::lock_guard<std::mutex> lock(mu_);
  return validation_pool_;
}

void Evaluator::ResetBaseline(double baseline_loss) {
  std::lock_guard<std::mutex> lock(mu_);
  baseline_loss_ = baseline_loss;
  baseline_set_ = true;
  observations_since_baseline_ = 0;
  heldout_ewma_ = Ewma(options_.ewma_alpha);
  calibration_count_ = 0;
  calibration_sum_ = 0.0;
}

bool Evaluator::IsStale() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!baseline_set_) return false;
  if (observations_since_baseline_ < options_.min_observations) return false;
  if (!heldout_ewma_.initialized()) return false;
  double effective_baseline = baseline_loss_;
  if (options_.baseline_from_heldout_samples > 0) {
    if (calibration_count_ < options_.baseline_from_heldout_samples) {
      return false;  // still learning what "fresh" serving loss looks like
    }
    effective_baseline = std::max(
        effective_baseline,
        calibration_sum_ / static_cast<double>(calibration_count_));
  }
  if (effective_baseline <= 0.0) return false;
  return heldout_ewma_.value() >
         options_.staleness_threshold_ratio * effective_baseline;
}

EvaluatorReport Evaluator::Report() const {
  EvaluatorReport report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    report.observations_since_baseline = observations_since_baseline_;
    report.baseline_loss = baseline_loss_;
    report.ewma_loss = heldout_ewma_.initialized() ? heldout_ewma_.value() : 0.0;
    report.mean_online_loss = global_online_loss_.mean();
    report.tracked_users = per_user_loss_.size();
    report.validation_pool_size = validation_pool_.size();
  }
  report.stale = IsStale();
  return report;
}

double Evaluator::UserMeanLoss(uint64_t uid) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_user_loss_.find(uid);
  return it == per_user_loss_.end() ? 0.0 : it->second.mean();
}

}  // namespace velox
