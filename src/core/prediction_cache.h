// Prediction Cache (paper Figure 2, §5): memoizes the final score for
// a (user, item) pair — "often useful for repeated calls to topK with
// overlapping itemsets".
//
// Consistency: a cached score is only valid for the user-weight state
// and model version it was computed under. Rather than tracking and
// purging every (uid, *) entry when a user's weights change, the cache
// key embeds the user's epoch (bumped on every online update) and the
// model version (bumped on retrain/rollback); stale entries become
// unreachable and age out via LRU. This makes observe() O(1) with
// respect to the cache.
#ifndef VELOX_CORE_PREDICTION_CACHE_H_
#define VELOX_CORE_PREDICTION_CACHE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/lru.h"

namespace velox {

struct PredictionKey {
  uint64_t uid = 0;
  uint64_t item_id = 0;
  uint64_t user_epoch = 0;
  int32_t model_version = 0;

  bool operator==(const PredictionKey& other) const {
    return uid == other.uid && item_id == other.item_id &&
           user_epoch == other.user_epoch && model_version == other.model_version;
  }
};

struct PredictionKeyHash {
  size_t operator()(const PredictionKey& k) const {
    // 64-bit mix of the four fields.
    uint64_t h = k.uid * 0x9e3779b97f4a7c15ULL;
    h ^= k.item_id + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= k.user_epoch + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(k.model_version)) +
         0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

class PredictionCache {
 public:
  explicit PredictionCache(size_t capacity, size_t num_shards = 8);

  std::optional<double> Get(const PredictionKey& key);
  void Put(const PredictionKey& key, double score);
  void Clear();

  // Most-recently-used keys: the (uid, item) warm set whose predictions
  // the batch retrain recomputes before the version swap (§4.2).
  std::vector<PredictionKey> HotKeys(size_t limit_per_shard = 64) const {
    return cache_.HotKeys(limit_per_shard);
  }

  CacheStats stats() const { return cache_.stats(); }
  void ResetStats() { cache_.ResetStats(); }
  size_t size() const { return cache_.size(); }

 private:
  LruCache<PredictionKey, double, PredictionKeyHash> cache_;
};

}  // namespace velox

#endif  // VELOX_CORE_PREDICTION_CACHE_H_
