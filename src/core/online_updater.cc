#include "core/online_updater.h"

#include "common/logging.h"
#include "core/incremental_trainer.h"

namespace velox {

OnlineUpdater::OnlineUpdater(OnlineUpdaterOptions options, const VeloxModel* model,
                             ModelRegistry* registry, UserWeightStore* weights,
                             PredictionService* prediction_service,
                             Evaluator* evaluator, StorageClient* client)
    : options_(options),
      model_(model),
      registry_(registry),
      weights_(weights),
      prediction_service_(prediction_service),
      evaluator_(evaluator),
      client_(client) {
  VELOX_CHECK(model_ != nullptr);
  VELOX_CHECK(registry_ != nullptr);
  VELOX_CHECK(weights_ != nullptr);
  VELOX_CHECK(prediction_service_ != nullptr);
  VELOX_CHECK(evaluator_ != nullptr);
  VELOX_CHECK_GE(options_.cross_validation_every, 0);
}

Result<ObserveResult> OnlineUpdater::Observe(uint64_t uid, const Item& item,
                                             double label, bool exploration_sourced) {
  StageTimer timer(stages_);
  VELOX_ASSIGN_OR_RETURN(std::shared_ptr<const ModelVersion> version,
                         registry_->Current());
  Result<FeaturePtr> resolved =
      prediction_service_->ResolveFeatures(*version, item, timer);
  if (!resolved.ok()) {
    // Transiently unresolvable features: the weight update is impossible
    // right now, but the observation itself must not be lost — append it
    // to the log (node-local, unaffected by the fault) so offline
    // retraining replays it, and report a degraded success. Definitive
    // errors still fail the observation.
    if (options_.degrade_on_unavailable && client_ != nullptr &&
        resolved.status().IsUnavailable()) {
      StageTimer::Scope span(timer, Stage::kDegradedServe);
      Observation obs;
      obs.uid = uid;
      obs.item_id = item.id;
      obs.label = label;
      obs.timestamp = client_->NextTimestamp();
      ObserveResult result;
      result.log_seq = client_->AppendObservation(obs);
      result.degraded = true;
      degraded_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    return resolved.status();
  }
  const DenseVector& features = *resolved.value();

  StageTimer::Scope solve(timer, Stage::kOnlineSolve);
  VELOX_ASSIGN_OR_RETURN(UserWeightStore::UpdateResult update,
                         weights_->ApplyObservation(uid, features, label));
  solve.Stop();
  // Snapshot cadence rides the observe path (the only high-rate
  // mutation source); a due snapshot serializes the table and writes
  // it out, a non-due call is two atomic loads.
  Status snapshot = weights_->MaybeSnapshot();
  if (!snapshot.ok()) {
    // Snapshot failure degrades recovery speed (longer WAL replay),
    // never correctness; don't fail the observation.
    degraded_.fetch_add(1, std::memory_order_relaxed);
  }

  ObserveResult result;
  result.prediction_before = update.prediction_before;
  result.loss = model_->Loss(label, update.prediction_before, item, uid);
  result.user_observations = update.num_observations;

  // Drift stats feed the nearline refresh selection: raw squared error
  // (not the halved Loss) so IncrementalPolicy thresholds read in label
  // units. Volatile by design — never journaled (see
  // core/incremental_trainer.h).
  if (drift_ != nullptr) {
    double e = label - update.prediction_before;
    drift_->Record(item.id, e * e);
  }

  evaluator_->RecordOnlineLoss(uid, result.loss);
  int64_t n = observation_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.cross_validation_every > 0 &&
      n % options_.cross_validation_every == 0) {
    // The pre-update prediction never saw this observation, so its loss
    // is a held-out generalization sample.
    evaluator_->RecordHeldOutLoss(uid, result.loss);
  }
  if (exploration_sourced) {
    evaluator_->RecordValidationExample(ValidationExample{uid, item.id, label});
  }

  if (client_ != nullptr) {
    StageTimer::Scope persist(timer, Stage::kPersist);
    Observation obs;
    obs.uid = uid;
    obs.item_id = item.id;
    obs.label = label;
    // Cluster-wide logical timestamp: orders this observation against
    // every other shard's (windowed retraining relies on it).
    obs.timestamp = client_->NextTimestamp();
    result.log_seq = client_->AppendObservation(obs);
    if (options_.persist_weights) {
      Status persisted =
          client_->Put(options_.weights_table, uid, EncodeFactor(update.new_weights));
      if (!persisted.ok()) {
        // The in-memory update already happened and the observation is
        // logged; a transiently-failed persist degrades durability, not
        // correctness (recovery replays the log). Surface it as a
        // degraded success rather than failing the observation.
        if (!options_.degrade_on_unavailable || !persisted.IsUnavailable()) {
          return persisted;
        }
        result.degraded = true;
        degraded_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return result;
}

}  // namespace velox
