// Online model selection — the abstract's "lightweight online model
// maintenance and selection (i.e., dynamic weighting)" and §8's
// "multi-armed bandit (i.e., multiple model) techniques ... including
// their dynamic updates".
//
// A ModelSelector treats a set of deployed models (e.g., the campaigns
// of §2.1, or an old and a candidate version of the same model) as the
// arms of a bandit: each served request is routed to one model, the
// observed loss is reported back, and the selector concentrates traffic
// on whichever model is currently best.
//
// Two policies:
//  * kUcb1 — optimism in the face of uncertainty over mean reward
//    (reward = -loss); right when model qualities are stationary.
//  * kExpWeights — multiplicative-weights (Hedge/EXP3-style) over a
//    sliding effective horizon; the "dynamic weighting" choice, able to
//    shift traffic when a model's quality drifts mid-stream.
#ifndef VELOX_CORE_MODEL_SELECTOR_H_
#define VELOX_CORE_MODEL_SELECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace velox {

enum class SelectionPolicy {
  kUcb1,
  kExpWeights,
};

struct ModelSelectorOptions {
  SelectionPolicy policy = SelectionPolicy::kExpWeights;
  // UCB1 exploration strength (the constant in sqrt(c ln N / n_i)).
  double ucb_exploration = 2.0;
  // Exp-weights learning rate and weight floor (forced exploration).
  double exp_learning_rate = 0.2;
  double exp_min_probability = 0.02;
  // Losses are clamped to [0, loss_cap] before being turned into
  // rewards, so one wild outlier cannot zero a model's weight.
  double loss_cap = 10.0;
  uint64_t seed = 17;
};

struct ModelArmStats {
  std::string name;
  int64_t pulls = 0;
  double mean_loss = 0.0;
  // Current selection probability (exp-weights) or 0/1 greedy share
  // proxy (UCB1 reports the arm it would pick next with 1.0).
  double weight = 0.0;
};

class ModelSelector {
 public:
  explicit ModelSelector(ModelSelectorOptions options);

  // Registers an arm; fails on duplicates or empty names.
  Status AddModel(const std::string& name);

  // Picks the model to serve the next request. FailedPrecondition when
  // no models are registered.
  Result<std::string> SelectModel();

  // Reports the realized loss of a request served by `name`.
  Status ReportLoss(const std::string& name, double loss);

  std::vector<ModelArmStats> Stats() const;
  size_t num_models() const;

 private:
  struct Arm {
    std::string name;
    int64_t pulls = 0;
    double loss_sum = 0.0;
    double log_weight = 0.0;  // exp-weights state, log-domain
  };

  int FindArm(const std::string& name) const;
  // Current exp-weights probabilities (normalized, floored).
  std::vector<double> ExpProbabilities() const;

  ModelSelectorOptions options_;
  mutable std::mutex mu_;
  std::vector<Arm> arms_;
  int64_t total_pulls_ = 0;
  Rng rng_;
};

}  // namespace velox

#endif  // VELOX_CORE_MODEL_SELECTOR_H_
