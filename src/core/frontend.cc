#include "core/frontend.h"

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"

namespace velox {

VeloxFrontend::VeloxFrontend(FrontendOptions options, VeloxServer* server)
    : options_(std::move(options)), server_(server), pool_(options_.num_threads) {
  VELOX_CHECK(server_ != nullptr);
  VELOX_CHECK_GT(options_.topk_k, 0u);
}

VeloxFrontend::~VeloxFrontend() { pool_.Shutdown(); }

Item VeloxFrontend::BuildItem(uint64_t item_id) const {
  if (options_.item_builder) return options_.item_builder(item_id);
  Item item;
  item.id = item_id;
  return item;
}

FrontendResponse VeloxFrontend::Handle(const Request& request) {
  FrontendResponse response;
  Stopwatch watch;
  switch (request.type) {
    case RequestType::kPredict: {
      if (request.items.empty()) {
        response.status = Status::InvalidArgument("predict requires an item");
        break;
      }
      auto r = server_->Predict(request.uid, BuildItem(request.items[0]));
      response.status = r.status();
      if (r.ok()) response.items.push_back(r.value());
      break;
    }
    case RequestType::kTopK: {
      std::vector<Item> candidates;
      candidates.reserve(request.items.size());
      for (uint64_t id : request.items) candidates.push_back(BuildItem(id));
      auto r = server_->TopK(request.uid, candidates, options_.topk_k);
      response.status = r.status();
      if (r.ok()) {
        response.items = r.value().items;
        response.top_is_exploratory = r.value().top_is_exploratory;
      }
      break;
    }
    case RequestType::kObserve: {
      if (request.items.empty()) {
        response.status = Status::InvalidArgument("observe requires an item");
        break;
      }
      response.status =
          server_->Observe(request.uid, BuildItem(request.items[0]), request.label);
      break;
    }
  }
  response.latency_micros = watch.ElapsedMicros();
  RecordOutcome(request.type, response);
  return response;
}

void VeloxFrontend::RecordOutcome(RequestType type,
                                  const FrontendResponse& response) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!response.status.ok()) errors_.fetch_add(1, std::memory_order_relaxed);
  switch (type) {
    case RequestType::kPredict:
      predict_latency_.Record(response.latency_micros);
      break;
    case RequestType::kTopK:
      topk_latency_.Record(response.latency_micros);
      break;
    case RequestType::kObserve:
      observe_latency_.Record(response.latency_micros);
      break;
  }
}

std::vector<FrontendResponse> VeloxFrontend::HandleBatch(
    const std::vector<const Request*>& batch) {
  std::vector<FrontendResponse> out(batch.size());
  if (batch.empty()) return out;

  // Phase 1: one coalesced feature resolve for the union of items the
  // batch's reads will touch. Purely a warm — failures degrade
  // per-request exactly as they would singleton.
  std::vector<std::pair<uint64_t, Item>> reads;
  std::vector<size_t> observes;
  // Predict requests grouped by uid, in batch order, for PredictBatch
  // fusion below.
  std::vector<std::pair<uint64_t, std::vector<size_t>>> predict_groups;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Request& r = *batch[i];
    switch (r.type) {
      case RequestType::kPredict:
        if (!r.items.empty()) {
          reads.emplace_back(r.uid, BuildItem(r.items[0]));
          auto it = std::find_if(predict_groups.begin(), predict_groups.end(),
                                 [&](const auto& g) { return g.first == r.uid; });
          if (it == predict_groups.end()) {
            predict_groups.push_back({r.uid, {i}});
          } else {
            it->second.push_back(i);
          }
        } else {
          out[i].status = Status::InvalidArgument("predict requires an item");
          out[i].latency_micros = 0.0;
          RecordOutcome(r.type, out[i]);
        }
        break;
      case RequestType::kTopK:
        for (uint64_t id : r.items) reads.emplace_back(r.uid, BuildItem(id));
        break;
      case RequestType::kObserve:
        observes.push_back(i);
        break;
    }
  }
  if (reads.size() > 1) server_->WarmReadFeatures(reads);

  // Phase 2: reads. Same-uid predicts fuse through PredictBatch (pinned
  // bit-identical to per-item Predict); everything else runs the
  // ordinary per-request path against the warmed caches.
  for (const auto& [uid, slots] : predict_groups) {
    if (slots.size() < 2) {
      out[slots[0]] = Handle(*batch[slots[0]]);
      continue;
    }
    Stopwatch watch;
    std::vector<Item> items;
    items.reserve(slots.size());
    for (size_t slot : slots) items.push_back(BuildItem(batch[slot]->items[0]));
    auto fused = server_->PredictBatch(uid, items);
    if (!fused.ok()) {
      // Whole-batch error (e.g. one item's definitive NotFound): fall
      // back to per-request execution so one request's failure cannot
      // leak into its batchmates' responses.
      for (size_t slot : slots) out[slot] = Handle(*batch[slot]);
      continue;
    }
    const double share =
        watch.ElapsedMicros() / static_cast<double>(slots.size());
    for (size_t j = 0; j < slots.size(); ++j) {
      out[slots[j]].status = Status::OK();
      out[slots[j]].items.push_back(fused.value()[j]);
      out[slots[j]].latency_micros = share;
      RecordOutcome(RequestType::kPredict, out[slots[j]]);
    }
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i]->type == RequestType::kTopK) out[i] = Handle(*batch[i]);
  }

  // Phase 3: writes, in batch order, inside one WAL group-commit window
  // per node — acks (the returned statuses) only after the sync.
  if (!observes.empty()) {
    Stopwatch watch;
    std::vector<VeloxServer::ObserveOp> ops;
    std::vector<size_t> op_slots;
    ops.reserve(observes.size());
    for (size_t i : observes) {
      const Request& r = *batch[i];
      if (r.items.empty()) {
        out[i].status = Status::InvalidArgument("observe requires an item");
        out[i].latency_micros = 0.0;
        RecordOutcome(r.type, out[i]);
        continue;
      }
      VeloxServer::ObserveOp op;
      op.uid = r.uid;
      op.item = BuildItem(r.items[0]);
      op.label = r.label;
      ops.push_back(std::move(op));
      op_slots.push_back(i);
    }
    std::vector<Status> statuses = server_->ObserveBatch(ops);
    const double share =
        op_slots.empty()
            ? 0.0
            : watch.ElapsedMicros() / static_cast<double>(op_slots.size());
    for (size_t j = 0; j < op_slots.size(); ++j) {
      out[op_slots[j]].status = statuses[j];
      out[op_slots[j]].latency_micros = share;
      RecordOutcome(RequestType::kObserve, out[op_slots[j]]);
    }
  }
  return out;
}

Result<std::vector<TopKResult>> VeloxFrontend::HandleTopKAllBatch(
    const std::vector<uint64_t>& uids) {
  Stopwatch watch;
  auto results = server_->TopKAllBatch(uids, options_.topk_k);
  double elapsed = watch.ElapsedMicros();
  size_t n = std::max<size_t>(1, uids.size());
  requests_.fetch_add(uids.size(), std::memory_order_relaxed);
  if (!results.ok()) {
    errors_.fetch_add(uids.size(), std::memory_order_relaxed);
  } else {
    // Amortized per-user latency: the batch's point is that the shared
    // version/plane work is paid once, which this records.
    for (size_t i = 0; i < uids.size(); ++i) {
      topk_latency_.Record(elapsed / static_cast<double>(n));
    }
  }
  return results;
}

void VeloxFrontend::SubmitAsync(Request request,
                                std::function<void(FrontendResponse)> done) {
  // `done` stays copyable here (not moved into the closure) so a
  // rejected submit can still complete the callback: every SubmitAsync
  // invokes `done` exactly once, shutdown race included.
  bool accepted = pool_.Submit([this, request = std::move(request), done] {
    FrontendResponse response = Handle(request);
    if (done) done(std::move(response));
  });
  if (!accepted) {
    // Pool is shutting down: the request was not enqueued. Answer with
    // a rejection instead of crashing (old behavior) or dropping the
    // callback.
    requests_.fetch_add(1, std::memory_order_relaxed);
    errors_.fetch_add(1, std::memory_order_relaxed);
    if (done) {
      FrontendResponse response;
      response.status = Status::Unavailable("frontend is shutting down");
      done(std::move(response));
    }
  }
}

void VeloxFrontend::Drain() { pool_.WaitIdle(); }

uint64_t VeloxFrontend::requests_served() const {
  return requests_.load(std::memory_order_relaxed);
}

uint64_t VeloxFrontend::errors() const {
  return errors_.load(std::memory_order_relaxed);
}

std::string VeloxFrontend::MetricsReport(MetricsRegistry* registry) const {
  MetricsRegistry scratch;
  MetricsRegistry* target = registry != nullptr ? registry : &scratch;

  const std::pair<const char*, const Histogram*> types[] = {
      {"predict", &predict_latency_},
      {"topk", &topk_latency_},
      {"observe", &observe_latency_},
  };
  for (const auto& [name, histogram] : types) {
    HistogramSnapshot snap = histogram->Snapshot();
    if (snap.count == 0) continue;
    std::string prefix = std::string("frontend.") + name + ".";
    target->GetGauge(prefix + "count")->Set(static_cast<double>(snap.count));
    target->GetGauge(prefix + "mean_us")->Set(snap.mean);
    target->GetGauge(prefix + "p50_us")->Set(snap.p50);
    target->GetGauge(prefix + "p95_us")->Set(snap.p95);
    target->GetGauge(prefix + "p99_us")->Set(snap.p99);
  }
  target->GetGauge("frontend.requests")
      ->Set(static_cast<double>(requests_served()));
  target->GetGauge("frontend.errors")->Set(static_cast<double>(errors()));

  // The server contributes its caches/network/quality series and the
  // per-stage breakdown; one call yields the whole export.
  return server_->MetricsReport(target);
}

}  // namespace velox
