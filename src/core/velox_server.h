// VeloxServer — the whole system, wired per the paper's Figure 2.
//
// One VeloxServer simulates a Velox deployment: a storage cluster
// (Tachyon stand-in) of N nodes, and on every node a co-located model
// predictor (prediction service + feature/prediction caches) and model
// manager shard (user-weight store + online updater). Cluster-wide
// control plane: one model registry, evaluator, retrain scheduler and
// batch job driver.
//
// Request routing (§5): by default requests are routed to the node
// owning the user's weights, so all W reads/writes are local. The
// `route_by_uid=false` ablation serves each request from an arbitrary
// node and charges the proxy round-trip to the user's home node,
// quantifying what the routing policy saves.
#ifndef VELOX_CORE_VELOX_SERVER_H_
#define VELOX_CORE_VELOX_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "batch/job.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/stage_trace.h"
#include "common/result.h"
#include "core/bandit.h"
#include "core/bootstrap.h"
#include "core/evaluator.h"
#include "core/feature_cache.h"
#include "core/model.h"
#include "core/model_registry.h"
#include "core/online_updater.h"
#include "core/prediction_cache.h"
#include "core/prediction_service.h"
#include "core/retrain_scheduler.h"
#include "core/user_weights.h"
#include "storage/snapshot.h"
#include "storage/storage_client.h"
#include "storage/storage_cluster.h"

namespace velox {

struct VeloxServerConfig {
  int32_t num_nodes = 1;
  // Feature/weight dimension d (must match the model's dim()).
  size_t dim = 10;
  double lambda = 0.1;
  UpdateStrategy update_strategy = UpdateStrategy::kShermanMorrison;

  size_t feature_cache_capacity = 1 << 16;
  size_t prediction_cache_capacity = 1 << 18;
  bool use_feature_cache = true;
  bool use_prediction_cache = true;

  // Serve item features from the distributed storage tier (remote
  // fetches through the feature cache) instead of the in-process θ.
  bool distribute_item_features = false;

  // Route requests to the user's home node (§5). Ablation toggle.
  bool route_by_uid = true;

  // Worker threads for sharded full-catalog top-K scans, shared across
  // nodes (the plane is read-only so one pool serves them all). 0 =
  // one per hardware thread (clamped to 8); 1 = always serial.
  size_t topk_scan_threads = 0;

  // ANN candidate generation: when enabled and a registered version's
  // plane has >= ann.min_items rows, the registry builds an IVF(+PQ)
  // index at install time and TopKAll's kAuto serves from it above
  // topk_auto_ann_min_rows filter-adjusted rows. The index build
  // shares the scan pool.
  AnnBuildPolicy ann;
  size_t topk_auto_ann_min_rows = 100000;
  // Lists probed per ANN query; 0 = the index's build-time default.
  size_t ann_nprobe = 0;

  // Bandit policy spec for topK ("greedy", "epsilon_greedy:0.1",
  // "linucb:0.5", "thompson"); empty = greedy, no exploration marking.
  std::string bandit_policy = "linucb:0.5";

  // When > 0, every N-th observe() call checks the staleness signal and
  // retrains synchronously if it fired — the paper's automatic
  // "monitoring ... triggers offline retraining" loop without an
  // operator polling MaybeRetrain(). 0 = manual only.
  int64_t auto_retrain_check_every = 0;

  // Per-node storage clients: retry/backoff, per-op deadlines, hedged
  // replica reads. Benches flip these off for the no-fault-tolerance
  // baseline.
  StorageClientOptions storage_client;
  // Serve bounded degraded answers (stale score / bootstrap mean) when
  // feature resolution fails transiently, instead of erroring requests.
  bool degrade_on_unavailable = true;

  // ---- durability: per-node user-weight journals (storage/snapshot.h) ----
  struct DurabilityOptions {
    // Directory for per-node journal files
    // (<dir>/user_weights_node<N>.wal / .snap). Empty = disabled: the
    // node's serving state lives only in memory, as before.
    std::string dir;
    // Sync policy for every journal append (see storage/wal.h for the
    // precise guarantee each policy gives).
    WalOptions wal;
    // Snapshot a node's weight table every N journal records so
    // recovery replays a bounded suffix; 0 = replay from genesis.
    uint64_t snapshot_every = 4096;
    // Replay the journals during construction (fresh files make this a
    // no-op). Set false to install a model version first and then call
    // RecoverDurability() explicitly — mutations made before that call
    // are NOT journaled, and the replay overwrites them with the
    // journal's state (the pre-crash truth).
    bool recover_on_start = true;
  };
  DurabilityOptions durability;

  OnlineUpdaterOptions updater;
  EvaluatorOptions evaluator;
  RetrainSchedulerOptions retrain;
  StorageClusterOptions storage;
  size_t batch_workers = 2;
  uint64_t seed = 123;
};

// Aggregated cache statistics across nodes.
struct ServerCacheStats {
  CacheStats feature;
  CacheStats prediction;
};

class VeloxServer {
 public:
  // Takes ownership of `model`. The server starts without a model
  // version; call Bootstrap() (offline train on initial data) or
  // InstallVersion() before serving predictions.
  VeloxServer(VeloxServerConfig config, std::unique_ptr<VeloxModel> model);
  ~VeloxServer();

  VeloxServer(const VeloxServer&) = delete;
  VeloxServer& operator=(const VeloxServer&) = delete;

  // Runs the model's offline training on `initial_data` via the batch
  // tier and installs the result as version 1. Also appends
  // `initial_data` to the observation log shards (by uid ownership) so
  // future retrains see it.
  Status Bootstrap(const std::vector<Observation>& initial_data);

  // Installs a pre-trained output directly (no batch job).
  Result<int32_t> InstallVersion(const RetrainOutput& output);

  // ---- Listing 1: the prediction and observation API ----
  Result<ScoredItem> Predict(uint64_t uid, const Item& item);
  // Scores every item for one user in a single request: feature-cache
  // misses across the batch are coalesced into one MultiGet instead of
  // a storage round-trip per item. Results are order-aligned with
  // `items` and bit-identical to per-item Predict.
  Result<std::vector<ScoredItem>> PredictBatch(uint64_t uid,
                                               const std::vector<Item>& items);
  Result<TopKResult> TopK(uint64_t uid, const std::vector<Item>& candidates, size_t k);
  // Greedy top-K over the whole catalog (sharded scan of the
  // materialized θ's scoring plane; see PredictionService::TopKAll).
  // `filter` optionally drops items before scoring (application-level
  // pre-filtering policies, §5).
  // `mode` selects the scan implementation (exact plane scans, or the
  // ANN candidate path when the version carries an index); kAuto picks
  // per the filter-adjusted catalog-size threshold.
  Result<TopKResult> TopKAll(uint64_t uid, size_t k,
                             const PredictionService::ItemFilter& filter = nullptr,
                             PredictionService::TopKAllMode mode =
                                 PredictionService::TopKAllMode::kAuto);
  // Batched full-catalog top-K: amortizes the version/plane lookup
  // across users, grouping uids by home node. Results in input order.
  Result<std::vector<TopKResult>> TopKAllBatch(const std::vector<uint64_t>& uids,
                                               size_t k,
                                               const PredictionService::ItemFilter&
                                                   filter = nullptr,
                                               PredictionService::TopKAllMode mode =
                                                   PredictionService::TopKAllMode::kAuto);
  // ---- load-shed fast path (server plane) ----
  // Degraded answers through the home node's degradation ladder — the
  // exact code path a transient storage fault takes (stale-score board,
  // else bootstrap mean; see PredictionService::ShedAnswer). No storage
  // I/O, no scoring. The admission layer answers shed requests here so
  // overload responses are bit-identical to fault-degraded ones.
  Result<ScoredItem> DegradedPredict(uint64_t uid, uint64_t item_id);
  // Ladder scores for `item_ids` ranked under the same (score desc,
  // item_id asc) total order the exact paths use, truncated to k. Only
  // a bounded prefix (4k candidates) is examined: a shed answer must
  // cost O(k), not O(candidate set), or shedding a large topK would be
  // more expensive than serving it and overload protection would feed
  // the overload.
  Result<TopKResult> DegradedTopK(uint64_t uid, const std::vector<uint64_t>& item_ids,
                                  size_t k);

  Status Observe(uint64_t uid, const Item& item, double label);
  // Observe with provenance from a previous TopK (exploration-sourced
  // observations feed the bandit validation pool).
  Status ObserveWithProvenance(uint64_t uid, const Item& item, double label,
                               bool exploration_sourced);

  // ---- cross-request batching (server plane, DESIGN.md §15) ----
  // Pre-resolves the feature factors a set of cross-request reads will
  // need: (uid, item) pairs are grouped by the uid's home node and each
  // node's union of items resolves through the coalesced batch path —
  // one chunked MultiGet per node in distributed mode, single-flight
  // shared with concurrent requests. Purely a cache warm: failures are
  // ignored (the per-request path re-resolves and degrades as usual),
  // responses stay bit-identical to cold execution.
  void WarmReadFeatures(const std::vector<std::pair<uint64_t, Item>>& reads);

  // One observation in a cross-request write batch.
  struct ObserveOp {
    uint64_t uid = 0;
    Item item;
    double label = 0.0;
    bool exploration_sourced = false;
  };
  // Applies `ops` in order with one WAL group-commit window per
  // involved node journal: every observation's journal append defers
  // its sync and the window's close pays a single policy-appropriate
  // sync (one fdatasync under kFsync) for the whole batch. Statuses are
  // order-aligned with `ops` and identical to calling
  // ObserveWithProvenance per op — except that a failed group sync
  // downgrades that node's acknowledged ops to the sync error, since
  // their durability was never established. Callers must not
  // acknowledge an op before this returns.
  std::vector<Status> ObserveBatch(const std::vector<ObserveOp>& ops);

  // ---- fault tolerance ----
  // Simulates the crash of one serving/storage node. Ownership of its
  // users and item shards remaps to the survivors (consistent-hash
  // ring); user weights are recovered lazily from the replicated
  // `user_weights` storage table on next access (online sufficient
  // statistics restart from the recovered prior). Requires
  // storage.replication_factor > 1 for lossless weight recovery.
  // Lazily-recovered users are journaled on their new node like any
  // other mutation, so a later restart of that node keeps them too.
  Status FailNode(NodeId node);

  // ---- durability recovery ----
  struct DurabilityRecoveryReport {
    // Nodes whose weight table was restored from a snapshot file.
    uint64_t snapshot_restored_nodes = 0;
    // Journal records the snapshots covered (not replayed).
    uint64_t snapshot_covered_records = 0;
    // WAL records replayed through the store's state machine.
    uint64_t replayed_records = 0;
    // Records dropped: torn/undecodable tails or incompatible entries.
    uint64_t skipped_records = 0;
    // False when any node's WAL had a torn tail (bounded loss under
    // kFlush; impossible for acknowledged records under strict kFsync).
    bool clean = true;
  };

  // Restores each node's user-weight state from its journal: load the
  // newest valid snapshot, replay the WAL suffix, then attach the
  // journal so future mutations are logged. Runs automatically at
  // construction when durability.recover_on_start is set; call
  // explicitly (once) otherwise. Time lands in Stage::kRecoveryReplay.
  Result<DurabilityRecoveryReport> RecoverDurability();
  // Report of the recovery this server ran at/after construction.
  const DurabilityRecoveryReport& durability_recovery() const {
    return last_recovery_;
  }
  // A node's journal; null when durability is disabled.
  UserWeightJournal* user_weight_journal(NodeId node) {
    return per_node_[static_cast<size_t>(node)]->journal.get();
  }

  // ---- lifecycle management ----
  Result<bool> MaybeRetrain();
  Result<RetrainReport> RetrainNow();
  // Retrain under an explicit mode (kAuto = drift check decides).
  Result<RetrainReport> Retrain(RetrainMode mode);
  // Nearline incremental refresh of the drifted items only;
  // `refresh_all` forces the select-everything bit-identity path.
  Result<RetrainReport> RetrainIncremental(bool refresh_all = false);
  // Cumulative retrain counters (the `retrain.*` metric source).
  RetrainSchedulerStats RetrainStats() const;
  Status Rollback(int32_t version);
  std::vector<ModelVersionInfo> VersionHistory() const;
  EvaluatorReport QualityReport() const;

  // ---- introspection ----
  // Publishes a consistent snapshot of all server metrics (caches,
  // network, evaluator, versions, users) into `registry` under the
  // "velox.<model>." prefix — including per-stage latency percentiles
  // under "velox.<model>.stage.<name>.*" — and returns its textual
  // report. Passing nullptr uses a private scratch registry
  // (report-only).
  std::string MetricsReport(MetricsRegistry* registry = nullptr) const;

  // ---- per-stage latency breakdown (tentpole observability) ----
  // Cluster-wide view of one stage: every node's histogram merged
  // (bucket counts add exactly, so quantiles are as if all requests
  // hit one node).
  HistogramData StageData(Stage stage) const;
  // Human-readable dump, one line per stage with nonzero samples
  // (reachable from the shell's `stages` command).
  std::string StageReport() const;
  // JSON object keyed by stage name with count/mean/percentiles in
  // microseconds — embedded by benches as the BENCH `stage_breakdown`
  // section.
  std::string StageBreakdownJson() const;
  void ResetStageStats();
  // A node's raw registry (tests/benches).
  StageRegistry* stage_registry(NodeId node) {
    return per_node_[static_cast<size_t>(node)]->stages.get();
  }

  // ANN serving counters summed across every node's prediction service
  // (queries through the candidate path, lists probed, candidate rows
  // seen, rows exactly rescored).
  struct AnnServeStats {
    uint64_t queries = 0;
    uint64_t probes = 0;
    uint64_t candidates = 0;
    uint64_t rescored = 0;
  };
  AnnServeStats AggregatedAnnStats() const;

  ServerCacheStats AggregatedCacheStats() const;
  void ResetCacheStats();
  // Storage fault-handling counters summed across every node's client
  // (retries, hedges, deadline misses, partial writes, backoff nanos).
  StorageClientStats AggregatedStorageStats() const;
  // Degraded answers served across all nodes (predict + observe paths).
  uint64_t DegradedCount() const;
  NetworkStats NetworkStatistics() const { return storage_->network()->stats(); }
  void ResetNetworkStats() { storage_->network()->ResetStats(); }
  size_t TotalUsers() const;
  int32_t current_version() const { return registry_->current_version(); }
  const VeloxServerConfig& config() const { return config_; }

  StorageCluster* storage() { return storage_.get(); }
  Evaluator* evaluator() { return evaluator_.get(); }
  ModelRegistry* registry() { return registry_.get(); }
  const VeloxModel* model() const { return model_.get(); }
  // Direct access to a node's prediction service (benchmarks).
  PredictionService* prediction_service(NodeId node) {
    return per_node_[static_cast<size_t>(node)]->prediction_service.get();
  }
  FeatureCache* feature_cache(NodeId node) {
    return per_node_[static_cast<size_t>(node)]->feature_cache.get();
  }
  UserWeightStore* user_weights(NodeId node) {
    return per_node_[static_cast<size_t>(node)]->weights.get();
  }
  // A node's drift accumulator (tests/benches). Volatile across
  // restarts by contract — see core/incremental_trainer.h.
  ItemDriftTracker* drift_tracker(NodeId node) {
    return per_node_[static_cast<size_t>(node)]->drift.get();
  }

 private:
  struct PerNode {
    std::unique_ptr<StorageClient> client;
    std::unique_ptr<Bootstrapper> bootstrapper;
    // User-weight durability journal (null when disabled). Declared
    // before `weights` so it outlives the store that borrows it.
    std::unique_ptr<UserWeightJournal> journal;
    std::unique_ptr<UserWeightStore> weights;
    std::unique_ptr<FeatureCache> feature_cache;
    std::unique_ptr<PredictionCache> prediction_cache;
    std::unique_ptr<PredictionService> prediction_service;
    std::unique_ptr<OnlineUpdater> updater;
    // Per-node stage-latency sink shared by the predict and observe
    // paths above (both run on this node's threads).
    std::unique_ptr<StageRegistry> stages;
    // Per-item drift accumulation feeding incremental retraining
    // (core/incremental_trainer.h); in-memory only, reset on restart.
    std::unique_ptr<ItemDriftTracker> drift;
  };

  // Home node of a user (ring placement).
  Result<NodeId> HomeNode(uint64_t uid) const;
  // Node that serves this request; equals HomeNode under uid routing,
  // pseudo-random otherwise (with the proxy hop charged).
  Result<NodeId> ServingNode(uint64_t uid, uint64_t approx_payload_bytes);

  VeloxServerConfig config_;
  std::unique_ptr<VeloxModel> model_;
  // Declared before per_node_ so it outlives the prediction services
  // that borrow it.
  std::unique_ptr<ThreadPool> scan_pool_;
  std::unique_ptr<StorageCluster> storage_;
  std::unique_ptr<ModelRegistry> registry_;
  std::unique_ptr<Evaluator> evaluator_;
  std::unique_ptr<JobDriver> driver_;
  std::vector<std::unique_ptr<PerNode>> per_node_;
  std::unique_ptr<RetrainScheduler> scheduler_;
  std::unique_ptr<BanditPolicy> bandit_;
  // Per-call randomness for bandit policies; mutex-free via striping.
  std::vector<std::unique_ptr<Rng>> rngs_;
  std::vector<std::unique_ptr<std::mutex>> rng_mus_;
  std::atomic<uint64_t> request_counter_{0};
  std::atomic<uint64_t> observe_counter_{0};
  bool durability_recovered_ = false;
  DurabilityRecoveryReport last_recovery_;
};

}  // namespace velox

#endif  // VELOX_CORE_VELOX_SERVER_H_
