#include "core/incremental_trainer.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "cluster/router.h"
#include "common/logging.h"
#include "linalg/ridge.h"
#include "ml/feature_function.h"

namespace velox {

ItemDriftTracker::ItemDriftTracker(size_t num_stripes) {
  VELOX_CHECK_GT(num_stripes, 0u);
  stripes_.reserve(num_stripes);
  for (size_t i = 0; i < num_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

ItemDriftTracker::Stripe& ItemDriftTracker::StripeFor(uint64_t item_id) const {
  return *stripes_[HashPartitioner::MixHash(item_id) % stripes_.size()];
}

void ItemDriftTracker::Record(uint64_t item_id, double squared_error) {
  Stripe& stripe = StripeFor(item_id);
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    Cell& cell = stripe.items[item_id];
    ++cell.observations;
    cell.squared_error += squared_error;
  }
  total_observations_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<ItemDriftStat> ItemDriftTracker::Snapshot() const {
  std::vector<ItemDriftStat> stats;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [item_id, cell] : stripe->items) {
      ItemDriftStat stat;
      stat.item_id = item_id;
      stat.observations = cell.observations;
      stat.squared_error = cell.squared_error;
      stats.push_back(stat);
    }
  }
  std::sort(stats.begin(), stats.end(),
            [](const ItemDriftStat& a, const ItemDriftStat& b) {
              return a.item_id < b.item_id;
            });
  return stats;
}

void ItemDriftTracker::ResetItems(const std::vector<uint64_t>& items) {
  for (uint64_t item_id : items) {
    Stripe& stripe = StripeFor(item_id);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.items.find(item_id);
    if (it == stripe.items.end()) continue;
    total_observations_.fetch_sub(it->second.observations,
                                  std::memory_order_relaxed);
    stripe.items.erase(it);
  }
}

void ItemDriftTracker::Clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [item_id, cell] : stripe->items) {
      total_observations_.fetch_sub(cell.observations, std::memory_order_relaxed);
    }
    stripe->items.clear();
  }
}

DriftSelection SelectDriftedItems(const std::vector<ItemDriftStat>& stats,
                                  const IncrementalPolicy& policy,
                                  size_t catalog_items) {
  DriftSelection selection;
  selection.candidates = stats.size();
  selection.catalog_items = catalog_items;
  for (const ItemDriftStat& stat : stats) {
    bool volume = policy.min_observations > 0 &&
                  stat.observations >= policy.min_observations;
    bool error = policy.error_threshold > 0.0 &&
                 stat.observations >= policy.error_min_count &&
                 stat.MeanSquaredError() >= policy.error_threshold;
    if (!volume && !error) continue;
    selection.items.push_back(stat.item_id);
    selection.drifted_observations += stat.observations;
  }
  selection.drift_fraction =
      static_cast<double>(selection.items.size()) /
      static_cast<double>(std::max<size_t>(catalog_items, 1));
  return selection;
}

std::vector<ItemDriftStat> MergeDriftSnapshots(
    const std::vector<const ItemDriftTracker*>& trackers) {
  std::unordered_map<uint64_t, ItemDriftStat> merged;
  for (const ItemDriftTracker* tracker : trackers) {
    if (tracker == nullptr) continue;
    for (const ItemDriftStat& stat : tracker->Snapshot()) {
      ItemDriftStat& cell = merged[stat.item_id];
      cell.item_id = stat.item_id;
      cell.observations += stat.observations;
      cell.squared_error += stat.squared_error;
    }
  }
  std::vector<ItemDriftStat> stats;
  stats.reserve(merged.size());
  for (auto& [item_id, stat] : merged) stats.push_back(stat);
  std::sort(stats.begin(), stats.end(),
            [](const ItemDriftStat& a, const ItemDriftStat& b) {
              return a.item_id < b.item_id;
            });
  return stats;
}

IncrementalTrainer::IncrementalTrainer(const VeloxModel* model) : model_(model) {
  VELOX_CHECK(model_ != nullptr);
}

Result<RetrainOutput> IncrementalTrainer::Refresh(
    BatchExecutor* executor, const std::vector<Observation>& observations,
    const FactorMap& warm_user_weights, const ModelVersion& previous,
    const std::vector<uint64_t>& refresh_items) const {
  if (refresh_items.empty()) {
    return Status::InvalidArgument("no items selected for incremental refresh");
  }
  const auto* previous_table =
      dynamic_cast<const MaterializedFeatureFunction*>(previous.features.get());
  if (previous_table == nullptr) {
    return Status::FailedPrecondition(
        "incremental retrain requires a materialized feature function");
  }

  // Coverage check: a selection spanning every item θ or the log
  // mentions IS a full retrain — run the model's batch procedure over
  // the full log so the output is byte-identical to RetrainNow's, by
  // construction rather than by re-derivation.
  std::unordered_set<uint64_t> selected(refresh_items.begin(), refresh_items.end());
  bool covers_all = true;
  for (const auto& [item_id, factor] : previous_table->table()) {
    if (selected.count(item_id) == 0) {
      covers_all = false;
      break;
    }
  }
  if (covers_all) {
    for (const Observation& obs : observations) {
      if (selected.count(obs.item_id) == 0) {
        covers_all = false;
        break;
      }
    }
  }
  if (covers_all) {
    return model_->Retrain(executor, observations, warm_user_weights);
  }

  // Partial refresh: frozen-basis item-side solve (the Lambda-Learner
  // nearline update). Each drifted item's factor is re-solved by ridge
  // regression against the CURRENT user weights — x_i = (Σ_u w_u w_uᵀ +
  // λ_i I)⁻¹ Σ_u w_u y — never alternating, because alternating over a
  // restricted sub-log would let its user factors wander from the
  // global basis the unrefreshed θ and the serving-time W live in,
  // making the merged model internally inconsistent (measurably worse
  // than not refreshing at all; bench/ablation_incremental.cc).
  const auto* mf = dynamic_cast<const MatrixFactorizationModel*>(model_);
  if (mf == nullptr) {
    return Status::FailedPrecondition(
        "partial incremental refresh supports matrix-factorization models only");
  }
  const AlsConfig& als = mf->als_config();
  const FactorMap* prior_weights = previous.trained_user_weights.get();
  std::unordered_map<uint64_t, RidgeAccumulator> per_item;
  for (const Observation& obs : observations) {
    if (selected.count(obs.item_id) == 0) continue;
    const DenseVector* w = nullptr;
    if (auto it = warm_user_weights.find(obs.uid); it != warm_user_weights.end()) {
      w = &it->second;
    } else if (prior_weights != nullptr) {
      if (auto it = prior_weights->find(obs.uid); it != prior_weights->end()) {
        w = &it->second;
      }
    }
    if (w == nullptr || w->dim() != model_->dim()) continue;  // no basis row
    per_item.try_emplace(obs.item_id, model_->dim())
        .first->second.AddExample(*w, obs.label);
  }
  if (per_item.empty()) {
    return Status::FailedPrecondition(
        "selected items have no logged observations");
  }

  // Merge θ: refreshed factors win; everything else keeps its
  // previous-version factor. A selected item with no usable
  // observations (or a singular system) keeps its old factor too.
  auto merged_factors = std::make_shared<FactorMap>(previous_table->table());
  for (auto& [item_id, acc] : per_item) {
    double reg = als.weighted_regularization
                     ? als.lambda * static_cast<double>(acc.num_examples())
                     : als.lambda;
    auto solved = acc.Solve(reg);
    if (!solved.ok()) continue;
    (*merged_factors)[item_id] = std::move(solved).value();
  }

  // W is untouched: the frozen-basis solve never moves user weights, so
  // the new version inherits the previous trained prior and the
  // post-install log replay rebuilds online state under the merged θ.
  RetrainOutput out;
  if (prior_weights != nullptr) out.user_weights = *prior_weights;
  out.features = std::make_shared<MaterializedFeatureFunction>(
      std::shared_ptr<const FactorMap>(merged_factors), model_->dim());

  // Quality baseline of the *merged* model over the *full* log — the
  // number a full retrain would report had it produced this model, so
  // the evaluator's staleness detection stays calibrated across modes.
  MfModel merged;
  merged.rank = model_->dim();
  merged.user_factors = out.user_weights;
  merged.item_factors = *merged_factors;
  out.training_rmse = MfTrainRmse(merged, observations);
  return out;
}

}  // namespace velox
