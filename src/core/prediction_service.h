// The Velox Model Predictor (paper Figure 2, §5): low-latency point
// predictions and topK over the current model version, through the
// feature and prediction caches.
//
// Per-request flow (Predict):
//   weights  = local user-weight lookup (bootstrapping new users from
//              the mean weight vector),
//   score    = prediction cache hit, or w_uᵀ f(x, θ) with f resolved
//              through the feature cache (a miss either computes the
//              basis or fetches the materialized factor — possibly from
//              a remote node, charged to the simulated network).
//
// TopK scores a candidate set the same way, then lets a bandit policy
// order it (§5: select "the item with max sum of score and
// uncertainty"), reporting whether the top pick was exploratory so the
// manager can route the eventual observation into the validation pool.
#ifndef VELOX_CORE_PREDICTION_SERVICE_H_
#define VELOX_CORE_PREDICTION_SERVICE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/result.h"
#include "core/bandit.h"
#include "core/bootstrap.h"
#include "core/feature_cache.h"
#include "core/model_registry.h"
#include "core/prediction_cache.h"
#include "core/user_weights.h"
#include "ml/feature_function.h"
#include "storage/storage_client.h"

namespace velox {

// How a node resolves f(x, θ) on a feature-cache miss.
class FeatureResolver {
 public:
  // Local mode: evaluate the model version's feature function directly
  // (computational basis, or a node-local materialized table).
  FeatureResolver() = default;

  // Distributed-materialized mode: factors live in a storage table
  // partitioned across the cluster; misses fetch through `client`
  // (charging the simulated network), using the table name recorded
  // for the current model version ("<prefix>_v<version>").
  FeatureResolver(StorageClient* client, std::string table_prefix);

  // Resolves features for `item` under `version`.
  Result<DenseVector> Resolve(const ModelVersion& version, const Item& item) const;

  bool is_distributed() const { return client_ != nullptr; }
  // Table name for a given version (distributed mode).
  std::string TableForVersion(int32_t version) const;

 private:
  StorageClient* client_ = nullptr;
  std::string table_prefix_;
};

// Encodes/decodes factor vectors for the distributed feature table.
Value EncodeFactor(const DenseVector& v);
Result<DenseVector> DecodeFactor(const Value& bytes);

struct ScoredItem {
  uint64_t item_id = 0;
  double score = 0.0;
  double uncertainty = 0.0;
};

struct TopKResult {
  // Best-first, size min(k, candidates).
  std::vector<ScoredItem> items;
  // True when the policy's top pick differs from the greedy argmax —
  // the signal that the eventual observation is exploration-sourced.
  bool top_is_exploratory = false;
  int32_t model_version = 0;
};

struct PredictionServiceOptions {
  bool use_feature_cache = true;
  bool use_prediction_cache = true;
};

class PredictionService {
 public:
  // All dependencies are borrowed and must outlive the service.
  PredictionService(PredictionServiceOptions options, ModelRegistry* registry,
                    UserWeightStore* weights, Bootstrapper* bootstrapper,
                    FeatureCache* feature_cache, PredictionCache* prediction_cache,
                    FeatureResolver resolver);

  // Point prediction for (uid, item) — Listing 1's `predict`.
  Result<ScoredItem> Predict(uint64_t uid, const Item& item);

  // Scores `candidates` and returns the best k under `policy`
  // (greedy when policy is null) — Listing 1's `topK`.
  Result<TopKResult> TopK(uint64_t uid, const std::vector<Item>& candidates, size_t k,
                          const BanditPolicy* policy, Rng* rng);

  // Application-level admission policy for full-catalog topK (paper §5:
  // topK "can be used to support pre-filtering items according to
  // application level policies"). Returns true to keep the item.
  using ItemFilter = std::function<bool(uint64_t item_id)>;

  // Full-catalog greedy top-K over a materialized feature table — the
  // paper's §8 "more efficient top-K support for our linear modeling
  // tasks". Scans θ once with a bounded min-heap (O(|catalog| · d +
  // |catalog| log k) time, O(k) extra space) instead of materializing
  // and ranking a candidate list; bypasses the per-item caches (a
  // whole-catalog scan would only thrash them). Requires the current
  // version's features to be materialized and in-process. `filter`
  // (optional) drops items before scoring.
  Result<TopKResult> TopKAll(uint64_t uid, size_t k,
                             const ItemFilter& filter = nullptr);

  // Resolves features through the cache (shared with the observe path
  // so updates reuse cached features).
  Result<DenseVector> ResolveFeatures(const ModelVersion& version, const Item& item);

  const PredictionServiceOptions& options() const { return options_; }

 private:
  // Score one item for a user; uses/fills both caches.
  Result<double> ScoreItem(const ModelVersion& version, uint64_t uid,
                           uint64_t user_epoch, const DenseVector& weights,
                           const Item& item);

  PredictionServiceOptions options_;
  ModelRegistry* registry_;
  UserWeightStore* weights_;
  Bootstrapper* bootstrapper_;
  FeatureCache* feature_cache_;
  PredictionCache* prediction_cache_;
  FeatureResolver resolver_;
};

}  // namespace velox

#endif  // VELOX_CORE_PREDICTION_SERVICE_H_
