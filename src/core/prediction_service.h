// The Velox Model Predictor (paper Figure 2, §5): low-latency point
// predictions and topK over the current model version, through the
// feature and prediction caches.
//
// Per-request flow (Predict):
//   weights  = local user-weight lookup (bootstrapping new users from
//              the mean weight vector),
//   score    = prediction cache hit, or w_uᵀ f(x, θ) with f resolved
//              through the feature cache (a miss either computes the
//              basis or fetches the materialized factor — possibly from
//              a remote node, charged to the simulated network).
//
// TopK scores a candidate set the same way, then lets a bandit policy
// order it (§5: select "the item with max sum of score and
// uncertainty"), reporting whether the top pick was exploratory so the
// manager can route the eventual observation into the validation pool.
#ifndef VELOX_CORE_PREDICTION_SERVICE_H_
#define VELOX_CORE_PREDICTION_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/lru.h"

#include "common/metrics.h"
#include "common/random.h"
#include "common/result.h"
#include "common/stage_trace.h"
#include "common/thread_pool.h"
#include "core/bandit.h"
#include "core/bootstrap.h"
#include "core/feature_cache.h"
#include "core/model_registry.h"
#include "core/prediction_cache.h"
#include "core/user_weights.h"
#include "ml/feature_function.h"
#include "storage/storage_client.h"

namespace velox {

// How a node resolves f(x, θ) on a feature-cache miss.
class FeatureResolver {
 public:
  // Local mode: evaluate the model version's feature function directly
  // (computational basis, or a node-local materialized table).
  FeatureResolver() = default;

  // Distributed-materialized mode: factors live in a storage table
  // partitioned across the cluster; misses fetch through `client`
  // (charging the simulated network), using the table name recorded
  // for the current model version ("<prefix>_v<version>").
  FeatureResolver(StorageClient* client, std::string table_prefix);

  // Resolves features for `item` under `version`. When `served_remote`
  // is non-null it reports whether the resolution crossed the network
  // (distributed mode, factor served by a non-origin replica).
  // `report`, when non-null, receives the storage op trace (attempts,
  // hedges, simulated backoff) in distributed mode.
  Result<DenseVector> Resolve(const ModelVersion& version, const Item& item,
                              bool* served_remote = nullptr,
                              StorageOpReport* report = nullptr) const;

  // Batched resolve: one Result per item, in input order. Local mode
  // evaluates the feature function per item; distributed mode fetches
  // all keys through StorageClient::MultiGet (chunked to respect the
  // per-op deadline), so a batch of B cold items costs O(nodes)
  // sub-batch round trips instead of B. `served_remote` reports
  // whether any factor crossed the network; `report` accumulates the
  // storage traces (summed backoff/sim nanos, max attempts).
  std::vector<Result<DenseVector>> ResolveBatch(const ModelVersion& version,
                                                const std::vector<Item>& items,
                                                bool* served_remote = nullptr,
                                                StorageOpReport* report = nullptr) const;

  bool is_distributed() const { return client_ != nullptr; }
  // Table name for a given version (distributed mode).
  std::string TableForVersion(int32_t version) const;

 private:
  StorageClient* client_ = nullptr;
  std::string table_prefix_;
};

// Encodes/decodes factor vectors for the distributed feature table.
Value EncodeFactor(const DenseVector& v);
Result<DenseVector> DecodeFactor(const Value& bytes);

struct ScoredItem {
  uint64_t item_id = 0;
  double score = 0.0;
  double uncertainty = 0.0;
  // True when feature resolution ultimately failed and the score is a
  // degraded answer (stale cached score or the bootstrap-mean score)
  // rather than w_u' f(x, theta).
  bool degraded = false;
};

struct TopKResult {
  // Best-first, size min(k, candidates).
  std::vector<ScoredItem> items;
  // True when the policy's top pick differs from the greedy argmax —
  // the signal that the eventual observation is exploration-sourced.
  bool top_is_exploratory = false;
  int32_t model_version = 0;
  // True when any candidate's score is degraded.
  bool degraded = false;
};

struct PredictionServiceOptions {
  bool use_feature_cache = true;
  bool use_prediction_cache = true;
  // Minimum plane rows per shard before a TopKAll scan fans out to the
  // scan pool; below ~this the fan-out overhead beats the win. Tests
  // lower it to exercise the parallel merge on small catalogs.
  size_t topk_min_shard_rows = 4096;
  // Plane scans pre-filter through the float mirror of the plane (half
  // the memory traffic) and rescore the provably-sufficient candidate
  // set in double; the output is bit-identical to the pure-double scan
  // (see MixedPrecisionScan in prediction_service.cc for the bound).
  // Off forces the pure-double streaming scan; planes holding
  // non-finite factors fall back automatically.
  bool topk_mixed_precision = true;
  // TopKAllMode::kAuto switches from the exact plane scan to the
  // ANN candidate path (when the current version carries an index)
  // once the *filter-adjusted* eligible row estimate reaches this many
  // rows; below it the exact scan is already fast and recall is free.
  size_t topk_auto_ann_min_rows = 100000;
  // Lists probed per ANN query; 0 uses the index's build-time default.
  size_t ann_nprobe = 0;
  // Graceful degradation (Clipper-style bounded answers): when feature
  // resolution ultimately fails with a *transient* error (Unavailable —
  // drops, partitions, deadline misses), serve the last known score for
  // the (uid, item) pair, or the bootstrap-mean score when none exists,
  // flagged `degraded` — instead of erroring the request. Definitive
  // errors (NotFound) still propagate.
  bool degrade_on_unavailable = true;
  // Capacity of the stale-score board backing the first degradation
  // rung (last computed score per (uid, item), any epoch/version).
  size_t stale_score_capacity = 1 << 16;
};

class PredictionService {
 public:
  // All dependencies are borrowed and must outlive the service.
  PredictionService(PredictionServiceOptions options, ModelRegistry* registry,
                    UserWeightStore* weights, Bootstrapper* bootstrapper,
                    FeatureCache* feature_cache, PredictionCache* prediction_cache,
                    FeatureResolver resolver);

  // Point prediction for (uid, item) — Listing 1's `predict`.
  Result<ScoredItem> Predict(uint64_t uid, const Item& item);

  // Batched point predictions: one ScoredItem per input item, in input
  // order, bit-identical to calling Predict per item. The win is the
  // storage plane: feature-cache misses across the whole batch are
  // coalesced into one MultiGet (duplicate items fetch once), and
  // concurrent misses for the same (version, item) from other requests
  // share a single in-flight fetch. Degradation applies per item: a
  // transiently-unresolvable item gets a stale/bootstrap-mean score,
  // the rest of the batch gets real scores; definitive errors still
  // fail the request.
  Result<std::vector<ScoredItem>> PredictBatch(uint64_t uid,
                                               const std::vector<Item>& items);

  // Scores `candidates` and returns the best k under `policy`
  // (greedy when policy is null) — Listing 1's `topK`.
  Result<TopKResult> TopK(uint64_t uid, const std::vector<Item>& candidates, size_t k,
                          const BanditPolicy* policy, Rng* rng);

  // Application-level admission policy for full-catalog topK (paper §5:
  // topK "can be used to support pre-filtering items according to
  // application level policies"). Returns true to keep the item.
  using ItemFilter = std::function<bool(uint64_t item_id)>;

  // Which scan implementation TopKAll uses. The exact modes (heap,
  // serial, parallel) return the same items/scores/order (ranking is
  // the total order (score desc, item_id asc), and every path scores
  // with the same kernels), so the non-auto exact modes exist for
  // benchmarking and tests. The ANN modes may return a different item
  // *set* (bounded recall loss), but every item they do return carries
  // the exact double score — candidates are rescored through the same
  // kernels, so scores are bit-identical to the exact path per item.
  enum class TopKAllMode {
    kAuto,           // exact plane scan; ANN above topk_auto_ann_min_rows
                     // when the version carries an index
    kHeapScan,       // legacy per-item walk of the hash-map table
    kPlaneSerial,    // contiguous plane, single thread
    kPlaneParallel,  // contiguous plane, sharded across the scan pool
    kIvf,            // IVF probe, exact rescore of all probed rows
    kIvfPq,          // IVF probe + PQ shortlist, exact rescore
  };

  // Full-catalog greedy top-K — the paper's §8 "more efficient top-K
  // support for our linear modeling tasks". Streams the version's
  // ItemFactorPlane with blocked kernels (linalg/scoring_kernels.h)
  // and a bounded worst-at-top heap: O(|catalog| · d + |catalog| log k)
  // time, O(k) extra space per shard. With a scan pool set, the plane
  // splits into contiguous shards whose per-shard heaps merge with
  // deterministic (score, item_id) tie-breaking, so parallel output is
  // bit-identical to serial. Bypasses the per-item caches (a
  // whole-catalog scan would only thrash them). Requires the current
  // version's features to be materialized and in-process. `filter`
  // (optional) drops items before they enter the heap.
  Result<TopKResult> TopKAll(uint64_t uid, size_t k, const ItemFilter& filter = nullptr,
                             TopKAllMode mode = TopKAllMode::kAuto);

  // Batched TopKAll: one registry/version/plane resolution (and one
  // mode resolution) amortized across all `uids`, reusing the hot
  // plane for every user. Returns one TopKResult per uid, in input
  // order.
  Result<std::vector<TopKResult>> TopKAllBatch(const std::vector<uint64_t>& uids,
                                               size_t k,
                                               const ItemFilter& filter = nullptr,
                                               TopKAllMode mode = TopKAllMode::kAuto);

  // How many shards a plane scan would fan out to for this filter —
  // min(pool threads, eligible rows / topk_min_shard_rows), where
  // eligible rows are *estimated under the filter* (sampled), not the
  // raw plane size: a heavily-filtered scan must not fan out over rows
  // it will mostly skip. Public so tests can pin the policy.
  size_t PlannedScanShards(const ItemFactorPlane& plane, const ItemFilter& filter,
                           bool parallel) const;

  // Thread pool for sharded plane scans (borrowed; may be null for
  // serial scans). Wire at construction time — not thread-safe against
  // concurrent requests.
  void SetScanPool(ThreadPool* pool) { scan_pool_ = pool; }
  ThreadPool* scan_pool() const { return scan_pool_; }

  // Per-node stage-latency sink (borrowed; may be null, in which case
  // request paths skip all clock reads). Wire at construction time.
  void SetStageRegistry(StageRegistry* stages) { stages_ = stages; }
  StageRegistry* stage_registry() const { return stages_; }

  // Resolves features through the cache (shared with the observe path
  // so updates reuse cached features). Returns a shared handle to the
  // immutable cached factor — hits are allocation-free. Concurrent
  // misses for the same (version, item) share one in-flight fetch.
  Result<FeaturePtr> ResolveFeatures(const ModelVersion& version, const Item& item);
  // As above, charging elapsed time to `timer`'s feature-resolve stage
  // (local or remote depending on where the factor was served from).
  Result<FeaturePtr> ResolveFeatures(const ModelVersion& version, const Item& item,
                                     StageTimer& timer);

  // Batch-warms the feature cache for `item_ids` under `version`
  // through the same coalesced resolve path requests use (one chunked
  // MultiGet per batch in distributed mode). Returns how many items
  // resolved successfully. The retrain scheduler's cache warming runs
  // on this.
  size_t WarmFeatures(const ModelVersion& version,
                      const std::vector<uint64_t>& item_ids);
  // As above for fully-built Items (attributes included), so a warm
  // issued on behalf of real requests resolves exactly the features
  // those requests will read. The server plane's cross-request batcher
  // pre-resolves each batch's item union through this.
  size_t WarmFeatures(const ModelVersion& version, const std::vector<Item>& items);

  const PredictionServiceOptions& options() const { return options_; }

  // Degraded answers served so far, split by rung: stale-score board
  // hits vs bootstrap-mean fallbacks.
  uint64_t degraded_count() const {
    return degraded_stale_.load(std::memory_order_relaxed) +
           degraded_mean_.load(std::memory_order_relaxed);
  }
  uint64_t degraded_stale_count() const {
    return degraded_stale_.load(std::memory_order_relaxed);
  }
  uint64_t degraded_mean_count() const {
    return degraded_mean_.load(std::memory_order_relaxed);
  }

  // The bootstrap-mean score: running mean of every successfully
  // computed score (0.0 before any request completes) — the final rung
  // of the degradation ladder. Public so tests can pin degraded answers
  // bit-for-bit.
  double fallback_score() const {
    std::lock_guard<std::mutex> lock(fallback_mu_);
    return score_count_ == 0 ? 0.0 : score_sum_ / static_cast<double>(score_count_);
  }

  // Load-shed answer for (uid, item): the exact degradation ladder the
  // fault path uses (stale-score board, else bootstrap mean), so a
  // request shed by admission control gets a response bit-identical to
  // one degraded by a storage fault. Bumps the same rung counters and
  // records the same kDegradedServe stage; cheap by construction (two
  // map probes, no storage I/O).
  ScoredItem ShedAnswer(uint64_t uid, uint64_t item_id);

  // Miss-coalescer counters. Every feature resolution (single or
  // batched) flows through the coalescer, so keys = items asked,
  // hits = feature-cache hits, merged = duplicate items folded into one
  // fetch within a batch, flight_waits = resolutions that piggybacked
  // on another request's in-flight fetch, fetches = items actually sent
  // to the resolver. Coalescer hit rate = 1 - fetches/keys.
  uint64_t coalesce_keys() const {
    return coalesce_keys_.load(std::memory_order_relaxed);
  }
  uint64_t coalesce_hits() const {
    return coalesce_hits_.load(std::memory_order_relaxed);
  }
  uint64_t coalesce_merged() const {
    return coalesce_merged_.load(std::memory_order_relaxed);
  }
  uint64_t coalesce_flight_waits() const {
    return coalesce_flight_waits_.load(std::memory_order_relaxed);
  }
  uint64_t coalesce_fetches() const {
    return coalesce_fetches_.load(std::memory_order_relaxed);
  }

  // ANN serving counters: queries answered through the candidate path,
  // inverted lists probed, candidate rows seen pre-shortlist, and rows
  // exactly rescored. rescored/queries is the live candidate-set size;
  // candidates vs rescored shows how hard the PQ shortlist prunes.
  uint64_t ann_queries() const { return ann_queries_.load(std::memory_order_relaxed); }
  uint64_t ann_probes() const { return ann_probes_.load(std::memory_order_relaxed); }
  uint64_t ann_candidates() const {
    return ann_candidates_.load(std::memory_order_relaxed);
  }
  uint64_t ann_rescored() const {
    return ann_rescored_.load(std::memory_order_relaxed);
  }

 private:
  // Score one item for a user; uses/fills both caches.
  Result<double> ScoreItem(const ModelVersion& version, uint64_t uid,
                           uint64_t user_epoch, const DenseVector& weights,
                           const Item& item, StageTimer& timer);

  // The miss coalescer: resolves features for every item (one Result
  // per input, in input order, duplicates merged) with one cache probe
  // per unique item, claiming misses in the single-flight table so one
  // fetch per (version, item) is in flight cluster-node-wide, and
  // resolving the claimed keys through FeatureResolver::ResolveBatch
  // (one chunked MultiGet in distributed mode). Losers of a claim race
  // block until the winner completes and share its result.
  std::vector<Result<FeaturePtr>> BatchResolveFeatures(const ModelVersion& version,
                                                       const std::vector<Item>& items,
                                                       StageTimer& timer);

  // The fetch half of the coalescer: `misses` are unique items that
  // already missed the feature cache. Claims each in the single-flight
  // table, resolves the claimed ones in one batched fetch, publishes
  // results (cache + flight), and waits out claims another thread won.
  std::vector<Result<FeaturePtr>> ResolveMisses(const ModelVersion& version,
                                                const std::vector<Item>& misses,
                                                StageTimer& timer);

  // Records a successfully computed score: feeds the running bootstrap
  // mean and the stale-score board (keyed (uid, item), any
  // epoch/version) so later transient failures have something to serve.
  void NoteScore(uint64_t uid, uint64_t item_id, double score);

  // The degradation ladder: last known score for (uid, item) if the
  // stale board has one, else the bootstrap-mean score. Returns the
  // degraded ScoredItem and bumps the matching counter. Callers have
  // already decided the failure is transient.
  ScoredItem DegradedAnswer(uint64_t uid, uint64_t item_id, StageTimer& timer);

  // Scans `plane` for one user's weights; shared by TopKAll and
  // TopKAllBatch. `parallel` shards across scan_pool_ when profitable.
  Result<TopKResult> ScanPlane(const ItemFactorPlane& plane, int32_t model_version,
                               const DenseVector& weights, size_t k,
                               const ItemFilter& filter, bool parallel) const;

  // Estimated rows of `plane` passing `filter` (plane size when filter
  // is null), from a bounded evenly-spaced sample — cheap enough to run
  // per scan, accurate enough for fan-out and mode thresholds.
  static size_t EstimateEligibleRows(const ItemFactorPlane& plane,
                                     const ItemFilter& filter);

  // Resolves kAuto against the version's index, the filter-adjusted
  // catalog size, and k; non-auto modes pass through.
  TopKAllMode ResolveTopKAllMode(const ModelVersion& version,
                                 const ItemFactorPlane& plane, size_t k,
                                 const ItemFilter& filter, TopKAllMode mode) const;

  // ANN candidate path: probe (timed as kAnnCandidateProbe), then
  // exact double rescore of the candidates (kAnnRescore) through the
  // shared kernels — returned scores are bit-identical to the exact
  // scan's for the same items.
  TopKResult AnnScan(const IvfIndex& index, int32_t model_version,
                     const DenseVector& weights, size_t k, const ItemFilter& filter,
                     bool use_pq, StageTimer& timer);

  // One user's TopKAll under an already-resolved mode; shared by
  // TopKAll and TopKAllBatch.
  Result<TopKResult> ExecuteTopKAll(const ModelVersion& version,
                                    const MaterializedFeatureFunction& materialized,
                                    const ItemFactorPlane& plane,
                                    const DenseVector& weights, size_t k,
                                    const ItemFilter& filter, TopKAllMode resolved,
                                    StageTimer& timer);

  PredictionServiceOptions options_;
  ModelRegistry* registry_;
  UserWeightStore* weights_;
  Bootstrapper* bootstrapper_;
  FeatureCache* feature_cache_;
  PredictionCache* prediction_cache_;
  FeatureResolver resolver_;
  ThreadPool* scan_pool_ = nullptr;
  StageRegistry* stages_ = nullptr;

  // Degradation state. The stale board reuses PredictionKey with
  // epoch/version zeroed: unlike the prediction cache, a stale entry is
  // *meant* to survive epoch bumps — that is what makes it stale.
  LruCache<PredictionKey, double, PredictionKeyHash> stale_scores_;
  mutable std::mutex fallback_mu_;
  double score_sum_ = 0.0;
  uint64_t score_count_ = 0;
  std::atomic<uint64_t> degraded_stale_{0};
  std::atomic<uint64_t> degraded_mean_{0};

  // Single-flight table: one Flight per (model version, item id) with a
  // fetch in progress. The claiming thread fetches, publishes into
  // `value`/`status`, erases the entry, and wakes the waiters (who hold
  // their own shared_ptr to the Flight, so erasure is safe). Erasing on
  // completion means a failed fetch is retried by the next request
  // instead of pinning the failure.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool finished = false;
    Status status;
    FeaturePtr value;
  };
  std::mutex flights_mu_;
  std::map<std::pair<int32_t, uint64_t>, std::shared_ptr<Flight>> flights_;

  std::atomic<uint64_t> coalesce_keys_{0};
  std::atomic<uint64_t> coalesce_hits_{0};
  std::atomic<uint64_t> coalesce_merged_{0};
  std::atomic<uint64_t> coalesce_flight_waits_{0};
  std::atomic<uint64_t> coalesce_fetches_{0};

  std::atomic<uint64_t> ann_queries_{0};
  std::atomic<uint64_t> ann_probes_{0};
  std::atomic<uint64_t> ann_candidates_{0};
  std::atomic<uint64_t> ann_rescored_{0};
};

}  // namespace velox

#endif  // VELOX_CORE_PREDICTION_SERVICE_H_
