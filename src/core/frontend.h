// VeloxFrontend — the request-facing layer standing in for the
// prototype's RESTful interface (§8): a thread pool executing Listing 1
// requests against a VeloxServer, with per-request-type latency
// histograms. Examples and closed-loop benchmarks drive the system
// through this class.
#ifndef VELOX_CORE_FRONTEND_H_
#define VELOX_CORE_FRONTEND_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/velox_server.h"
#include "data/workload.h"

namespace velox {

struct FrontendResponse {
  Status status;
  // Scored results: one entry for predict, up to k for topK, empty for
  // observe.
  std::vector<ScoredItem> items;
  // Whether a topK response's head pick was exploratory (echoed back on
  // the matching observe to feed the validation pool).
  bool top_is_exploratory = false;
  // True when the server plane answered this request off the degraded
  // fast path instead of the full pipeline (admission shed). Scores, if
  // any, are degradation-ladder answers; an observe's update was
  // dropped. Items additionally carry per-item `degraded` flags.
  bool shed = false;
  double latency_micros = 0.0;
};

struct FrontendOptions {
  size_t num_threads = 4;
  // k returned by topK requests.
  size_t topk_k = 10;
  // Builds Item.attributes for computational models; default leaves
  // attributes empty (materialized models ignore them).
  std::function<Item(uint64_t item_id)> item_builder;
};

class VeloxFrontend {
 public:
  VeloxFrontend(FrontendOptions options, VeloxServer* server);
  ~VeloxFrontend();

  // Executes one request synchronously on the calling thread.
  FrontendResponse Handle(const Request& request);

  // Executes a cross-request batch (formed by the server plane's
  // dispatcher) in one call, returning one response per request in
  // input order. Responses are bit-identical (status / items / flags)
  // to calling Handle per request; the amortization is invisible to
  // clients:
  //   * the union of items every read touches pre-resolves through one
  //     coalesced batch fetch per node (VeloxServer::WarmReadFeatures),
  //   * predicts from the same uid fuse into one PredictBatch call
  //     (pinned bit-identical to per-item Predict; falls back to
  //     per-request Handle on a whole-batch error so per-request error
  //     isolation survives fusion),
  //   * observes apply in order inside one WAL group-commit window per
  //     node (VeloxServer::ObserveBatch) — one sync per batch, acks
  //     only after it.
  // Fused requests record their amortized latency share (the same
  // convention HandleTopKAllBatch uses); all counters advance exactly
  // as in singleton dispatch.
  std::vector<FrontendResponse> HandleBatch(
      const std::vector<const Request*>& batch);

  // Full-catalog top-K for a batch of users in one call (options_.
  // topk_k items each): the server resolves the model version and
  // scoring plane once and reuses them across the whole batch. Counts
  // one topK request per uid in the latency/throughput stats.
  Result<std::vector<TopKResult>> HandleTopKAllBatch(const std::vector<uint64_t>& uids);

  // Enqueues a request on the pool; `done` runs on a worker thread.
  void SubmitAsync(Request request, std::function<void(FrontendResponse)> done);

  // Blocks until all queued requests finish.
  void Drain();

  HistogramSnapshot PredictLatency() const { return predict_latency_.Snapshot(); }
  HistogramSnapshot TopKLatency() const { return topk_latency_.Snapshot(); }
  HistogramSnapshot ObserveLatency() const { return observe_latency_.Snapshot(); }
  uint64_t requests_served() const;
  uint64_t errors() const;

  // Publishes the frontend's per-request-type latency percentiles
  // (under "frontend.<type>.*") plus the server's full metric set —
  // including the per-stage latency breakdown — into `registry`
  // (nullptr = private scratch) and returns the textual report.
  std::string MetricsReport(MetricsRegistry* registry = nullptr) const;

  // The wrapped server and the options in force — the server plane's
  // acceptor answers shed requests through these (degraded fast path,
  // same k as the real topK handler).
  VeloxServer* server() const { return server_; }
  const FrontendOptions& options() const { return options_; }

 private:
  Item BuildItem(uint64_t item_id) const;

  // Request accounting shared by Handle and the fused batch paths:
  // bumps requests_/errors_ and records `latency_micros` (already set
  // on the response) into the type's latency histogram.
  void RecordOutcome(RequestType type, const FrontendResponse& response);

  FrontendOptions options_;
  VeloxServer* server_;
  ThreadPool pool_;
  Histogram predict_latency_;
  Histogram topk_latency_;
  Histogram observe_latency_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace velox

#endif  // VELOX_CORE_FRONTEND_H_
