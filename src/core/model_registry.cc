#include "core/model_registry.h"

#include "common/clock.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace velox {

ModelRegistry::ModelRegistry(std::string model_name)
    : model_name_(std::move(model_name)) {}

int32_t ModelRegistry::Register(std::shared_ptr<const FeatureFunction> features,
                                std::shared_ptr<const FactorMap> trained_user_weights,
                                double training_rmse) {
  VELOX_CHECK(features != nullptr);
  auto version = std::make_shared<ModelVersion>();
  version->model_name = model_name_;
  version->features = std::move(features);
  // Materialized models carry a prebuilt contiguous scoring plane;
  // attach it so the serving scan needs no per-request discovery.
  if (const auto* materialized = dynamic_cast<const MaterializedFeatureFunction*>(
          version->features.get())) {
    version->item_plane = materialized->plane();
    // Build the ANN candidate index as part of install — outside the
    // registry lock, so readers keep serving the old version while the
    // (potentially long) k-means build runs.
    if (ann_policy_.enabled && version->item_plane != nullptr &&
        version->item_plane->num_items() >= ann_policy_.min_items) {
      version->ann_index =
          IvfIndex::Build(version->item_plane, ann_policy_.index, ann_pool_);
    }
  }
  version->trained_user_weights =
      trained_user_weights != nullptr ? std::move(trained_user_weights)
                                      : std::make_shared<const FactorMap>();
  version->training_rmse = training_rmse;
  version->created_at_nanos = SteadyClock::Default()->NowNanos();

  std::lock_guard<std::mutex> lock(mu_);
  version->version = static_cast<int32_t>(versions_.size()) + 1;
  versions_.push_back(version);
  current_ = version;
  return version->version;
}

Result<std::shared_ptr<const ModelVersion>> ModelRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ == nullptr) {
    return Status::FailedPrecondition("no model version registered for " + model_name_);
  }
  return current_;
}

int32_t ModelRegistry::current_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ == nullptr ? 0 : current_->version;
}

Status ModelRegistry::Rollback(int32_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (version < 1 || static_cast<size_t>(version) > versions_.size()) {
    return Status::NotFound(StrFormat("no version %d for model %s", version,
                                      model_name_.c_str()));
  }
  current_ = versions_[static_cast<size_t>(version) - 1];
  return Status::OK();
}

std::vector<ModelVersionInfo> ModelRegistry::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ModelVersionInfo> out;
  out.reserve(versions_.size());
  for (const auto& v : versions_) {
    ModelVersionInfo info;
    info.version = v->version;
    info.training_rmse = v->training_rmse;
    info.created_at_nanos = v->created_at_nanos;
    info.is_current = (current_ != nullptr && current_->version == v->version);
    out.push_back(info);
  }
  return out;
}

}  // namespace velox
