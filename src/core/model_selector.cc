#include "core/model_selector.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace velox {

ModelSelector::ModelSelector(ModelSelectorOptions options)
    : options_(options), rng_(options.seed) {
  VELOX_CHECK_GT(options_.ucb_exploration, 0.0);
  VELOX_CHECK_GT(options_.exp_learning_rate, 0.0);
  VELOX_CHECK_GE(options_.exp_min_probability, 0.0);
  VELOX_CHECK_LT(options_.exp_min_probability, 1.0);
  VELOX_CHECK_GT(options_.loss_cap, 0.0);
}

Status ModelSelector::AddModel(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("model name must not be empty");
  std::lock_guard<std::mutex> lock(mu_);
  for (const Arm& arm : arms_) {
    if (arm.name == name) return Status::AlreadyExists("model already added: " + name);
  }
  Arm arm;
  arm.name = name;
  arms_.push_back(std::move(arm));
  return Status::OK();
}

int ModelSelector::FindArm(const std::string& name) const {
  for (size_t i = 0; i < arms_.size(); ++i) {
    if (arms_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<double> ModelSelector::ExpProbabilities() const {
  // Softmax over log-weights with a probability floor.
  double max_log = -1e300;
  for (const Arm& arm : arms_) max_log = std::max(max_log, arm.log_weight);
  std::vector<double> probs(arms_.size());
  double norm = 0.0;
  for (size_t i = 0; i < arms_.size(); ++i) {
    probs[i] = std::exp(arms_[i].log_weight - max_log);
    norm += probs[i];
  }
  double floor = options_.exp_min_probability;
  double scale = 1.0 - floor * static_cast<double>(arms_.size());
  // With many arms the floor may not be feasible; fall back to uniform.
  if (scale <= 0.0) {
    std::fill(probs.begin(), probs.end(), 1.0 / static_cast<double>(arms_.size()));
    return probs;
  }
  for (double& p : probs) p = floor + scale * (p / norm);
  return probs;
}

Result<std::string> ModelSelector::SelectModel() {
  std::lock_guard<std::mutex> lock(mu_);
  if (arms_.empty()) return Status::FailedPrecondition("no models registered");

  if (options_.policy == SelectionPolicy::kUcb1) {
    // Pull each arm once first, then optimism over mean reward.
    for (const Arm& arm : arms_) {
      if (arm.pulls == 0) return arm.name;
    }
    size_t best = 0;
    double best_score = -1e300;
    for (size_t i = 0; i < arms_.size(); ++i) {
      const Arm& arm = arms_[i];
      double mean_reward =
          -(arm.loss_sum / static_cast<double>(arm.pulls)) / options_.loss_cap;
      double bonus = std::sqrt(options_.ucb_exploration *
                               std::log(static_cast<double>(total_pulls_ + 1)) /
                               static_cast<double>(arm.pulls));
      double score = mean_reward + bonus;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    return arms_[best].name;
  }

  // Exp-weights: sample from the floored softmax.
  std::vector<double> probs = ExpProbabilities();
  double roll = rng_.UniformDouble();
  double cumulative = 0.0;
  for (size_t i = 0; i < arms_.size(); ++i) {
    cumulative += probs[i];
    if (roll < cumulative) return arms_[i].name;
  }
  return arms_.back().name;  // numerical tail
}

Status ModelSelector::ReportLoss(const std::string& name, double loss) {
  std::lock_guard<std::mutex> lock(mu_);
  int index = FindArm(name);
  if (index < 0) return Status::NotFound("unknown model: " + name);
  Arm& arm = arms_[static_cast<size_t>(index)];
  double clamped = std::clamp(loss, 0.0, options_.loss_cap);
  // Importance-weighted update (EXP3): unbiased reward estimate is
  // reward / P(chosen), so rarely-served arms are not starved by the
  // positive feedback of naive multiplicative weights. Probability is
  // taken at report time — equal to selection-time probability as long
  // as reports follow their selections (the serving pattern).
  double p_chosen = 1.0;
  if (options_.policy == SelectionPolicy::kExpWeights && arms_.size() > 1) {
    p_chosen = std::max(ExpProbabilities()[static_cast<size_t>(index)],
                        options_.exp_min_probability > 0.0
                            ? options_.exp_min_probability
                            : 1e-3);
  }
  ++arm.pulls;
  ++total_pulls_;
  arm.loss_sum += clamped;
  // Reward in [0, 1] is (cap - loss) / cap.
  double reward = (options_.loss_cap - clamped) / options_.loss_cap;
  arm.log_weight += options_.exp_learning_rate * reward / p_chosen;
  // Re-center log-weights to keep them bounded over long streams.
  double max_log = -1e300;
  for (const Arm& a : arms_) max_log = std::max(max_log, a.log_weight);
  if (max_log > 500.0) {
    for (Arm& a : arms_) a.log_weight -= max_log;
  }
  return Status::OK();
}

std::vector<ModelArmStats> ModelSelector::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ModelArmStats> out;
  out.reserve(arms_.size());
  std::vector<double> probs;
  if (!arms_.empty() && options_.policy == SelectionPolicy::kExpWeights) {
    probs = ExpProbabilities();
  }
  for (size_t i = 0; i < arms_.size(); ++i) {
    const Arm& arm = arms_[i];
    ModelArmStats stats;
    stats.name = arm.name;
    stats.pulls = arm.pulls;
    stats.mean_loss =
        arm.pulls == 0 ? 0.0 : arm.loss_sum / static_cast<double>(arm.pulls);
    stats.weight = probs.empty() ? 0.0 : probs[i];
    out.push_back(std::move(stats));
  }
  return out;
}

size_t ModelSelector::num_models() const {
  std::lock_guard<std::mutex> lock(mu_);
  return arms_.size();
}

}  // namespace velox
