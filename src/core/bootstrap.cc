#include "core/bootstrap.h"

#include <utility>

#include "common/logging.h"

namespace velox {

Bootstrapper::Bootstrapper(size_t dim) : sum_(dim) {}

void Bootstrapper::OnUserAdded(const DenseVector& w) {
  std::lock_guard<std::mutex> lock(mu_);
  VELOX_CHECK_EQ(w.dim(), sum_.dim());
  sum_.Axpy(1.0, w);
  ++count_;
}

void Bootstrapper::OnUserUpdated(const DenseVector& old_w, const DenseVector& new_w) {
  std::lock_guard<std::mutex> lock(mu_);
  VELOX_CHECK_EQ(old_w.dim(), sum_.dim());
  VELOX_CHECK_EQ(new_w.dim(), sum_.dim());
  sum_.Axpy(-1.0, old_w);
  sum_.Axpy(1.0, new_w);
}

void Bootstrapper::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sum_.Fill(0.0);
  count_ = 0;
}

DenseVector Bootstrapper::MeanWeights() const {
  std::lock_guard<std::mutex> lock(mu_);
  DenseVector mean = sum_;
  if (count_ > 0) mean.Scale(1.0 / static_cast<double>(count_));
  return mean;
}

int64_t Bootstrapper::num_users() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

DenseVector Bootstrapper::SumWeights() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

void Bootstrapper::RestoreState(DenseVector sum, int64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  VELOX_CHECK_EQ(sum.dim(), sum_.dim());
  sum_ = std::move(sum);
  count_ = count;
}

}  // namespace velox
