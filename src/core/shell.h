// VeloxShell — a command interpreter over a VeloxServer, backing the
// `velox_shell` CLI (tools/velox_shell.cpp). One command in, one
// human-readable response out; all state lives in the underlying
// server, so the interpreter is trivially scriptable and testable.
//
// Commands:
//   train                         bootstrap from the loaded dataset
//   predict <uid> <item>          point prediction (Listing 1)
//   topk <uid> <k> [items...]     ranked items (candidate set or, with
//                                 no items, a full-catalog heap scan)
//   observe <uid> <item> <y>      feedback + online update
//   retrain                       force offline retraining
//   maybe-retrain                 retrain iff the model is stale
//   rollback <version>            switch back to an older version
//   versions                      version history
//   report                        quality report + cache/network stats
//   server                        server-plane admission/queue/shed state
//   save <path> | load <path>     model snapshot to/from disk
//   help                          command list
#ifndef VELOX_CORE_SHELL_H_
#define VELOX_CORE_SHELL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/velox_server.h"
#include "storage/observation_log.h"

namespace velox {

class RequestAcceptor;

class VeloxShell {
 public:
  // `server` is borrowed; `dataset` is the ratings pool `train` uses.
  VeloxShell(VeloxServer* server, std::vector<Observation> dataset);

  // Wires a server plane (borrowed, may be null to detach) so the
  // `server` command can report admission/queue/shed state.
  void AttachServingPlane(RequestAcceptor* acceptor) { acceptor_ = acceptor; }

  // Executes one command line; returns the text to print, or an error
  // Status for malformed/failed commands. Unknown commands are
  // InvalidArgument with a pointer to `help`.
  Result<std::string> Execute(const std::string& line);

  // Help text (also returned by the `help` command).
  static std::string HelpText();

 private:
  Result<std::string> CmdTrain();
  Result<std::string> CmdPredict(const std::vector<std::string>& args);
  Result<std::string> CmdTopK(const std::vector<std::string>& args);
  Result<std::string> CmdObserve(const std::vector<std::string>& args);
  Result<std::string> CmdRetrain(const std::vector<std::string>& args);
  Result<std::string> CmdRollback(const std::vector<std::string>& args);
  Result<std::string> CmdVersions();
  Result<std::string> CmdReport();
  Result<std::string> CmdFail(const std::vector<std::string>& args);
  Result<std::string> CmdSave(const std::vector<std::string>& args);
  Result<std::string> CmdLoad(const std::vector<std::string>& args);

  VeloxServer* server_;
  RequestAcceptor* acceptor_ = nullptr;
  std::vector<Observation> dataset_;
};

}  // namespace velox

#endif  // VELOX_CORE_SHELL_H_
