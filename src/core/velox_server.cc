#include "core/velox_server.h"

#include <sys/stat.h>

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace velox {

VeloxServer::VeloxServer(VeloxServerConfig config, std::unique_ptr<VeloxModel> model)
    : config_(config), model_(std::move(model)) {
  VELOX_CHECK(model_ != nullptr);
  VELOX_CHECK_EQ(config_.dim, model_->dim());
  VELOX_CHECK_GT(config_.num_nodes, 0);
  config_.storage.num_nodes = config_.num_nodes;

  size_t scan_threads = config_.topk_scan_threads;
  if (scan_threads == 0) {
    scan_threads = std::min<size_t>(
        std::max<size_t>(1, std::thread::hardware_concurrency()), 8);
  }
  if (scan_threads > 1) scan_pool_ = std::make_unique<ThreadPool>(scan_threads);

  storage_ = std::make_unique<StorageCluster>(config_.storage);
  VELOX_CHECK_OK(storage_->CreateTable(config_.updater.weights_table));

  registry_ = std::make_unique<ModelRegistry>(model_->name());
  // Index construction happens inside Register(), before a version
  // becomes current, so serving never sees a half-built index.
  registry_->SetAnnBuild(config_.ann, scan_pool_.get());
  evaluator_ = std::make_unique<Evaluator>(config_.evaluator);
  driver_ = std::make_unique<JobDriver>(config_.batch_workers);

  if (!config_.bandit_policy.empty()) {
    bandit_ = MakeBanditPolicy(config_.bandit_policy);
    VELOX_CHECK(bandit_ != nullptr)
        << "unknown bandit policy spec: " << config_.bandit_policy;
  }

  // Create the journal directory if it does not exist yet; a genuinely
  // unusable path still fails below when the journal files open.
  if (!config_.durability.dir.empty()) {
    ::mkdir(config_.durability.dir.c_str(), 0755);
  }

  std::vector<NodeComponents> scheduler_nodes;
  for (int32_t n = 0; n < config_.num_nodes; ++n) {
    auto node = std::make_unique<PerNode>();
    node->client =
        std::make_unique<StorageClient>(storage_.get(), n, config_.storage_client);
    node->bootstrapper = std::make_unique<Bootstrapper>(config_.dim);
    if (!config_.durability.dir.empty()) {
      UserWeightJournalOptions jopts;
      jopts.wal_path = StrFormat("%s/user_weights_node%d.wal",
                                 config_.durability.dir.c_str(), n);
      jopts.snapshot_path = StrFormat("%s/user_weights_node%d.snap",
                                      config_.durability.dir.c_str(), n);
      jopts.wal = config_.durability.wal;
      jopts.snapshot_every = config_.durability.snapshot_every;
      auto journal = UserWeightJournal::Open(std::move(jopts));
      VELOX_CHECK_OK(journal.status());
      node->journal = std::move(journal).value();
    }
    UserWeightStoreOptions wopts;
    wopts.dim = config_.dim;
    wopts.lambda = config_.lambda;
    wopts.strategy = config_.update_strategy;
    node->weights =
        std::make_unique<UserWeightStore>(wopts, node->bootstrapper.get());
    node->feature_cache = std::make_unique<FeatureCache>(config_.feature_cache_capacity);
    node->prediction_cache =
        std::make_unique<PredictionCache>(config_.prediction_cache_capacity);

    PredictionServiceOptions popts;
    popts.use_feature_cache = config_.use_feature_cache;
    popts.use_prediction_cache = config_.use_prediction_cache;
    popts.degrade_on_unavailable = config_.degrade_on_unavailable;
    popts.topk_auto_ann_min_rows = config_.topk_auto_ann_min_rows;
    popts.ann_nprobe = config_.ann_nprobe;
    FeatureResolver resolver =
        config_.distribute_item_features
            ? FeatureResolver(node->client.get(),
                              config_.retrain.feature_table_prefix)
            : FeatureResolver();
    node->prediction_service = std::make_unique<PredictionService>(
        popts, registry_.get(), node->weights.get(), node->bootstrapper.get(),
        node->feature_cache.get(), node->prediction_cache.get(), std::move(resolver));
    node->prediction_service->SetScanPool(scan_pool_.get());

    OnlineUpdaterOptions uopts = config_.updater;
    uopts.degrade_on_unavailable = config_.degrade_on_unavailable;
    node->updater = std::make_unique<OnlineUpdater>(
        uopts, model_.get(), registry_.get(), node->weights.get(),
        node->prediction_service.get(), evaluator_.get(), node->client.get());

    node->stages = std::make_unique<StageRegistry>();
    node->prediction_service->SetStageRegistry(node->stages.get());
    node->updater->SetStageRegistry(node->stages.get());

    // Nearline drift tracking: every successful observe records its
    // squared prequential error here; the scheduler's drift check
    // merges the per-node snapshots.
    node->drift = std::make_unique<ItemDriftTracker>();
    node->updater->SetDriftTracker(node->drift.get());

    // Node-failure recovery: when a remapped user is absent from this
    // node's memory, fetch their last persisted weights from the
    // (replicated) storage tier.
    StorageClient* client = node->client.get();
    std::string weights_table = config_.updater.weights_table;
    node->weights->SetRecoveryFunction(
        [client, weights_table](uint64_t uid) -> std::optional<DenseVector> {
          auto bytes = client->Get(weights_table, uid);
          if (!bytes.ok()) return std::nullopt;
          auto decoded = DecodeFactor(bytes.value());
          if (!decoded.ok()) return std::nullopt;
          return std::move(decoded).value();
        });

    NodeComponents sn;
    sn.node = n;
    sn.weights = node->weights.get();
    sn.feature_cache = node->feature_cache.get();
    sn.prediction_cache = node->prediction_cache.get();
    sn.prediction_service = node->prediction_service.get();
    sn.client = node->client.get();
    sn.drift = node->drift.get();
    scheduler_nodes.push_back(sn);

    per_node_.push_back(std::move(node));

    rngs_.push_back(std::make_unique<Rng>(config_.seed ^ (0x1000 + static_cast<uint64_t>(n))));
    rng_mus_.push_back(std::make_unique<std::mutex>());
  }

  RetrainSchedulerOptions ropts = config_.retrain;
  ropts.distribute_item_features = config_.distribute_item_features;
  // The scheduler persists the retrained W into the same table the
  // updater writes and the failover recovery function reads.
  ropts.user_weights_table = config_.updater.weights_table;
  scheduler_ = std::make_unique<RetrainScheduler>(
      ropts, model_.get(), registry_.get(), evaluator_.get(), driver_.get(),
      storage_.get(), std::move(scheduler_nodes));
  // Retrain control-plane spans (drift_check/incremental_solve) land in
  // node 0's registry — the driver node, where batch jobs are charged.
  scheduler_->SetStageRegistry(per_node_[0]->stages.get());

  if (!config_.durability.dir.empty() && config_.durability.recover_on_start) {
    VELOX_CHECK_OK(RecoverDurability().status());
  }
}

VeloxServer::~VeloxServer() = default;

Status VeloxServer::Bootstrap(const std::vector<Observation>& initial_data) {
  if (initial_data.empty()) {
    return Status::InvalidArgument("bootstrap requires initial observations");
  }
  // Land the initial data in the observation log, placed by uid owner,
  // so future retrains include it; later logical timestamps must come
  // after the historical ones.
  int64_t max_ts = 0;
  for (const Observation& obs : initial_data) {
    VELOX_ASSIGN_OR_RETURN(NodeId owner, storage_->OwnerOf(obs.uid));
    storage_->observation_log(owner)->Append(obs);
    max_ts = std::max(max_ts, obs.timestamp);
  }
  storage_->AdvanceTimestampTo(max_ts);
  VELOX_RETURN_NOT_OK(scheduler_->RetrainNow().status());
  return Status::OK();
}

Result<int32_t> VeloxServer::InstallVersion(const RetrainOutput& output) {
  // Direct installs skip the log replay: callers provide fully-formed
  // user weights (RetrainNow is the replaying path).
  VELOX_ASSIGN_OR_RETURN(RetrainReport report,
                         scheduler_->InstallOutput(output, 0, nullptr));
  return report.new_version;
}

Result<NodeId> VeloxServer::HomeNode(uint64_t uid) const {
  return storage_->OwnerOf(uid);
}

Result<NodeId> VeloxServer::ServingNode(uint64_t uid, uint64_t approx_payload_bytes) {
  VELOX_ASSIGN_OR_RETURN(NodeId home, HomeNode(uid));
  if (config_.route_by_uid || config_.num_nodes == 1) return home;
  // Unrouted serving: an arbitrary node receives the request and
  // proxies to the user's home node; charge the round trip.
  uint64_t r = request_counter_.fetch_add(1, std::memory_order_relaxed);
  NodeId serving = static_cast<NodeId>(HashPartitioner::MixHash(r) %
                                       static_cast<uint64_t>(config_.num_nodes));
  storage_->network()->Charge(serving, home, approx_payload_bytes);
  storage_->network()->Charge(home, serving, approx_payload_bytes);
  return home;  // execution still happens where the data lives
}

Result<ScoredItem> VeloxServer::Predict(uint64_t uid, const Item& item) {
  VELOX_ASSIGN_OR_RETURN(NodeId node, ServingNode(uid, sizeof(uint64_t) * 2));
  return per_node_[static_cast<size_t>(node)]->prediction_service->Predict(uid, item);
}

Result<std::vector<ScoredItem>> VeloxServer::PredictBatch(
    uint64_t uid, const std::vector<Item>& items) {
  VELOX_ASSIGN_OR_RETURN(NodeId node,
                         ServingNode(uid, sizeof(uint64_t) * (1 + items.size())));
  return per_node_[static_cast<size_t>(node)]->prediction_service->PredictBatch(uid,
                                                                                items);
}

Result<TopKResult> VeloxServer::TopK(uint64_t uid, const std::vector<Item>& candidates,
                                     size_t k) {
  VELOX_ASSIGN_OR_RETURN(NodeId node,
                         ServingNode(uid, sizeof(uint64_t) * (1 + candidates.size())));
  Rng* rng = rngs_[static_cast<size_t>(node)].get();
  std::lock_guard<std::mutex> lock(*rng_mus_[static_cast<size_t>(node)]);
  return per_node_[static_cast<size_t>(node)]->prediction_service->TopK(
      uid, candidates, k, bandit_.get(), rng);
}

Result<ScoredItem> VeloxServer::DegradedPredict(uint64_t uid, uint64_t item_id) {
  // Home-node routing without ServingNode: a shed request never enters
  // the serving pipeline, so no proxy traffic is charged.
  VELOX_ASSIGN_OR_RETURN(NodeId node, HomeNode(uid));
  return per_node_[static_cast<size_t>(node)]->prediction_service->ShedAnswer(uid,
                                                                              item_id);
}

Result<TopKResult> VeloxServer::DegradedTopK(uint64_t uid,
                                             const std::vector<uint64_t>& item_ids,
                                             size_t k) {
  VELOX_ASSIGN_OR_RETURN(NodeId node, HomeNode(uid));
  PredictionService* service =
      per_node_[static_cast<size_t>(node)]->prediction_service.get();
  TopKResult result;
  result.model_version = registry_->current_version();
  result.degraded = true;
  // Bounded shed work: examine at most 4k candidates so a degraded
  // answer stays O(k) no matter how large the request's candidate set
  // is (see the header note).
  const size_t examined = std::min(item_ids.size(), 4 * std::max<size_t>(k, 1));
  result.items.reserve(examined);
  for (size_t i = 0; i < examined; ++i) {
    result.items.push_back(service->ShedAnswer(uid, item_ids[i]));
  }
  std::sort(result.items.begin(), result.items.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item_id < b.item_id;
            });
  if (result.items.size() > k) result.items.resize(k);
  return result;
}

Result<TopKResult> VeloxServer::TopKAll(uint64_t uid, size_t k,
                                        const PredictionService::ItemFilter& filter,
                                        PredictionService::TopKAllMode mode) {
  VELOX_ASSIGN_OR_RETURN(NodeId node, ServingNode(uid, sizeof(uint64_t) * 2));
  return per_node_[static_cast<size_t>(node)]->prediction_service->TopKAll(uid, k,
                                                                           filter, mode);
}

Result<std::vector<TopKResult>> VeloxServer::TopKAllBatch(
    const std::vector<uint64_t>& uids, size_t k,
    const PredictionService::ItemFilter& filter,
    PredictionService::TopKAllMode mode) {
  // Group by serving node so each node's service resolves the
  // version/plane once for its whole share of the batch.
  std::vector<std::vector<uint64_t>> node_uids(per_node_.size());
  std::vector<std::vector<size_t>> node_slots(per_node_.size());
  for (size_t i = 0; i < uids.size(); ++i) {
    VELOX_ASSIGN_OR_RETURN(NodeId node, ServingNode(uids[i], sizeof(uint64_t) * 2));
    node_uids[static_cast<size_t>(node)].push_back(uids[i]);
    node_slots[static_cast<size_t>(node)].push_back(i);
  }
  std::vector<TopKResult> results(uids.size());
  for (size_t n = 0; n < per_node_.size(); ++n) {
    if (node_uids[n].empty()) continue;
    VELOX_ASSIGN_OR_RETURN(
        std::vector<TopKResult> node_results,
        per_node_[n]->prediction_service->TopKAllBatch(node_uids[n], k, filter, mode));
    for (size_t j = 0; j < node_results.size(); ++j) {
      results[node_slots[n][j]] = std::move(node_results[j]);
    }
  }
  return results;
}

Status VeloxServer::Observe(uint64_t uid, const Item& item, double label) {
  return ObserveWithProvenance(uid, item, label, /*exploration_sourced=*/false);
}

Status VeloxServer::ObserveWithProvenance(uint64_t uid, const Item& item, double label,
                                          bool exploration_sourced) {
  VELOX_ASSIGN_OR_RETURN(NodeId node, ServingNode(uid, sizeof(uint64_t) * 3));
  VELOX_RETURN_NOT_OK(per_node_[static_cast<size_t>(node)]
                          ->updater->Observe(uid, item, label, exploration_sourced)
                          .status());
  if (config_.auto_retrain_check_every > 0) {
    uint64_t n = observe_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % static_cast<uint64_t>(config_.auto_retrain_check_every) == 0) {
      // The check is cheap; the retrain (if staleness fired) runs
      // synchronously on this observer's thread — the batch tier is a
      // shared resource and RetrainScheduler serializes runs anyway.
      VELOX_RETURN_NOT_OK(scheduler_->MaybeRetrain().status());
    }
  }
  return Status::OK();
}

void VeloxServer::WarmReadFeatures(
    const std::vector<std::pair<uint64_t, Item>>& reads) {
  if (reads.size() < 2) return;  // nothing cross-request to coalesce
  auto version = registry_->Current();
  if (!version.ok()) return;  // no model installed: per-request paths error
  // Group the union of items by the uid's home node (the node whose
  // feature cache the serving path will read: under uid routing the
  // serving node IS the home node, and HomeNode charges no proxy
  // traffic, so warming never perturbs the network accounting).
  std::vector<std::vector<Item>> node_items(per_node_.size());
  std::vector<std::unordered_set<uint64_t>> node_seen(per_node_.size());
  for (const auto& [uid, item] : reads) {
    auto home = HomeNode(uid);
    if (!home.ok()) continue;
    auto n = static_cast<size_t>(home.value());
    if (node_seen[n].insert(item.id).second) node_items[n].push_back(item);
  }
  for (size_t n = 0; n < per_node_.size(); ++n) {
    if (node_items[n].size() < 2) continue;  // a single item warms itself
    per_node_[n]->prediction_service->WarmFeatures(*version.value(),
                                                   node_items[n]);
  }
}

std::vector<Status> VeloxServer::ObserveBatch(const std::vector<ObserveOp>& ops) {
  std::vector<Status> out(ops.size(), Status::OK());
  // Open one group-commit window per involved node journal before any
  // update lands, so every op's WAL append defers its sync.
  std::vector<NodeId> op_node(ops.size(), NodeId(-1));
  std::vector<bool> open(per_node_.size(), false);
  for (size_t i = 0; i < ops.size(); ++i) {
    auto home = HomeNode(ops[i].uid);
    if (!home.ok()) continue;
    op_node[i] = home.value();
    auto n = static_cast<size_t>(home.value());
    if (!open[n] && per_node_[n]->journal != nullptr) {
      per_node_[n]->journal->BeginGroupCommit();
      open[n] = true;
    }
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    out[i] = ObserveWithProvenance(ops[i].uid, ops[i].item, ops[i].label,
                                   ops[i].exploration_sourced);
  }
  for (size_t n = 0; n < per_node_.size(); ++n) {
    if (!open[n]) continue;
    Status sync = per_node_[n]->journal->EndGroupCommit();
    if (sync.ok()) continue;
    // The window's sync failed: ops acknowledged inside it were never
    // made durable, so their OK statuses are a lie — downgrade them.
    for (size_t i = 0; i < ops.size(); ++i) {
      if (op_node[i] == static_cast<NodeId>(n) && out[i].ok()) out[i] = sync;
    }
  }
  return out;
}

Result<VeloxServer::DurabilityRecoveryReport> VeloxServer::RecoverDurability() {
  if (config_.durability.dir.empty()) {
    return Status::FailedPrecondition("durability is not configured");
  }
  if (durability_recovered_) {
    return Status::FailedPrecondition("durability already recovered");
  }
  durability_recovered_ = true;

  DurabilityRecoveryReport report;
  for (auto& node : per_node_) {
    if (node->journal == nullptr) continue;
    StageTimer timer(node->stages.get());
    StageTimer::Scope span(timer, Stage::kRecoveryReplay);

    UserWeightRecovery recovered = node->journal->TakeRecovered();
    if (!recovered.wal_clean) report.clean = false;
    if (recovered.snapshot_loaded) {
      Status restored = node->weights->RestoreState(recovered.snapshot_state);
      if (!restored.ok()) {
        // A CRC-valid snapshot that the store rejects means the server
        // was reconfigured (dim/strategy) against old journal files —
        // surface it instead of silently serving a partial state.
        return restored;
      }
      ++report.snapshot_restored_nodes;
      report.snapshot_covered_records += recovered.snapshot_covers;
    }
    for (const UserWeightWalRecord& record : recovered.suffix) {
      Status applied = node->weights->ApplyWalRecord(record);
      if (applied.ok()) {
        ++report.replayed_records;
      } else {
        // Incompatible record (e.g. dimension change between runs):
        // skip it rather than abort recovery; the count is surfaced.
        ++report.skipped_records;
      }
    }
    report.skipped_records += recovered.undecodable;

    // Attach only after replay: the replayed records are already in the
    // log and must not be re-journaled.
    node->weights->AttachJournal(node->journal.get());
  }
  last_recovery_ = report;
  return report;
}

Status VeloxServer::FailNode(NodeId node) {
  if (node < 0 || node >= config_.num_nodes) {
    return Status::InvalidArgument("no such node");
  }
  return storage_->FailNode(node);
}

Result<bool> VeloxServer::MaybeRetrain() { return scheduler_->MaybeRetrain(); }

Result<RetrainReport> VeloxServer::RetrainNow() { return scheduler_->RetrainNow(); }

Result<RetrainReport> VeloxServer::Retrain(RetrainMode mode) {
  return scheduler_->Retrain(mode);
}

Result<RetrainReport> VeloxServer::RetrainIncremental(bool refresh_all) {
  return scheduler_->RetrainIncremental(refresh_all);
}

RetrainSchedulerStats VeloxServer::RetrainStats() const {
  return scheduler_->stats();
}

Status VeloxServer::Rollback(int32_t version) { return scheduler_->Rollback(version); }

std::vector<ModelVersionInfo> VeloxServer::VersionHistory() const {
  return registry_->History();
}

EvaluatorReport VeloxServer::QualityReport() const { return evaluator_->Report(); }

std::string VeloxServer::MetricsReport(MetricsRegistry* registry) const {
  MetricsRegistry scratch;
  MetricsRegistry* target = registry != nullptr ? registry : &scratch;
  std::string prefix = "velox." + model_->name() + ".";

  ServerCacheStats caches = AggregatedCacheStats();
  target->GetGauge(prefix + "feature_cache.hit_rate")->Set(caches.feature.HitRate());
  target->GetCounter(prefix + "feature_cache.hits")->Reset();
  target->GetCounter(prefix + "feature_cache.hits")->Increment(caches.feature.hits);
  target->GetCounter(prefix + "feature_cache.misses")->Reset();
  target->GetCounter(prefix + "feature_cache.misses")->Increment(caches.feature.misses);
  target->GetGauge(prefix + "prediction_cache.hit_rate")
      ->Set(caches.prediction.HitRate());
  target->GetGauge(prefix + "prediction_cache.entries")
      ->Set(static_cast<double>(caches.prediction.entries));

  NetworkStats net = storage_->network()->stats();
  target->GetGauge(prefix + "network.remote_fraction")->Set(net.RemoteFraction());
  target->GetCounter(prefix + "network.remote_messages")->Reset();
  target->GetCounter(prefix + "network.remote_messages")
      ->Increment(net.remote_messages);
  target->GetCounter(prefix + "network.local_messages")->Reset();
  target->GetCounter(prefix + "network.local_messages")->Increment(net.local_messages);
  target->GetCounter(prefix + "network.dropped_messages")->Reset();
  target->GetCounter(prefix + "network.dropped_messages")
      ->Increment(net.dropped_messages);
  target->GetCounter(prefix + "network.timed_out_messages")->Reset();
  target->GetCounter(prefix + "network.timed_out_messages")
      ->Increment(net.timed_out_messages);

  // Storage fault handling: how hard the clients had to work, and how
  // often the serving path fell back to a degraded answer.
  StorageClientStats sc = AggregatedStorageStats();
  auto set_counter = [&](const std::string& name, uint64_t v) {
    Counter* c = target->GetCounter(prefix + name);
    c->Reset();
    c->Increment(v);
  };
  set_counter("storage.retries", sc.retries);
  set_counter("storage.hedged_reads", sc.hedged_reads);
  set_counter("storage.hedge_wins", sc.hedge_wins);
  set_counter("storage.deadline_misses", sc.deadline_misses);
  set_counter("storage.failovers", sc.failovers);
  set_counter("storage.partial_writes", sc.partial_writes);
  set_counter("storage.multiget.batches", sc.multiget_batches);
  set_counter("storage.multiget.keys", sc.multiget_keys);
  set_counter("storage.multiget.sub_batches", sc.multiget_sub_batches);
  set_counter("storage.multiget.merged_misses", sc.multiget_merged_misses);
  set_counter("storage.multiput.batches", sc.multiput_batches);
  set_counter("storage.multiput.keys", sc.multiput_keys);
  set_counter("storage.multiput.sub_batches", sc.multiput_sub_batches);
  set_counter("network.batched_messages", net.batched_messages);
  set_counter("network.batched_keys", net.batched_keys);
  target->GetGauge(prefix + "storage.backoff_nanos")
      ->Set(static_cast<double>(sc.backoff_nanos));
  set_counter("storage.degraded", DegradedCount());

  // User-weight durability: journal volume and what the last recovery
  // actually did (snapshot restore vs. WAL replay).
  if (!config_.durability.dir.empty()) {
    uint64_t appends = 0, records = 0, snapshots = 0;
    for (const auto& node : per_node_) {
      if (node->journal == nullptr) continue;
      appends += node->journal->appends();
      records += node->journal->records();
      snapshots += node->journal->snapshots_written();
    }
    set_counter("wal.appends", appends);
    set_counter("wal.records", records);
    set_counter("wal.snapshots", snapshots);
    set_counter("recovery.replayed_records", last_recovery_.replayed_records);
    set_counter("recovery.snapshot_covered", last_recovery_.snapshot_covered_records);
    set_counter("recovery.skipped_records", last_recovery_.skipped_records);
    target->GetGauge(prefix + "recovery.clean")
        ->Set(last_recovery_.clean ? 1.0 : 0.0);
  }

  // ANN candidate path: live candidate-set sizes and whether kAuto
  // currently routes full-catalog topK through the index.
  AnnServeStats ann = AggregatedAnnStats();
  set_counter("ann.queries", ann.queries);
  set_counter("ann.probes", ann.probes);
  set_counter("ann.candidates", ann.candidates);
  set_counter("ann.rescored", ann.rescored);
  double recall_mode = 0.0;
  if (auto current = registry_->Current(); current.ok()) {
    const ModelVersion& v = *current.value();
    recall_mode = (v.ann_index != nullptr && v.item_plane != nullptr &&
                   v.item_plane->num_items() >= config_.topk_auto_ann_min_rows)
                      ? 1.0
                      : 0.0;
  }
  target->GetGauge(prefix + "ann.recall_mode")->Set(recall_mode);

  // Retrain plane: how the model versions are being produced (batch vs
  // nearline incremental) and the live pending drift mass.
  RetrainSchedulerStats rs = scheduler_->stats();
  set_counter("retrain.full_runs", rs.full_retrains);
  set_counter("retrain.incremental_runs", rs.incremental_retrains);
  set_counter("retrain.auto_escalations", rs.auto_escalations);
  set_counter("retrain.items_refreshed", rs.items_refreshed);
  target->GetGauge(prefix + "retrain.drift_candidates")
      ->Set(static_cast<double>(rs.last_drift_candidates));
  target->GetGauge(prefix + "retrain.drift_fraction")->Set(rs.last_drift_fraction);
  int64_t pending_drift = 0;
  for (const auto& node : per_node_) {
    if (node->drift != nullptr) pending_drift += node->drift->total_observations();
  }
  target->GetGauge(prefix + "retrain.pending_drift_observations")
      ->Set(static_cast<double>(pending_drift));

  EvaluatorReport quality = evaluator_->Report();
  target->GetGauge(prefix + "quality.mean_online_loss")->Set(quality.mean_online_loss);
  target->GetGauge(prefix + "quality.ewma_heldout_loss")->Set(quality.ewma_loss);
  target->GetGauge(prefix + "quality.stale")->Set(quality.stale ? 1.0 : 0.0);
  target->GetGauge(prefix + "quality.validation_pool")
      ->Set(static_cast<double>(quality.validation_pool_size));

  target->GetGauge(prefix + "model.version")
      ->Set(static_cast<double>(registry_->current_version()));
  target->GetGauge(prefix + "model.versions_total")
      ->Set(static_cast<double>(registry_->History().size()));
  target->GetGauge(prefix + "users.total")->Set(static_cast<double>(TotalUsers()));

  // Per-stage latency breakdown, merged across nodes. Only stages that
  // saw traffic are published, so reports stay compact.
  for (int s = 0; s < kNumStages; ++s) {
    Stage stage = static_cast<Stage>(s);
    HistogramSnapshot snap = StageData(stage).Summarize();
    if (snap.count == 0) continue;
    std::string sp = prefix + "stage." + StageName(stage) + ".";
    target->GetGauge(sp + "count")->Set(static_cast<double>(snap.count));
    target->GetGauge(sp + "mean_us")->Set(snap.mean);
    target->GetGauge(sp + "p50_us")->Set(snap.p50);
    target->GetGauge(sp + "p95_us")->Set(snap.p95);
    target->GetGauge(sp + "p99_us")->Set(snap.p99);
    target->GetGauge(sp + "max_us")->Set(snap.max);
  }

  return target->Report();
}

HistogramData VeloxServer::StageData(Stage stage) const {
  HistogramData merged;
  for (const auto& node : per_node_) merged.Merge(node->stages->Data(stage));
  return merged;
}

std::string VeloxServer::StageReport() const {
  std::ostringstream os;
  os << "stage breakdown (" << per_node_.size() << " node(s), micros per request)\n";
  bool any = false;
  for (int s = 0; s < kNumStages; ++s) {
    Stage stage = static_cast<Stage>(s);
    HistogramSnapshot snap = StageData(stage).Summarize();
    if (snap.count == 0) continue;
    any = true;
    os << "  " << StageName(stage) << " " << snap.ToString() << "\n";
  }
  if (!any) os << "  (no traced requests yet)\n";
  AnnServeStats ann = AggregatedAnnStats();
  if (ann.queries > 0) {
    os << "  ann: queries=" << ann.queries << " probes=" << ann.probes
       << " candidates=" << ann.candidates << " rescored=" << ann.rescored
       << " (avg " << (ann.rescored / ann.queries) << " rescored/query)\n";
  }
  return os.str();
}

VeloxServer::AnnServeStats VeloxServer::AggregatedAnnStats() const {
  AnnServeStats agg;
  for (const auto& node : per_node_) {
    agg.queries += node->prediction_service->ann_queries();
    agg.probes += node->prediction_service->ann_probes();
    agg.candidates += node->prediction_service->ann_candidates();
    agg.rescored += node->prediction_service->ann_rescored();
  }
  return agg;
}

std::string VeloxServer::StageBreakdownJson() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (int s = 0; s < kNumStages; ++s) {
    Stage stage = static_cast<Stage>(s);
    HistogramSnapshot snap = StageData(stage).Summarize();
    if (snap.count == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "\"" << StageName(stage) << "\": {\"count\": " << snap.count
       << ", \"mean_us\": " << snap.mean << ", \"p50_us\": " << snap.p50
       << ", \"p95_us\": " << snap.p95 << ", \"p99_us\": " << snap.p99
       << ", \"max_us\": " << snap.max << "}";
  }
  os << "}";
  return os.str();
}

void VeloxServer::ResetStageStats() {
  for (const auto& node : per_node_) node->stages->ResetStats();
}

ServerCacheStats VeloxServer::AggregatedCacheStats() const {
  ServerCacheStats agg;
  for (const auto& node : per_node_) {
    CacheStats f = node->feature_cache->stats();
    agg.feature.hits += f.hits;
    agg.feature.misses += f.misses;
    agg.feature.evictions += f.evictions;
    agg.feature.invalidations += f.invalidations;
    agg.feature.entries += f.entries;
    CacheStats p = node->prediction_cache->stats();
    agg.prediction.hits += p.hits;
    agg.prediction.misses += p.misses;
    agg.prediction.evictions += p.evictions;
    agg.prediction.invalidations += p.invalidations;
    agg.prediction.entries += p.entries;
  }
  return agg;
}

StorageClientStats VeloxServer::AggregatedStorageStats() const {
  StorageClientStats agg;
  for (const auto& node : per_node_) {
    StorageClientStats s = node->client->stats();
    agg.retries += s.retries;
    agg.hedged_reads += s.hedged_reads;
    agg.hedge_wins += s.hedge_wins;
    agg.deadline_misses += s.deadline_misses;
    agg.failovers += s.failovers;
    agg.partial_writes += s.partial_writes;
    agg.backoff_nanos += s.backoff_nanos;
    agg.multiget_batches += s.multiget_batches;
    agg.multiget_keys += s.multiget_keys;
    agg.multiget_sub_batches += s.multiget_sub_batches;
    agg.multiget_merged_misses += s.multiget_merged_misses;
    agg.multiput_batches += s.multiput_batches;
    agg.multiput_keys += s.multiput_keys;
    agg.multiput_sub_batches += s.multiput_sub_batches;
  }
  return agg;
}

uint64_t VeloxServer::DegradedCount() const {
  uint64_t total = 0;
  for (const auto& node : per_node_) {
    total += node->prediction_service->degraded_count();
    total += node->updater->degraded_count();
  }
  return total;
}

void VeloxServer::ResetCacheStats() {
  for (const auto& node : per_node_) {
    node->feature_cache->ResetStats();
    node->prediction_cache->ResetStats();
  }
}

size_t VeloxServer::TotalUsers() const {
  size_t total = 0;
  for (const auto& node : per_node_) total += node->weights->num_users();
  return total;
}

}  // namespace velox
