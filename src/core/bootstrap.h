// New-user bootstrapping (paper §5 "Bootstrapping"): "new users are
// assigned a recent estimate of the average of the existing user
// weight vectors", which "corresponds to predicting the average score
// for all users".
//
// Bootstrapper maintains that running mean incrementally: the weight
// store reports each user's old and new vector on every change, so the
// mean stays exact without periodic O(|users| · d) rescans.
#ifndef VELOX_CORE_BOOTSTRAP_H_
#define VELOX_CORE_BOOTSTRAP_H_

#include <cstdint>
#include <mutex>

#include "linalg/vector.h"

namespace velox {

class Bootstrapper {
 public:
  explicit Bootstrapper(size_t dim);

  // A brand-new user entered with weights `w`.
  void OnUserAdded(const DenseVector& w);
  // An existing user's weights changed old -> current.
  void OnUserUpdated(const DenseVector& old_w, const DenseVector& new_w);
  // Drops all state (model-version swap re-seeds from the new W).
  void Reset();

  // Mean of current user weights; the zero vector when no users exist
  // (predicting 0 — no information).
  DenseVector MeanWeights() const;
  int64_t num_users() const;

  // Raw running sum — exported into user-weight snapshots so a restored
  // node's cold-start mean is bit-identical to the original's.
  DenseVector SumWeights() const;
  // Overwrites the running state from a snapshot.
  void RestoreState(DenseVector sum, int64_t count);

 private:
  mutable std::mutex mu_;
  DenseVector sum_;
  int64_t count_ = 0;
};

}  // namespace velox

#endif  // VELOX_CORE_BOOTSTRAP_H_
