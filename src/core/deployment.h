// VeloxDeployment — multi-model serving, the full Listing 1 surface.
//
// The paper's front-end API takes a model schema as its first argument
// (`predict(s: ModelSchema, uid: UUID, x: Data)`), and §2.1 motivates
// it: "an advertising service may run a series of ad campaigns, each
// with separate models over the same set of users". A deployment hosts
// any number of named models — each an independently versioned,
// independently monitored VeloxServer — behind one dispatch surface.
#ifndef VELOX_CORE_DEPLOYMENT_H_
#define VELOX_CORE_DEPLOYMENT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/velox_server.h"

namespace velox {

struct ModelSummary {
  std::string name;
  int32_t current_version = 0;
  size_t users = 0;
  bool stale = false;
};

class VeloxDeployment {
 public:
  VeloxDeployment() = default;
  VeloxDeployment(const VeloxDeployment&) = delete;
  VeloxDeployment& operator=(const VeloxDeployment&) = delete;

  // Registers a model under `model->name()`; fails on duplicates. The
  // returned server pointer stays valid for the deployment's lifetime
  // and can be used for model-specific administration (Bootstrap,
  // Rollback, ...).
  Result<VeloxServer*> AddModel(VeloxServerConfig config,
                                std::unique_ptr<VeloxModel> model);

  // Removes a model from serving.
  Status RemoveModel(const std::string& name);

  Result<VeloxServer*> GetModel(const std::string& name) const;
  std::vector<ModelSummary> ListModels() const;
  size_t num_models() const;

  // ---- Listing 1, schema-qualified ----
  Result<ScoredItem> Predict(const std::string& model, uint64_t uid, const Item& x);
  Result<TopKResult> TopK(const std::string& model, uint64_t uid,
                          const std::vector<Item>& candidates, size_t k);
  Status Observe(const std::string& model, uint64_t uid, const Item& x, double y);

  // Runs MaybeRetrain on every model; returns the names that retrained.
  Result<std::vector<std::string>> MaybeRetrainAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<VeloxServer>> models_;
};

}  // namespace velox

#endif  // VELOX_CORE_DEPLOYMENT_H_
