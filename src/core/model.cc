#include "core/model.h"

#include <cmath>
#include <mutex>

#include "batch/dataset.h"
#include "common/logging.h"
#include "linalg/ridge.h"

namespace velox {

double VeloxModel::Loss(double label, double predicted, const Item& /*x*/,
                        uint64_t /*uid*/) const {
  double e = label - predicted;
  return 0.5 * e * e;
}

MatrixFactorizationModel::MatrixFactorizationModel(std::string name,
                                                   AlsConfig als_config)
    : name_(std::move(name)), trainer_(TrainerKind::kAls), als_config_(als_config) {
  // Start with an empty materialized table; training installs the real
  // one. Predictions before training return NotFound per item, which
  // the serving tier surfaces.
  auto empty = std::make_shared<const FactorMap>();
  features_ = std::make_shared<MaterializedFeatureFunction>(empty, als_config_.rank);
}

MatrixFactorizationModel::MatrixFactorizationModel(std::string name,
                                                   SgdConfig sgd_config)
    : name_(std::move(name)), trainer_(TrainerKind::kSgd), sgd_config_(sgd_config) {
  // dim() reads als_config_.rank; keep both configs rank-consistent.
  als_config_.rank = sgd_config_.rank;
  als_config_.lambda = sgd_config_.lambda;
  auto empty = std::make_shared<const FactorMap>();
  features_ = std::make_shared<MaterializedFeatureFunction>(empty, sgd_config_.rank);
}

std::shared_ptr<const FeatureFunction> MatrixFactorizationModel::features() const {
  return features_;
}

void MatrixFactorizationModel::InstallItemFactors(
    std::shared_ptr<const FactorMap> item_factors) {
  VELOX_CHECK(item_factors != nullptr);
  features_ =
      std::make_shared<MaterializedFeatureFunction>(std::move(item_factors),
                                                    als_config_.rank);
}

Result<RetrainOutput> MatrixFactorizationModel::Retrain(
    BatchExecutor* executor, const std::vector<Observation>& observations,
    const FactorMap& current_user_weights) const {
  MfModel warm;
  warm.rank = als_config_.rank;
  warm.lambda = als_config_.lambda;
  warm.user_factors = current_user_weights;
  MfModel trained;
  if (trainer_ == TrainerKind::kAls) {
    AlsTrainer trainer(als_config_);
    VELOX_ASSIGN_OR_RETURN(trained,
                           trainer.TrainWarmStart(executor, observations, warm));
  } else {
    SgdTrainer trainer(sgd_config_);
    VELOX_ASSIGN_OR_RETURN(trained, trainer.TrainWarmStart(observations, warm));
  }
  RetrainOutput out;
  out.training_rmse = MfTrainRmse(trained, observations);
  auto table = std::make_shared<FactorMap>(std::move(trained.item_factors));
  out.features = std::make_shared<MaterializedFeatureFunction>(
      std::shared_ptr<const FactorMap>(table), als_config_.rank);
  out.user_weights = std::move(trained.user_factors);
  return out;
}

ComputationalModel::ComputationalModel(
    std::string name, std::shared_ptr<const FeatureFunction> basis,
    std::shared_ptr<const std::unordered_map<uint64_t, Item>> item_catalog,
    double lambda)
    : name_(std::move(name)),
      basis_(std::move(basis)),
      item_catalog_(std::move(item_catalog)),
      lambda_(lambda) {
  VELOX_CHECK(basis_ != nullptr);
  VELOX_CHECK(item_catalog_ != nullptr);
  VELOX_CHECK_GT(lambda_, 0.0);
}

Result<RetrainOutput> ComputationalModel::Retrain(
    BatchExecutor* executor, const std::vector<Observation>& observations,
    const FactorMap& /*current_user_weights*/) const {
  if (executor == nullptr) return Status::InvalidArgument("executor is null");
  if (observations.empty()) return Status::InvalidArgument("no observations");

  // Group the log by user and ridge-solve each user's weights against
  // the fixed basis — one batch stage, users independent.
  auto data = Dataset<Observation>::Parallelize(executor, observations, 8);
  auto by_user = data.GroupBy<uint64_t>([](const Observation& o) { return o.uid; });

  FactorMap weights;
  std::mutex mu;
  double total_sq = 0.0;
  size_t total_n = 0;
  std::vector<std::function<void()>> tasks;
  Status first_error;
  for (size_t p = 0; p < by_user.num_partitions(); ++p) {
    tasks.push_back([&, p] {
      FactorMap local;
      double local_sq = 0.0;
      size_t local_n = 0;
      for (const auto& [uid, group] : by_user.partition(p)) {
        RidgeAccumulator acc(basis_->dim());
        std::vector<std::pair<DenseVector, double>> examples;
        examples.reserve(group.size());
        for (const Observation& obs : group) {
          auto item_it = item_catalog_->find(obs.item_id);
          if (item_it == item_catalog_->end()) continue;
          auto feats = basis_->Features(item_it->second);
          if (!feats.ok()) continue;
          acc.AddExample(feats.value(), obs.label);
          examples.emplace_back(std::move(feats).value(), obs.label);
        }
        if (acc.num_examples() == 0) continue;
        auto solved = acc.Solve(lambda_);
        if (!solved.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          if (first_error.ok()) first_error = solved.status();
          continue;
        }
        for (const auto& [f, y] : examples) {
          double e = y - Dot(solved.value(), f);
          local_sq += e * e;
          ++local_n;
        }
        local[uid] = std::move(solved).value();
      }
      std::lock_guard<std::mutex> lock(mu);
      for (auto& [k, v] : local) weights[k] = std::move(v);
      total_sq += local_sq;
      total_n += local_n;
    });
  }
  VELOX_RETURN_NOT_OK(executor->RunStage("computational-retrain", std::move(tasks)));
  VELOX_RETURN_NOT_OK(first_error);

  RetrainOutput out;
  out.features = basis_;
  out.user_weights = std::move(weights);
  out.training_rmse =
      total_n == 0 ? 0.0 : std::sqrt(total_sq / static_cast<double>(total_n));
  return out;
}

}  // namespace velox
