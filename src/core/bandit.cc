#include "core/bandit.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"

namespace velox {

namespace {

// Indices sorted descending by key(candidate); stable on ties so the
// ranking is deterministic given equal inputs.
template <typename KeyFn>
std::vector<size_t> RankByKey(const std::vector<BanditCandidate>& candidates,
                              const KeyFn& key) {
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return key(candidates[a]) > key(candidates[b]);
  });
  return order;
}

}  // namespace

size_t BanditPolicy::GreedyTop(const std::vector<BanditCandidate>& candidates) {
  VELOX_CHECK(!candidates.empty());
  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i].score > candidates[best].score) best = i;
  }
  return best;
}

std::vector<size_t> GreedyPolicy::Rank(const std::vector<BanditCandidate>& candidates,
                                       Rng* /*rng*/) const {
  return RankByKey(candidates, [](const BanditCandidate& c) { return c.score; });
}

EpsilonGreedyPolicy::EpsilonGreedyPolicy(double epsilon) : epsilon_(epsilon) {
  VELOX_CHECK_GE(epsilon, 0.0);
  VELOX_CHECK_LE(epsilon, 1.0);
}

std::vector<size_t> EpsilonGreedyPolicy::Rank(
    const std::vector<BanditCandidate>& candidates, Rng* rng) const {
  auto order = RankByKey(candidates, [](const BanditCandidate& c) { return c.score; });
  if (!order.empty() && rng != nullptr && rng->Bernoulli(epsilon_)) {
    size_t pick = static_cast<size_t>(rng->UniformU64(order.size()));
    std::swap(order[0], order[pick]);
  }
  return order;
}

LinUcbPolicy::LinUcbPolicy(double alpha) : alpha_(alpha) {
  VELOX_CHECK_GE(alpha, 0.0);
}

std::vector<size_t> LinUcbPolicy::Rank(const std::vector<BanditCandidate>& candidates,
                                       Rng* /*rng*/) const {
  return RankByKey(candidates, [this](const BanditCandidate& c) {
    return c.score + alpha_ * c.uncertainty;
  });
}

std::vector<size_t> ThompsonSamplingPolicy::Rank(
    const std::vector<BanditCandidate>& candidates, Rng* rng) const {
  VELOX_CHECK(rng != nullptr);
  std::vector<double> sampled(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    sampled[i] = candidates[i].score + rng->Gaussian() * candidates[i].uncertainty;
  }
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return sampled[a] > sampled[b]; });
  return order;
}

std::unique_ptr<BanditPolicy> MakeBanditPolicy(const std::string& spec) {
  auto parts = StrSplit(std::string_view(spec), ':');
  const std::string& kind = parts[0];
  if (kind == "greedy") return std::make_unique<GreedyPolicy>();
  if (kind == "thompson") return std::make_unique<ThompsonSamplingPolicy>();
  if (kind == "epsilon_greedy") {
    double eps = 0.1;
    if (parts.size() > 1) {
      auto parsed = ParseDouble(parts[1]);
      if (!parsed.ok()) return nullptr;
      eps = parsed.value();
    }
    if (eps < 0.0 || eps > 1.0) return nullptr;
    return std::make_unique<EpsilonGreedyPolicy>(eps);
  }
  if (kind == "linucb") {
    double alpha = 1.0;
    if (parts.size() > 1) {
      auto parsed = ParseDouble(parts[1]);
      if (!parsed.ok()) return nullptr;
      alpha = parsed.value();
    }
    if (alpha < 0.0) return nullptr;
    return std::make_unique<LinUcbPolicy>(alpha);
  }
  return nullptr;
}

}  // namespace velox
