// RetrainScheduler — orchestrates the offline half of the paper's
// hybrid learning loop (§4.2, §4.3, §6):
//
//  * watches the Evaluator's staleness signal and, when it fires (or on
//    demand), submits the model's retrain UDF to the batch tier over a
//    snapshot of the observation log, warm-started from the current
//    online user weights;
//  * while the batch job's output is in hand, captures the warm set —
//    the hot entries of the feature and prediction caches — and
//    precomputes them against the new model (§4.2: the batch system
//    "computes all predictions and feature transformations that were
//    cached at the time the batch computation was triggered ... used to
//    repopulate the caches when switching to the newly trained model");
//  * registers the new immutable version, re-seeds every node's user
//    weights from the new W (placed by uid ownership), optionally
//    writes the new materialized θ table into distributed storage,
//    flushes + repopulates caches, and resets the quality baseline.
#ifndef VELOX_CORE_RETRAIN_SCHEDULER_H_
#define VELOX_CORE_RETRAIN_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "batch/job.h"
#include "common/result.h"
#include "core/evaluator.h"
#include "core/feature_cache.h"
#include "core/model.h"
#include "core/model_registry.h"
#include "core/prediction_cache.h"
#include "core/prediction_service.h"
#include "core/user_weights.h"
#include "storage/storage_cluster.h"

namespace velox {

// The per-node serving components the scheduler must re-seed on swap.
struct NodeComponents {
  NodeId node = 0;
  UserWeightStore* weights = nullptr;
  FeatureCache* feature_cache = nullptr;
  PredictionCache* prediction_cache = nullptr;
  PredictionService* prediction_service = nullptr;
  StorageClient* client = nullptr;
};

struct RetrainSchedulerOptions {
  // Repopulate caches from the pre-swap warm set.
  bool warm_caches = true;
  size_t warm_hot_entries_per_shard = 64;
  // Write the new materialized feature table into distributed storage
  // (required when nodes use a distributed FeatureResolver).
  bool distribute_item_features = false;
  std::string feature_table_prefix = "item_features";
  // After the swap, replay the observation log into the per-user online
  // state so each w_u is the exact Eq. 2 ridge solution over *all* of
  // the user's data under the new θ (sufficient statistics included),
  // not just a prior mean. Skipped for computational feature functions
  // (replay would need raw item attributes the log does not carry; the
  // computational retrain already solves users from full data).
  bool replay_observations = true;
  // Windowed retraining: when > 0, train on only the most recent
  // `max_observations` observations (by cluster-wide logical
  // timestamp). Bounds batch-job cost and sharpens recovery from
  // concept drift — old, contradicted observations age out of the
  // window instead of being averaged in forever. 0 = use the full log.
  int64_t max_observations = 0;
  // Publish the new W into the replicated `user_weights_table` at
  // install (chunked MultiPuts, like the feature table). This is what
  // the PR-3 failover path lazily reads when a crashed node's users
  // remap — without it only online-updated users are recoverable.
  bool persist_user_weights = true;
  std::string user_weights_table = "user_weights";
};

struct RetrainReport {
  int32_t new_version = 0;
  size_t observations_used = 0;
  double training_rmse = 0.0;
  size_t warmed_features = 0;
  size_t warmed_predictions = 0;
  // Logged observations the post-swap replay could not apply (e.g. a
  // corrupt entry, or a factor whose dimension no longer matches). The
  // install completes regardless; skipped users keep their retrained
  // prior for the affected observations.
  size_t replay_skipped = 0;
  double wall_millis = 0.0;
};

class RetrainScheduler {
 public:
  RetrainScheduler(RetrainSchedulerOptions options, const VeloxModel* model,
                   ModelRegistry* registry, Evaluator* evaluator, JobDriver* driver,
                   StorageCluster* storage, std::vector<NodeComponents> nodes);

  // Retrains iff the evaluator reports staleness; returns whether a
  // retrain ran.
  Result<bool> MaybeRetrain();

  // Unconditional retrain + swap.
  Result<RetrainReport> RetrainNow();

  // Rolls the registry back to `version`, flushing caches and
  // re-seeding user weights from that version's trained W.
  Status Rollback(int32_t version);

  uint64_t retrains_completed() const;

 private:
  // Installs `output` as the new current version; shared by retrain
  // and bootstrap installs (VeloxServer calls it via InstallVersion).
  // `observations` (may be null) is the log snapshot used for the
  // post-swap user-state replay.
  Result<RetrainReport> InstallOutput(const RetrainOutput& output,
                                      size_t observations_used,
                                      const std::vector<Observation>* observations);
  friend class VeloxServer;

  RetrainSchedulerOptions options_;
  const VeloxModel* model_;
  ModelRegistry* registry_;
  Evaluator* evaluator_;
  JobDriver* driver_;
  StorageCluster* storage_;
  std::vector<NodeComponents> nodes_;
  mutable std::mutex mu_;
  uint64_t retrains_completed_ = 0;
};

}  // namespace velox

#endif  // VELOX_CORE_RETRAIN_SCHEDULER_H_
