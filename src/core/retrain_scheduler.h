// RetrainScheduler — orchestrates the offline half of the paper's
// hybrid learning loop (§4.2, §4.3, §6):
//
//  * watches the Evaluator's staleness signal and, when it fires (or on
//    demand), submits the model's retrain UDF to the batch tier over a
//    snapshot of the observation log, warm-started from the current
//    online user weights;
//  * while the batch job's output is in hand, captures the warm set —
//    the hot entries of the feature and prediction caches — and
//    precomputes them against the new model (§4.2: the batch system
//    "computes all predictions and feature transformations that were
//    cached at the time the batch computation was triggered ... used to
//    repopulate the caches when switching to the newly trained model");
//  * registers the new immutable version, re-seeds every node's user
//    weights from the new W (placed by uid ownership), optionally
//    writes the new materialized θ table into distributed storage,
//    flushes + repopulates caches, and resets the quality baseline.
#ifndef VELOX_CORE_RETRAIN_SCHEDULER_H_
#define VELOX_CORE_RETRAIN_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "batch/job.h"
#include "common/result.h"
#include "common/stage_trace.h"
#include "core/evaluator.h"
#include "core/feature_cache.h"
#include "core/incremental_trainer.h"
#include "core/model.h"
#include "core/model_registry.h"
#include "core/prediction_cache.h"
#include "core/prediction_service.h"
#include "core/user_weights.h"
#include "storage/storage_cluster.h"

namespace velox {

// The per-node serving components the scheduler must re-seed on swap.
struct NodeComponents {
  NodeId node = 0;
  UserWeightStore* weights = nullptr;
  FeatureCache* feature_cache = nullptr;
  PredictionCache* prediction_cache = nullptr;
  PredictionService* prediction_service = nullptr;
  StorageClient* client = nullptr;
  // Per-node drift accumulator feeding incremental refresh selection
  // (may be null: the node then contributes no drift signal).
  ItemDriftTracker* drift = nullptr;
};

// How a retrain run solves for the new θ/W (DESIGN.md §14):
//  * kFull        — the paper's batch path: ALS over the whole log.
//  * kIncremental — nearline Lambda-Learner refresh: ridge-solve only
//                   the items whose drift crossed the policy threshold,
//                   merge into the previous version's factors.
//  * kAuto        — incremental, escalating to full when the drifted
//                   fraction of the catalog reaches
//                   IncrementalPolicy::auto_full_fraction (drift-mass
//                   staleness), or when nothing qualifies but a retrain
//                   was demanded anyway.
enum class RetrainMode { kFull, kIncremental, kAuto };

const char* RetrainModeName(RetrainMode mode);

struct RetrainSchedulerOptions {
  // Repopulate caches from the pre-swap warm set.
  bool warm_caches = true;
  size_t warm_hot_entries_per_shard = 64;
  // Write the new materialized feature table into distributed storage
  // (required when nodes use a distributed FeatureResolver).
  bool distribute_item_features = false;
  std::string feature_table_prefix = "item_features";
  // After the swap, replay the observation log into the per-user online
  // state so each w_u is the exact Eq. 2 ridge solution over *all* of
  // the user's data under the new θ (sufficient statistics included),
  // not just a prior mean. Skipped for computational feature functions
  // (replay would need raw item attributes the log does not carry; the
  // computational retrain already solves users from full data).
  bool replay_observations = true;
  // Windowed retraining: when > 0, train on only the most recent
  // `max_observations` observations (by cluster-wide logical
  // timestamp). Bounds batch-job cost and sharpens recovery from
  // concept drift — old, contradicted observations age out of the
  // window instead of being averaged in forever. 0 = use the full log.
  int64_t max_observations = 0;
  // Publish the new W into the replicated `user_weights_table` at
  // install (chunked MultiPuts, like the feature table). This is what
  // the PR-3 failover path lazily reads when a crashed node's users
  // remap — without it only online-updated users are recoverable.
  bool persist_user_weights = true;
  std::string user_weights_table = "user_weights";
  // Mode used by MaybeRetrain (the staleness-triggered path) and by
  // callers that delegate the choice. Explicit RetrainNow() /
  // RetrainIncremental() calls ignore it.
  RetrainMode mode = RetrainMode::kFull;
  // Drift thresholds + kAuto escalation for incremental refreshes.
  IncrementalPolicy incremental;
};

struct RetrainReport {
  int32_t new_version = 0;
  size_t observations_used = 0;
  double training_rmse = 0.0;
  size_t warmed_features = 0;
  size_t warmed_predictions = 0;
  // Logged observations the post-swap replay could not apply (e.g. a
  // corrupt entry, or a factor whose dimension no longer matches). The
  // install completes regardless; skipped users keep their retrained
  // prior for the affected observations.
  size_t replay_skipped = 0;
  double wall_millis = 0.0;
  // How this run actually solved (kAuto resolves to one of the others).
  RetrainMode mode_used = RetrainMode::kFull;
  // Incremental runs: items whose factors were re-solved (0 for full).
  size_t items_refreshed = 0;
  // Drift-check outcome that drove the decision (kIncremental/kAuto).
  size_t drift_candidates = 0;
  double drift_fraction = 0.0;
  // True when kAuto escalated past incremental to a full retrain.
  bool escalated = false;
};

// Cumulative scheduler counters surfaced as `retrain.*` metrics.
struct RetrainSchedulerStats {
  uint64_t full_retrains = 0;
  uint64_t incremental_retrains = 0;
  uint64_t auto_escalations = 0;
  uint64_t items_refreshed = 0;
  uint64_t last_drift_candidates = 0;
  double last_drift_fraction = 0.0;
};

class RetrainScheduler {
 public:
  RetrainScheduler(RetrainSchedulerOptions options, const VeloxModel* model,
                   ModelRegistry* registry, Evaluator* evaluator, JobDriver* driver,
                   StorageCluster* storage, std::vector<NodeComponents> nodes);

  // Retrains iff the evaluator reports staleness, using options.mode;
  // returns whether a retrain ran.
  Result<bool> MaybeRetrain();

  // Unconditional *full* retrain + swap (the paper's batch path).
  Result<RetrainReport> RetrainNow();

  // Unconditional retrain under `mode` (kAuto runs the drift check and
  // picks incremental or full; see RetrainMode).
  Result<RetrainReport> Retrain(RetrainMode mode);

  // Nearline incremental refresh: drift-check, restricted solve over
  // the qualified items, merge, install as a new version.
  // FailedPrecondition when no item qualifies (and `refresh_all` is
  // off) or no version is installed yet. `refresh_all` forces the
  // selection to cover every item in θ and in the log — the
  // bit-identity path pinned against RetrainNow().
  Result<RetrainReport> RetrainIncremental(bool refresh_all = false);

  // Rolls the registry back to `version`, flushing caches and
  // re-seeding user weights from that version's trained W.
  Status Rollback(int32_t version);

  uint64_t retrains_completed() const;
  RetrainSchedulerStats stats() const;

  // Stage-latency sink for drift_check / incremental_solve spans
  // (borrowed; may be null => untimed). Wire during construction.
  void SetStageRegistry(StageRegistry* stages) { stages_ = stages; }

 private:
  // Installs `output` as the new current version; shared by retrain
  // and bootstrap installs (VeloxServer calls it via InstallVersion).
  // `observations` (may be null) is the log snapshot used for the
  // post-swap user-state replay. `refreshed_items` tells the drift
  // trackers what to forget: the listed items after an incremental
  // refresh, everything when null (full retrain / direct install).
  Result<RetrainReport> InstallOutput(const RetrainOutput& output,
                                      size_t observations_used,
                                      const std::vector<Observation>* observations,
                                      const std::vector<uint64_t>* refreshed_items =
                                          nullptr);
  // Log snapshot (windowed) + warm-start weights export; mu_ held.
  Result<std::vector<Observation>> SnapshotLog() const;
  FactorMap ExportWarmWeights() const;
  // Full / incremental bodies; mu_ held.
  Result<RetrainReport> RunFullLocked();
  Result<RetrainReport> RunIncrementalLocked(bool refresh_all, bool via_auto);
  // Drift check: merged per-node stats -> qualified refresh set.
  DriftSelection CheckDriftLocked() const;
  friend class VeloxServer;

  RetrainSchedulerOptions options_;
  const VeloxModel* model_;
  ModelRegistry* registry_;
  Evaluator* evaluator_;
  JobDriver* driver_;
  StorageCluster* storage_;
  std::vector<NodeComponents> nodes_;
  StageRegistry* stages_ = nullptr;
  mutable std::mutex mu_;
  uint64_t retrains_completed_ = 0;
  // Guards stats_ alone so MetricsReport never blocks behind a running
  // retrain (mu_ is held for the whole batch job).
  mutable std::mutex stats_mu_;
  RetrainSchedulerStats stats_;
};

}  // namespace velox

#endif  // VELOX_CORE_RETRAIN_SCHEDULER_H_
