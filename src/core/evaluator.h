// Model quality evaluation and staleness detection (paper §4.3).
//
// Three signals, as in the paper:
//  1. running per-user aggregates of online (prequential) loss —
//     each observation is scored with the user's pre-update weights;
//  2. a cross-validation stream: a configurable fraction of incoming
//     observations is scored and recorded as held-out loss *before*
//     the model absorbs it, estimating generalization;
//  3. a bandit validation pool: observations whose recommendation was
//     exploratory (not the greedy pick) are reservoir-sampled into a
//     pool "not influenced by the model".
//
// Staleness rule (§6): "the loss is evaluated every time new data is
// observed and if the loss starts to increase faster than a threshold
// value, the model is detected as stale." Concretely: after a minimum
// number of observations, the model is stale when the EWMA of held-out
// loss exceeds threshold_ratio × the post-training baseline loss.
#ifndef VELOX_CORE_EVALUATOR_H_
#define VELOX_CORE_EVALUATOR_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "ml/eval_metrics.h"

namespace velox {

struct EvaluatorOptions {
  // EWMA smoothing for the drift signal.
  double ewma_alpha = 0.02;
  // Stale when ewma_loss > threshold_ratio * baseline_loss.
  double staleness_threshold_ratio = 1.5;
  // Observations required after a (re)train before staleness can fire.
  int64_t min_observations = 200;
  // When > 0, the first N held-out losses after each ResetBaseline
  // recalibrate the baseline to max(configured, their mean). Training
  // RMSE systematically understates serving loss (label noise,
  // generalization gap); self-calibration anchors the staleness
  // threshold to the freshly-trained model's *serving* quality instead.
  // Staleness never fires while calibration is in progress.
  int64_t baseline_from_heldout_samples = 0;
  // Capacity of the bandit validation reservoir.
  size_t validation_pool_capacity = 1024;
  uint64_t seed = 99;
};

struct ValidationExample {
  uint64_t uid = 0;
  uint64_t item_id = 0;
  double label = 0.0;
};

struct EvaluatorReport {
  int64_t observations_since_baseline = 0;
  double baseline_loss = 0.0;
  double ewma_loss = 0.0;
  double mean_online_loss = 0.0;
  bool stale = false;
  size_t tracked_users = 0;
  size_t validation_pool_size = 0;
};

class Evaluator {
 public:
  explicit Evaluator(EvaluatorOptions options);

  // Prequential loss of one observation (scored before the update).
  void RecordOnlineLoss(uint64_t uid, double loss);

  // Held-out loss from the cross-validation stream.
  void RecordHeldOutLoss(uint64_t uid, double loss);

  // Adds an exploration-sourced observation to the validation pool
  // (reservoir sampling keeps it unbiased).
  void RecordValidationExample(const ValidationExample& example);
  std::vector<ValidationExample> ValidationPool() const;

  // Sets the quality baseline after (re)training and clears drift
  // state. `baseline_loss` is typically the training/validation loss of
  // the freshly trained version.
  void ResetBaseline(double baseline_loss);

  bool IsStale() const;
  EvaluatorReport Report() const;

  // Running per-user mean online loss (0 when untracked).
  double UserMeanLoss(uint64_t uid) const;

 private:
  EvaluatorOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, RunningStat> per_user_loss_;
  RunningStat global_online_loss_;
  Ewma heldout_ewma_;
  double baseline_loss_ = 0.0;
  bool baseline_set_ = false;
  int64_t observations_since_baseline_ = 0;
  // Held-out baseline calibration state (see
  // EvaluatorOptions::baseline_from_heldout_samples).
  int64_t calibration_count_ = 0;
  double calibration_sum_ = 0.0;
  // Reservoir.
  std::vector<ValidationExample> validation_pool_;
  uint64_t validation_seen_ = 0;
  Rng rng_;
};

}  // namespace velox

#endif  // VELOX_CORE_EVALUATOR_H_
