#include "core/deployment.h"

namespace velox {

Result<VeloxServer*> VeloxDeployment::AddModel(VeloxServerConfig config,
                                               std::unique_ptr<VeloxModel> model) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  std::string name = model->name();
  if (name.empty()) return Status::InvalidArgument("model name must not be empty");
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.count(name) > 0) {
    return Status::AlreadyExists("model already deployed: " + name);
  }
  auto server = std::make_unique<VeloxServer>(config, std::move(model));
  VeloxServer* ptr = server.get();
  models_[name] = std::move(server);
  return ptr;
}

Status VeloxDeployment::RemoveModel(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("no such model: " + name);
  }
  return Status::OK();
}

Result<VeloxServer*> VeloxDeployment::GetModel(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) return Status::NotFound("no such model: " + name);
  return it->second.get();
}

std::vector<ModelSummary> VeloxDeployment::ListModels() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ModelSummary> out;
  out.reserve(models_.size());
  for (const auto& [name, server] : models_) {
    ModelSummary summary;
    summary.name = name;
    summary.current_version = server->current_version();
    summary.users = server->TotalUsers();
    summary.stale = server->QualityReport().stale;
    out.push_back(std::move(summary));
  }
  return out;
}

size_t VeloxDeployment::num_models() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

Result<ScoredItem> VeloxDeployment::Predict(const std::string& model, uint64_t uid,
                                            const Item& x) {
  VELOX_ASSIGN_OR_RETURN(VeloxServer * server, GetModel(model));
  return server->Predict(uid, x);
}

Result<TopKResult> VeloxDeployment::TopK(const std::string& model, uint64_t uid,
                                         const std::vector<Item>& candidates,
                                         size_t k) {
  VELOX_ASSIGN_OR_RETURN(VeloxServer * server, GetModel(model));
  return server->TopK(uid, candidates, k);
}

Status VeloxDeployment::Observe(const std::string& model, uint64_t uid, const Item& x,
                                double y) {
  VELOX_ASSIGN_OR_RETURN(VeloxServer * server, GetModel(model));
  return server->Observe(uid, x, y);
}

Result<std::vector<std::string>> VeloxDeployment::MaybeRetrainAll() {
  // Snapshot the server list, then retrain outside the map lock (batch
  // jobs are slow; AddModel/RemoveModel must not block on them).
  std::vector<std::pair<std::string, VeloxServer*>> servers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    servers.reserve(models_.size());
    for (const auto& [name, server] : models_) {
      servers.emplace_back(name, server.get());
    }
  }
  std::vector<std::string> retrained;
  for (const auto& [name, server] : servers) {
    VELOX_ASSIGN_OR_RETURN(bool did, server->MaybeRetrain());
    if (did) retrained.push_back(name);
  }
  return retrained;
}

}  // namespace velox
