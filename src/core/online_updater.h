// OnlineUpdater — the Model Manager's observe() path (paper §4.1/§4.2).
//
// For each incoming observation (uid, item, label):
//  1. resolve f(x, θ) (through the shared feature cache),
//  2. score it with the user's *current* weights (prequential loss →
//     the Evaluator's running per-user aggregates, §4.3),
//  3. hold out every k-th observation's pre-update loss as the
//     cross-validation stream (§4.3: "an additional cross-validation
//     step during incremental user weight updates to assess
//     generalization performance"),
//  4. apply Eq. 2 under the configured strategy (naive normal
//     equations or Sherman–Morrison),
//  5. append the observation to the node-local shard of the
//     observation log for offline retraining (§4.1) and persist the
//     updated w_u to storage (a node-local write, §5). The weight
//     update itself was already journaled to the node's user-weight
//     WAL inside ApplyObservation (storage/snapshot.h), so serving
//     state survives restarts independently of the storage tier.
//  6. if the journal's snapshot interval elapsed, take a consistent
//     snapshot of the weight table (bounds WAL replay at recovery).
//
// Observations flagged as exploration-sourced (the topK pick was not
// the greedy argmax) additionally enter the Evaluator's bandit
// validation pool.
#ifndef VELOX_CORE_ONLINE_UPDATER_H_
#define VELOX_CORE_ONLINE_UPDATER_H_

#include <atomic>
#include <cstdint>

#include "common/result.h"
#include "common/stage_trace.h"
#include "core/evaluator.h"
#include "core/model.h"
#include "core/model_registry.h"
#include "core/prediction_service.h"
#include "core/user_weights.h"
#include "storage/storage_client.h"

namespace velox {

class ItemDriftTracker;

struct OnlineUpdaterOptions {
  // Every k-th observation's prequential loss feeds the held-out
  // stream; 0 disables cross-validation.
  int64_t cross_validation_every = 10;
  // Persist updated user weights to the storage tier.
  bool persist_weights = true;
  // Storage table for persisted weights.
  std::string weights_table = "user_weights";
  // Graceful degradation: when feature resolution or the weight persist
  // fails *transiently* (Unavailable), log what we can and return a
  // degraded OK instead of failing the observation. Definitive errors
  // still propagate.
  bool degrade_on_unavailable = true;
};

struct ObserveResult {
  double prediction_before = 0.0;
  double loss = 0.0;
  int64_t user_observations = 0;
  uint64_t log_seq = 0;
  // True when this observation took a degraded path: features were
  // transiently unresolvable (weights unchanged; the observation still
  // reached the log for the retrainer to replay), or the weight persist
  // failed (update applied in memory, not durable).
  bool degraded = false;
};

class OnlineUpdater {
 public:
  // Dependencies are borrowed. `model` provides the loss function;
  // `prediction_service` shares its feature cache; `client` may be
  // null (no persistence / no log, for pure-kernel benchmarks).
  OnlineUpdater(OnlineUpdaterOptions options, const VeloxModel* model,
                ModelRegistry* registry, UserWeightStore* weights,
                PredictionService* prediction_service, Evaluator* evaluator,
                StorageClient* client);

  // Listing 1's observe(uid, x, y).
  Result<ObserveResult> Observe(uint64_t uid, const Item& item, double label,
                                bool exploration_sourced = false);

  const OnlineUpdaterOptions& options() const { return options_; }

  // Per-node stage-latency sink (borrowed; may be null => untimed).
  void SetStageRegistry(StageRegistry* stages) { stages_ = stages; }

  // Per-node drift accumulator for nearline incremental retraining
  // (borrowed; may be null => no drift tracking). Each successful
  // observation records its squared prequential error against the item
  // (core/incremental_trainer.h). Degraded observations — features
  // unresolvable, no prediction made — contribute nothing.
  void SetDriftTracker(ItemDriftTracker* drift) { drift_ = drift; }

  // Observations that took a degraded path (skipped update or
  // non-durable persist).
  uint64_t degraded_count() const {
    return degraded_.load(std::memory_order_relaxed);
  }

 private:
  OnlineUpdaterOptions options_;
  const VeloxModel* model_;
  ModelRegistry* registry_;
  UserWeightStore* weights_;
  PredictionService* prediction_service_;
  Evaluator* evaluator_;
  StorageClient* client_;
  StageRegistry* stages_ = nullptr;
  ItemDriftTracker* drift_ = nullptr;
  std::atomic<int64_t> observation_counter_{0};
  std::atomic<uint64_t> degraded_{0};
};

}  // namespace velox

#endif  // VELOX_CORE_ONLINE_UPDATER_H_
