#include "core/feature_cache.h"

namespace velox {

FeatureCache::FeatureCache(size_t capacity, size_t num_shards)
    : cache_(capacity, num_shards) {}

FeaturePtr FeatureCache::Get(uint64_t item_id) {
  auto hit = cache_.Get(item_id);
  return hit.has_value() ? std::move(*hit) : nullptr;
}

void FeatureCache::Put(uint64_t item_id, DenseVector features) {
  cache_.Put(item_id, std::make_shared<const DenseVector>(std::move(features)));
}

void FeatureCache::Put(uint64_t item_id, FeaturePtr features) {
  cache_.Put(item_id, std::move(features));
}

bool FeatureCache::Invalidate(uint64_t item_id) { return cache_.Erase(item_id); }

void FeatureCache::Clear() { cache_.Clear(); }

std::vector<uint64_t> FeatureCache::HotItems(size_t limit_per_shard) const {
  return cache_.HotKeys(limit_per_shard);
}

}  // namespace velox
