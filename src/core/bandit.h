// Bandit policies for topK serving (paper §5 "Bandits and Multiple
// Models"): "the algorithm recommends the item with the best potential
// prediction score (i.e., the item with max sum of score and
// uncertainty) as opposed to recommending the item with the absolute
// best prediction score" — a contextual-bandit (LinUCB-style) rule
// that escapes the feedback loops a purely greedy recommender falls
// into.
//
// A policy ranks candidates given each item's predicted score and the
// model's uncertainty about that prediction (sqrt(fᵀA⁻¹f) from the
// user's Sherman–Morrison state).
#ifndef VELOX_CORE_BANDIT_H_
#define VELOX_CORE_BANDIT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"

namespace velox {

struct BanditCandidate {
  uint64_t item_id = 0;
  double score = 0.0;
  double uncertainty = 0.0;
};

class BanditPolicy {
 public:
  virtual ~BanditPolicy() = default;

  virtual std::string name() const = 0;

  // Returns candidate indices ordered best-first. `rng` supplies any
  // randomness (epsilon exploration, Thompson sampling).
  virtual std::vector<size_t> Rank(const std::vector<BanditCandidate>& candidates,
                                   Rng* rng) const = 0;

  // True when the top-ranked item differed from the pure-greedy choice
  // in the last Rank call semantics cannot be stored statelessly, so
  // callers compare against GreedyTop instead; helper below.
  static size_t GreedyTop(const std::vector<BanditCandidate>& candidates);
};

// Pure exploitation: rank by predicted score.
class GreedyPolicy final : public BanditPolicy {
 public:
  std::string name() const override { return "greedy"; }
  std::vector<size_t> Rank(const std::vector<BanditCandidate>& candidates,
                           Rng* rng) const override;
};

// With probability epsilon, promote a uniformly random candidate to the
// top; otherwise greedy.
class EpsilonGreedyPolicy final : public BanditPolicy {
 public:
  explicit EpsilonGreedyPolicy(double epsilon);
  std::string name() const override { return "epsilon_greedy"; }
  std::vector<size_t> Rank(const std::vector<BanditCandidate>& candidates,
                           Rng* rng) const override;

  double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
};

// LinUCB: rank by score + alpha * uncertainty — the paper's "max sum of
// score and uncertainty".
class LinUcbPolicy final : public BanditPolicy {
 public:
  explicit LinUcbPolicy(double alpha);
  std::string name() const override { return "linucb"; }
  std::vector<size_t> Rank(const std::vector<BanditCandidate>& candidates,
                           Rng* rng) const override;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
};

// Thompson sampling: rank by score + N(0, 1) * uncertainty draws.
class ThompsonSamplingPolicy final : public BanditPolicy {
 public:
  std::string name() const override { return "thompson"; }
  std::vector<size_t> Rank(const std::vector<BanditCandidate>& candidates,
                           Rng* rng) const override;
};

// Factory by name: "greedy", "epsilon_greedy:<eps>", "linucb:<alpha>",
// "thompson". nullptr if unknown.
std::unique_ptr<BanditPolicy> MakeBanditPolicy(const std::string& spec);

}  // namespace velox

#endif  // VELOX_CORE_BANDIT_H_
