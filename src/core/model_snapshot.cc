#include "core/model_snapshot.h"

#include <cstdio>
#include <fstream>

#include "common/bytes.h"
#include "common/string_util.h"

namespace velox {

namespace {

constexpr uint32_t kMagic = 0x56584d53;  // "VXMS"
constexpr uint32_t kFormatVersion = 1;

void PutFactorMap(ByteWriter* w, const FactorMap& map) {
  w->PutU64(map.size());
  for (const auto& [id, factor] : map) {
    w->PutU64(id);
    w->PutDoubleVector(factor.values());
  }
}

Result<FactorMap> GetFactorMap(ByteReader* r, uint32_t expected_dim) {
  VELOX_ASSIGN_OR_RETURN(uint64_t count, r->GetU64());
  // Each entry consumes at least 8 (id) + 4 (vector length) bytes;
  // reject corrupt counts before reserving memory for them.
  if (count > r->remaining() / 12) {
    return Status::OutOfRange("implausible factor map size");
  }
  FactorMap map;
  map.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    VELOX_ASSIGN_OR_RETURN(uint64_t id, r->GetU64());
    VELOX_ASSIGN_OR_RETURN(std::vector<double> values, r->GetDoubleVector());
    if (values.size() != expected_dim) {
      return Status::InvalidArgument(
          StrFormat("factor dim %zu != snapshot dim %u", values.size(), expected_dim));
    }
    map[id] = DenseVector(std::move(values));
  }
  return map;
}

}  // namespace

ModelSnapshot ModelSnapshot::FromRetrainOutput(const std::string& model_name,
                                               const RetrainOutput& output) {
  ModelSnapshot snapshot;
  snapshot.model_name = model_name;
  snapshot.training_rmse = output.training_rmse;
  snapshot.user_weights = output.user_weights;
  if (output.features != nullptr) {
    snapshot.dim = static_cast<uint32_t>(output.features->dim());
    const auto* materialized =
        dynamic_cast<const MaterializedFeatureFunction*>(output.features.get());
    if (materialized != nullptr) {
      snapshot.item_factors = materialized->table();
    }
  }
  return snapshot;
}

Result<RetrainOutput> ModelSnapshot::ToRetrainOutput() const {
  if (item_factors.empty()) {
    return Status::FailedPrecondition(
        "snapshot has no materialized factors; supply the computational basis");
  }
  RetrainOutput out;
  out.training_rmse = training_rmse;
  out.user_weights = user_weights;
  auto table = std::make_shared<FactorMap>(item_factors);
  out.features = std::make_shared<MaterializedFeatureFunction>(
      std::shared_ptr<const FactorMap>(table), dim);
  return out;
}

Result<RetrainOutput> ModelSnapshot::ToRetrainOutput(
    std::shared_ptr<const FeatureFunction> computational_basis) const {
  if (computational_basis == nullptr) {
    return Status::InvalidArgument("basis is null");
  }
  if (computational_basis->dim() != dim) {
    return Status::InvalidArgument(
        StrFormat("basis dim %zu != snapshot dim %u", computational_basis->dim(), dim));
  }
  RetrainOutput out;
  out.training_rmse = training_rmse;
  out.user_weights = user_weights;
  out.features = std::move(computational_basis);
  return out;
}

std::vector<uint8_t> SerializeModelSnapshot(const ModelSnapshot& snapshot) {
  ByteWriter w;
  w.PutU32(kMagic);
  w.PutU32(kFormatVersion);
  w.PutString(snapshot.model_name);
  w.PutU32(snapshot.dim);
  w.PutDouble(snapshot.training_rmse);
  PutFactorMap(&w, snapshot.item_factors);
  PutFactorMap(&w, snapshot.user_weights);
  return w.Release();
}

Result<ModelSnapshot> DeserializeModelSnapshot(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  VELOX_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kMagic) {
    return Status::InvalidArgument("not a velox model snapshot (bad magic)");
  }
  VELOX_ASSIGN_OR_RETURN(uint32_t format, r.GetU32());
  if (format != kFormatVersion) {
    return Status::Unimplemented(
        StrFormat("unsupported snapshot format version %u", format));
  }
  ModelSnapshot snapshot;
  VELOX_ASSIGN_OR_RETURN(snapshot.model_name, r.GetString());
  VELOX_ASSIGN_OR_RETURN(snapshot.dim, r.GetU32());
  VELOX_ASSIGN_OR_RETURN(snapshot.training_rmse, r.GetDouble());
  VELOX_ASSIGN_OR_RETURN(snapshot.item_factors, GetFactorMap(&r, snapshot.dim));
  VELOX_ASSIGN_OR_RETURN(snapshot.user_weights, GetFactorMap(&r, snapshot.dim));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot payload");
  }
  return snapshot;
}

Status SaveModelSnapshot(const ModelSnapshot& snapshot, const std::string& path) {
  std::vector<uint8_t> bytes = SerializeModelSnapshot(snapshot);
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for write: " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IoError("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename failed: " + path);
  }
  return Status::OK();
}

Result<ModelSnapshot> LoadModelSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open snapshot: " + path);
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (!in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IoError("read failed: " + path);
  }
  return DeserializeModelSnapshot(bytes);
}

}  // namespace velox
