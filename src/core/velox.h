// Umbrella header: the velox public API.
//
//   #include "core/velox.h"
//
//   velox::VeloxServerConfig config;
//   auto model = std::make_unique<velox::MatrixFactorizationModel>(
//       "songs", velox::AlsConfig{...});
//   velox::VeloxServer server(config, std::move(model));
//   server.Bootstrap(initial_ratings);
//   auto score = server.Predict(uid, item);          // Listing 1
//   auto top = server.TopK(uid, candidates, 10);
//   server.Observe(uid, item, rating);
//
// See README.md for the architecture overview and examples/ for
// complete programs.
#ifndef VELOX_CORE_VELOX_H_
#define VELOX_CORE_VELOX_H_

#include "common/config.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "core/bandit.h"
#include "core/deployment.h"
#include "core/evaluator.h"
#include "core/frontend.h"
#include "core/model.h"
#include "core/model_registry.h"
#include "core/model_selector.h"
#include "core/model_snapshot.h"
#include "core/prediction_service.h"
#include "core/velox_server.h"
#include "data/movielens.h"
#include "data/workload.h"
#include "ml/als.h"
#include "ml/feature_function.h"
#include "server/acceptor.h"
#include "server/admission.h"
#include "server/dispatcher.h"
#include "server/rate_limiter.h"

#endif  // VELOX_CORE_VELOX_H_
