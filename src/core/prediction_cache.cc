#include "core/prediction_cache.h"

namespace velox {

PredictionCache::PredictionCache(size_t capacity, size_t num_shards)
    : cache_(capacity, num_shards) {}

std::optional<double> PredictionCache::Get(const PredictionKey& key) {
  return cache_.Get(key);
}

void PredictionCache::Put(const PredictionKey& key, double score) {
  cache_.Put(key, score);
}

void PredictionCache::Clear() { cache_.Clear(); }

}  // namespace velox
