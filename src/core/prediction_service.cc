#include "core/prediction_service.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <optional>
#include <unordered_map>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/topk_heap.h"
#include "linalg/scoring_kernels.h"

namespace velox {

namespace {

// Every scan path (heap, serial plane, parallel shards + merge, ANN
// rescore) selects with the shared BoundedTopK under BetterTopKEntry
// (common/topk_heap.h) — one comparator is what makes their outputs
// identical even on tie-heavy tables.

// Scores plane rows [begin, end) into `top`, one ScoreRows block at a
// time so the factor rows stream through cache. `weights` must hold
// plane.stride() entries, zero beyond plane.dim(): scoring the full
// padded stride keeps every row on an exact kernel-block boundary (no
// per-row tail work) and is bit-identical to scoring dim entries by
// the kernel's zero-padding invariance.
void ScanPlaneRange(const ItemFactorPlane& plane, const double* weights, size_t begin,
                    size_t end, const PredictionService::ItemFilter& filter,
                    BoundedTopK* top) {
  constexpr size_t kBlockRows = 512;
  double scores[kBlockRows];
  const std::vector<uint64_t>& ids = plane.item_ids();
  for (size_t b = begin; b < end; b += kBlockRows) {
    size_t count = std::min(kBlockRows, end - b);
    ScoreRows(plane.data() + b * plane.stride(), count, plane.stride(), weights,
              plane.stride(), scores);
    for (size_t i = 0; i < count; ++i) {
      uint64_t item_id = ids[b + i];
      if (filter && !filter(item_id)) continue;  // application policy
      top->Offer(scores[i], item_id);
    }
  }
}

// Mixed-precision scan: stream the float mirror of the plane (half the
// memory traffic of the double rows), prune with a provably
// conservative error bound, and rescore the survivors in double
// through the shared DotKernel. The output is the exact double top-k —
// identical to the pure-double scan — because:
//  * for every row, |float_score - double_score| <= eps_max where
//    eps_max = 8(dim+8)·u_f·max_row_norm2·‖w‖₂ dominates the float
//    conversion, product, and blocked-summation rounding (γ-bound via
//    Cauchy-Schwarz, with ~8x slack — which also swallows the rounding
//    of the cutoff arithmetic below);
//  * with Tf the k-th largest *finite* float score over eligible rows,
//    at least k eligible rows have true score >= Tf - eps_max, so a
//    row with float score < Tf - 3·eps_max (upper bound below the
//    supported threshold, slack included) cannot be in the true top k;
//    at ties those k rows score strictly above it;
//  * any non-finite value (overflowed float, NaN weights) is never
//    offered to the threshold heap and never pruned, degrading to
//    "rescore it" — never to wrong pruning;
//  * both this path and the pure path emit the unique top-k under the
//    (score desc, item_id asc) total order, so their outputs agree
//    bit-for-bit regardless of visit order.
// Note: `filter` may be consulted up to twice per row (float pass and
// rescore), so it must be a pure predicate — the same contract the
// rest of the scan already assumes.
Result<std::vector<TopKEntry>> MixedPrecisionScan(
    const ItemFactorPlane& plane, const DenseVector& weights, size_t k,
    const PredictionService::ItemFilter& filter, size_t shards, ThreadPool* pool) {
  const size_t n = plane.num_items();
  const size_t dim = plane.dim();
  const std::vector<uint64_t>& ids = plane.item_ids();

  // Stride-padded float weights: scoring the full padded stride keeps
  // rows on exact kernel-block boundaries (see ScanPlaneRange).
  std::vector<float> fw(plane.stride(), 0.0f);
  double wsq = 0.0;
  for (size_t c = 0; c < dim; ++c) {
    fw[c] = static_cast<float>(weights[c]);
    wsq += weights[c] * weights[c];
  }
  constexpr double kFloatUlp = 5.9604644775390625e-08;  // 2^-24
  const double eps_max = 8.0 * (static_cast<double>(dim) + 8.0) * kFloatUlp *
                         std::sqrt(wsq) * plane.max_row_norm2();

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  // Phase 1 (sharded): float-score rows block by block and keep (a)
  // a per-shard bounded top-k of the finite eligible float scores and
  // (b) every row whose float score cleared the shard's *running*
  // cutoff (current k-th best - 3·eps_max) when it was visited. The
  // running cutoff only rises toward the final global cutoff, so the
  // kept rows are a superset of every row the final cutoff admits; a
  // skipped row was already provably outside the top k. The hot path
  // is one comparison per row.
  struct Candidate {
    uint32_t row;
    float sf;
  };
  std::vector<std::vector<Candidate>> shard_cands(shards);
  std::vector<BoundedTopK> float_tops(shards, BoundedTopK(k));
  const size_t per = (n + shards - 1) / shards;
  auto scan_shard = [&](size_t s) {
    size_t begin = s * per;
    size_t end = std::min(n, begin + per);
    if (begin >= end) return;
    std::vector<Candidate>& cands = shard_cands[s];
    cands.reserve(k + 64);
    BoundedTopK& ftop = float_tops[s];
    // The hot-loop compare stays in float: fcut is the running cutoff
    // rounded DOWN to float, so `sf <= fcut` implies sf <= cutoff in
    // double and the skip remains conservative.
    constexpr float kNegInfF = -std::numeric_limits<float>::infinity();
    constexpr float kLowestF = std::numeric_limits<float>::lowest();
    float fcut = kNegInfF;
    constexpr size_t kBlockRows = 512;
    float sbuf[kBlockRows];
    for (size_t b = begin; b < end; b += kBlockRows) {
      size_t count = std::min(kBlockRows, end - b);
      ScoreRowsF(plane.fdata() + b * plane.stride(), count, plane.stride(),
                 fw.data(), plane.stride(), sbuf);
      for (size_t i = 0; i < count; ++i) {
        float sf = sbuf[i];
        // NaN fails the first comparison, -inf (overflowed row, bound
        // invalid) the second — both stay candidates for exact
        // rescoring; only provably-out rows are skipped.
        if (sf <= fcut && sf != kNegInfF) continue;
        size_t r = b + i;
        cands.push_back(Candidate{static_cast<uint32_t>(r), sf});
        double sd = sf;
        if (std::isfinite(sd) && (!ftop.Full() || sd > ftop.Worst()) &&
            (!filter || filter(ids[r]))) {
          ftop.Offer(sd, ids[r]);
          if (ftop.Full()) {
            double cut = ftop.Worst() - 3.0 * eps_max;
            float f = static_cast<float>(cut);
            // Round-to-nearest may land above `cut`; step down one ulp
            // so (double)fcut <= cut always holds.
            if (static_cast<double>(f) > cut) f = std::nextafterf(f, kLowestF);
            fcut = f;
          }
        }
      }
    }
  };
  if (shards <= 1) {
    scan_shard(0);
  } else {
    // A throwing filter predicate (the only user code inside the shard
    // closures) fails the scan as a Status instead of the process.
    VELOX_RETURN_NOT_OK(ParallelFor(pool, shards, scan_shard));
  }

  // Final cutoff from Tf, the global k-th largest finite eligible
  // float score (-inf until k such rows exist, pruning nothing). The
  // global Tf is >= every shard's running value, so each shard's
  // candidate list is a superset of what this cutoff admits.
  double cutoff = kNegInf;
  {
    std::vector<double> floats;
    floats.reserve(shards * k);
    for (BoundedTopK& ftop : float_tops) {
      for (const TopKEntry& e : ftop.entries()) floats.push_back(e.score);
    }
    if (floats.size() >= k) {
      std::nth_element(floats.begin(), floats.begin() + (k - 1), floats.end(),
                       std::greater<double>());
      cutoff = floats[k - 1] - 3.0 * eps_max;
    }
  }

  // Phase 2 (serial, tiny): exact double rescore of the surviving
  // candidates — typically ~k rows plus whatever sits within eps of
  // the boundary.
  BoundedTopK top(k);
  for (const std::vector<Candidate>& cands : shard_cands) {
    for (const Candidate& c : cands) {
      double sf = c.sf;
      if (sf < cutoff && sf != kNegInf) continue;
      if (filter && !filter(ids[c.row])) continue;  // application policy
      const ItemFactorPlane::RowSpan row = plane.row_span(c.row);
      top.Offer(DotKernel(row.data, weights.data(), row.dim), row.item_id);
    }
  }
  return top.TakeSorted();
}

}  // namespace

FeatureResolver::FeatureResolver(StorageClient* client, std::string table_prefix)
    : client_(client), table_prefix_(std::move(table_prefix)) {
  VELOX_CHECK(client_ != nullptr);
  VELOX_CHECK(!table_prefix_.empty());
}

std::string FeatureResolver::TableForVersion(int32_t version) const {
  return StrFormat("%s_v%d", table_prefix_.c_str(), version);
}

Result<DenseVector> FeatureResolver::Resolve(const ModelVersion& version,
                                             const Item& item, bool* served_remote,
                                             StorageOpReport* report) const {
  if (served_remote != nullptr) *served_remote = false;
  if (client_ == nullptr) {
    return version.features->Features(item);
  }
  VELOX_ASSIGN_OR_RETURN(
      Value bytes,
      client_->Get(TableForVersion(version.version), item.id, served_remote, report));
  return DecodeFactor(bytes);
}

std::vector<Result<DenseVector>> FeatureResolver::ResolveBatch(
    const ModelVersion& version, const std::vector<Item>& items, bool* served_remote,
    StorageOpReport* report) const {
  if (served_remote != nullptr) *served_remote = false;
  std::vector<Result<DenseVector>> out;
  out.reserve(items.size());
  if (client_ == nullptr) {
    for (const Item& item : items) out.push_back(version.features->Features(item));
    return out;
  }
  // Chunked so one giant batch cannot blow the per-op storage deadline:
  // each chunk is its own MultiGet with its own retry/deadline budget.
  constexpr size_t kMaxKeysPerOp = 256;
  const std::string table = TableForVersion(version.version);
  for (size_t begin = 0; begin < items.size(); begin += kMaxKeysPerOp) {
    const size_t end = std::min(items.size(), begin + kMaxKeysPerOp);
    std::vector<Key> keys;
    keys.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) keys.push_back(items[i].id);
    MultiGetResult got = client_->MultiGet(table, keys);
    if (served_remote != nullptr && got.any_remote) *served_remote = true;
    if (report != nullptr) {
      report->attempts = std::max(report->attempts, got.report.attempts);
      report->hedged |= got.report.hedged;
      report->deadline_missed |= got.report.deadline_missed;
      report->backoff_nanos += got.report.backoff_nanos;
      report->sim_nanos += got.report.sim_nanos;
    }
    for (Result<Value>& v : got.values) {
      if (v.ok()) {
        out.push_back(DecodeFactor(v.value()));
      } else {
        out.push_back(v.status());
      }
    }
  }
  return out;
}

Value EncodeFactor(const DenseVector& v) {
  ByteWriter w;
  w.PutDoubleVector(v.values());
  return w.Release();
}

Result<DenseVector> DecodeFactor(const Value& bytes) {
  ByteReader r(bytes);
  VELOX_ASSIGN_OR_RETURN(std::vector<double> values, r.GetDoubleVector());
  return DenseVector(std::move(values));
}

PredictionService::PredictionService(PredictionServiceOptions options,
                                     ModelRegistry* registry, UserWeightStore* weights,
                                     Bootstrapper* bootstrapper,
                                     FeatureCache* feature_cache,
                                     PredictionCache* prediction_cache,
                                     FeatureResolver resolver)
    : options_(options),
      registry_(registry),
      weights_(weights),
      bootstrapper_(bootstrapper),
      feature_cache_(feature_cache),
      prediction_cache_(prediction_cache),
      resolver_(std::move(resolver)),
      stale_scores_(std::max<size_t>(1, options.stale_score_capacity)) {
  VELOX_CHECK(registry_ != nullptr);
  VELOX_CHECK(weights_ != nullptr);
  VELOX_CHECK(bootstrapper_ != nullptr);
  VELOX_CHECK(feature_cache_ != nullptr);
  VELOX_CHECK(prediction_cache_ != nullptr);
}

Result<FeaturePtr> PredictionService::ResolveFeatures(const ModelVersion& version,
                                                      const Item& item) {
  StageTimer untimed(nullptr);
  return ResolveFeatures(version, item, untimed);
}

Result<FeaturePtr> PredictionService::ResolveFeatures(const ModelVersion& version,
                                                      const Item& item,
                                                      StageTimer& timer) {
  coalesce_keys_.fetch_add(1, std::memory_order_relaxed);
  if (options_.use_feature_cache) {
    // Hit fast path: a refcount bump, no allocation, no batch
    // bookkeeping. Cache hits are always local.
    StageTimer::Scope span(timer, Stage::kFeatureResolveLocal);
    FeaturePtr hit = feature_cache_->Get(item.id);
    if (hit != nullptr) {
      coalesce_hits_.fetch_add(1, std::memory_order_relaxed);
      return Result<FeaturePtr>(std::move(hit));
    }
  }
  std::vector<Result<FeaturePtr>> one = ResolveMisses(version, {item}, timer);
  return std::move(one.front());
}

std::vector<Result<FeaturePtr>> PredictionService::BatchResolveFeatures(
    const ModelVersion& version, const std::vector<Item>& items, StageTimer& timer) {
  coalesce_keys_.fetch_add(items.size(), std::memory_order_relaxed);
  std::vector<std::optional<Result<FeaturePtr>>> slots(items.size());

  // Duplicate items fold into their first occurrence: one cache probe,
  // one fetch, shared handle for every copy.
  std::unordered_map<uint64_t, size_t> first;
  first.reserve(items.size());
  std::vector<size_t> rep_of(items.size());
  std::vector<size_t> unique_pos;
  unique_pos.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    auto [it, inserted] = first.emplace(items[i].id, i);
    if (inserted) {
      unique_pos.push_back(i);
    } else {
      coalesce_merged_.fetch_add(1, std::memory_order_relaxed);
    }
    rep_of[i] = it->second;
  }

  // One cache probe per unique item — the same per-item probe
  // discipline as the per-key path, so cache counters stay faithful.
  std::vector<Item> misses;
  std::vector<size_t> miss_pos;
  {
    StageTimer::Scope span(timer, Stage::kFeatureResolveLocal);
    for (size_t pos : unique_pos) {
      if (options_.use_feature_cache) {
        FeaturePtr hit = feature_cache_->Get(items[pos].id);
        if (hit != nullptr) {
          coalesce_hits_.fetch_add(1, std::memory_order_relaxed);
          slots[pos] = Result<FeaturePtr>(std::move(hit));
          continue;
        }
      }
      misses.push_back(items[pos]);
      miss_pos.push_back(pos);
    }
  }

  if (!misses.empty()) {
    std::vector<Result<FeaturePtr>> resolved = ResolveMisses(version, misses, timer);
    for (size_t j = 0; j < misses.size(); ++j) {
      slots[miss_pos[j]] = std::move(resolved[j]);
    }
  }

  std::vector<Result<FeaturePtr>> out;
  out.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) out.push_back(*slots[rep_of[i]]);
  return out;
}

std::vector<Result<FeaturePtr>> PredictionService::ResolveMisses(
    const ModelVersion& version, const std::vector<Item>& misses, StageTimer& timer) {
  std::vector<std::optional<Result<FeaturePtr>>> out(misses.size());
  StageTimer::Scope span(timer, Stage::kFeatureResolveLocal);

  // Claim each miss: the inserter owns the fetch, everyone else waits
  // on the owner's Flight and shares its result.
  struct Claim {
    std::shared_ptr<Flight> flight;
    bool won = false;
  };
  std::vector<Claim> claims(misses.size());
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    for (size_t i = 0; i < misses.size(); ++i) {
      auto [it, inserted] =
          flights_.emplace(std::make_pair(version.version, misses[i].id), nullptr);
      if (inserted) it->second = std::make_shared<Flight>();
      claims[i].flight = it->second;
      claims[i].won = inserted;
    }
  }

  std::vector<size_t> won;
  std::vector<Item> fetch;
  for (size_t i = 0; i < misses.size(); ++i) {
    if (!claims[i].won) continue;
    won.push_back(i);
    fetch.push_back(misses[i]);
  }

  bool any_remote = false;
  StorageOpReport report;
  if (!fetch.empty()) {
    coalesce_fetches_.fetch_add(fetch.size(), std::memory_order_relaxed);
    std::vector<Result<DenseVector>> fetched =
        resolver_.ResolveBatch(version, fetch, &any_remote, &report);
    for (size_t j = 0; j < won.size(); ++j) {
      const size_t i = won[j];
      Flight& flight = *claims[i].flight;
      if (fetched[j].ok()) {
        auto ptr = std::make_shared<const DenseVector>(std::move(fetched[j]).value());
        if (options_.use_feature_cache) feature_cache_->Put(misses[i].id, ptr);
        {
          std::lock_guard<std::mutex> lock(flight.mu);
          flight.finished = true;
          flight.value = ptr;
        }
        out[i] = Result<FeaturePtr>(std::move(ptr));
      } else {
        {
          std::lock_guard<std::mutex> lock(flight.mu);
          flight.finished = true;
          flight.status = fetched[j].status();
        }
        out[i] = fetched[j].status();
      }
      flight.cv.notify_all();
      // Retire the flight: waiters hold their own shared_ptr, and a
      // failed fetch must be retried by the next request, not pinned.
      {
        std::lock_guard<std::mutex> lock(flights_mu_);
        auto it = flights_.find(std::make_pair(version.version, misses[i].id));
        if (it != flights_.end() && it->second == claims[i].flight) flights_.erase(it);
      }
    }
  }

  for (size_t i = 0; i < misses.size(); ++i) {
    if (claims[i].won) continue;
    coalesce_flight_waits_.fetch_add(1, std::memory_order_relaxed);
    Flight& flight = *claims[i].flight;
    std::unique_lock<std::mutex> lock(flight.mu);
    flight.cv.wait(lock, [&flight] { return flight.finished; });
    out[i] = flight.status.ok() ? Result<FeaturePtr>(flight.value)
                                : Result<FeaturePtr>(flight.status);
  }

  span.Stop(any_remote ? Stage::kFeatureResolveRemote : Stage::kFeatureResolveLocal);
  // Simulated retry/hedge waits are logically part of the resolve but
  // belong to their own stage in the breakdown: they measure the fault
  // plan, not the storage path.
  if (report.backoff_nanos > 0) {
    timer.Add(Stage::kStorageBackoff, static_cast<double>(report.backoff_nanos) / 1e3);
  }

  std::vector<Result<FeaturePtr>> ret;
  ret.reserve(misses.size());
  for (size_t i = 0; i < misses.size(); ++i) ret.push_back(std::move(*out[i]));
  return ret;
}

size_t PredictionService::WarmFeatures(const ModelVersion& version,
                                       const std::vector<uint64_t>& item_ids) {
  if (item_ids.empty()) return 0;
  std::vector<Item> items(item_ids.size());
  for (size_t i = 0; i < item_ids.size(); ++i) items[i].id = item_ids[i];
  return WarmFeatures(version, items);
}

size_t PredictionService::WarmFeatures(const ModelVersion& version,
                                       const std::vector<Item>& items) {
  if (items.empty()) return 0;
  StageTimer untimed(nullptr);
  std::vector<Result<FeaturePtr>> resolved =
      BatchResolveFeatures(version, items, untimed);
  size_t warmed = 0;
  for (const auto& r : resolved) warmed += r.ok() ? 1 : 0;
  return warmed;
}

Result<double> PredictionService::ScoreItem(const ModelVersion& version, uint64_t uid,
                                            uint64_t user_epoch,
                                            const DenseVector& weights,
                                            const Item& item, StageTimer& timer) {
  PredictionKey key{uid, item.id, user_epoch, version.version};
  if (options_.use_prediction_cache) {
    StageTimer::Scope probe(timer, Stage::kPredictionCacheProbe);
    auto cached = prediction_cache_->Get(key);
    if (cached.has_value()) return *cached;
  }
  VELOX_ASSIGN_OR_RETURN(FeaturePtr features, ResolveFeatures(version, item, timer));
  if (features->dim() != weights.dim()) {
    return Status::Internal(StrFormat("feature dim %zu != weight dim %zu",
                                      features->dim(), weights.dim()));
  }
  StageTimer::Scope kernel(timer, Stage::kKernelScore);
  double score = Dot(weights, *features);
  kernel.Stop();
  if (options_.use_prediction_cache) {
    prediction_cache_->Put(key, score);
  }
  NoteScore(uid, item.id, score);
  return score;
}

void PredictionService::NoteScore(uint64_t uid, uint64_t item_id, double score) {
  if (!options_.degrade_on_unavailable) return;
  stale_scores_.Put(PredictionKey{uid, item_id, 0, 0}, score);
  std::lock_guard<std::mutex> lock(fallback_mu_);
  score_sum_ += score;
  ++score_count_;
}

ScoredItem PredictionService::DegradedAnswer(uint64_t uid, uint64_t item_id,
                                             StageTimer& timer) {
  StageTimer::Scope span(timer, Stage::kDegradedServe);
  ScoredItem out;
  out.item_id = item_id;
  out.degraded = true;
  auto stale = stale_scores_.Get(PredictionKey{uid, item_id, 0, 0});
  if (stale.has_value()) {
    out.score = *stale;
    degraded_stale_.fetch_add(1, std::memory_order_relaxed);
  } else {
    out.score = fallback_score();
    degraded_mean_.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

ScoredItem PredictionService::ShedAnswer(uint64_t uid, uint64_t item_id) {
  StageTimer timer(stages_);
  return DegradedAnswer(uid, item_id, timer);
}

Result<ScoredItem> PredictionService::Predict(uint64_t uid, const Item& item) {
  StageTimer timer(stages_);
  VELOX_ASSIGN_OR_RETURN(std::shared_ptr<const ModelVersion> version,
                         registry_->Current());
  StageTimer::Scope lookup(timer, Stage::kUserWeightLookup);
  DenseVector weights =
      weights_->GetOrBootstrapWeights(uid, bootstrapper_->MeanWeights());
  uint64_t epoch = weights_->Epoch(uid);
  lookup.Stop();
  Result<double> score = ScoreItem(*version, uid, epoch, weights, item, timer);
  if (!score.ok()) {
    // Transient storage failure (drops, partitions, deadline misses):
    // serve a bounded degraded answer instead of erroring the request.
    // Definitive errors (unknown item, decode failure) still propagate.
    if (options_.degrade_on_unavailable && score.status().IsUnavailable()) {
      return DegradedAnswer(uid, item.id, timer);
    }
    return score.status();
  }
  ScoredItem out;
  out.item_id = item.id;
  out.score = score.value();
  return out;
}

Result<std::vector<ScoredItem>> PredictionService::PredictBatch(
    uint64_t uid, const std::vector<Item>& items) {
  std::vector<ScoredItem> out(items.size());
  if (items.empty()) return out;
  StageTimer timer(stages_);
  VELOX_ASSIGN_OR_RETURN(std::shared_ptr<const ModelVersion> version,
                         registry_->Current());
  StageTimer::Scope lookup(timer, Stage::kUserWeightLookup);
  DenseVector weights =
      weights_->GetOrBootstrapWeights(uid, bootstrapper_->MeanWeights());
  uint64_t epoch = weights_->Epoch(uid);
  lookup.Stop();

  // Phase 1: one prediction-cache probe per item, exactly like the
  // per-key path.
  std::vector<std::optional<double>> cached_scores(items.size());
  if (options_.use_prediction_cache) {
    StageTimer::Scope probe(timer, Stage::kPredictionCacheProbe);
    for (size_t i = 0; i < items.size(); ++i) {
      cached_scores[i] =
          prediction_cache_->Get(PredictionKey{uid, items[i].id, epoch,
                                               version->version});
    }
  }

  // Phase 2: the misses resolve features through the coalescer — one
  // batched storage fetch for the whole request, duplicates merged.
  std::vector<Item> to_score;
  std::vector<size_t> score_pos;
  for (size_t i = 0; i < items.size(); ++i) {
    if (cached_scores[i].has_value()) {
      out[i].item_id = items[i].id;
      out[i].score = *cached_scores[i];
    } else {
      to_score.push_back(items[i]);
      score_pos.push_back(i);
    }
  }
  std::vector<Result<FeaturePtr>> features =
      BatchResolveFeatures(*version, to_score, timer);

  // Phase 3: score. Scores are w_u' f — the same Dot over the same
  // resolved factors the per-key path uses, so batched output is
  // bit-identical to per-key output. Degradation applies per item.
  for (size_t j = 0; j < to_score.size(); ++j) {
    const size_t i = score_pos[j];
    out[i].item_id = items[i].id;
    if (!features[j].ok()) {
      if (!options_.degrade_on_unavailable || !features[j].status().IsUnavailable()) {
        return features[j].status();
      }
      out[i] = DegradedAnswer(uid, items[i].id, timer);
      continue;
    }
    const DenseVector& f = *features[j].value();
    if (f.dim() != weights.dim()) {
      return Status::Internal(StrFormat("feature dim %zu != weight dim %zu", f.dim(),
                                        weights.dim()));
    }
    StageTimer::Scope kernel(timer, Stage::kKernelScore);
    double score = Dot(weights, f);
    kernel.Stop();
    if (options_.use_prediction_cache) {
      prediction_cache_->Put(PredictionKey{uid, items[i].id, epoch, version->version},
                             score);
    }
    NoteScore(uid, items[i].id, score);
    out[i].score = score;
  }
  return out;
}

Result<TopKResult> PredictionService::TopK(uint64_t uid,
                                           const std::vector<Item>& candidates,
                                           size_t k, const BanditPolicy* policy,
                                           Rng* rng) {
  if (candidates.empty()) {
    return Status::InvalidArgument("topK requires a non-empty candidate set");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  StageTimer timer(stages_);
  VELOX_ASSIGN_OR_RETURN(std::shared_ptr<const ModelVersion> version,
                         registry_->Current());
  StageTimer::Scope lookup(timer, Stage::kUserWeightLookup);
  DenseVector weights =
      weights_->GetOrBootstrapWeights(uid, bootstrapper_->MeanWeights());
  uint64_t epoch = weights_->Epoch(uid);
  lookup.Stop();

  const bool needs_uncertainty = policy != nullptr;
  std::vector<BanditCandidate> scored(candidates.size());
  std::vector<bool> candidate_degraded(candidates.size(), false);
  bool any_degraded = false;

  // Phase 1: prediction-cache probes. Skipped in uncertainty mode,
  // where features are needed regardless of a score hit (the per-key
  // path resolved first there too).
  std::vector<std::optional<double>> cached_scores(candidates.size());
  if (!needs_uncertainty && options_.use_prediction_cache) {
    StageTimer::Scope probe(timer, Stage::kPredictionCacheProbe);
    for (size_t i = 0; i < candidates.size(); ++i) {
      cached_scores[i] = prediction_cache_->Get(
          PredictionKey{uid, candidates[i].id, epoch, version->version});
    }
  }

  // Phase 2: one coalesced feature resolution for everything that
  // still needs features — the whole candidate set's storage misses
  // travel as one MultiGet instead of one round trip per candidate.
  std::vector<Item> to_resolve;
  std::vector<size_t> resolve_pos;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!cached_scores[i].has_value()) {
      to_resolve.push_back(candidates[i]);
      resolve_pos.push_back(i);
    }
  }
  std::vector<Result<FeaturePtr>> features =
      BatchResolveFeatures(*version, to_resolve, timer);
  std::vector<ptrdiff_t> feat_idx(candidates.size(), -1);
  for (size_t j = 0; j < resolve_pos.size(); ++j) {
    feat_idx[resolve_pos[j]] = static_cast<ptrdiff_t>(j);
  }

  // Phase 3: per-candidate scoring; same kernels and per-item cache
  // semantics as the per-key path, so scores are bit-identical.
  for (size_t i = 0; i < candidates.size(); ++i) {
    scored[i].item_id = candidates[i].id;
    if (cached_scores[i].has_value()) {
      scored[i].score = *cached_scores[i];
      continue;
    }
    Result<FeaturePtr>& feat = features[static_cast<size_t>(feat_idx[i])];
    if (!feat.ok()) {
      // A transiently-unresolvable candidate gets a degraded score (and
      // zero uncertainty — a degraded pick should never look like an
      // attractive exploration target); the rest of the set still gets
      // real scores. Definitive errors fail the whole request.
      if (!options_.degrade_on_unavailable || !feat.status().IsUnavailable()) {
        return feat.status();
      }
      ScoredItem fallback = DegradedAnswer(uid, candidates[i].id, timer);
      scored[i].score = fallback.score;
      scored[i].uncertainty = 0.0;
      candidate_degraded[i] = true;
      any_degraded = true;
      continue;
    }
    const DenseVector& f = *feat.value();
    if (f.dim() != weights.dim()) {
      return Status::Internal(StrFormat("feature dim %zu != weight dim %zu", f.dim(),
                                        weights.dim()));
    }
    std::optional<double> cached;
    if (needs_uncertainty && options_.use_prediction_cache) {
      // Uncertainty mode resolves first, then probes — this is that
      // probe; non-uncertainty mode already probed in phase 1.
      StageTimer::Scope probe(timer, Stage::kPredictionCacheProbe);
      cached = prediction_cache_->Get(
          PredictionKey{uid, candidates[i].id, epoch, version->version});
    }
    if (cached.has_value()) {
      scored[i].score = *cached;
    } else {
      StageTimer::Scope kernel(timer, Stage::kKernelScore);
      double score = Dot(weights, f);
      kernel.Stop();
      if (options_.use_prediction_cache) {
        prediction_cache_->Put(
            PredictionKey{uid, candidates[i].id, epoch, version->version}, score);
      }
      NoteScore(uid, candidates[i].id, score);
      scored[i].score = score;
    }
    if (needs_uncertainty) {
      StageTimer::Scope bandit(timer, Stage::kBanditOrder);
      scored[i].uncertainty = weights_->Uncertainty(uid, f);
    }
  }

  StageTimer::Scope bandit(timer, Stage::kBanditOrder);
  std::vector<size_t> order;
  if (policy != nullptr) {
    order = policy->Rank(scored, rng);
  } else {
    order = GreedyPolicy().Rank(scored, rng);
  }
  bandit.Stop();

  TopKResult result;
  result.model_version = version->version;
  result.degraded = any_degraded;
  size_t take = std::min(k, order.size());
  result.items.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    const BanditCandidate& c = scored[order[i]];
    result.items.push_back(
        ScoredItem{c.item_id, c.score, c.uncertainty, candidate_degraded[order[i]]});
  }
  result.top_is_exploratory =
      !order.empty() && order[0] != BanditPolicy::GreedyTop(scored);
  return result;
}

size_t PredictionService::EstimateEligibleRows(const ItemFactorPlane& plane,
                                               const ItemFilter& filter) {
  const size_t n = plane.num_items();
  if (filter == nullptr || n == 0) return n;
  // Evenly-spaced sample — deterministic, cheap, and unbiased enough
  // for a fan-out decision (the cost of a misestimate is a few shards,
  // not a wrong answer).
  constexpr size_t kMaxSamples = 512;
  const size_t step = std::max<size_t>(1, n / kMaxSamples);
  const std::vector<uint64_t>& ids = plane.item_ids();
  size_t sampled = 0, kept = 0;
  for (size_t r = 0; r < n; r += step) {
    ++sampled;
    if (filter(ids[r])) ++kept;
  }
  return (n * kept) / sampled;
}

size_t PredictionService::PlannedScanShards(const ItemFactorPlane& plane,
                                            const ItemFilter& filter,
                                            bool parallel) const {
  if (!parallel || scan_pool_ == nullptr || scan_pool_->num_threads() <= 1) return 1;
  // Shards below options_.topk_min_shard_rows pay more in fan-out than
  // they save in scoring; small catalogs stay serial. The floor is
  // applied to the *filter-adjusted* row estimate: a raw-plane count
  // would fan a heavily-filtered scan out over rows it mostly skips.
  const size_t min_shard_rows = std::max<size_t>(1, options_.topk_min_shard_rows);
  const size_t eligible = EstimateEligibleRows(plane, filter);
  return std::min(scan_pool_->num_threads(),
                  std::max<size_t>(1, eligible / min_shard_rows));
}

Result<TopKResult> PredictionService::ScanPlane(const ItemFactorPlane& plane,
                                                int32_t model_version,
                                                const DenseVector& weights,
                                                size_t k, const ItemFilter& filter,
                                                bool parallel) const {
  const size_t n = plane.num_items();
  const size_t shards = PlannedScanShards(plane, filter, parallel);

  // Stride-padded copy of the weights so plane rows can be scored over
  // their full padded stride (bit-identical, no per-row kernel tail).
  std::vector<double> wpad(plane.stride(), 0.0);
  std::copy(weights.data(), weights.data() + std::min(weights.dim(), plane.dim()),
            wpad.begin());

  std::vector<TopKEntry> best;
  if (options_.topk_mixed_precision && plane.float_ok()) {
    VELOX_ASSIGN_OR_RETURN(
        best, MixedPrecisionScan(plane, weights, k, filter, shards, scan_pool_));
  } else if (shards <= 1) {
    BoundedTopK top(k);
    ScanPlaneRange(plane, wpad.data(), 0, n, filter, &top);
    best = top.TakeSorted();
  } else {
    // Contiguous shards with deterministic boundaries: shard s scans
    // [s*per, ...). Each keeps its own bounded heap; the merge ranks
    // every surviving entry under the same total order the serial scan
    // uses, so the parallel result is bit-identical to serial.
    std::vector<BoundedTopK> tops(shards, BoundedTopK(k));
    size_t per = (n + shards - 1) / shards;
    VELOX_RETURN_NOT_OK(ParallelFor(scan_pool_, shards, [&](size_t s) {
      size_t begin = s * per;
      size_t end = std::min(n, begin + per);
      if (begin < end) {
        ScanPlaneRange(plane, wpad.data(), begin, end, filter, &tops[s]);
      }
    }));
    for (BoundedTopK& top : tops) {
      for (const TopKEntry& e : top.entries()) best.push_back(e);
    }
    std::sort(best.begin(), best.end(), BetterTopKEntry);
    if (best.size() > k) best.resize(k);
  }

  TopKResult result;
  result.model_version = model_version;
  result.items.reserve(best.size());
  for (const TopKEntry& e : best) {
    result.items.push_back(ScoredItem{e.id, e.score, 0.0});
  }
  return result;
}

TopKResult PredictionService::AnnScan(const IvfIndex& index, int32_t model_version,
                                      const DenseVector& weights, size_t k,
                                      const ItemFilter& filter, bool use_pq,
                                      StageTimer& timer) {
  const ItemFactorPlane& plane = index.plane();
  // Stride-padded weights, as in ScanPlane: rescoring the full padded
  // stride is bit-identical to the dim-length product (zero-padding
  // invariance), and the probe's centroid ranking reuses the buffer.
  std::vector<double> wpad(plane.stride(), 0.0);
  std::copy(weights.data(), weights.data() + std::min(weights.dim(), plane.dim()),
            wpad.begin());
  const size_t nprobe =
      options_.ann_nprobe != 0 ? options_.ann_nprobe : index.default_nprobe();

  IvfIndex::ProbeStats stats;
  std::vector<uint32_t> rows;
  {
    StageTimer::Scope probe(timer, Stage::kAnnCandidateProbe);
    if (use_pq && index.has_pq()) {
      const size_t shortlist =
          std::max(k, k * std::max<size_t>(1, index.options().rescore_multiple));
      rows = index.ProbePq(wpad.data(), nprobe, shortlist, filter, &stats);
    } else {
      rows = index.Probe(wpad.data(), nprobe, filter, &stats);
    }
  }

  TopKResult result;
  result.model_version = model_version;
  {
    StageTimer::Scope rescore(timer, Stage::kAnnRescore);
    BoundedTopK top(k);
    for (uint32_t r : rows) {
      const ItemFactorPlane::RowSpan row = plane.row_span(r);
      top.Offer(DotKernel(row.data, wpad.data(), row.padded), row.item_id);
    }
    for (const TopKEntry& e : top.TakeSorted()) {
      result.items.push_back(ScoredItem{e.id, e.score, 0.0});
    }
  }

  ann_queries_.fetch_add(1, std::memory_order_relaxed);
  ann_probes_.fetch_add(stats.lists_probed, std::memory_order_relaxed);
  ann_candidates_.fetch_add(stats.candidates, std::memory_order_relaxed);
  ann_rescored_.fetch_add(rows.size(), std::memory_order_relaxed);
  return result;
}

PredictionService::TopKAllMode PredictionService::ResolveTopKAllMode(
    const ModelVersion& version, const ItemFactorPlane& plane, size_t k,
    const ItemFilter& filter, TopKAllMode mode) const {
  if (mode != TopKAllMode::kAuto) return mode;
  // kAuto takes the ANN path only when the version carries an index,
  // k is small enough that the probe's candidate set dwarfs it, and
  // the *filter-adjusted* catalog estimate clears the threshold — a
  // filter that keeps few items makes the exact scan cheap and the
  // probed lists mostly empty.
  constexpr size_t kMaxAutoAnnK = 1000;
  if (version.ann_index != nullptr && k <= kMaxAutoAnnK &&
      EstimateEligibleRows(plane, filter) >= options_.topk_auto_ann_min_rows) {
    return TopKAllMode::kIvf;
  }
  return TopKAllMode::kPlaneParallel;
}

Result<TopKResult> PredictionService::ExecuteTopKAll(
    const ModelVersion& version, const MaterializedFeatureFunction& materialized,
    const ItemFactorPlane& plane, const DenseVector& weights, size_t k,
    const ItemFilter& filter, TopKAllMode resolved, StageTimer& timer) {
  if (resolved == TopKAllMode::kIvf || resolved == TopKAllMode::kIvfPq) {
    if (version.ann_index == nullptr) {
      return Status::FailedPrecondition(
          "TopKAll ANN mode requires an index; the current version was "
          "installed without one (see ModelRegistry::SetAnnBuild)");
    }
    return AnnScan(*version.ann_index, version.version, weights, k, filter,
                   resolved == TopKAllMode::kIvfPq, timer);
  }

  // The whole-catalog exact scan is kernel work — it bypasses the
  // per-item caches by design, so the scan's time all lands in one
  // stage.
  StageTimer::Scope kernel(timer, Stage::kKernelScore);
  if (resolved == TopKAllMode::kHeapScan) {
    // Legacy per-item walk of the hash-map table, kept for ablation.
    // Same bounded heap and tie-break order as the plane scan, so the
    // output is identical — only the memory access pattern differs
    // (two dependent pointer loads per item vs a streaming read).
    BoundedTopK top(k);
    for (const auto& [item_id, factor] : materialized.table()) {
      if (filter && !filter(item_id)) continue;  // application policy
      if (factor.dim() != weights.dim()) continue;  // defensive: skip bad rows
      top.Offer(Dot(weights, factor), item_id);
    }
    TopKResult result;
    result.model_version = version.version;
    for (const TopKEntry& e : top.TakeSorted()) {
      result.items.push_back(ScoredItem{e.id, e.score, 0.0});
    }
    return result;
  }
  return ScanPlane(plane, version.version, weights, k, filter,
                   resolved != TopKAllMode::kPlaneSerial);
}

Result<TopKResult> PredictionService::TopKAll(uint64_t uid, size_t k,
                                              const ItemFilter& filter,
                                              TopKAllMode mode) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  StageTimer timer(stages_);
  VELOX_ASSIGN_OR_RETURN(std::shared_ptr<const ModelVersion> version,
                         registry_->Current());
  const auto* materialized =
      dynamic_cast<const MaterializedFeatureFunction*>(version->features.get());
  if (materialized == nullptr) {
    return Status::FailedPrecondition(
        "TopKAll requires an in-process materialized feature table");
  }
  // Versions registered through the registry carry the plane; fall
  // back to the feature function's own copy otherwise.
  std::shared_ptr<const ItemFactorPlane> plane = version->item_plane;
  if (plane == nullptr) plane = materialized->plane();
  const TopKAllMode resolved = ResolveTopKAllMode(*version, *plane, k, filter, mode);

  StageTimer::Scope lookup(timer, Stage::kUserWeightLookup);
  DenseVector weights =
      weights_->GetOrBootstrapWeights(uid, bootstrapper_->MeanWeights());
  lookup.Stop();
  return ExecuteTopKAll(*version, *materialized, *plane, weights, k, filter, resolved,
                        timer);
}

Result<std::vector<TopKResult>> PredictionService::TopKAllBatch(
    const std::vector<uint64_t>& uids, size_t k, const ItemFilter& filter,
    TopKAllMode mode) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  VELOX_ASSIGN_OR_RETURN(std::shared_ptr<const ModelVersion> version,
                         registry_->Current());
  const auto* materialized =
      dynamic_cast<const MaterializedFeatureFunction*>(version->features.get());
  if (materialized == nullptr) {
    return Status::FailedPrecondition(
        "TopKAll requires an in-process materialized feature table");
  }
  std::shared_ptr<const ItemFactorPlane> plane = version->item_plane;
  if (plane == nullptr) plane = materialized->plane();
  // One version/plane/mode resolution amortized over the whole batch;
  // the plane (or the index's inverted lists) stays cache-hot across
  // consecutive users.
  const TopKAllMode resolved = ResolveTopKAllMode(*version, *plane, k, filter, mode);

  std::vector<TopKResult> results;
  results.reserve(uids.size());
  const DenseVector mean = bootstrapper_->MeanWeights();
  StageTimer timer(stages_);
  for (uint64_t uid : uids) {
    StageTimer::Scope lookup(timer, Stage::kUserWeightLookup);
    DenseVector weights = weights_->GetOrBootstrapWeights(uid, mean);
    lookup.Stop();
    VELOX_ASSIGN_OR_RETURN(TopKResult result,
                           ExecuteTopKAll(*version, *materialized, *plane, weights, k,
                                          filter, resolved, timer));
    results.push_back(std::move(result));
    timer.Flush();  // one histogram sample per user, like TopKAll
  }
  return results;
}

}  // namespace velox
