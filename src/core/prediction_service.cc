#include "core/prediction_service.h"

#include <algorithm>
#include <queue>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace velox {

FeatureResolver::FeatureResolver(StorageClient* client, std::string table_prefix)
    : client_(client), table_prefix_(std::move(table_prefix)) {
  VELOX_CHECK(client_ != nullptr);
  VELOX_CHECK(!table_prefix_.empty());
}

std::string FeatureResolver::TableForVersion(int32_t version) const {
  return StrFormat("%s_v%d", table_prefix_.c_str(), version);
}

Result<DenseVector> FeatureResolver::Resolve(const ModelVersion& version,
                                             const Item& item) const {
  if (client_ == nullptr) {
    return version.features->Features(item);
  }
  VELOX_ASSIGN_OR_RETURN(Value bytes,
                         client_->Get(TableForVersion(version.version), item.id));
  return DecodeFactor(bytes);
}

Value EncodeFactor(const DenseVector& v) {
  ByteWriter w;
  w.PutDoubleVector(v.values());
  return w.Release();
}

Result<DenseVector> DecodeFactor(const Value& bytes) {
  ByteReader r(bytes);
  VELOX_ASSIGN_OR_RETURN(std::vector<double> values, r.GetDoubleVector());
  return DenseVector(std::move(values));
}

PredictionService::PredictionService(PredictionServiceOptions options,
                                     ModelRegistry* registry, UserWeightStore* weights,
                                     Bootstrapper* bootstrapper,
                                     FeatureCache* feature_cache,
                                     PredictionCache* prediction_cache,
                                     FeatureResolver resolver)
    : options_(options),
      registry_(registry),
      weights_(weights),
      bootstrapper_(bootstrapper),
      feature_cache_(feature_cache),
      prediction_cache_(prediction_cache),
      resolver_(std::move(resolver)) {
  VELOX_CHECK(registry_ != nullptr);
  VELOX_CHECK(weights_ != nullptr);
  VELOX_CHECK(bootstrapper_ != nullptr);
  VELOX_CHECK(feature_cache_ != nullptr);
  VELOX_CHECK(prediction_cache_ != nullptr);
}

Result<DenseVector> PredictionService::ResolveFeatures(const ModelVersion& version,
                                                       const Item& item) {
  if (options_.use_feature_cache) {
    auto cached = feature_cache_->Get(item.id);
    if (cached.has_value()) return std::move(*cached);
  }
  VELOX_ASSIGN_OR_RETURN(DenseVector features, resolver_.Resolve(version, item));
  if (options_.use_feature_cache) {
    feature_cache_->Put(item.id, features);
  }
  return features;
}

Result<double> PredictionService::ScoreItem(const ModelVersion& version, uint64_t uid,
                                            uint64_t user_epoch,
                                            const DenseVector& weights,
                                            const Item& item) {
  PredictionKey key{uid, item.id, user_epoch, version.version};
  if (options_.use_prediction_cache) {
    auto cached = prediction_cache_->Get(key);
    if (cached.has_value()) return *cached;
  }
  VELOX_ASSIGN_OR_RETURN(DenseVector features, ResolveFeatures(version, item));
  if (features.dim() != weights.dim()) {
    return Status::Internal(
        StrFormat("feature dim %zu != weight dim %zu", features.dim(), weights.dim()));
  }
  double score = Dot(weights, features);
  if (options_.use_prediction_cache) {
    prediction_cache_->Put(key, score);
  }
  return score;
}

Result<ScoredItem> PredictionService::Predict(uint64_t uid, const Item& item) {
  VELOX_ASSIGN_OR_RETURN(std::shared_ptr<const ModelVersion> version,
                         registry_->Current());
  DenseVector weights =
      weights_->GetOrBootstrapWeights(uid, bootstrapper_->MeanWeights());
  uint64_t epoch = weights_->Epoch(uid);
  VELOX_ASSIGN_OR_RETURN(double score, ScoreItem(*version, uid, epoch, weights, item));
  ScoredItem out;
  out.item_id = item.id;
  out.score = score;
  return out;
}

Result<TopKResult> PredictionService::TopK(uint64_t uid,
                                           const std::vector<Item>& candidates,
                                           size_t k, const BanditPolicy* policy,
                                           Rng* rng) {
  if (candidates.empty()) {
    return Status::InvalidArgument("topK requires a non-empty candidate set");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  VELOX_ASSIGN_OR_RETURN(std::shared_ptr<const ModelVersion> version,
                         registry_->Current());
  DenseVector weights =
      weights_->GetOrBootstrapWeights(uid, bootstrapper_->MeanWeights());
  uint64_t epoch = weights_->Epoch(uid);

  const bool needs_uncertainty = policy != nullptr;
  std::vector<BanditCandidate> scored(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    VELOX_ASSIGN_OR_RETURN(double score,
                           ScoreItem(*version, uid, epoch, weights, candidates[i]));
    scored[i].item_id = candidates[i].id;
    scored[i].score = score;
    if (needs_uncertainty) {
      // Uncertainty needs the item's features; they are cache-hot after
      // ScoreItem unless the prediction cache short-circuited. Either
      // way this resolve is cache-served in the common case.
      auto features = ResolveFeatures(*version, candidates[i]);
      if (features.ok()) {
        scored[i].uncertainty = weights_->Uncertainty(uid, features.value());
      }
    }
  }

  std::vector<size_t> order;
  if (policy != nullptr) {
    order = policy->Rank(scored, rng);
  } else {
    order = GreedyPolicy().Rank(scored, rng);
  }

  TopKResult result;
  result.model_version = version->version;
  size_t take = std::min(k, order.size());
  result.items.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    const BanditCandidate& c = scored[order[i]];
    result.items.push_back(ScoredItem{c.item_id, c.score, c.uncertainty});
  }
  result.top_is_exploratory =
      !order.empty() && order[0] != BanditPolicy::GreedyTop(scored);
  return result;
}

Result<TopKResult> PredictionService::TopKAll(uint64_t uid, size_t k,
                                              const ItemFilter& filter) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  VELOX_ASSIGN_OR_RETURN(std::shared_ptr<const ModelVersion> version,
                         registry_->Current());
  const auto* materialized =
      dynamic_cast<const MaterializedFeatureFunction*>(version->features.get());
  if (materialized == nullptr) {
    return Status::FailedPrecondition(
        "TopKAll requires an in-process materialized feature table");
  }
  DenseVector weights =
      weights_->GetOrBootstrapWeights(uid, bootstrapper_->MeanWeights());

  // Bounded min-heap over (score, item): the root is the worst of the
  // current best k, so most items are rejected with one comparison
  // after the dot product.
  using Entry = std::pair<double, uint64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (const auto& [item_id, factor] : materialized->table()) {
    if (filter && !filter(item_id)) continue;  // application policy
    if (factor.dim() != weights.dim()) continue;  // defensive: skip bad rows
    double score = Dot(weights, factor);
    if (heap.size() < k) {
      heap.emplace(score, item_id);
    } else if (score > heap.top().first) {
      heap.pop();
      heap.emplace(score, item_id);
    }
  }

  TopKResult result;
  result.model_version = version->version;
  result.items.resize(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    result.items[i] = ScoredItem{heap.top().second, heap.top().first, 0.0};
    heap.pop();
  }
  return result;
}

}  // namespace velox
