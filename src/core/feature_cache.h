// Feature Cache (paper Figure 2, §5 "Caching"): memoizes f(x, θ) per
// item. For materialized f it absorbs remote latent-factor lookups
// (hot Zipfian items stay node-local); for computational f it
// eliminates re-evaluating expensive basis functions. Entries are only
// invalidated by offline retraining, which installs a new θ (§5:
// "because the materialized features for each item are only updated
// during the offline batch retraining, cached items are invalidated
// infrequently").
#ifndef VELOX_CORE_FEATURE_CACHE_H_
#define VELOX_CORE_FEATURE_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/lru.h"
#include "linalg/vector.h"

namespace velox {

// Shared handle to an immutable cached factor. Entries are immutable
// by construction (features only change when retraining installs a new
// θ, which clears the cache wholesale), so hits hand out refcounted
// pointers instead of copying the vector — a hit is allocation-free.
using FeaturePtr = std::shared_ptr<const DenseVector>;

class FeatureCache {
 public:
  explicit FeatureCache(size_t capacity, size_t num_shards = 8);

  // nullptr on miss.
  FeaturePtr Get(uint64_t item_id);
  void Put(uint64_t item_id, DenseVector features);
  void Put(uint64_t item_id, FeaturePtr features);
  bool Invalidate(uint64_t item_id);
  // Full flush — the model-version-swap path.
  void Clear();

  // Most-recently-used item ids (the warm set recomputed during
  // offline retraining, §4.2).
  std::vector<uint64_t> HotItems(size_t limit_per_shard = 64) const;

  CacheStats stats() const { return cache_.stats(); }
  void ResetStats() { cache_.ResetStats(); }
  size_t size() const { return cache_.size(); }

 private:
  LruCache<uint64_t, FeaturePtr> cache_;
};

}  // namespace velox

#endif  // VELOX_CORE_FEATURE_CACHE_H_
