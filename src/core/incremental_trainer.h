// Nearline incremental retraining (the Lambda-Learner extension to the
// paper's offline/online split, see PAPERS.md).
//
// The paper's hybrid loop leaves item factors θ frozen between full
// batch retrains: new observations reach only the per-user weights
// (Eq. 2) until the next all-or-nothing ALS pass. This module closes
// most of that staleness gap at a fraction of the cost:
//
//  * ItemDriftTracker — per-item observation volume and running squared
//    prequential error accumulated on the Observe path, reset when the
//    item's factor is refreshed. Deliberately *volatile*: drift stats
//    are a scheduling hint, not serving state, so they are not written
//    to the user-weight WAL and reset to zero on restart (the staleness
//    detector and kAuto's full-retrain escalation backstop anything a
//    restart forgets). docs/operations.md documents the contract; a
//    pinned test in tests/core/incremental_trainer_test.cc enforces it.
//
//  * SelectDriftedItems — the refresh policy: an item qualifies when
//    its post-refresh observation count or mean squared error crosses
//    the IncrementalPolicy thresholds.
//
//  * IncrementalTrainer — the nearline solve. A *partial* refresh
//    re-solves each drifted item's factor by ridge regression against
//    the current user weights with the user side FROZEN (x_i =
//    (Σ w_u w_uᵀ + λ_i I)⁻¹ Σ w_u y over the item's logged
//    observations); the refreshed factors are merged into the previous
//    version's θ, W is inherited unchanged, and the result is a
//    complete RetrainOutput the normal ModelRegistry install pipeline
//    swaps in (plane build, ANN index, factor distribution, WAL
//    version-reset, cache warming all ride along unchanged). Freezing
//    the user side is what keeps the refreshed factors in the same
//    basis as the untouched ones — alternating over a restricted
//    sub-log would let its user factors wander from the global basis
//    and make the merged model internally inconsistent.
//
// Bit-identity contract: a refresh whose selection covers every item
// in θ and in the log is not "partial" at all — Refresh detects the
// full cover and runs the model's ordinary batch retrain over the full
// log, so its output is byte-identical to
// RetrainScheduler::RetrainNow() given the same seed. Incremental is
// the same system restricted, never an approximation of it.
#ifndef VELOX_CORE_INCREMENTAL_TRAINER_H_
#define VELOX_CORE_INCREMENTAL_TRAINER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "batch/executor.h"
#include "common/result.h"
#include "core/model.h"
#include "core/model_registry.h"
#include "storage/observation_log.h"

namespace velox {

// Per-item accumulation since the item's factor was last refreshed.
struct ItemDriftStat {
  uint64_t item_id = 0;
  int64_t observations = 0;
  // Σ (y − ŷ_pre)² of prequential predictions against this item.
  double squared_error = 0.0;

  double MeanSquaredError() const {
    return observations > 0 ? squared_error / static_cast<double>(observations)
                            : 0.0;
  }
};

// Thread-safe per-node drift accumulator, updated on the Observe hot
// path (one striped-lock map insert per observation). Volatile by
// design — see the header comment.
class ItemDriftTracker {
 public:
  explicit ItemDriftTracker(size_t num_stripes = 16);

  ItemDriftTracker(const ItemDriftTracker&) = delete;
  ItemDriftTracker& operator=(const ItemDriftTracker&) = delete;

  // Accumulates one observation's squared prequential error for `item_id`.
  void Record(uint64_t item_id, double squared_error);

  // All items with nonzero accumulation, sorted by ascending item id
  // (deterministic selection input regardless of map iteration order).
  std::vector<ItemDriftStat> Snapshot() const;

  // Forgets the listed items (their factors were just refreshed).
  void ResetItems(const std::vector<uint64_t>& items);
  // Forgets everything (full retrain / version install).
  void Clear();

  // Observations recorded since the covered items were last reset —
  // the node's pending drift mass.
  int64_t total_observations() const {
    return total_observations_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    int64_t observations = 0;
    double squared_error = 0.0;
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Cell> items;
  };

  Stripe& StripeFor(uint64_t item_id) const;

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<int64_t> total_observations_{0};
};

// When is an item's factor due for a nearline refresh, and when has so
// much of the catalog drifted that incremental stops paying for itself?
struct IncrementalPolicy {
  // Volume trigger: refresh after this many post-refresh observations.
  int64_t min_observations = 8;
  // Error trigger: refresh when the mean squared prequential error
  // since the last refresh reaches this (0 = disabled). Guarded by
  // `error_min_count` so one unlucky observation cannot trigger alone.
  double error_threshold = 0.0;
  int64_t error_min_count = 2;
  // kAuto escalation: when the qualified fraction of the catalog
  // reaches this, run a full retrain instead (drift-mass staleness).
  double auto_full_fraction = 0.35;
};

// Outcome of one drift check.
struct DriftSelection {
  // Qualified item ids, sorted ascending.
  std::vector<uint64_t> items;
  // Items with any drift accumulation at all (selection candidates).
  size_t candidates = 0;
  // Items in the current version's θ.
  size_t catalog_items = 0;
  // items.size() / max(catalog_items, 1) — the kAuto staleness signal.
  double drift_fraction = 0.0;
  // Pending observations on the qualified items.
  int64_t drifted_observations = 0;
};

// Applies `policy` to merged drift stats (sorted by item id).
DriftSelection SelectDriftedItems(const std::vector<ItemDriftStat>& stats,
                                  const IncrementalPolicy& policy,
                                  size_t catalog_items);

// Merges the per-node trackers' snapshots into one sorted stat vector.
std::vector<ItemDriftStat> MergeDriftSnapshots(
    const std::vector<const ItemDriftTracker*>& trackers);

class IncrementalTrainer {
 public:
  // `model` is borrowed and must outlive the trainer. Only models whose
  // retrain produces a materialized feature function (the MF family)
  // support incremental refreshes.
  explicit IncrementalTrainer(const VeloxModel* model);

  // Restricted retrain: runs model->Retrain over the sub-log of
  // `observations` whose item is in `refresh_items` (warm-started from
  // `warm_user_weights`, exactly like the full path), then merges the
  // result into `previous`'s θ and trained W. The returned output's
  // training_rmse is recomputed for the *merged* model over the full
  // log, so the evaluator baseline stays comparable to a full retrain.
  Result<RetrainOutput> Refresh(BatchExecutor* executor,
                                const std::vector<Observation>& observations,
                                const FactorMap& warm_user_weights,
                                const ModelVersion& previous,
                                const std::vector<uint64_t>& refresh_items) const;

 private:
  const VeloxModel* model_;
};

}  // namespace velox

#endif  // VELOX_CORE_INCREMENTAL_TRAINER_H_
