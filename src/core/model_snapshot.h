// Model snapshots: durable serialization of a trained model version.
//
// A snapshot captures everything needed to serve a materialized-feature
// model — θ (the item-factor table), the trained user weights W, and
// the training quality — so a Velox server can restart, ship a model to
// another cluster, or archive versions, without re-running the batch
// job. (Computational feature functions carry code, not data; their
// snapshot holds only W and must be paired with the same basis at
// load time.)
//
// Format: a versioned binary header followed by length-prefixed
// sections, via common/bytes.h. Readers validate bounds and magic and
// fail with Status on corruption.
#ifndef VELOX_CORE_MODEL_SNAPSHOT_H_
#define VELOX_CORE_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/model.h"

namespace velox {

struct ModelSnapshot {
  std::string model_name;
  // Dimension of weights/factors.
  uint32_t dim = 0;
  double training_rmse = 0.0;
  // θ as a materialized table; empty for computational models.
  FactorMap item_factors;
  // Trained user weights W.
  FactorMap user_weights;

  // Converts to/from the scheduler-facing RetrainOutput. Conversion to
  // RetrainOutput wraps item_factors in a MaterializedFeatureFunction;
  // for computational snapshots pass the basis explicitly.
  static ModelSnapshot FromRetrainOutput(const std::string& model_name,
                                         const RetrainOutput& output);
  Result<RetrainOutput> ToRetrainOutput() const;
  Result<RetrainOutput> ToRetrainOutput(
      std::shared_ptr<const FeatureFunction> computational_basis) const;
};

// Binary codec.
std::vector<uint8_t> SerializeModelSnapshot(const ModelSnapshot& snapshot);
Result<ModelSnapshot> DeserializeModelSnapshot(const std::vector<uint8_t>& bytes);

// File persistence (atomic-ish: write to <path>.tmp, then rename).
Status SaveModelSnapshot(const ModelSnapshot& snapshot, const std::string& path);
Result<ModelSnapshot> LoadModelSnapshot(const std::string& path);

}  // namespace velox

#endif  // VELOX_CORE_MODEL_SNAPSHOT_H_
