// VeloxModel — the paper's Listing 2 interface. A model bundles:
//  * a name and system-assigned version,
//  * shared state θ exposed through a feature function f(x, θ),
//  * a retrain procedure (the "opaque Spark UDF" run offline),
//  * a loss used for quality evaluation and staleness detection.
//
// Two concrete families mirror the paper's examples:
//  * MatrixFactorizationModel — materialized f (item latent-factor
//    lookup), retrained with ALS on the batch substrate;
//  * ComputationalModel — computed f (basis functions / SVM ensemble),
//    whose retrain re-solves all user weights against the fixed basis.
#ifndef VELOX_CORE_MODEL_H_
#define VELOX_CORE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "batch/executor.h"
#include "common/result.h"
#include "ml/als.h"
#include "ml/feature_function.h"
#include "ml/loss.h"
#include "ml/sgd.h"
#include "storage/observation_log.h"

namespace velox {

// What offline (re)training produces: a new θ (wrapped in a feature
// function snapshot) and new user weights W (paper §4.2: "The result of
// offline training are new feature parameters as well as potentially
// updated user weights").
struct RetrainOutput {
  std::shared_ptr<const FeatureFunction> features;
  FactorMap user_weights;
  // Training-set RMSE of the retrained model, recorded as the quality
  // baseline for staleness detection.
  double training_rmse = 0.0;
};

class VeloxModel {
 public:
  virtual ~VeloxModel() = default;

  virtual std::string name() const = 0;
  // Weight/feature dimension d.
  virtual size_t dim() const = 0;
  // The current feature function f(·, θ). Never null after training.
  virtual std::shared_ptr<const FeatureFunction> features() const = 0;

  // Offline (re)training over all observations, warm-started from the
  // current per-user weights. Runs on the batch substrate.
  virtual Result<RetrainOutput> Retrain(BatchExecutor* executor,
                                        const std::vector<Observation>& observations,
                                        const FactorMap& current_user_weights) const = 0;

  // Pointwise quality loss (Listing 2's `loss`). Default: squared error.
  virtual double Loss(double label, double predicted, const Item& x,
                      uint64_t uid) const;
};

// Matrix-factorization recommender (the paper's §2 running example).
// Offline training runs either ALS on the batch substrate (default) or
// sequential SGD (the Sparkler-style trainer the paper's related work
// cites) — both warm-started from the current user weights.
class MatrixFactorizationModel final : public VeloxModel {
 public:
  MatrixFactorizationModel(std::string name, AlsConfig als_config);
  // SGD-trained variant.
  MatrixFactorizationModel(std::string name, SgdConfig sgd_config);

  std::string name() const override { return name_; }
  size_t dim() const override { return als_config_.rank; }
  std::shared_ptr<const FeatureFunction> features() const override;

  Result<RetrainOutput> Retrain(BatchExecutor* executor,
                                const std::vector<Observation>& observations,
                                const FactorMap& current_user_weights) const override;

  // Installs an already-trained item-factor table as the current θ
  // (used when bootstrapping a server from an offline model).
  void InstallItemFactors(std::shared_ptr<const FactorMap> item_factors);

  const AlsConfig& als_config() const { return als_config_; }

 private:
  enum class TrainerKind { kAls, kSgd };

  std::string name_;
  TrainerKind trainer_ = TrainerKind::kAls;
  AlsConfig als_config_;
  SgdConfig sgd_config_;
  std::shared_ptr<const FeatureFunction> features_;
};

// Personalized linear model over a fixed computational basis (paper §6:
// e.g., "a set of SVMs learned offline and used as the feature
// transformation function"). Retraining keeps θ (the basis) and
// re-solves every user's ridge weights over all their observations.
class ComputationalModel final : public VeloxModel {
 public:
  // `item_catalog` maps item ids to their raw attributes; the batch
  // retrain needs it to featurize logged observations.
  ComputationalModel(std::string name,
                     std::shared_ptr<const FeatureFunction> basis,
                     std::shared_ptr<const std::unordered_map<uint64_t, Item>> item_catalog,
                     double lambda);

  std::string name() const override { return name_; }
  size_t dim() const override { return basis_->dim(); }
  std::shared_ptr<const FeatureFunction> features() const override { return basis_; }

  Result<RetrainOutput> Retrain(BatchExecutor* executor,
                                const std::vector<Observation>& observations,
                                const FactorMap& current_user_weights) const override;

 private:
  std::string name_;
  std::shared_ptr<const FeatureFunction> basis_;
  std::shared_ptr<const std::unordered_map<uint64_t, Item>> item_catalog_;
  double lambda_;
};

}  // namespace velox

#endif  // VELOX_CORE_MODEL_H_
