#include "core/user_weights.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cluster/router.h"
#include "common/bytes.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace velox {

namespace {

// Snapshot state blob framing (wrapped in the CRC'd snapshot file —
// see storage/snapshot.cc — so this codec only needs structure, not
// integrity).
constexpr uint32_t kStateMagic = 0x56555753;  // "VUWS"
constexpr uint32_t kStateFormat = 1;

enum SolverKind : uint8_t { kSolverNone = 0, kSolverAcc = 1, kSolverSm = 2 };

void PutMatrix(ByteWriter* w, const DenseMatrix& m) {
  w->PutU32(static_cast<uint32_t>(m.rows()));
  w->PutU32(static_cast<uint32_t>(m.cols()));
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.RowPtr(r);
    for (size_t c = 0; c < m.cols(); ++c) w->PutDouble(row[c]);
  }
}

Result<DenseMatrix> GetMatrix(ByteReader* r) {
  VELOX_ASSIGN_OR_RETURN(uint32_t rows, r->GetU32());
  VELOX_ASSIGN_OR_RETURN(uint32_t cols, r->GetU32());
  // 8 bytes per element; reject corrupt dims before allocating.
  if (static_cast<uint64_t>(rows) * cols * 8 > r->remaining()) {
    return Status::OutOfRange("implausible matrix dimensions");
  }
  DenseMatrix m(rows, cols);
  for (uint32_t i = 0; i < rows; ++i) {
    for (uint32_t j = 0; j < cols; ++j) {
      VELOX_ASSIGN_OR_RETURN(m.At(i, j), r->GetDouble());
    }
  }
  return m;
}

}  // namespace

const char* UpdateStrategyName(UpdateStrategy strategy) {
  switch (strategy) {
    case UpdateStrategy::kNaiveNormalEquations:
      return "naive_normal_equations";
    case UpdateStrategy::kShermanMorrison:
      return "sherman_morrison";
  }
  return "unknown";
}

UserWeightStore::UserWeightStore(UserWeightStoreOptions options,
                                 Bootstrapper* bootstrapper)
    : options_(options), bootstrapper_(bootstrapper) {
  VELOX_CHECK_GT(options_.dim, 0u);
  VELOX_CHECK_GT(options_.lambda, 0.0);
  if (options_.num_stripes == 0) options_.num_stripes = 1;
  stripes_.reserve(options_.num_stripes);
  for (size_t i = 0; i < options_.num_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

UserWeightStore::Stripe& UserWeightStore::StripeFor(uint64_t uid) const {
  return *stripes_[HashPartitioner::MixHash(uid) % stripes_.size()];
}

UserWeightStore::UserState UserWeightStore::MakeState(const DenseVector& weights,
                                                      int32_t model_version) const {
  UserState state;
  state.weights = weights;
  state.prior = weights;
  state.model_version = model_version;
  // Strategy state (O(d^2) per user) is allocated lazily on the first
  // observation — serving-only users cost O(d), not O(d^2).
  return state;
}

Result<DenseVector> UserWeightStore::GetWeights(uint64_t uid) const {
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.users.find(uid);
  if (it == stripe.users.end()) {
    return Status::NotFound("unknown user");
  }
  return it->second.weights;
}

std::optional<DenseVector> UserWeightStore::TryRecover(uint64_t uid) const {
  if (!recovery_) return std::nullopt;
  auto recovered = recovery_(uid);
  if (recovered.has_value() && recovered->dim() != options_.dim) {
    return std::nullopt;  // stale snapshot from an incompatible version
  }
  return recovered;
}

void UserWeightStore::JournalAppend(const UserWeightWalRecord& record) {
  if (journal_ == nullptr) return;
  // An append failure must not take down serving (same policy as the
  // observe path's degraded mode); the journal simply under-covers.
  (void)journal_->Append(record);
}

DenseVector UserWeightStore::GetOrBootstrapWeights(uint64_t uid,
                                                   const DenseVector& bootstrap_weights) {
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.users.find(uid);
  if (it != stripe.users.end()) return it->second.weights;
  // Prefer the persisted snapshot (node-failure recovery) over the
  // cold-start mean.
  DenseVector initial;
  if (auto recovered = TryRecover(uid); recovered.has_value()) {
    initial = std::move(*recovered);
  } else {
    VELOX_CHECK_EQ(bootstrap_weights.dim(), options_.dim);
    initial = bootstrap_weights;
  }
  // Journal the creation with the exact vector chosen, so replay never
  // re-consults the recovery fallback or the bootstrap mean.
  UserWeightWalRecord record;
  record.kind = UserWeightWalRecord::Kind::kSeed;
  record.uid = uid;
  record.model_version = 0;
  record.weights = initial;
  JournalAppend(record);
  stripe.users[uid] = MakeState(initial, 0);
  if (bootstrapper_ != nullptr) bootstrapper_->OnUserAdded(initial);
  return initial;
}

bool UserWeightStore::HasUser(uint64_t uid) const {
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.users.count(uid) > 0;
}

void UserWeightStore::SeedUser(uint64_t uid, const DenseVector& weights,
                               int32_t model_version) {
  VELOX_CHECK_EQ(weights.dim(), options_.dim);
  (void)SeedUserInternal(uid, weights, model_version, /*journal=*/true);
}

Status UserWeightStore::SeedUserInternal(uint64_t uid, const DenseVector& weights,
                                         int32_t model_version, bool journal) {
  if (weights.dim() != options_.dim) {
    return Status::InvalidArgument("seed weight dimension mismatch");
  }
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (journal) {
    UserWeightWalRecord record;
    record.kind = UserWeightWalRecord::Kind::kSeed;
    record.uid = uid;
    record.model_version = model_version;
    record.weights = weights;
    JournalAppend(record);
  }
  auto it = stripe.users.find(uid);
  if (it != stripe.users.end()) {
    if (bootstrapper_ != nullptr) {
      bootstrapper_->OnUserUpdated(it->second.weights, weights);
    }
    uint64_t old_epoch = it->second.epoch;
    it->second = MakeState(weights, model_version);
    it->second.epoch = old_epoch + 1;
  } else {
    stripe.users[uid] = MakeState(weights, model_version);
    if (bootstrapper_ != nullptr) bootstrapper_->OnUserAdded(weights);
  }
  return Status::OK();
}

Result<UserWeightStore::UpdateResult> UserWeightStore::ApplyObservation(
    uint64_t uid, const DenseVector& features, double label) {
  return ApplyObservationInternal(uid, features, label, /*journal=*/true,
                                  /*allow_recovery=*/true);
}

Result<UserWeightStore::UpdateResult> UserWeightStore::ApplyObservationInternal(
    uint64_t uid, const DenseVector& features, double label, bool journal,
    bool allow_recovery) {
  if (features.dim() != options_.dim) {
    return Status::InvalidArgument("feature dimension mismatch");
  }
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.users.find(uid);
  if (it == stripe.users.end()) {
    // Same cold-start source as the predict path
    // (GetOrBootstrapWeights): persisted snapshot first, then the
    // bootstrap mean. Seeding from zero here would give observe-first
    // users a different prior — and a meaningless prediction_before —
    // than predict-first users. On replay (allow_recovery false) this
    // branch only fires for corrupt logs: every creation is preceded by
    // an explicit kSeed record.
    DenseVector initial(options_.dim);
    std::optional<DenseVector> recovered;
    if (allow_recovery) recovered = TryRecover(uid);
    if (recovered.has_value()) {
      initial = *recovered;
    } else if (bootstrapper_ != nullptr) {
      initial = bootstrapper_->MeanWeights();
    }
    if (journal) {
      UserWeightWalRecord seed;
      seed.kind = UserWeightWalRecord::Kind::kSeed;
      seed.uid = uid;
      seed.model_version = 0;
      seed.weights = initial;
      JournalAppend(seed);
    }
    it = stripe.users.emplace(uid, MakeState(initial, 0)).first;
    if (bootstrapper_ != nullptr) bootstrapper_->OnUserAdded(it->second.weights);
  }
  if (journal) {
    UserWeightWalRecord record;
    record.kind = UserWeightWalRecord::Kind::kObservationUpdate;
    record.uid = uid;
    record.model_version = it->second.model_version;
    record.features = features;
    record.label = label;
    JournalAppend(record);
  }
  UserState& state = it->second;

  UpdateResult result;
  result.prediction_before = Dot(state.weights, features);

  DenseVector old_weights = state.weights;
  if (options_.strategy == UpdateStrategy::kNaiveNormalEquations) {
    if (state.acc == nullptr) {
      state.acc = std::make_unique<RidgeAccumulator>(options_.dim);
    }
    state.acc->AddExample(features, label);
    VELOX_ASSIGN_OR_RETURN(state.weights,
                           state.acc->SolveWithPrior(options_.lambda, state.prior));
  } else {
    if (state.sm == nullptr) {
      state.sm = std::make_unique<ShermanMorrisonSolver>(options_.dim, options_.lambda);
      state.sm->SetPriorMean(state.prior);
    }
    state.sm->AddExample(features, label);
    state.weights = state.sm->Weights();
  }
  ++state.num_observations;
  ++state.epoch;
  if (bootstrapper_ != nullptr) {
    bootstrapper_->OnUserUpdated(old_weights, state.weights);
  }

  result.new_weights = state.weights;
  result.new_epoch = state.epoch;
  result.num_observations = state.num_observations;
  return result;
}

double UserWeightStore::Uncertainty(uint64_t uid, const DenseVector& features) const {
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.users.find(uid);
  if (it == stripe.users.end()) {
    // Unknown user: maximal uncertainty under the count proxy.
    return 1.0;
  }
  const UserState& state = it->second;
  if (state.sm != nullptr) {
    return state.sm->Uncertainty(features);
  }
  if (options_.strategy == UpdateStrategy::kShermanMorrison) {
    // No observations yet: A^{-1} = (1/lambda) I, so the uncertainty is
    // ||f|| / sqrt(lambda) — what a fresh solver would report.
    return features.Norm2() / std::sqrt(options_.lambda);
  }
  return 1.0 / std::sqrt(1.0 + static_cast<double>(state.num_observations));
}

uint64_t UserWeightStore::Epoch(uint64_t uid) const {
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.users.find(uid);
  return it == stripe.users.end() ? 0 : it->second.epoch;
}

int64_t UserWeightStore::NumObservations(uint64_t uid) const {
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.users.find(uid);
  return it == stripe.users.end() ? 0 : it->second.num_observations;
}

void UserWeightStore::ResetForNewVersion(const FactorMap& trained_weights,
                                         int32_t model_version) {
  {
    // All stripes locked while the reset record is journaled: the wipe
    // occupies one exact position in the log relative to every other
    // (stripe-locked) mutation, so replay wipes at the same point.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(stripes_.size());
    for (auto& stripe : stripes_) locks.emplace_back(stripe->mu);
    UserWeightWalRecord record;
    record.kind = UserWeightWalRecord::Kind::kVersionReset;
    record.model_version = model_version;
    JournalAppend(record);
    for (auto& stripe : stripes_) stripe->users.clear();
  }
  if (bootstrapper_ != nullptr) bootstrapper_->Reset();
  for (const auto& [uid, w] : trained_weights) {
    if (w.dim() != options_.dim) continue;  // incompatible snapshot entry
    SeedUser(uid, w, model_version);
  }
}

FactorMap UserWeightStore::ExportWeights() const {
  FactorMap out;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [uid, state] : stripe->users) {
      out[uid] = state.weights;
    }
  }
  return out;
}

size_t UserWeightStore::num_users() const {
  size_t n = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    n += stripe->users.size();
  }
  return n;
}

std::vector<uint8_t> UserWeightStore::SerializeStateLocked() const {
  ByteWriter w;
  w.PutU32(kStateMagic);
  w.PutU32(kStateFormat);
  w.PutU32(static_cast<uint32_t>(options_.dim));
  w.PutU8(static_cast<uint8_t>(options_.strategy));

  // Sorted by uid: identical state serializes to identical bytes no
  // matter how the hash maps happen to iterate (the crash-recovery
  // tests compare blobs for bit-equality).
  std::vector<std::pair<uint64_t, const UserState*>> users;
  for (const auto& stripe : stripes_) {
    for (const auto& [uid, state] : stripe->users) {
      users.emplace_back(uid, &state);
    }
  }
  std::sort(users.begin(), users.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  w.PutU64(users.size());
  for (const auto& [uid, state] : users) {
    w.PutU64(uid);
    w.PutU32(static_cast<uint32_t>(state->model_version));
    w.PutU64(state->epoch);
    w.PutI64(state->num_observations);
    w.PutDoubleVector(state->weights.values());
    w.PutDoubleVector(state->prior.values());
    if (state->acc != nullptr) {
      w.PutU8(kSolverAcc);
      PutMatrix(&w, state->acc->ftf());
      w.PutDoubleVector(state->acc->fty().values());
      w.PutI64(state->acc->num_examples());
    } else if (state->sm != nullptr) {
      w.PutU8(kSolverSm);
      PutMatrix(&w, state->sm->a_inverse());
      w.PutDoubleVector(state->sm->b().values());
      w.PutI64(state->sm->num_examples());
    } else {
      w.PutU8(kSolverNone);
    }
  }

  if (bootstrapper_ != nullptr) {
    w.PutU8(1);
    w.PutDoubleVector(bootstrapper_->SumWeights().values());
    w.PutI64(bootstrapper_->num_users());
  } else {
    w.PutU8(0);
  }
  return w.Release();
}

std::vector<uint8_t> UserWeightStore::SerializeState() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(stripes_.size());
  for (const auto& stripe : stripes_) locks.emplace_back(stripe->mu);
  return SerializeStateLocked();
}

Status UserWeightStore::RestoreState(const std::vector<uint8_t>& state) {
  ByteReader r(state);
  VELOX_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kStateMagic) {
    return Status::InvalidArgument("not a user-weight state blob (bad magic)");
  }
  VELOX_ASSIGN_OR_RETURN(uint32_t format, r.GetU32());
  if (format != kStateFormat) {
    return Status::Unimplemented(
        StrFormat("unsupported user-weight state format %u", format));
  }
  VELOX_ASSIGN_OR_RETURN(uint32_t dim, r.GetU32());
  if (dim != options_.dim) {
    return Status::InvalidArgument(
        StrFormat("state dim %u != store dim %zu", dim, options_.dim));
  }
  VELOX_ASSIGN_OR_RETURN(uint8_t strategy, r.GetU8());
  if (strategy != static_cast<uint8_t>(options_.strategy)) {
    return Status::InvalidArgument("state strategy != store strategy");
  }

  VELOX_ASSIGN_OR_RETURN(uint64_t count, r.GetU64());
  // Each user consumes well over 32 bytes; reject corrupt counts.
  if (count > r.remaining() / 32) {
    return Status::OutOfRange("implausible user count in state blob");
  }

  // Decode fully before touching live state: a corrupt blob must not
  // leave the store half-restored.
  std::vector<std::pair<uint64_t, UserState>> users;
  users.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t uid;
    VELOX_ASSIGN_OR_RETURN(uid, r.GetU64());
    UserState state;
    VELOX_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
    state.model_version = static_cast<int32_t>(version);
    VELOX_ASSIGN_OR_RETURN(state.epoch, r.GetU64());
    VELOX_ASSIGN_OR_RETURN(state.num_observations, r.GetI64());
    std::vector<double> values;
    VELOX_ASSIGN_OR_RETURN(values, r.GetDoubleVector());
    state.weights = DenseVector(std::move(values));
    VELOX_ASSIGN_OR_RETURN(values, r.GetDoubleVector());
    state.prior = DenseVector(std::move(values));
    if (state.weights.dim() != options_.dim || state.prior.dim() != options_.dim) {
      return Status::InvalidArgument("state vector dimension mismatch");
    }
    VELOX_ASSIGN_OR_RETURN(uint8_t solver_kind, r.GetU8());
    switch (solver_kind) {
      case kSolverNone:
        break;
      case kSolverAcc: {
        DenseMatrix ftf;
        VELOX_ASSIGN_OR_RETURN(ftf, GetMatrix(&r));
        VELOX_ASSIGN_OR_RETURN(values, r.GetDoubleVector());
        int64_t n;
        VELOX_ASSIGN_OR_RETURN(n, r.GetI64());
        if (ftf.rows() != options_.dim || ftf.cols() != options_.dim ||
            values.size() != options_.dim) {
          return Status::InvalidArgument("accumulator dimension mismatch");
        }
        state.acc = std::make_unique<RidgeAccumulator>(RidgeAccumulator::FromState(
            std::move(ftf), DenseVector(std::move(values)), n));
        break;
      }
      case kSolverSm: {
        DenseMatrix a_inv;
        VELOX_ASSIGN_OR_RETURN(a_inv, GetMatrix(&r));
        VELOX_ASSIGN_OR_RETURN(values, r.GetDoubleVector());
        int64_t n;
        VELOX_ASSIGN_OR_RETURN(n, r.GetI64());
        if (a_inv.rows() != options_.dim || a_inv.cols() != options_.dim ||
            values.size() != options_.dim) {
          return Status::InvalidArgument("solver dimension mismatch");
        }
        state.sm = std::make_unique<ShermanMorrisonSolver>(
            ShermanMorrisonSolver::FromState(options_.lambda, std::move(a_inv),
                                             DenseVector(std::move(values)), n));
        break;
      }
      default:
        return Status::InvalidArgument("unknown solver kind in state blob");
    }
    users.emplace_back(uid, std::move(state));
  }

  VELOX_ASSIGN_OR_RETURN(uint8_t has_bootstrapper, r.GetU8());
  DenseVector boot_sum;
  int64_t boot_count = 0;
  if (has_bootstrapper != 0) {
    std::vector<double> values;
    VELOX_ASSIGN_OR_RETURN(values, r.GetDoubleVector());
    boot_sum = DenseVector(std::move(values));
    VELOX_ASSIGN_OR_RETURN(boot_count, r.GetI64());
    if (boot_sum.dim() != options_.dim) {
      return Status::InvalidArgument("bootstrapper sum dimension mismatch");
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after user-weight state");
  }

  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->users.clear();
  }
  for (auto& [uid, state] : users) {
    Stripe& stripe = StripeFor(uid);
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.users[uid] = std::move(state);
  }
  // Restore the bootstrapper's running sum directly (no per-user
  // OnUserAdded replay: the serialized sum is the bit-exact original).
  if (bootstrapper_ != nullptr && has_bootstrapper != 0) {
    bootstrapper_->RestoreState(std::move(boot_sum), boot_count);
  }
  return Status::OK();
}

Status UserWeightStore::ApplyWalRecord(const UserWeightWalRecord& record) {
  switch (record.kind) {
    case UserWeightWalRecord::Kind::kSeed:
      return SeedUserInternal(record.uid, record.weights, record.model_version,
                              /*journal=*/false);
    case UserWeightWalRecord::Kind::kObservationUpdate: {
      auto result = ApplyObservationInternal(record.uid, record.features, record.label,
                                             /*journal=*/false,
                                             /*allow_recovery=*/false);
      return result.ok() ? Status::OK() : result.status();
    }
    case UserWeightWalRecord::Kind::kVersionReset:
      for (auto& stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe->mu);
        stripe->users.clear();
      }
      if (bootstrapper_ != nullptr) bootstrapper_->Reset();
      return Status::OK();
  }
  return Status::InvalidArgument("unknown wal record kind");
}

Status UserWeightStore::MaybeSnapshot() {
  if (journal_ == nullptr || !journal_->SnapshotDue()) return Status::OK();
  std::vector<uint8_t> state;
  uint64_t cut = 0;
  uint64_t cut_bytes = 0;
  {
    // Exact cut: journal appends happen under stripe locks, so with
    // every stripe held the record count equals the mutations the
    // in-memory image reflects. Only the serialization runs under the
    // locks; the file write below proceeds with mutators running.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(stripes_.size());
    for (const auto& stripe : stripes_) locks.emplace_back(stripe->mu);
    cut = journal_->records();
    cut_bytes = journal_->bytes();
    state = SerializeStateLocked();
  }
  return journal_->WriteSnapshot(state, cut, cut_bytes);
}

}  // namespace velox
