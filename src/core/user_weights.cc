#include "core/user_weights.h"

#include <cmath>

#include "cluster/router.h"
#include "common/logging.h"

namespace velox {

const char* UpdateStrategyName(UpdateStrategy strategy) {
  switch (strategy) {
    case UpdateStrategy::kNaiveNormalEquations:
      return "naive_normal_equations";
    case UpdateStrategy::kShermanMorrison:
      return "sherman_morrison";
  }
  return "unknown";
}

UserWeightStore::UserWeightStore(UserWeightStoreOptions options,
                                 Bootstrapper* bootstrapper)
    : options_(options), bootstrapper_(bootstrapper) {
  VELOX_CHECK_GT(options_.dim, 0u);
  VELOX_CHECK_GT(options_.lambda, 0.0);
  if (options_.num_stripes == 0) options_.num_stripes = 1;
  stripes_.reserve(options_.num_stripes);
  for (size_t i = 0; i < options_.num_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

UserWeightStore::Stripe& UserWeightStore::StripeFor(uint64_t uid) const {
  return *stripes_[HashPartitioner::MixHash(uid) % stripes_.size()];
}

UserWeightStore::UserState UserWeightStore::MakeState(const DenseVector& weights,
                                                      int32_t model_version) const {
  UserState state;
  state.weights = weights;
  state.prior = weights;
  state.model_version = model_version;
  // Strategy state (O(d^2) per user) is allocated lazily on the first
  // observation — serving-only users cost O(d), not O(d^2).
  return state;
}

Result<DenseVector> UserWeightStore::GetWeights(uint64_t uid) const {
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.users.find(uid);
  if (it == stripe.users.end()) {
    return Status::NotFound("unknown user");
  }
  return it->second.weights;
}

std::optional<DenseVector> UserWeightStore::TryRecover(uint64_t uid) const {
  if (!recovery_) return std::nullopt;
  auto recovered = recovery_(uid);
  if (recovered.has_value() && recovered->dim() != options_.dim) {
    return std::nullopt;  // stale snapshot from an incompatible version
  }
  return recovered;
}

DenseVector UserWeightStore::GetOrBootstrapWeights(uint64_t uid,
                                                   const DenseVector& bootstrap_weights) {
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.users.find(uid);
  if (it != stripe.users.end()) return it->second.weights;
  // Prefer the persisted snapshot (node-failure recovery) over the
  // cold-start mean.
  if (auto recovered = TryRecover(uid); recovered.has_value()) {
    stripe.users[uid] = MakeState(*recovered, 0);
    if (bootstrapper_ != nullptr) bootstrapper_->OnUserAdded(*recovered);
    return *recovered;
  }
  VELOX_CHECK_EQ(bootstrap_weights.dim(), options_.dim);
  stripe.users[uid] = MakeState(bootstrap_weights, 0);
  if (bootstrapper_ != nullptr) bootstrapper_->OnUserAdded(bootstrap_weights);
  return bootstrap_weights;
}

bool UserWeightStore::HasUser(uint64_t uid) const {
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.users.count(uid) > 0;
}

void UserWeightStore::SeedUser(uint64_t uid, const DenseVector& weights,
                               int32_t model_version) {
  VELOX_CHECK_EQ(weights.dim(), options_.dim);
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.users.find(uid);
  if (it != stripe.users.end()) {
    if (bootstrapper_ != nullptr) {
      bootstrapper_->OnUserUpdated(it->second.weights, weights);
    }
    uint64_t old_epoch = it->second.epoch;
    it->second = MakeState(weights, model_version);
    it->second.epoch = old_epoch + 1;
  } else {
    stripe.users[uid] = MakeState(weights, model_version);
    if (bootstrapper_ != nullptr) bootstrapper_->OnUserAdded(weights);
  }
}

Result<UserWeightStore::UpdateResult> UserWeightStore::ApplyObservation(
    uint64_t uid, const DenseVector& features, double label) {
  if (features.dim() != options_.dim) {
    return Status::InvalidArgument("feature dimension mismatch");
  }
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.users.find(uid);
  if (it == stripe.users.end()) {
    // Same cold-start source as the predict path
    // (GetOrBootstrapWeights): persisted snapshot first, then the
    // bootstrap mean. Seeding from zero here would give observe-first
    // users a different prior — and a meaningless prediction_before —
    // than predict-first users.
    DenseVector initial(options_.dim);
    if (auto recovered = TryRecover(uid); recovered.has_value()) {
      initial = *recovered;
    } else if (bootstrapper_ != nullptr) {
      initial = bootstrapper_->MeanWeights();
    }
    it = stripe.users.emplace(uid, MakeState(initial, 0)).first;
    if (bootstrapper_ != nullptr) bootstrapper_->OnUserAdded(it->second.weights);
  }
  UserState& state = it->second;

  UpdateResult result;
  result.prediction_before = Dot(state.weights, features);

  DenseVector old_weights = state.weights;
  if (options_.strategy == UpdateStrategy::kNaiveNormalEquations) {
    if (state.acc == nullptr) {
      state.acc = std::make_unique<RidgeAccumulator>(options_.dim);
    }
    state.acc->AddExample(features, label);
    VELOX_ASSIGN_OR_RETURN(state.weights,
                           state.acc->SolveWithPrior(options_.lambda, state.prior));
  } else {
    if (state.sm == nullptr) {
      state.sm = std::make_unique<ShermanMorrisonSolver>(options_.dim, options_.lambda);
      state.sm->SetPriorMean(state.prior);
    }
    state.sm->AddExample(features, label);
    state.weights = state.sm->Weights();
  }
  ++state.num_observations;
  ++state.epoch;
  if (bootstrapper_ != nullptr) {
    bootstrapper_->OnUserUpdated(old_weights, state.weights);
  }

  result.new_weights = state.weights;
  result.new_epoch = state.epoch;
  result.num_observations = state.num_observations;
  return result;
}

double UserWeightStore::Uncertainty(uint64_t uid, const DenseVector& features) const {
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.users.find(uid);
  if (it == stripe.users.end()) {
    // Unknown user: maximal uncertainty under the count proxy.
    return 1.0;
  }
  const UserState& state = it->second;
  if (state.sm != nullptr) {
    return state.sm->Uncertainty(features);
  }
  if (options_.strategy == UpdateStrategy::kShermanMorrison) {
    // No observations yet: A^{-1} = (1/lambda) I, so the uncertainty is
    // ||f|| / sqrt(lambda) — what a fresh solver would report.
    return features.Norm2() / std::sqrt(options_.lambda);
  }
  return 1.0 / std::sqrt(1.0 + static_cast<double>(state.num_observations));
}

uint64_t UserWeightStore::Epoch(uint64_t uid) const {
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.users.find(uid);
  return it == stripe.users.end() ? 0 : it->second.epoch;
}

int64_t UserWeightStore::NumObservations(uint64_t uid) const {
  Stripe& stripe = StripeFor(uid);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.users.find(uid);
  return it == stripe.users.end() ? 0 : it->second.num_observations;
}

void UserWeightStore::ResetForNewVersion(const FactorMap& trained_weights,
                                         int32_t model_version) {
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->users.clear();
  }
  if (bootstrapper_ != nullptr) bootstrapper_->Reset();
  for (const auto& [uid, w] : trained_weights) {
    if (w.dim() != options_.dim) continue;  // incompatible snapshot entry
    SeedUser(uid, w, model_version);
  }
}

FactorMap UserWeightStore::ExportWeights() const {
  FactorMap out;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [uid, state] : stripe->users) {
      out[uid] = state.weights;
    }
  }
  return out;
}

size_t UserWeightStore::num_users() const {
  size_t n = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    n += stripe->users.size();
  }
  return n;
}

}  // namespace velox
