#include "core/shell.h"

#include <sstream>

#include "common/string_util.h"
#include "core/model_snapshot.h"
#include "server/acceptor.h"

namespace velox {

namespace {

Item MakeItem(uint64_t id) {
  Item item;
  item.id = id;
  return item;
}

Result<uint64_t> ParseId(const std::string& s, const char* what) {
  auto parsed = ParseInt64(s);
  if (!parsed.ok() || parsed.value() < 0) {
    return Status::InvalidArgument(StrFormat("invalid %s: '%s'", what, s.c_str()));
  }
  return static_cast<uint64_t>(parsed.value());
}

}  // namespace

VeloxShell::VeloxShell(VeloxServer* server, std::vector<Observation> dataset)
    : server_(server), dataset_(std::move(dataset)) {
  VELOX_CHECK(server_ != nullptr);
}

std::string VeloxShell::HelpText() {
  return
      "commands:\n"
      "  train                       bootstrap from the loaded dataset\n"
      "  predict <uid> <item>        point prediction\n"
      "  topk <uid> <k> [items...]   ranked items (no items = whole catalog)\n"
      "  observe <uid> <item> <y>    feedback + online update\n"
      "  retrain [mode]              force retraining; mode = full (default),\n"
      "                              incremental (drifted items only),\n"
      "                              incremental-all (select every item; bit-\n"
      "                              identical to full), or auto (drift mass\n"
      "                              decides incremental vs full)\n"
      "  maybe-retrain               retrain iff the model is stale\n"
      "  rollback <version>          switch to an older model version\n"
      "  versions                    model version history\n"
      "  report                      quality + cache/network statistics\n"
      "  server                      server-plane admission/queue/shed state\n"
      "  stages                      per-stage latency breakdown\n"
      "  fail <node>                 crash a node (ring remaps to survivors)\n"
      "  recover                     replay user-weight journals (run after train\n"
      "                              when the server was started with durability\n"
      "                              and recover-on-start off)\n"
      "  save <path>                 write a model snapshot\n"
      "  load <path>                 install a model snapshot\n"
      "  help                        this text";
}

Result<std::string> VeloxShell::Execute(const std::string& line) {
  std::vector<std::string> tokens;
  for (const std::string& raw : StrSplit(std::string_view(line), ' ')) {
    std::string token(StripWhitespace(raw));
    if (!token.empty()) tokens.push_back(std::move(token));
  }
  if (tokens.empty()) return std::string();
  const std::string& cmd = tokens[0];
  std::vector<std::string> args(tokens.begin() + 1, tokens.end());

  if (cmd == "help") return HelpText();
  if (cmd == "train") return CmdTrain();
  if (cmd == "predict") return CmdPredict(args);
  if (cmd == "topk") return CmdTopK(args);
  if (cmd == "observe") return CmdObserve(args);
  if (cmd == "retrain") return CmdRetrain(args);
  if (cmd == "maybe-retrain") {
    VELOX_ASSIGN_OR_RETURN(bool did, server_->MaybeRetrain());
    return std::string(did ? "stale -> retrained" : "model healthy, no retrain");
  }
  if (cmd == "rollback") return CmdRollback(args);
  if (cmd == "versions") return CmdVersions();
  if (cmd == "report") return CmdReport();
  if (cmd == "server") {
    if (acceptor_ == nullptr) {
      return std::string("no server plane attached (requests run synchronously)");
    }
    std::string report = acceptor_->Report();
    if (!report.empty() && report.back() == '\n') report.pop_back();
    return report;
  }
  if (cmd == "stages") {
    std::string report = server_->StageReport();
    if (!report.empty() && report.back() == '\n') report.pop_back();
    return report;
  }
  if (cmd == "save") return CmdSave(args);
  if (cmd == "load") return CmdLoad(args);
  if (cmd == "fail") return CmdFail(args);
  if (cmd == "recover") {
    VELOX_ASSIGN_OR_RETURN(VeloxServer::DurabilityRecoveryReport report,
                           server_->RecoverDurability());
    return StrFormat(
        "recovered: snapshot_nodes=%llu covered=%llu replayed=%llu skipped=%llu%s",
        static_cast<unsigned long long>(report.snapshot_restored_nodes),
        static_cast<unsigned long long>(report.snapshot_covered_records),
        static_cast<unsigned long long>(report.replayed_records),
        static_cast<unsigned long long>(report.skipped_records),
        report.clean ? "" : " TORN_TAIL");
  }
  return Status::InvalidArgument("unknown command '" + cmd + "' (try `help`)");
}

Result<std::string> VeloxShell::CmdTrain() {
  if (dataset_.empty()) return Status::FailedPrecondition("no dataset loaded");
  VELOX_RETURN_NOT_OK(server_->Bootstrap(dataset_));
  return StrFormat("trained version %d on %zu ratings", server_->current_version(),
                   dataset_.size());
}

Result<std::string> VeloxShell::CmdPredict(const std::vector<std::string>& args) {
  if (args.size() != 2) return Status::InvalidArgument("usage: predict <uid> <item>");
  VELOX_ASSIGN_OR_RETURN(uint64_t uid, ParseId(args[0], "uid"));
  VELOX_ASSIGN_OR_RETURN(uint64_t item, ParseId(args[1], "item"));
  VELOX_ASSIGN_OR_RETURN(ScoredItem scored, server_->Predict(uid, MakeItem(item)));
  return StrFormat("predict(u%llu, i%llu) = %.4f",
                   static_cast<unsigned long long>(uid),
                   static_cast<unsigned long long>(item), scored.score);
}

Result<std::string> VeloxShell::CmdTopK(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return Status::InvalidArgument("usage: topk <uid> <k> [items...]");
  }
  VELOX_ASSIGN_OR_RETURN(uint64_t uid, ParseId(args[0], "uid"));
  VELOX_ASSIGN_OR_RETURN(uint64_t k, ParseId(args[1], "k"));
  TopKResult result;
  if (args.size() == 2) {
    VELOX_ASSIGN_OR_RETURN(result, server_->TopKAll(uid, k));
  } else {
    std::vector<Item> candidates;
    for (size_t i = 2; i < args.size(); ++i) {
      VELOX_ASSIGN_OR_RETURN(uint64_t item, ParseId(args[i], "item"));
      candidates.push_back(MakeItem(item));
    }
    VELOX_ASSIGN_OR_RETURN(result, server_->TopK(uid, candidates, k));
  }
  std::ostringstream os;
  os << "top-" << result.items.size() << " for u" << uid << ":";
  for (const ScoredItem& item : result.items) {
    os << " " << item.item_id << "(" << StrFormat("%.3f", item.score) << ")";
  }
  if (result.top_is_exploratory) os << " [exploratory]";
  return os.str();
}

Result<std::string> VeloxShell::CmdObserve(const std::vector<std::string>& args) {
  if (args.size() != 3) {
    return Status::InvalidArgument("usage: observe <uid> <item> <label>");
  }
  VELOX_ASSIGN_OR_RETURN(uint64_t uid, ParseId(args[0], "uid"));
  VELOX_ASSIGN_OR_RETURN(uint64_t item, ParseId(args[1], "item"));
  VELOX_ASSIGN_OR_RETURN(double label, ParseDouble(args[2]));
  VELOX_RETURN_NOT_OK(server_->Observe(uid, MakeItem(item), label));
  return StrFormat("observed u%llu i%llu y=%.2f",
                   static_cast<unsigned long long>(uid),
                   static_cast<unsigned long long>(item), label);
}

Result<std::string> VeloxShell::CmdRetrain(const std::vector<std::string>& args) {
  if (args.size() > 1) {
    return Status::InvalidArgument(
        "usage: retrain [full|incremental|incremental-all|auto]");
  }
  const std::string mode = args.empty() ? "full" : args[0];
  RetrainReport report;
  if (mode == "full") {
    VELOX_ASSIGN_OR_RETURN(report, server_->RetrainNow());
  } else if (mode == "incremental") {
    VELOX_ASSIGN_OR_RETURN(report, server_->RetrainIncremental());
  } else if (mode == "incremental-all") {
    VELOX_ASSIGN_OR_RETURN(report, server_->RetrainIncremental(/*refresh_all=*/true));
  } else if (mode == "auto") {
    VELOX_ASSIGN_OR_RETURN(report, server_->Retrain(RetrainMode::kAuto));
  } else {
    return Status::InvalidArgument(
        "usage: retrain [full|incremental|incremental-all|auto]");
  }
  if (report.mode_used == RetrainMode::kIncremental) {
    return StrFormat(
        "retrained (incremental): version %d refreshed %zu item(s) "
        "(%zu drift candidates, %.1f%% of catalog) over %zu observations "
        "(rmse %.4f)",
        report.new_version, report.items_refreshed, report.drift_candidates,
        100.0 * report.drift_fraction, report.observations_used,
        report.training_rmse);
  }
  return StrFormat("retrained (%s): version %d over %zu observations (rmse %.4f)",
                   report.escalated ? "auto->full" : "full", report.new_version,
                   report.observations_used, report.training_rmse);
}

Result<std::string> VeloxShell::CmdRollback(const std::vector<std::string>& args) {
  if (args.size() != 1) return Status::InvalidArgument("usage: rollback <version>");
  VELOX_ASSIGN_OR_RETURN(uint64_t version, ParseId(args[0], "version"));
  VELOX_RETURN_NOT_OK(server_->Rollback(static_cast<int32_t>(version)));
  return StrFormat("rolled back to version %d", static_cast<int32_t>(version));
}

Result<std::string> VeloxShell::CmdVersions() {
  auto history = server_->VersionHistory();
  if (history.empty()) return std::string("no versions (run `train`)");
  std::ostringstream os;
  for (const auto& v : history) {
    os << "v" << v.version << "  rmse=" << StrFormat("%.4f", v.training_rmse)
       << (v.is_current ? "  *current*" : "") << "\n";
  }
  std::string out = os.str();
  out.pop_back();  // trailing newline
  return out;
}

Result<std::string> VeloxShell::CmdReport() {
  auto quality = server_->QualityReport();
  auto caches = server_->AggregatedCacheStats();
  auto net = server_->NetworkStatistics();
  std::ostringstream os;
  os << "version: " << server_->current_version()
     << "  users: " << server_->TotalUsers() << "\n"
     << "quality: " << (quality.stale ? "STALE" : "healthy")
     << StrFormat("  mean_loss=%.4f  ewma=%.4f  obs=%lld", quality.mean_online_loss,
                  quality.ewma_loss,
                  static_cast<long long>(quality.observations_since_baseline))
     << "\n"
     << StrFormat("caches: feature %.1f%%  prediction %.1f%%",
                  100.0 * caches.feature.HitRate(),
                  100.0 * caches.prediction.HitRate())
     << "\n"
     << StrFormat("network: %.1f%% remote over %llu messages",
                  100.0 * net.RemoteFraction(),
                  static_cast<unsigned long long>(net.local_messages +
                                                  net.remote_messages));
  auto sc = server_->AggregatedStorageStats();
  uint64_t degraded = server_->DegradedCount();
  if (net.dropped_messages > 0 || net.timed_out_messages > 0 || sc.retries > 0 ||
      sc.hedged_reads > 0 || sc.deadline_misses > 0 || sc.partial_writes > 0 ||
      sc.failovers > 0 || degraded > 0) {
    os << "\n"
       << StrFormat(
              "storage faults: dropped=%llu timeouts=%llu retries=%llu "
              "hedged=%llu(won %llu) failovers=%llu deadline_misses=%llu "
              "partial_writes=%llu degraded=%llu",
              static_cast<unsigned long long>(net.dropped_messages),
              static_cast<unsigned long long>(net.timed_out_messages),
              static_cast<unsigned long long>(sc.retries),
              static_cast<unsigned long long>(sc.hedged_reads),
              static_cast<unsigned long long>(sc.hedge_wins),
              static_cast<unsigned long long>(sc.failovers),
              static_cast<unsigned long long>(sc.deadline_misses),
              static_cast<unsigned long long>(sc.partial_writes),
              static_cast<unsigned long long>(degraded));
  }
  auto rs = server_->RetrainStats();
  if (rs.full_retrains + rs.incremental_retrains > 0) {
    os << "\n"
       << StrFormat(
              "retrain: full=%llu incremental=%llu auto_escalations=%llu "
              "items_refreshed=%llu last_drift=%zu(%.1f%%)",
              static_cast<unsigned long long>(rs.full_retrains),
              static_cast<unsigned long long>(rs.incremental_retrains),
              static_cast<unsigned long long>(rs.auto_escalations),
              static_cast<unsigned long long>(rs.items_refreshed),
              static_cast<size_t>(rs.last_drift_candidates),
              100.0 * rs.last_drift_fraction);
  }
  if (!server_->config().durability.dir.empty()) {
    uint64_t wal_records = 0, snapshots = 0;
    for (int32_t n = 0; n < server_->config().num_nodes; ++n) {
      if (auto* journal = server_->user_weight_journal(n); journal != nullptr) {
        wal_records += journal->records();
        snapshots += journal->snapshots_written();
      }
    }
    const auto& recovery = server_->durability_recovery();
    os << "\n"
       << StrFormat(
              "durability: policy=%s wal_records=%llu snapshots=%llu "
              "recovered(snapshot=%llu replayed=%llu skipped=%llu%s)",
              WalSyncPolicyName(server_->config().durability.wal.sync),
              static_cast<unsigned long long>(wal_records),
              static_cast<unsigned long long>(snapshots),
              static_cast<unsigned long long>(recovery.snapshot_covered_records),
              static_cast<unsigned long long>(recovery.replayed_records),
              static_cast<unsigned long long>(recovery.skipped_records),
              recovery.clean ? "" : " TORN_TAIL");
  }
  return os.str();
}

Result<std::string> VeloxShell::CmdFail(const std::vector<std::string>& args) {
  if (args.size() != 1) return Status::InvalidArgument("usage: fail <node>");
  VELOX_ASSIGN_OR_RETURN(uint64_t node, ParseId(args[0], "node"));
  VELOX_RETURN_NOT_OK(server_->FailNode(static_cast<NodeId>(node)));
  return StrFormat("node %llu failed; ownership remapped to survivors",
                   static_cast<unsigned long long>(node));
}

Result<std::string> VeloxShell::CmdSave(const std::vector<std::string>& args) {
  if (args.size() != 1) return Status::InvalidArgument("usage: save <path>");
  VELOX_ASSIGN_OR_RETURN(std::shared_ptr<const ModelVersion> version,
                         server_->registry()->Current());
  RetrainOutput live;
  live.features = version->features;
  // Snapshot the live serving weights across all nodes.
  for (int32_t n = 0; n < server_->config().num_nodes; ++n) {
    for (auto& [uid, w] : server_->user_weights(n)->ExportWeights()) {
      live.user_weights[uid] = std::move(w);
    }
  }
  live.training_rmse = version->training_rmse;
  ModelSnapshot snapshot =
      ModelSnapshot::FromRetrainOutput(server_->model()->name(), live);
  VELOX_RETURN_NOT_OK(SaveModelSnapshot(snapshot, args[0]));
  return StrFormat("saved %zu item factors + %zu user weights to %s",
                   snapshot.item_factors.size(), snapshot.user_weights.size(),
                   args[0].c_str());
}

Result<std::string> VeloxShell::CmdLoad(const std::vector<std::string>& args) {
  if (args.size() != 1) return Status::InvalidArgument("usage: load <path>");
  VELOX_ASSIGN_OR_RETURN(ModelSnapshot snapshot, LoadModelSnapshot(args[0]));
  VELOX_ASSIGN_OR_RETURN(RetrainOutput output, snapshot.ToRetrainOutput());
  VELOX_ASSIGN_OR_RETURN(int32_t version, server_->InstallVersion(output));
  return StrFormat("installed snapshot '%s' as version %d",
                   snapshot.model_name.c_str(), version);
}

}  // namespace velox
