#include "linalg/sherman_morrison.h"

#include <cmath>
#include <utility>

#include "common/logging.h"

namespace velox {

ShermanMorrisonSolver::ShermanMorrisonSolver(size_t dim, double lambda)
    : a_inv_(dim, dim), b_(dim), lambda_(lambda), scratch_(dim) {
  VELOX_CHECK_GT(lambda, 0.0);
  for (size_t i = 0; i < dim; ++i) a_inv_.At(i, i) = 1.0 / lambda;
}

ShermanMorrisonSolver ShermanMorrisonSolver::FromState(double lambda,
                                                       DenseMatrix a_inv,
                                                       DenseVector b,
                                                       int64_t num_examples) {
  VELOX_CHECK_GT(lambda, 0.0);
  VELOX_CHECK_EQ(a_inv.rows(), b.dim());
  VELOX_CHECK_EQ(a_inv.cols(), b.dim());
  ShermanMorrisonSolver solver;
  solver.lambda_ = lambda;
  solver.a_inv_ = std::move(a_inv);
  solver.b_ = std::move(b);
  solver.num_examples_ = num_examples;
  solver.scratch_ = DenseVector(solver.b_.dim());
  return solver;
}

void ShermanMorrisonSolver::SetPriorMean(const DenseVector& prior_mean) {
  VELOX_CHECK_EQ(prior_mean.dim(), dim());
  VELOX_CHECK_EQ(num_examples_, 0);
  b_ = prior_mean;
  b_.Scale(lambda_);
}

void ShermanMorrisonSolver::AddExample(const DenseVector& features, double label) {
  const size_t d = dim();
  VELOX_CHECK_EQ(features.dim(), d);
  // u = A^{-1} f  (A^{-1} is symmetric, so Gemv == GemvTranspose).
  DenseVector& u = scratch_;
  for (size_t r = 0; r < d; ++r) {
    const double* row = a_inv_.RowPtr(r);
    double s = 0.0;
    for (size_t c = 0; c < d; ++c) s += row[c] * features[c];
    u[r] = s;
  }
  double denom = 1.0 + Dot(features, u);
  // denom = 1 + f^T A^{-1} f >= 1 for PD A^{-1}; guard regardless.
  VELOX_CHECK_GT(denom, 0.0);
  // A^{-1} -= (u u^T) / denom.
  a_inv_.Ger(-1.0 / denom, u, u);
  // b += y f.
  b_.Axpy(label, features);
  ++num_examples_;
}

DenseVector ShermanMorrisonSolver::Weights() const { return a_inv_.Gemv(b_); }

double ShermanMorrisonSolver::Uncertainty(const DenseVector& features) const {
  const size_t d = dim();
  VELOX_CHECK_EQ(features.dim(), d);
  double quad = 0.0;
  for (size_t r = 0; r < d; ++r) {
    const double* row = a_inv_.RowPtr(r);
    double s = 0.0;
    for (size_t c = 0; c < d; ++c) s += row[c] * features[c];
    quad += features[r] * s;
  }
  return quad > 0.0 ? std::sqrt(quad) : 0.0;
}

}  // namespace velox
