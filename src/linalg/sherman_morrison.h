// Sherman–Morrison rank-one maintenance of the ridge solution — the
// O(d^2) incremental path the paper cites for Eq. 2: "it can be
// maintained in time quadratic in d using the Sherman-Morrison formula
// for rank-one updates."
//
// State per user: A^{-1} where A = F^T F + λI (seeded as (1/λ) I), and
// b = F^T Y. Each observation (f, y) performs
//
//   A^{-1} <- A^{-1} - (A^{-1} f f^T A^{-1}) / (1 + f^T A^{-1} f)
//   b      <- b + y f
//   w      <- A^{-1} b
//
// all in O(d^2). The same A^{-1} doubles as the per-user covariance
// proxy the LinUCB bandit (core/bandit.h) uses for its uncertainty
// term sqrt(f^T A^{-1} f).
#ifndef VELOX_LINALG_SHERMAN_MORRISON_H_
#define VELOX_LINALG_SHERMAN_MORRISON_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace velox {

class ShermanMorrisonSolver {
 public:
  ShermanMorrisonSolver() = default;
  // A^{-1} starts at (1/lambda) I — the inverse of the λI regularizer.
  ShermanMorrisonSolver(size_t dim, double lambda);

  size_t dim() const { return b_.dim(); }
  int64_t num_examples() const { return num_examples_; }
  double lambda() const { return lambda_; }

  // Centers the ridge prior at `prior_mean` instead of zero: the
  // solution becomes argmin ||Fw − Y||² + λ||w − w₀||², i.e.
  // (FᵀF + λI) w = FᵀY + λ w₀, so with no data Weights() == w₀. This is
  // how online updates continue from offline-trained weights instead of
  // relearning from scratch. Only valid before any AddExample.
  void SetPriorMean(const DenseVector& prior_mean);

  // Absorbs one example in O(d^2).
  void AddExample(const DenseVector& features, double label);

  // Current ridge weights w = A^{-1} b; O(d^2).
  DenseVector Weights() const;

  // Predictive uncertainty sqrt(f^T A^{-1} f) — the LinUCB bonus.
  double Uncertainty(const DenseVector& features) const;

  const DenseMatrix& a_inverse() const { return a_inv_; }
  const DenseVector& b() const { return b_; }

  // Rebuilds a solver from previously exported state (a_inverse(),
  // b(), lambda(), num_examples()) — bit-exact: a restored solver
  // applies future AddExample calls identically to the original.
  // Used by user-weight snapshots (storage/snapshot.h).
  static ShermanMorrisonSolver FromState(double lambda, DenseMatrix a_inv,
                                         DenseVector b, int64_t num_examples);

 private:
  DenseMatrix a_inv_;
  DenseVector b_;
  double lambda_ = 1.0;
  int64_t num_examples_ = 0;
  // Scratch reused across updates to avoid per-observation allocation
  // on the hot serving path.
  mutable DenseVector scratch_;
};

}  // namespace velox

#endif  // VELOX_LINALG_SHERMAN_MORRISON_H_
