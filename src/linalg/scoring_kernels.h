// Blocked scoring kernels for the full-catalog serving hot path
// (Eq. 1: argmax_x w_uᵀ f(x, θ) over the whole item catalog).
//
// Kernels operate on raw contiguous rows so the caller can stream an
// ItemFactorPlane (ml/feature_function.h) without touching per-item
// heap objects:
//  * DotKernel   — unrolled dot product over four 4-wide vector
//    accumulator lanes (GCC/Clang vector extensions; plain x86-64
//    lowers each 4-wide op to two SSE2 ops with identical lane
//    results, so no target flags are needed). Breaking the single
//    dependency chain lets the core retire multiple multiply-adds per
//    cycle instead of stalling on add latency.
//  * ScoreRows   — GEMV-style row-block scorer: 8 rows per pass
//    against one shared weight vector, so the weights stay
//    register/L1-resident while the factor rows stream through.
//  * DotKernelF / ScoreRowsF — the same shapes in single precision,
//    used by the mixed-precision pre-filter pass of the top-K scan
//    (half the memory traffic; results are approximate and are only
//    ever used with a conservative error bound before exact double
//    rescoring).
//
// Determinism contract: each kernel reduces a given row in one fixed
// association order, independent of how the caller blocks or shards
// the scan: 8-element blocks go to accumulator pair (c0,c1) or
// (c2,c3) by block parity, tail products accumulate into the exact
// lane they would occupy in a full zero-padded block, and the final
// reduction is (c0+c1)+(c2+c3) lanewise then (s0+s1)+(s2+s3). Two
// consequences the scan paths rely on:
//  * zero-padding a row up to a multiple of 8 does not change the
//    result bit (the plane's padded stride is invisible);
//  * DotKernel, ScoreRows, and Dot(DenseVector, DenseVector) (which
//    delegates to DotKernel) produce bit-identical scores for the
//    same row, so the generic, serial-heap, and parallel-plane top-K
//    paths agree exactly.
#ifndef VELOX_LINALG_SCORING_KERNELS_H_
#define VELOX_LINALG_SCORING_KERNELS_H_

#include <cstddef>
#include <cstring>

namespace velox {

#if defined(__GNUC__) || defined(__clang__)

// GCC warns that returning a 32-byte vector without AVX enabled "changes
// the ABI". Every function here is inline and header-only, so no vector
// ever crosses a translation-unit boundary by value; the warning cannot
// apply.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

namespace kernel_detail {

typedef double Vec4d __attribute__((vector_size(32)));
typedef float Vec4f __attribute__((vector_size(16)));

inline Vec4d Load4d(const double* p) {
  Vec4d v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline Vec4f Load4f(const float* p) {
  Vec4f v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace kernel_detail

// Unrolled dot product of a[0..n) and b[0..n); see the determinism
// contract above.
inline double DotKernel(const double* a, const double* b, size_t n) {
  using kernel_detail::Load4d;
  using kernel_detail::Vec4d;
  Vec4d c0 = {0.0, 0.0, 0.0, 0.0}, c1 = c0, c2 = c0, c3 = c0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    c0 += Load4d(a + i) * Load4d(b + i);
    c1 += Load4d(a + i + 4) * Load4d(b + i + 4);
    c2 += Load4d(a + i + 8) * Load4d(b + i + 8);
    c3 += Load4d(a + i + 12) * Load4d(b + i + 12);
  }
  if (i + 8 <= n) {
    c0 += Load4d(a + i) * Load4d(b + i);
    c1 += Load4d(a + i + 4) * Load4d(b + i + 4);
    i += 8;
  }
  if (i < n) {
    // Tail products land in the accumulator lane they would occupy in
    // a full zero-padded 8-block (pair by block parity, lane by offset
    // mod 4), so padding a row with zeros cannot change the result.
    bool hi = ((i / 8) % 2) != 0;
    Vec4d& e0 = hi ? c2 : c0;
    Vec4d& e1 = hi ? c3 : c1;
    for (size_t j = 0; i + j < n; ++j) {
      double p = a[i + j] * b[i + j];
      if (j < 4) {
        e0[j] += p;
      } else {
        e1[j - 4] += p;
      }
    }
  }
  Vec4d s = (c0 + c1) + (c2 + c3);
  return (s[0] + s[1]) + (s[2] + s[3]);
}

// Single-precision analogue of DotKernel, same blocking and the same
// fixed association order (so shard boundaries cannot change any
// row's float score either).
inline float DotKernelF(const float* a, const float* b, size_t n) {
  using kernel_detail::Load4f;
  using kernel_detail::Vec4f;
  Vec4f c0 = {0.0f, 0.0f, 0.0f, 0.0f}, c1 = c0, c2 = c0, c3 = c0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    c0 += Load4f(a + i) * Load4f(b + i);
    c1 += Load4f(a + i + 4) * Load4f(b + i + 4);
    c2 += Load4f(a + i + 8) * Load4f(b + i + 8);
    c3 += Load4f(a + i + 12) * Load4f(b + i + 12);
  }
  if (i + 8 <= n) {
    c0 += Load4f(a + i) * Load4f(b + i);
    c1 += Load4f(a + i + 4) * Load4f(b + i + 4);
    i += 8;
  }
  if (i < n) {
    bool hi = ((i / 8) % 2) != 0;
    Vec4f& e0 = hi ? c2 : c0;
    Vec4f& e1 = hi ? c3 : c1;
    for (size_t j = 0; i + j < n; ++j) {
      float p = a[i + j] * b[i + j];
      if (j < 4) {
        e0[j] += p;
      } else {
        e1[j - 4] += p;
      }
    }
  }
  Vec4f s = (c0 + c1) + (c2 + c3);
  return (s[0] + s[1]) + (s[2] + s[3]);
}

#pragma GCC diagnostic pop

#else  // portable fallback (association differs, but is still fixed
       // within a build, which is all the scan paths require)

inline double DotKernel(const double* a, const double* b, size_t n) {
  double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += a[i] * b[i];
    c1 += a[i + 1] * b[i + 1];
    c2 += a[i + 2] * b[i + 2];
    c3 += a[i + 3] * b[i + 3];
  }
  for (size_t j = 0; i + j < n; ++j) {
    (j == 0 ? c0 : j == 1 ? c1 : c2) += a[i + j] * b[i + j];
  }
  return (c0 + c1) + (c2 + c3);
}

inline float DotKernelF(const float* a, const float* b, size_t n) {
  float c0 = 0.0f, c1 = 0.0f, c2 = 0.0f, c3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += a[i] * b[i];
    c1 += a[i + 1] * b[i + 1];
    c2 += a[i + 2] * b[i + 2];
    c3 += a[i + 3] * b[i + 3];
  }
  for (size_t j = 0; i + j < n; ++j) {
    (j == 0 ? c0 : j == 1 ? c1 : c2) += a[i + j] * b[i + j];
  }
  return (c0 + c1) + (c2 + c3);
}

#endif

// Scores `num_rows` contiguous rows (row r at rows + r * stride, first
// `dim` entries meaningful; stride >= dim, padding ignored) against
// `weights`, writing w·row_r to out[r]. Processes 8 rows per pass.
void ScoreRows(const double* rows, size_t num_rows, size_t stride,
               const double* weights, size_t dim, double* out);

// Single-precision ScoreRows over a float row plane (the pre-filter
// pass of the mixed-precision scan).
void ScoreRowsF(const float* rows, size_t num_rows, size_t stride,
                const float* weights, size_t dim, float* out);

}  // namespace velox

#endif  // VELOX_LINALG_SCORING_KERNELS_H_
