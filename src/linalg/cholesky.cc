#include "linalg/cholesky.h"

#include <cmath>

namespace velox {

Result<DenseMatrix> CholeskyFactor(const DenseMatrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  DenseMatrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      const double* li = l.RowPtr(i);
      const double* lj = l.RowPtr(j);
      for (size_t k = 0; k < j; ++k) sum -= li[k] * lj[k];
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::InvalidArgument("matrix is not positive definite");
        }
        l.At(i, j) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  return l;
}

Result<DenseVector> CholeskySolveWithFactor(const DenseMatrix& l, const DenseVector& b) {
  const size_t n = l.rows();
  if (l.cols() != n || b.dim() != n) {
    return Status::InvalidArgument("factor/vector dimension mismatch");
  }
  // Forward substitution: L y = b.
  DenseVector y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    const double* li = l.RowPtr(i);
    for (size_t k = 0; k < i; ++k) sum -= li[k] * y[k];
    y[i] = sum / li[i];
  }
  // Backward substitution: L^T x = y.
  DenseVector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l.At(k, ii) * x[k];
    x[ii] = sum / l.At(ii, ii);
  }
  return x;
}

Result<DenseVector> CholeskySolve(const DenseMatrix& a, const DenseVector& b) {
  VELOX_ASSIGN_OR_RETURN(DenseMatrix l, CholeskyFactor(a));
  return CholeskySolveWithFactor(l, b);
}

Result<DenseMatrix> SpdInverse(const DenseMatrix& a) {
  VELOX_ASSIGN_OR_RETURN(DenseMatrix l, CholeskyFactor(a));
  const size_t n = a.rows();
  DenseMatrix inv(n, n);
  // Solve A x = e_i column by column.
  DenseVector e(n);
  for (size_t i = 0; i < n; ++i) {
    e.Fill(0.0);
    e[i] = 1.0;
    VELOX_ASSIGN_OR_RETURN(DenseVector x, CholeskySolveWithFactor(l, e));
    for (size_t r = 0; r < n; ++r) inv.At(r, i) = x[r];
  }
  return inv;
}

}  // namespace velox
