#include "linalg/ridge.h"

#include <utility>

#include "common/logging.h"
#include "linalg/cholesky.h"

namespace velox {

void RidgeAccumulator::AddExample(const DenseVector& features, double label) {
  VELOX_CHECK_EQ(features.dim(), dim());
  ftf_.Ger(1.0, features, features);
  fty_.Axpy(label, features);
  ++num_examples_;
}

void RidgeAccumulator::RemoveExample(const DenseVector& features, double label) {
  VELOX_CHECK_EQ(features.dim(), dim());
  VELOX_CHECK_GT(num_examples_, 0);
  ftf_.Ger(-1.0, features, features);
  fty_.Axpy(-label, features);
  --num_examples_;
}

RidgeAccumulator RidgeAccumulator::FromState(DenseMatrix ftf, DenseVector fty,
                                             int64_t num_examples) {
  VELOX_CHECK_EQ(ftf.rows(), fty.dim());
  VELOX_CHECK_EQ(ftf.cols(), fty.dim());
  RidgeAccumulator acc;
  acc.ftf_ = std::move(ftf);
  acc.fty_ = std::move(fty);
  acc.num_examples_ = num_examples;
  return acc;
}

Result<DenseVector> RidgeAccumulator::Solve(double lambda) const {
  if (lambda <= 0.0) {
    return Status::InvalidArgument("ridge lambda must be positive");
  }
  DenseMatrix a = ftf_;
  a.AddDiagonal(lambda);
  return CholeskySolve(a, fty_);
}

Result<DenseVector> RidgeAccumulator::SolveWithPrior(
    double lambda, const DenseVector& prior_mean) const {
  if (lambda <= 0.0) {
    return Status::InvalidArgument("ridge lambda must be positive");
  }
  if (prior_mean.dim() != dim()) {
    return Status::InvalidArgument("prior mean dimension mismatch");
  }
  DenseMatrix a = ftf_;
  a.AddDiagonal(lambda);
  DenseVector rhs = fty_;
  rhs.Axpy(lambda, prior_mean);
  return CholeskySolve(a, rhs);
}

Result<DenseVector> RidgeSolve(const DenseMatrix& f, const DenseVector& y, double lambda) {
  if (f.rows() != y.dim()) {
    return Status::InvalidArgument("design matrix rows must match label count");
  }
  RidgeAccumulator acc(f.cols());
  for (size_t r = 0; r < f.rows(); ++r) {
    acc.AddExample(f.Row(r), y[r]);
  }
  return acc.Solve(lambda);
}

}  // namespace velox
