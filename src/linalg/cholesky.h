// Cholesky factorization and SPD solves — the O(d^3) "naive
// implementation" path of the paper's Eq. 2 normal-equation update
// (and the per-step solver inside ALS).
#ifndef VELOX_LINALG_CHOLESKY_H_
#define VELOX_LINALG_CHOLESKY_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace velox {

// Computes the lower-triangular L with A = L L^T. Fails with
// InvalidArgument if A is not square or not (numerically) positive
// definite.
Result<DenseMatrix> CholeskyFactor(const DenseMatrix& a);

// Solves A x = b for SPD A via Cholesky. O(n^3).
Result<DenseVector> CholeskySolve(const DenseMatrix& a, const DenseVector& b);

// Solves L y = b (forward) then L^T x = y (backward) given the factor.
Result<DenseVector> CholeskySolveWithFactor(const DenseMatrix& l, const DenseVector& b);

// Inverse of SPD A via Cholesky (used to seed Sherman-Morrison state).
Result<DenseMatrix> SpdInverse(const DenseMatrix& a);

}  // namespace velox

#endif  // VELOX_LINALG_CHOLESKY_H_
