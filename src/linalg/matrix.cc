#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace velox {

DenseVector DenseMatrix::Row(size_t r) const {
  VELOX_CHECK_LT(r, rows_);
  DenseVector v(cols_);
  std::copy(RowPtr(r), RowPtr(r) + cols_, v.data());
  return v;
}

void DenseMatrix::SetRow(size_t r, const DenseVector& v) {
  VELOX_CHECK_LT(r, rows_);
  VELOX_CHECK_EQ(v.dim(), cols_);
  std::copy(v.data(), v.data() + cols_, RowPtr(r));
}

void DenseMatrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void DenseMatrix::SetIdentity() {
  VELOX_CHECK_EQ(rows_, cols_);
  Fill(0.0);
  for (size_t i = 0; i < rows_; ++i) At(i, i) = 1.0;
}

void DenseMatrix::AddDiagonal(double alpha) {
  VELOX_CHECK_EQ(rows_, cols_);
  for (size_t i = 0; i < rows_; ++i) At(i, i) += alpha;
}

DenseVector DenseMatrix::Gemv(const DenseVector& x) const {
  VELOX_CHECK_EQ(x.dim(), cols_);
  DenseVector out(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double s = 0.0;
    for (size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    out[r] = s;
  }
  return out;
}

DenseVector DenseMatrix::GemvTranspose(const DenseVector& x) const {
  VELOX_CHECK_EQ(x.dim(), rows_);
  DenseVector out(cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) out[c] += xr * row[c];
  }
  return out;
}

void DenseMatrix::Ger(double alpha, const DenseVector& x, const DenseVector& y) {
  VELOX_CHECK_EQ(x.dim(), rows_);
  VELOX_CHECK_EQ(y.dim(), cols_);
  for (size_t r = 0; r < rows_; ++r) {
    double ax = alpha * x[r];
    if (ax == 0.0) continue;
    double* row = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) row[c] += ax * y[c];
  }
}

void DenseMatrix::Add(const DenseMatrix& other) {
  VELOX_CHECK_EQ(rows_, other.rows_);
  VELOX_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void DenseMatrix::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

double DenseMatrix::FrobeniusNorm() const {
  double sq = 0.0;
  for (double v : data_) sq += v * v;
  return std::sqrt(sq);
}

std::string DenseMatrix::ToString(size_t max_rows, size_t max_cols) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  for (size_t r = 0; r < rows_ && r < max_rows; ++r) {
    os << (r == 0 ? "[" : " [");
    for (size_t c = 0; c < cols_ && c < max_cols; ++c) {
      if (c > 0) os << ", ";
      os << At(r, c);
    }
    if (cols_ > max_cols) os << ", ...";
    os << "]";
  }
  if (rows_ > max_rows) os << " ...";
  os << "]";
  return os.str();
}

DenseMatrix MatMul(const DenseMatrix& a, const DenseMatrix& b) {
  VELOX_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (size_t i = 0; i < a.rows(); ++i) {
    double* crow = c.RowPtr(i);
    const double* arow = a.RowPtr(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.RowPtr(k);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

DenseMatrix AtA(const DenseMatrix& a) {
  DenseMatrix g(a.cols(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.RowPtr(r);
    // Accumulate the upper triangle, then mirror.
    for (size_t i = 0; i < a.cols(); ++i) {
      double ri = row[i];
      if (ri == 0.0) continue;
      double* grow = g.RowPtr(i);
      for (size_t j = i; j < a.cols(); ++j) grow[j] += ri * row[j];
    }
  }
  for (size_t i = 0; i < a.cols(); ++i) {
    for (size_t j = 0; j < i; ++j) g.At(i, j) = g.At(j, i);
  }
  return g;
}

DenseVector Aty(const DenseMatrix& a, const DenseVector& y) {
  return a.GemvTranspose(y);
}

double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  VELOX_CHECK_EQ(a.rows(), b.rows());
  VELOX_CHECK_EQ(a.cols(), b.cols());
  double m = 0.0;
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      m = std::max(m, std::abs(a.At(r, c) - b.At(r, c)));
    }
  }
  return m;
}

}  // namespace velox
