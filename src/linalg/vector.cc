#include "linalg/vector.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "linalg/scoring_kernels.h"

namespace velox {

void DenseVector::Axpy(double alpha, const DenseVector& other) {
  VELOX_CHECK_EQ(dim(), other.dim());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void DenseVector::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

void DenseVector::Fill(double value) {
  for (double& v : data_) v = value;
}

double DenseVector::Norm2() const {
  double sq = 0.0;
  for (double v : data_) sq += v * v;
  return std::sqrt(sq);
}

double DenseVector::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

std::string DenseVector::ToString(size_t max_entries) const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < data_.size() && i < max_entries; ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  if (data_.size() > max_entries) os << ", ... (" << data_.size() << " entries)";
  os << "]";
  return os.str();
}

double Dot(const DenseVector& a, const DenseVector& b) {
  VELOX_CHECK_EQ(a.dim(), b.dim());
  // Delegates to the unrolled kernel so per-item scoring and the
  // blocked catalog scan (linalg/scoring_kernels.h) produce
  // bit-identical results.
  return DotKernel(a.data(), b.data(), a.dim());
}

DenseVector Add(const DenseVector& a, const DenseVector& b) {
  VELOX_CHECK_EQ(a.dim(), b.dim());
  DenseVector out(a.dim());
  for (size_t i = 0; i < a.dim(); ++i) out[i] = a[i] + b[i];
  return out;
}

DenseVector Subtract(const DenseVector& a, const DenseVector& b) {
  VELOX_CHECK_EQ(a.dim(), b.dim());
  DenseVector out(a.dim());
  for (size_t i = 0; i < a.dim(); ++i) out[i] = a[i] - b[i];
  return out;
}

double MaxAbsDiff(const DenseVector& a, const DenseVector& b) {
  VELOX_CHECK_EQ(a.dim(), b.dim());
  double m = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace velox
