#include "linalg/scoring_kernels.h"

#include <cstring>

namespace velox {

namespace {

// ---------------------------------------------------------------------------
// AVX2 clones of the row scorers, selected at runtime.
//
// Per-function target("avx2") keeps the rest of the binary on baseline
// x86-64, so nothing here leaks AVX instructions into code that can run
// on machines without them. FMA is deliberately NOT enabled: with no
// fused-multiply-add in the ISA the compiler cannot contract the
// mul/add pairs below, so every lane performs the exact same IEEE
// operations as the SSE lowering of the header kernels.
//
// Bit-exactness with DotKernelF: the header kernel accumulates
// even-parity 8-element blocks into the Vec4f pair (c0,c1) and
// odd-parity blocks into (c2,c3), then reduces (c0+c1)+(c2+c3)
// lanewise. Here C0 is the 8-wide concatenation (c0|c1) and C1 is
// (c2|c3): the elementwise 8-wide add performs the identical lane
// additions in the identical block order, and the reduction
// (lo(C0)+hi(C0)) + (lo(C1)+hi(C1)) recreates (c0+c1)+(c2+c3) before
// the same final scalar sum. The double kernel needs no restructuring:
// its Vec4d accumulators lower directly to single 256-bit ops.
// ---------------------------------------------------------------------------
#if defined(__GNUC__) && defined(__x86_64__)
#define VELOX_SCORING_AVX2 1

typedef float Vec8f __attribute__((vector_size(32)));

using kernel_detail::Load4d;
using kernel_detail::Vec4d;
using kernel_detail::Vec4f;

__attribute__((target("avx2"))) inline Vec8f Load8f(const float* p) {
  Vec8f v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

__attribute__((target("avx2"))) inline float DotKernelFAvx2(const float* a,
                                                            const float* b,
                                                            size_t n) {
  Vec8f C0 = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  Vec8f C1 = C0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    C0 += Load8f(a + i) * Load8f(b + i);
    C1 += Load8f(a + i + 8) * Load8f(b + i + 8);
  }
  if (i + 8 <= n) {
    C0 += Load8f(a + i) * Load8f(b + i);
    i += 8;
  }
  if (i < n) {
    // Same tail rule as the header kernel: product j of the partial
    // block lands in lane j of the parity-selected accumulator.
    Vec8f& e = (((i / 8) % 2) != 0) ? C1 : C0;
    for (size_t j = 0; i + j < n; ++j) {
      e[j] += a[i + j] * b[i + j];
    }
  }
  Vec4f lo0, hi0, lo1, hi1;
  std::memcpy(&lo0, &C0, sizeof(lo0));
  std::memcpy(&hi0, reinterpret_cast<const char*>(&C0) + sizeof(lo0), sizeof(hi0));
  std::memcpy(&lo1, &C1, sizeof(lo1));
  std::memcpy(&hi1, reinterpret_cast<const char*>(&C1) + sizeof(lo1), sizeof(hi1));
  Vec4f s = (lo0 + hi0) + (lo1 + hi1);
  return (s[0] + s[1]) + (s[2] + s[3]);
}

__attribute__((target("avx2"))) inline double DotKernelAvx2(const double* a,
                                                            const double* b,
                                                            size_t n) {
  Vec4d c0 = {0.0, 0.0, 0.0, 0.0}, c1 = c0, c2 = c0, c3 = c0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    c0 += Load4d(a + i) * Load4d(b + i);
    c1 += Load4d(a + i + 4) * Load4d(b + i + 4);
    c2 += Load4d(a + i + 8) * Load4d(b + i + 8);
    c3 += Load4d(a + i + 12) * Load4d(b + i + 12);
  }
  if (i + 8 <= n) {
    c0 += Load4d(a + i) * Load4d(b + i);
    c1 += Load4d(a + i + 4) * Load4d(b + i + 4);
    i += 8;
  }
  if (i < n) {
    bool hi = ((i / 8) % 2) != 0;
    Vec4d& e0 = hi ? c2 : c0;
    Vec4d& e1 = hi ? c3 : c1;
    for (size_t j = 0; i + j < n; ++j) {
      double p = a[i + j] * b[i + j];
      if (j < 4) {
        e0[j] += p;
      } else {
        e1[j - 4] += p;
      }
    }
  }
  Vec4d s = (c0 + c1) + (c2 + c3);
  return (s[0] + s[1]) + (s[2] + s[3]);
}

__attribute__((target("avx2"))) void ScoreRowsAvx2(const double* rows,
                                                   size_t num_rows, size_t stride,
                                                   const double* weights, size_t dim,
                                                   double* out) {
  size_t r = 0;
  for (; r + 8 <= num_rows; r += 8) {
    const double* p = rows + r * stride;
    out[r] = DotKernelAvx2(p, weights, dim);
    out[r + 1] = DotKernelAvx2(p + stride, weights, dim);
    out[r + 2] = DotKernelAvx2(p + 2 * stride, weights, dim);
    out[r + 3] = DotKernelAvx2(p + 3 * stride, weights, dim);
    out[r + 4] = DotKernelAvx2(p + 4 * stride, weights, dim);
    out[r + 5] = DotKernelAvx2(p + 5 * stride, weights, dim);
    out[r + 6] = DotKernelAvx2(p + 6 * stride, weights, dim);
    out[r + 7] = DotKernelAvx2(p + 7 * stride, weights, dim);
  }
  for (; r < num_rows; ++r) {
    out[r] = DotKernelAvx2(rows + r * stride, weights, dim);
  }
}

__attribute__((target("avx2"))) void ScoreRowsFAvx2(const float* rows,
                                                    size_t num_rows, size_t stride,
                                                    const float* weights, size_t dim,
                                                    float* out) {
  size_t r = 0;
  for (; r + 8 <= num_rows; r += 8) {
    const float* p = rows + r * stride;
    out[r] = DotKernelFAvx2(p, weights, dim);
    out[r + 1] = DotKernelFAvx2(p + stride, weights, dim);
    out[r + 2] = DotKernelFAvx2(p + 2 * stride, weights, dim);
    out[r + 3] = DotKernelFAvx2(p + 3 * stride, weights, dim);
    out[r + 4] = DotKernelFAvx2(p + 4 * stride, weights, dim);
    out[r + 5] = DotKernelFAvx2(p + 5 * stride, weights, dim);
    out[r + 6] = DotKernelFAvx2(p + 6 * stride, weights, dim);
    out[r + 7] = DotKernelFAvx2(p + 7 * stride, weights, dim);
  }
  for (; r < num_rows; ++r) {
    out[r] = DotKernelFAvx2(rows + r * stride, weights, dim);
  }
}

inline bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

#endif  // __GNUC__ && __x86_64__

}  // namespace

void ScoreRows(const double* rows, size_t num_rows, size_t stride,
               const double* weights, size_t dim, double* out) {
#ifdef VELOX_SCORING_AVX2
  if (CpuHasAvx2()) {
    ScoreRowsAvx2(rows, num_rows, stride, weights, dim, out);
    return;
  }
#endif
  size_t r = 0;
  // 8 rows per pass: one streamed read of 8 contiguous rows against the
  // cached weight vector. Each row reduces via DotKernel so the result
  // is bit-identical to scoring rows one at a time.
  for (; r + 8 <= num_rows; r += 8) {
    const double* p = rows + r * stride;
    out[r] = DotKernel(p, weights, dim);
    out[r + 1] = DotKernel(p + stride, weights, dim);
    out[r + 2] = DotKernel(p + 2 * stride, weights, dim);
    out[r + 3] = DotKernel(p + 3 * stride, weights, dim);
    out[r + 4] = DotKernel(p + 4 * stride, weights, dim);
    out[r + 5] = DotKernel(p + 5 * stride, weights, dim);
    out[r + 6] = DotKernel(p + 6 * stride, weights, dim);
    out[r + 7] = DotKernel(p + 7 * stride, weights, dim);
  }
  for (; r < num_rows; ++r) {
    out[r] = DotKernel(rows + r * stride, weights, dim);
  }
}

void ScoreRowsF(const float* rows, size_t num_rows, size_t stride,
                const float* weights, size_t dim, float* out) {
#ifdef VELOX_SCORING_AVX2
  if (CpuHasAvx2()) {
    ScoreRowsFAvx2(rows, num_rows, stride, weights, dim, out);
    return;
  }
#endif
  size_t r = 0;
  for (; r + 8 <= num_rows; r += 8) {
    const float* p = rows + r * stride;
    out[r] = DotKernelF(p, weights, dim);
    out[r + 1] = DotKernelF(p + stride, weights, dim);
    out[r + 2] = DotKernelF(p + 2 * stride, weights, dim);
    out[r + 3] = DotKernelF(p + 3 * stride, weights, dim);
    out[r + 4] = DotKernelF(p + 4 * stride, weights, dim);
    out[r + 5] = DotKernelF(p + 5 * stride, weights, dim);
    out[r + 6] = DotKernelF(p + 6 * stride, weights, dim);
    out[r + 7] = DotKernelF(p + 7 * stride, weights, dim);
  }
  for (; r < num_rows; ++r) {
    out[r] = DotKernelF(rows + r * stride, weights, dim);
  }
}

}  // namespace velox
