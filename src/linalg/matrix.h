// Row-major dense matrix with the BLAS-2/3 kernels the online updater
// and ALS trainer need: Gemv, rank-one update (Ger), and Gram-matrix
// accumulation (AtA).
#ifndef VELOX_LINALG_MATRIX_H_
#define VELOX_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/vector.h"

namespace velox {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  // Copies row r into a DenseVector.
  DenseVector Row(size_t r) const;
  // Overwrites row r; v.dim() must equal cols().
  void SetRow(size_t r, const DenseVector& v);

  void Fill(double value);
  // Sets this to the identity (must be square).
  void SetIdentity();
  // Adds alpha to each diagonal entry (must be square).
  void AddDiagonal(double alpha);

  // out = this * x  (dims: rows x cols * cols -> rows).
  DenseVector Gemv(const DenseVector& x) const;
  // out = this^T * x (dims: cols).
  DenseVector GemvTranspose(const DenseVector& x) const;
  // this += alpha * x * y^T (x.dim()==rows, y.dim()==cols).
  void Ger(double alpha, const DenseVector& x, const DenseVector& y);
  // this += other (same shape).
  void Add(const DenseMatrix& other);
  void Scale(double alpha);

  DenseMatrix Transpose() const;

  // Frobenius norm.
  double FrobeniusNorm() const;

  std::string ToString(size_t max_rows = 4, size_t max_cols = 8) const;

  friend bool operator==(const DenseMatrix& a, const DenseMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// C = A * B.
DenseMatrix MatMul(const DenseMatrix& a, const DenseMatrix& b);

// Gram matrix A^T A (cols x cols) — the F(X,θ)^T F(X,θ) term of Eq. 2.
DenseMatrix AtA(const DenseMatrix& a);

// A^T y for y.dim() == a.rows().
DenseVector Aty(const DenseMatrix& a, const DenseVector& y);

// Max |a_ij - b_ij|; shapes must match.
double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace velox

#endif  // VELOX_LINALG_MATRIX_H_
