// Dense double-precision vector with the handful of BLAS-1 operations
// velox needs (dot products for Eq. 1 scoring, axpy/scale for updates).
// Deliberately minimal: no expression templates, no allocator games —
// predictable performance is what the latency experiments measure.
#ifndef VELOX_LINALG_VECTOR_H_
#define VELOX_LINALG_VECTOR_H_

#include <cstddef>
#include <string>
#include <vector>

namespace velox {

class DenseVector {
 public:
  DenseVector() = default;
  explicit DenseVector(size_t dim) : data_(dim, 0.0) {}
  DenseVector(std::initializer_list<double> init) : data_(init) {}
  explicit DenseVector(std::vector<double> data) : data_(std::move(data)) {}

  size_t dim() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](size_t i) { return data_[i]; }
  double operator[](size_t i) const { return data_[i]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  const std::vector<double>& values() const { return data_; }

  // this += alpha * other. Dimensions must match.
  void Axpy(double alpha, const DenseVector& other);
  // this *= alpha.
  void Scale(double alpha);
  // Sets all entries to value.
  void Fill(double value);
  // Euclidean norm.
  double Norm2() const;
  // Sum of entries.
  double Sum() const;

  std::string ToString(size_t max_entries = 8) const;

  friend bool operator==(const DenseVector& a, const DenseVector& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<double> data_;
};

// a . b; dimensions must match.
double Dot(const DenseVector& a, const DenseVector& b);

// Element-wise a + b and a - b.
DenseVector Add(const DenseVector& a, const DenseVector& b);
DenseVector Subtract(const DenseVector& a, const DenseVector& b);

// Max |a_i - b_i|; vectors must have equal dimension.
double MaxAbsDiff(const DenseVector& a, const DenseVector& b);

}  // namespace velox

#endif  // VELOX_LINALG_VECTOR_H_
