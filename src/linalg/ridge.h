// Ridge regression via the normal equations — exactly the paper's
// Eq. 2:
//
//   w_u <- (F(X,θ)^T F(X,θ) + λ I)^{-1} F(X,θ)^T Y
//
// RidgeAccumulator maintains the sufficient statistics (Gram matrix
// F^T F and moment vector F^T Y) incrementally so a user's weight
// vector can be recomputed after each observation without retouching
// historical examples. Solving from the accumulator is O(d^3)
// (Cholesky): this is the "naive implementation" whose latency the
// paper reports in Figure 3. The O(d^2) alternative lives in
// linalg/sherman_morrison.h.
#ifndef VELOX_LINALG_RIDGE_H_
#define VELOX_LINALG_RIDGE_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace velox {

class RidgeAccumulator {
 public:
  RidgeAccumulator() = default;
  explicit RidgeAccumulator(size_t dim) : ftf_(dim, dim), fty_(dim) {}

  size_t dim() const { return fty_.dim(); }
  int64_t num_examples() const { return num_examples_; }

  // Adds one (features, label) example: FtF += f f^T, Fty += y f.
  void AddExample(const DenseVector& features, double label);

  // Removes an example previously added (used by cross-validation to
  // score an observation before absorbing it).
  void RemoveExample(const DenseVector& features, double label);

  // Solves (FtF + lambda I) w = Fty from scratch. O(d^3).
  Result<DenseVector> Solve(double lambda) const;

  // Ridge with a non-zero prior mean w₀ (Gaussian prior centered at
  // w₀): solves (FtF + lambda I) w = Fty + lambda w₀, so with no data
  // the solution is w₀ itself. Used to continue online learning from
  // offline-trained weights.
  Result<DenseVector> SolveWithPrior(double lambda, const DenseVector& prior_mean) const;

  const DenseMatrix& ftf() const { return ftf_; }
  const DenseVector& fty() const { return fty_; }

  // Rebuilds an accumulator from previously exported state (ftf(),
  // fty(), num_examples()) — bit-exact continuation for user-weight
  // snapshots (storage/snapshot.h).
  static RidgeAccumulator FromState(DenseMatrix ftf, DenseVector fty,
                                    int64_t num_examples);

 private:
  DenseMatrix ftf_;
  DenseVector fty_;
  int64_t num_examples_ = 0;
};

// One-shot ridge solve from a design matrix: rows of `f` are feature
// vectors, `y` the labels. Equivalent to accumulating all rows and
// calling Solve.
Result<DenseVector> RidgeSolve(const DenseMatrix& f, const DenseVector& y, double lambda);

}  // namespace velox

#endif  // VELOX_LINALG_RIDGE_H_
