#include "storage/storage_cluster.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace velox {

StorageCluster::StorageCluster(StorageClusterOptions options)
    : options_(options), network_(options.network) {
  VELOX_CHECK_GT(options.num_nodes, 0);
  replication_ = std::clamp(options.replication_factor, 1, options.num_nodes);
  stores_.reserve(static_cast<size_t>(options.num_nodes));
  logs_.reserve(static_cast<size_t>(options.num_nodes));
  for (int32_t i = 0; i < options.num_nodes; ++i) {
    VELOX_CHECK_OK(cluster_.AddNode(i, StrFormat("node-%d:7077", i)));
    VELOX_CHECK_OK(router_.AddNode(i));
    stores_.push_back(std::make_unique<KvStore>());
    logs_.push_back(std::make_unique<ObservationLog>());
  }
  if (options.inject_faults) network_.InjectFaults(options.faults);
}

Status StorageCluster::SetNodeFailWrites(NodeId node, bool fail) {
  if (node < 0 || node >= num_nodes()) {
    return Status::InvalidArgument(StrFormat("no such node %d", node));
  }
  stores_[static_cast<size_t>(node)]->SetFailWrites(fail);
  return Status::OK();
}

Result<NodeId> StorageCluster::OwnerOf(Key key) const {
  std::lock_guard<std::mutex> lock(router_mu_);
  return router_.NodeForKey(key);
}

Result<std::vector<NodeId>> StorageCluster::OwnersOf(Key key) const {
  std::lock_guard<std::mutex> lock(router_mu_);
  return router_.NodesForKey(key, replication_);
}

Status StorageCluster::FailNode(NodeId node) {
  if (node < 0 || node >= num_nodes()) {
    return Status::InvalidArgument(StrFormat("no such node %d", node));
  }
  VELOX_RETURN_NOT_OK(cluster_.MarkDead(node));
  std::lock_guard<std::mutex> lock(router_mu_);
  VELOX_RETURN_NOT_OK(router_.RemoveNode(node));
  if (router_.num_nodes() == 0) {
    return Status::FailedPrecondition("last node failed; cluster is down");
  }
  return Status::OK();
}

void StorageCluster::AdvanceTimestampTo(int64_t t) {
  int64_t current = logical_time_.load();
  while (current < t && !logical_time_.compare_exchange_weak(current, t)) {
  }
}

bool StorageCluster::IsAlive(NodeId node) const {
  auto info = cluster_.GetNode(node);
  return info.ok() && info->state == NodeState::kAlive;
}

Status StorageCluster::CreateTable(const std::string& name) {
  for (auto& store : stores_) {
    auto r = store->CreateTable(name, options_.partitions_per_table);
    VELOX_RETURN_NOT_OK(r.status());
  }
  return Status::OK();
}

std::vector<Observation> StorageCluster::AllObservations() const {
  std::vector<Observation> out;
  for (int32_t n = 0; n < num_nodes(); ++n) {
    if (!IsAlive(n)) continue;
    auto shard = logs_[static_cast<size_t>(n)]->ReadFrom(0);
    out.insert(out.end(), shard.begin(), shard.end());
  }
  return out;
}

}  // namespace velox
