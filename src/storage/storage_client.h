// StorageClient: node-bound, fault-tolerant access to the StorageCluster.
//
// A client is constructed with an origin node (the node the calling
// Velox predictor/manager process runs on). Every operation resolves
// the owning replicas via the ring and charges the simulated network —
// a local call when owner == origin, a remote RPC otherwise. This makes
// the paper's locality properties measurable: with uid-routing enabled
// the user-weight table sees 100% local traffic; item-feature fetches
// are remote unless cached.
//
// Robustness (Clipper-style bounded latency + "The Tail at Scale"):
// under an injected fault plan (cluster/network.h) messages can drop,
// time out, or slow down, so every operation runs inside a per-op
// deadline of simulated nanoseconds, transient (Unavailable) failures
// are retried with exponential backoff + jitter, and reads hedge to a
// second replica when the primary's projected round trip exceeds the
// hedge delay plus the secondary's. Definitive answers (NotFound, a
// missing table) are never retried.
#ifndef VELOX_STORAGE_STORAGE_CLIENT_H_
#define VELOX_STORAGE_STORAGE_CLIENT_H_

#include <atomic>
#include <mutex>
#include <string>

#include "common/random.h"
#include "storage/storage_cluster.h"

namespace velox {

struct StorageClientOptions {
  // Total delivery passes per op (each pass walks the replica list);
  // 1 = no retries. Only transient (Unavailable) failures are retried.
  int32_t max_attempts = 3;
  // Backoff before retry k (1-based): base * multiplier^(k-1), then
  // jittered by +/- backoff_jitter fraction. Charged to the simulated
  // clock, never slept.
  int64_t backoff_base_nanos = 500'000;  // 0.5ms
  double backoff_multiplier = 2.0;
  double backoff_jitter = 0.5;
  // Per-op budget of simulated nanoseconds (message costs, fault
  // timeouts, backoff and hedge waits all count against it). 0
  // disables deadline enforcement.
  int64_t op_deadline_nanos = 50'000'000;  // 50ms
  // Hedged reads: when the projected primary round trip exceeds
  // hedge_delay_nanos plus the projected round trip of another
  // replica, race that replica (the abandoned primary request is still
  // charged as wire traffic).
  bool hedge_reads = true;
  int64_t hedge_delay_nanos = 1'000'000;  // 1ms
  // Seed for backoff jitter.
  uint64_t seed = 0xbacf0ffULL;
};

// Monotone counters describing how hard the client had to work; the
// serving layer surfaces these as storage.* metrics.
//
// Batched ops count hedges/failovers/retries once per *sub-batch*
// (one message to one node), never once per key: a 64-key sub-batch
// that gets hedged is one hedged read, not 64.
struct StorageClientStats {
  uint64_t retries = 0;           // delivery passes re-run after backoff
  uint64_t hedged_reads = 0;      // secondary replica raced
  uint64_t hedge_wins = 0;        // ...and served the read
  uint64_t deadline_misses = 0;   // op abandoned at its deadline
  uint64_t failovers = 0;         // read served by a non-primary replica
  uint64_t partial_writes = 0;    // Put landed on some but not all replicas
  int64_t backoff_nanos = 0;      // total simulated backoff + hedge waits
  // Batched reads: MultiGet calls, keys they asked for, sub-batch
  // messages they sent, and duplicate keys merged into one fetch.
  uint64_t multiget_batches = 0;
  uint64_t multiget_keys = 0;
  uint64_t multiget_sub_batches = 0;
  uint64_t multiget_merged_misses = 0;
  // Batched writes: MultiPut calls / entries / sub-batch messages.
  uint64_t multiput_batches = 0;
  uint64_t multiput_keys = 0;
  uint64_t multiput_sub_batches = 0;
};

// Optional per-op trace for stage accounting and benches.
struct StorageOpReport {
  int32_t attempts = 1;
  bool hedged = false;
  bool deadline_missed = false;
  // Simulated nanos the op spent waiting in backoff / hedge delays.
  int64_t backoff_nanos = 0;
  // Total simulated nanos the op consumed (messages + waits).
  int64_t sim_nanos = 0;
};

// Outcome of a batched read: per-key results plus the op-level trace.
struct MultiGetResult {
  // Parallel to the input keys. Each entry is the value, NotFound
  // (every replica answered and none had it — definitive), or
  // Unavailable (transient failures survived retries / the deadline).
  // Partial success is normal: some keys resolve, others do not.
  std::vector<Result<Value>> values;
  // True when any key was served by a non-origin replica (the batch
  // paid at least one network round trip).
  bool any_remote = false;
  StorageOpReport report;

  size_t found() const {
    size_t n = 0;
    for (const auto& v : values) n += v.ok() ? 1 : 0;
    return n;
  }
};

class StorageClient {
 public:
  StorageClient(StorageCluster* cluster, NodeId origin_node,
                StorageClientOptions options = {});

  NodeId origin() const { return origin_; }
  const StorageClientOptions& options() const { return options_; }

  // Reads `key` from its primary owner, falling back along the replica
  // list (replication_factor > 1) when a replica misses or is gone,
  // hedging to a faster replica when the primary is slow, and retrying
  // transient delivery failures under the op deadline. When
  // `was_remote` is non-null it reports whether the replica that
  // served the read lives on a different node than the origin (i.e.
  // the read paid a network round-trip) — stage tracing uses this to
  // split local vs. remote feature resolution. It is always assigned,
  // false on every error path, so callers never read an indeterminate
  // flag. `report`, when non-null, receives the op trace.
  Result<Value> Get(const std::string& table, Key key, bool* was_remote = nullptr,
                    StorageOpReport* report = nullptr);
  // Writes `key` to every replica owner, retrying transiently failed
  // replicas under the op deadline. Returns the first error when any
  // replica ultimately failed (and counts a partial write if at least
  // one replica took the value).
  Status Put(const std::string& table, Key key, Value value);
  // Deletes from every reachable replica; OK if any replica held the key.
  Status Delete(const std::string& table, Key key);

  // Batched read of `keys`. Keys are grouped by owning replica via the
  // ring and each group travels as ONE sub-batch message per node per
  // delivery pass (one header charge + summed payload bytes), so a
  // B-key cold read costs O(nodes) round trips instead of O(B).
  // Duplicate keys are merged into a single fetch (multiget.
  // merged_misses). Per-key semantics match Get exactly: a key missing
  // on one replica falls over to the next within the pass; retries
  // after backoff re-shard only the still-missing keys; whole
  // sub-batches (never individual keys) are hedged to the replica set
  // when the target node is projected slow; the op-wide deadline
  // converts the remaining keys to Unavailable. Results are positional
  // and partial: each key carries its own value or status.
  MultiGetResult MultiGet(const std::string& table, const std::vector<Key>& keys);

  // Batched write: every entry goes to all its replica owners, grouped
  // into one sub-batch message per node per delivery pass. Returns one
  // Status per entry, in input order: OK when every replica took the
  // value, the first error otherwise (counting a partial write when at
  // least one replica did). Transiently unreachable nodes are retried
  // with only their still-pending entries.
  std::vector<Status> MultiPut(const std::string& table,
                               std::vector<std::pair<Key, Value>> entries);

  // Appends to the *origin node's* observation-log shard (observation
  // writes are always local, matching the paper: "all writes — online
  // updates to user weight vectors — are local").
  uint64_t AppendObservation(const Observation& obs);

  // Cluster-wide monotone logical timestamp.
  int64_t NextTimestamp() { return cluster_->NextTimestamp(); }

  StorageClientStats stats() const;
  void ResetStats();

 private:
  // Backoff for the transition into delivery pass `attempt` (>= 1),
  // jittered. Charged to the network's wait ledger by the caller.
  int64_t BackoffNanos(int32_t attempt);

  StorageCluster* cluster_;
  NodeId origin_;
  StorageClientOptions options_;

  std::mutex rng_mu_;
  Rng rng_;

  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> hedged_reads_{0};
  std::atomic<uint64_t> hedge_wins_{0};
  std::atomic<uint64_t> deadline_misses_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> partial_writes_{0};
  std::atomic<int64_t> backoff_nanos_{0};
  std::atomic<uint64_t> multiget_batches_{0};
  std::atomic<uint64_t> multiget_keys_{0};
  std::atomic<uint64_t> multiget_sub_batches_{0};
  std::atomic<uint64_t> multiget_merged_misses_{0};
  std::atomic<uint64_t> multiput_batches_{0};
  std::atomic<uint64_t> multiput_keys_{0};
  std::atomic<uint64_t> multiput_sub_batches_{0};
};

}  // namespace velox

#endif  // VELOX_STORAGE_STORAGE_CLIENT_H_
