// StorageClient: node-bound access to the StorageCluster.
//
// A client is constructed with an origin node (the node the calling
// Velox predictor/manager process runs on). Every operation resolves
// the owning node via the ring and charges the simulated network — a
// local call when owner == origin, a remote RPC otherwise. This makes
// the paper's locality properties measurable: with uid-routing enabled
// the user-weight table sees 100% local traffic; item-feature fetches
// are remote unless cached.
#ifndef VELOX_STORAGE_STORAGE_CLIENT_H_
#define VELOX_STORAGE_STORAGE_CLIENT_H_

#include <string>

#include "storage/storage_cluster.h"

namespace velox {

class StorageClient {
 public:
  StorageClient(StorageCluster* cluster, NodeId origin_node);

  NodeId origin() const { return origin_; }

  // Reads `key` from its primary owner, falling back along the replica
  // list (replication_factor > 1) when a replica misses or is gone.
  // When `was_remote` is non-null it reports whether the replica that
  // served the read lives on a different node than the origin (i.e.
  // the read paid a network round-trip) — stage tracing uses this to
  // split local vs. remote feature resolution.
  Result<Value> Get(const std::string& table, Key key, bool* was_remote = nullptr);
  // Writes `key` to every replica owner.
  Status Put(const std::string& table, Key key, Value value);
  // Deletes from every replica; OK if any replica held the key.
  Status Delete(const std::string& table, Key key);

  // Appends to the *origin node's* observation-log shard (observation
  // writes are always local, matching the paper: "all writes — online
  // updates to user weight vectors — are local").
  uint64_t AppendObservation(const Observation& obs);

  // Cluster-wide monotone logical timestamp.
  int64_t NextTimestamp() { return cluster_->NextTimestamp(); }

 private:
  // Resolves the owner and charges the network for a message carrying
  // `payload_bytes`.
  Result<KvTable*> RouteToTable(const std::string& table, Key key,
                                uint64_t payload_bytes);

  StorageCluster* cluster_;
  NodeId origin_;
};

}  // namespace velox

#endif  // VELOX_STORAGE_STORAGE_CLIENT_H_
