#include "storage/partition.h"

#include "common/string_util.h"

namespace velox {

Result<Value> Partition::Get(Key key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    return Status::NotFound(StrFormat("key %llu", static_cast<unsigned long long>(key)));
  }
  return it->second;
}

void Partition::Put(Key key, Value value) {
  std::lock_guard<std::mutex> lock(mu_);
  map_[key] = std::move(value);
}

Status Partition::Delete(Key key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.erase(key) == 0) {
    return Status::NotFound(StrFormat("key %llu", static_cast<unsigned long long>(key)));
  }
  return Status::OK();
}

bool Partition::Contains(Key key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.count(key) > 0;
}

void Partition::Scan(const std::function<void(Key, const Value&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : map_) fn(k, v);
}

std::vector<std::pair<Key, Value>> Partition::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<Key, Value>> out;
  out.reserve(map_.size());
  for (const auto& [k, v] : map_) out.emplace_back(k, v);
  return out;
}

size_t Partition::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

uint64_t Partition::SizeBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes = 0;
  for (const auto& [k, v] : map_) bytes += sizeof(k) + v.size();
  return bytes;
}

}  // namespace velox
