// A single storage partition: a mutex-protected hash map shard of a
// table. Partitions are the unit of distribution (assigned to nodes by
// the router) and the unit of parallelism for batch scans.
#ifndef VELOX_STORAGE_PARTITION_H_
#define VELOX_STORAGE_PARTITION_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace velox {

using Key = uint64_t;
using Value = std::vector<uint8_t>;

class Partition {
 public:
  Partition() = default;
  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

  Result<Value> Get(Key key) const;
  // Inserts or overwrites.
  void Put(Key key, Value value);
  // Returns NotFound if absent.
  Status Delete(Key key);
  bool Contains(Key key) const;

  // Invokes fn(key, value) for every entry under the partition lock;
  // fn must not call back into this partition.
  void Scan(const std::function<void(Key, const Value&)>& fn) const;

  // Copies all entries out (consistent point-in-time view of the
  // partition, used by Snapshot).
  std::vector<std::pair<Key, Value>> Dump() const;

  size_t size() const;
  // Approximate resident bytes (keys + values).
  uint64_t SizeBytes() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<Key, Value> map_;
};

}  // namespace velox

#endif  // VELOX_STORAGE_PARTITION_H_
