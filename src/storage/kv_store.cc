#include "storage/kv_store.h"

#include "common/logging.h"

namespace velox {

KvTable::KvTable(std::string name, int32_t num_partitions)
    : name_(std::move(name)), partitioner_(num_partitions) {
  partitions_.reserve(static_cast<size_t>(num_partitions));
  for (int32_t i = 0; i < num_partitions; ++i) {
    partitions_.push_back(std::make_unique<Partition>());
  }
}

Result<Value> KvTable::Get(Key key) const {
  return partitions_[static_cast<size_t>(partitioner_.PartitionForKey(key))]->Get(key);
}

Status KvTable::Put(Key key, Value value) {
  if (fail_writes_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("table '" + name_ + "' is rejecting writes");
  }
  partitions_[static_cast<size_t>(partitioner_.PartitionForKey(key))]->Put(
      key, std::move(value));
  return Status::OK();
}

Status KvTable::Delete(Key key) {
  return partitions_[static_cast<size_t>(partitioner_.PartitionForKey(key))]->Delete(key);
}

std::vector<Result<Value>> KvTable::MultiGet(const std::vector<Key>& keys) const {
  std::vector<Result<Value>> out;
  out.reserve(keys.size());
  for (Key key : keys) out.push_back(Get(key));
  return out;
}

std::vector<Status> KvTable::MultiPut(
    const std::vector<std::pair<Key, Value>>& entries) {
  std::vector<Status> out;
  out.reserve(entries.size());
  for (const auto& [key, value] : entries) out.push_back(Put(key, value));
  return out;
}

bool KvTable::Contains(Key key) const {
  return partitions_[static_cast<size_t>(partitioner_.PartitionForKey(key))]->Contains(
      key);
}

std::vector<std::pair<Key, Value>> KvTable::Snapshot() const {
  std::vector<std::pair<Key, Value>> out;
  for (const auto& p : partitions_) {
    auto rows = p->Dump();
    out.insert(out.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }
  return out;
}

size_t KvTable::size() const {
  size_t total = 0;
  for (const auto& p : partitions_) total += p->size();
  return total;
}

uint64_t KvTable::SizeBytes() const {
  uint64_t total = 0;
  for (const auto& p : partitions_) total += p->SizeBytes();
  return total;
}

Result<KvTable*> KvStore::CreateTable(const std::string& name, int32_t num_partitions) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  auto table = std::make_unique<KvTable>(name, num_partitions);
  table->SetFailWrites(fail_writes_);
  KvTable* ptr = table.get();
  tables_[name] = std::move(table);
  return ptr;
}

Result<KvTable*> KvStore::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second.get();
}

KvTable* KvStore::GetOrCreateTable(const std::string& name, int32_t num_partitions) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second.get();
  auto table = std::make_unique<KvTable>(name, num_partitions);
  table->SetFailWrites(fail_writes_);
  KvTable* ptr = table.get();
  tables_[name] = std::move(table);
  return ptr;
}

Status KvStore::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.erase(name) == 0) return Status::NotFound("no such table: " + name);
  return Status::OK();
}

std::vector<std::string> KvStore::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

void KvStore::SetFailWrites(bool fail) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_writes_ = fail;
  for (auto& [name, table] : tables_) table->SetFailWrites(fail);
}

uint64_t KvStore::TotalSizeBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, table] : tables_) total += table->SizeBytes();
  return total;
}

}  // namespace velox
