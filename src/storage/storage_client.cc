#include "storage/storage_client.h"

#include "common/logging.h"

namespace velox {

StorageClient::StorageClient(StorageCluster* cluster, NodeId origin_node)
    : cluster_(cluster), origin_(origin_node) {
  VELOX_CHECK_GE(origin_node, 0);
  VELOX_CHECK_LT(origin_node, cluster->num_nodes());
}

Result<KvTable*> StorageClient::RouteToTable(const std::string& table, Key key,
                                             uint64_t payload_bytes) {
  VELOX_ASSIGN_OR_RETURN(NodeId owner, cluster_->OwnerOf(key));
  cluster_->network()->Charge(origin_, owner, payload_bytes);
  return cluster_->store(owner)->GetTable(table);
}

Result<Value> StorageClient::Get(const std::string& table, Key key, bool* was_remote) {
  VELOX_ASSIGN_OR_RETURN(std::vector<NodeId> owners, cluster_->OwnersOf(key));
  Status last = Status::NotFound("no replica produced the key");
  for (NodeId owner : owners) {
    // Request message, then the response payload on success.
    cluster_->network()->Charge(origin_, owner, sizeof(Key));
    auto t = cluster_->store(owner)->GetTable(table);
    if (!t.ok()) {
      last = t.status();
      continue;
    }
    auto value = t.value()->Get(key);
    if (value.ok()) {
      cluster_->network()->Charge(owner, origin_, value.value().size());
      if (was_remote != nullptr) *was_remote = owner != origin_;
      return value;
    }
    last = value.status();
  }
  return last;
}

Status StorageClient::Put(const std::string& table, Key key, Value value) {
  VELOX_ASSIGN_OR_RETURN(std::vector<NodeId> owners, cluster_->OwnersOf(key));
  Status first_error;
  for (NodeId owner : owners) {
    cluster_->network()->Charge(origin_, owner, sizeof(Key) + value.size());
    auto t = cluster_->store(owner)->GetTable(table);
    if (!t.ok()) {
      if (first_error.ok()) first_error = t.status();
      continue;
    }
    t.value()->Put(key, value);
  }
  return first_error;
}

Status StorageClient::Delete(const std::string& table, Key key) {
  VELOX_ASSIGN_OR_RETURN(std::vector<NodeId> owners, cluster_->OwnersOf(key));
  Status result = Status::NotFound("key absent on all replicas");
  for (NodeId owner : owners) {
    cluster_->network()->Charge(origin_, owner, sizeof(Key));
    auto t = cluster_->store(owner)->GetTable(table);
    if (!t.ok()) continue;
    if (t.value()->Delete(key).ok()) result = Status::OK();
  }
  return result;
}

uint64_t StorageClient::AppendObservation(const Observation& obs) {
  cluster_->network()->Charge(origin_, origin_, obs.Serialize().size());
  return cluster_->observation_log(origin_)->Append(obs);
}

}  // namespace velox
