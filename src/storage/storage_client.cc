#include "storage/storage_client.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace velox {

StorageClient::StorageClient(StorageCluster* cluster, NodeId origin_node,
                             StorageClientOptions options)
    : cluster_(cluster),
      origin_(origin_node),
      options_(options),
      rng_(options.seed ^ (0x51edc11e47ULL + static_cast<uint64_t>(origin_node))) {
  VELOX_CHECK_GE(origin_node, 0);
  VELOX_CHECK_LT(origin_node, cluster->num_nodes());
  VELOX_CHECK_GE(options_.max_attempts, 1);
}

int64_t StorageClient::BackoffNanos(int32_t attempt) {
  double wait = static_cast<double>(options_.backoff_base_nanos);
  for (int32_t i = 1; i < attempt; ++i) wait *= options_.backoff_multiplier;
  const double j = options_.backoff_jitter;
  if (j > 0.0) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    wait *= (1.0 - j) + 2.0 * j * rng_.UniformDouble();
  }
  return std::max<int64_t>(0, std::llround(wait));
}

Result<Value> StorageClient::Get(const std::string& table, Key key, bool* was_remote,
                                 StorageOpReport* report) {
  // Error paths must never leave the caller's flag indeterminate.
  if (was_remote != nullptr) *was_remote = false;
  StorageOpReport scratch;
  StorageOpReport* rep = report != nullptr ? report : &scratch;
  *rep = StorageOpReport{};

  VELOX_ASSIGN_OR_RETURN(std::vector<NodeId> owners, cluster_->OwnersOf(key));
  SimulatedNetwork* net = cluster_->network();
  const int64_t deadline = options_.op_deadline_nanos;
  const int64_t fail_wait = net->fault_timeout_nanos();
  int64_t spent = 0;

  // Hedge-aware serving order: the primary goes first unless its
  // projected round trip loses to "wait hedge_delay, then race replica
  // i". A fired hedge abandons the in-flight primary request (still
  // counted as wire traffic) and serves from the raced replica;
  // everything else stays in the fallback order.
  std::vector<size_t> order(owners.size());
  std::iota(order.begin(), order.end(), size_t{0});
  size_t hedge_target = 0;
  if (options_.hedge_reads && owners.size() > 1) {
    const int64_t primary_rtt = 2 * net->CostNanos(origin_, owners[0], sizeof(Key));
    int64_t best_rtt = primary_rtt;
    for (size_t i = 1; i < owners.size(); ++i) {
      int64_t rtt = options_.hedge_delay_nanos +
                    2 * net->CostNanos(origin_, owners[i], sizeof(Key));
      if (rtt < best_rtt) {
        best_rtt = rtt;
        hedge_target = i;
      }
    }
    if (hedge_target != 0) {
      std::rotate(order.begin(), order.begin() + static_cast<ptrdiff_t>(hedge_target),
                  order.begin() + static_cast<ptrdiff_t>(hedge_target) + 1);
      hedged_reads_.fetch_add(1, std::memory_order_relaxed);
      rep->hedged = true;
      // The client waited out the hedge delay before racing, and the
      // abandoned primary request still occupies the wire.
      net->ChargeWait(options_.hedge_delay_nanos);
      net->ChargeAbandoned(origin_, owners[0], sizeof(Key));
      backoff_nanos_.fetch_add(options_.hedge_delay_nanos, std::memory_order_relaxed);
      rep->backoff_nanos += options_.hedge_delay_nanos;
      spent += options_.hedge_delay_nanos;
    }
  }

  Status last = Status::NotFound("no replica produced the key");
  const int32_t max_attempts = std::max(1, options_.max_attempts);
  for (int32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      int64_t wait = BackoffNanos(attempt);
      if (deadline > 0 && spent + wait > deadline) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
        rep->deadline_missed = true;
        rep->sim_nanos = spent;
        return Status::Unavailable("storage get: deadline exceeded before retry");
      }
      net->ChargeWait(wait);
      backoff_nanos_.fetch_add(wait, std::memory_order_relaxed);
      rep->backoff_nanos += wait;
      spent += wait;
      retries_.fetch_add(1, std::memory_order_relaxed);
    }
    rep->attempts = attempt + 1;

    bool transient = false;
    for (size_t pos = 0; pos < order.size(); ++pos) {
      NodeId owner = owners[order[pos]];
      // Request message, then the response payload on success.
      Result<int64_t> sent = net->TryCharge(origin_, owner, sizeof(Key));
      if (!sent.ok()) {
        transient = true;
        last = sent.status();
        spent += fail_wait;
        continue;
      }
      spent += sent.value();
      auto t = cluster_->store(owner)->GetTable(table);
      if (!t.ok()) {
        last = t.status();  // definitive: the node answered
        continue;
      }
      auto value = t.value()->Get(key);
      if (!value.ok()) {
        last = value.status();  // definitive miss on this replica
        continue;
      }
      Result<int64_t> resp = net->TryCharge(owner, origin_, value.value().size());
      if (!resp.ok()) {
        // The replica served it, but the response was lost in flight.
        transient = true;
        last = resp.status();
        spent += fail_wait;
        continue;
      }
      spent += resp.value();
      if (order[pos] != 0) {
        if (rep->hedged && order[pos] == hedge_target) {
          hedge_wins_.fetch_add(1, std::memory_order_relaxed);
        } else {
          failovers_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (was_remote != nullptr) *was_remote = owner != origin_;
      rep->sim_nanos = spent;
      return value;
    }

    if (!transient) {
      // Every replica gave a definitive answer; retrying cannot help.
      rep->sim_nanos = spent;
      return last;
    }
    if (deadline > 0 && spent >= deadline) {
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      rep->deadline_missed = true;
      rep->sim_nanos = spent;
      return Status::Unavailable("storage get: deadline exceeded");
    }
  }
  rep->sim_nanos = spent;
  return last;
}

Status StorageClient::Put(const std::string& table, Key key, Value value) {
  VELOX_ASSIGN_OR_RETURN(std::vector<NodeId> owners, cluster_->OwnersOf(key));
  SimulatedNetwork* net = cluster_->network();
  const int64_t deadline = options_.op_deadline_nanos;
  const int64_t fail_wait = net->fault_timeout_nanos();
  const uint64_t payload = sizeof(Key) + value.size();
  int64_t spent = 0;

  Status first_error;
  Status last_transient;
  size_t succeeded = 0;
  std::vector<NodeId> pending = std::move(owners);
  const int32_t max_attempts = std::max(1, options_.max_attempts);
  for (int32_t attempt = 0; attempt < max_attempts && !pending.empty(); ++attempt) {
    if (attempt > 0) {
      int64_t wait = BackoffNanos(attempt);
      if (deadline > 0 && spent + wait > deadline) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      net->ChargeWait(wait);
      backoff_nanos_.fetch_add(wait, std::memory_order_relaxed);
      spent += wait;
      retries_.fetch_add(1, std::memory_order_relaxed);
    }
    std::vector<NodeId> still_pending;
    for (NodeId owner : pending) {
      Result<int64_t> sent = net->TryCharge(origin_, owner, payload);
      if (!sent.ok()) {
        last_transient = sent.status();
        spent += fail_wait;
        still_pending.push_back(owner);
        continue;
      }
      spent += sent.value();
      auto t = cluster_->store(owner)->GetTable(table);
      if (!t.ok()) {
        if (first_error.ok()) first_error = t.status();
        continue;  // definitive: no point retrying a missing table
      }
      Status put = t.value()->Put(key, value);
      if (!put.ok()) {
        // A replica refusing the write is a real failure; swallowing it
        // (the old behavior) let replicas silently diverge.
        if (first_error.ok()) first_error = put;
        continue;
      }
      ++succeeded;
    }
    pending = std::move(still_pending);
    if (deadline > 0 && spent >= deadline && !pending.empty()) {
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }

  if (!pending.empty() && first_error.ok()) {
    first_error = last_transient.ok()
                      ? Status::Unavailable("replica unreachable for write")
                      : last_transient;
  }
  if (!first_error.ok() && succeeded > 0) {
    partial_writes_.fetch_add(1, std::memory_order_relaxed);
  }
  return first_error;
}

Status StorageClient::Delete(const std::string& table, Key key) {
  VELOX_ASSIGN_OR_RETURN(std::vector<NodeId> owners, cluster_->OwnersOf(key));
  // Best-effort single pass: deletes are rare control-plane operations
  // (table GC), so they skip the retry machinery; an unreachable
  // replica surfaces as Unavailable unless another replica held the key.
  bool deleted = false;
  bool transient = false;
  for (NodeId owner : owners) {
    Result<int64_t> sent = cluster_->network()->TryCharge(origin_, owner, sizeof(Key));
    if (!sent.ok()) {
      transient = true;
      continue;
    }
    auto t = cluster_->store(owner)->GetTable(table);
    if (!t.ok()) continue;
    if (t.value()->Delete(key).ok()) deleted = true;
  }
  if (deleted) return Status::OK();
  if (transient) return Status::Unavailable("replica unreachable for delete");
  return Status::NotFound("key absent on all replicas");
}

uint64_t StorageClient::AppendObservation(const Observation& obs) {
  cluster_->network()->Charge(origin_, origin_, obs.Serialize().size());
  return cluster_->observation_log(origin_)->Append(obs);
}

StorageClientStats StorageClient::stats() const {
  StorageClientStats s;
  s.retries = retries_.load(std::memory_order_relaxed);
  s.hedged_reads = hedged_reads_.load(std::memory_order_relaxed);
  s.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  s.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.partial_writes = partial_writes_.load(std::memory_order_relaxed);
  s.backoff_nanos = backoff_nanos_.load(std::memory_order_relaxed);
  return s;
}

void StorageClient::ResetStats() {
  retries_.store(0, std::memory_order_relaxed);
  hedged_reads_.store(0, std::memory_order_relaxed);
  hedge_wins_.store(0, std::memory_order_relaxed);
  deadline_misses_.store(0, std::memory_order_relaxed);
  failovers_.store(0, std::memory_order_relaxed);
  partial_writes_.store(0, std::memory_order_relaxed);
  backoff_nanos_.store(0, std::memory_order_relaxed);
}

}  // namespace velox
