#include "storage/storage_client.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "common/logging.h"

namespace velox {

namespace {

// Fixed framing overhead modeled per batched message (request or
// response): routing header, table name, key count. Small enough that
// a one-key batch costs about the same as a single-key op, large
// enough that the per-message saving of batching is the latency
// header, not the framing.
constexpr uint64_t kBatchHeaderBytes = 16;

}  // namespace

StorageClient::StorageClient(StorageCluster* cluster, NodeId origin_node,
                             StorageClientOptions options)
    : cluster_(cluster),
      origin_(origin_node),
      options_(options),
      rng_(options.seed ^ (0x51edc11e47ULL + static_cast<uint64_t>(origin_node))) {
  VELOX_CHECK_GE(origin_node, 0);
  VELOX_CHECK_LT(origin_node, cluster->num_nodes());
  VELOX_CHECK_GE(options_.max_attempts, 1);
}

int64_t StorageClient::BackoffNanos(int32_t attempt) {
  double wait = static_cast<double>(options_.backoff_base_nanos);
  for (int32_t i = 1; i < attempt; ++i) wait *= options_.backoff_multiplier;
  const double j = options_.backoff_jitter;
  if (j > 0.0) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    wait *= (1.0 - j) + 2.0 * j * rng_.UniformDouble();
  }
  return std::max<int64_t>(0, std::llround(wait));
}

Result<Value> StorageClient::Get(const std::string& table, Key key, bool* was_remote,
                                 StorageOpReport* report) {
  // Error paths must never leave the caller's flag indeterminate.
  if (was_remote != nullptr) *was_remote = false;
  StorageOpReport scratch;
  StorageOpReport* rep = report != nullptr ? report : &scratch;
  *rep = StorageOpReport{};

  VELOX_ASSIGN_OR_RETURN(std::vector<NodeId> owners, cluster_->OwnersOf(key));
  SimulatedNetwork* net = cluster_->network();
  const int64_t deadline = options_.op_deadline_nanos;
  const int64_t fail_wait = net->fault_timeout_nanos();
  int64_t spent = 0;

  // Hedge-aware serving order: the primary goes first unless its
  // projected round trip loses to "wait hedge_delay, then race replica
  // i". A fired hedge abandons the in-flight primary request (still
  // counted as wire traffic) and serves from the raced replica;
  // everything else stays in the fallback order.
  std::vector<size_t> order(owners.size());
  std::iota(order.begin(), order.end(), size_t{0});
  size_t hedge_target = 0;
  if (options_.hedge_reads && owners.size() > 1) {
    const int64_t primary_rtt = 2 * net->CostNanos(origin_, owners[0], sizeof(Key));
    int64_t best_rtt = primary_rtt;
    for (size_t i = 1; i < owners.size(); ++i) {
      int64_t rtt = options_.hedge_delay_nanos +
                    2 * net->CostNanos(origin_, owners[i], sizeof(Key));
      if (rtt < best_rtt) {
        best_rtt = rtt;
        hedge_target = i;
      }
    }
    if (hedge_target != 0) {
      std::rotate(order.begin(), order.begin() + static_cast<ptrdiff_t>(hedge_target),
                  order.begin() + static_cast<ptrdiff_t>(hedge_target) + 1);
      hedged_reads_.fetch_add(1, std::memory_order_relaxed);
      rep->hedged = true;
      // The client waited out the hedge delay before racing, and the
      // abandoned primary request still occupies the wire.
      net->ChargeWait(options_.hedge_delay_nanos);
      net->ChargeAbandoned(origin_, owners[0], sizeof(Key));
      backoff_nanos_.fetch_add(options_.hedge_delay_nanos, std::memory_order_relaxed);
      rep->backoff_nanos += options_.hedge_delay_nanos;
      spent += options_.hedge_delay_nanos;
    }
  }

  Status last = Status::NotFound("no replica produced the key");
  const int32_t max_attempts = std::max(1, options_.max_attempts);
  for (int32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      int64_t wait = BackoffNanos(attempt);
      if (deadline > 0 && spent + wait > deadline) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
        rep->deadline_missed = true;
        rep->sim_nanos = spent;
        return Status::Unavailable("storage get: deadline exceeded before retry");
      }
      net->ChargeWait(wait);
      backoff_nanos_.fetch_add(wait, std::memory_order_relaxed);
      rep->backoff_nanos += wait;
      spent += wait;
      retries_.fetch_add(1, std::memory_order_relaxed);
    }
    rep->attempts = attempt + 1;

    bool transient = false;
    for (size_t pos = 0; pos < order.size(); ++pos) {
      NodeId owner = owners[order[pos]];
      // Request message, then the response payload on success.
      Result<int64_t> sent = net->TryCharge(origin_, owner, sizeof(Key));
      if (!sent.ok()) {
        transient = true;
        last = sent.status();
        spent += fail_wait;
        continue;
      }
      spent += sent.value();
      auto t = cluster_->store(owner)->GetTable(table);
      if (!t.ok()) {
        last = t.status();  // definitive: the node answered
        continue;
      }
      auto value = t.value()->Get(key);
      if (!value.ok()) {
        last = value.status();  // definitive miss on this replica
        continue;
      }
      Result<int64_t> resp = net->TryCharge(owner, origin_, value.value().size());
      if (!resp.ok()) {
        // The replica served it, but the response was lost in flight.
        transient = true;
        last = resp.status();
        spent += fail_wait;
        continue;
      }
      spent += resp.value();
      if (order[pos] != 0) {
        if (rep->hedged && order[pos] == hedge_target) {
          hedge_wins_.fetch_add(1, std::memory_order_relaxed);
        } else {
          failovers_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (was_remote != nullptr) *was_remote = owner != origin_;
      rep->sim_nanos = spent;
      return value;
    }

    if (!transient) {
      // Every replica gave a definitive answer; retrying cannot help.
      rep->sim_nanos = spent;
      return last;
    }
    if (deadline > 0 && spent >= deadline) {
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      rep->deadline_missed = true;
      rep->sim_nanos = spent;
      return Status::Unavailable("storage get: deadline exceeded");
    }
  }
  rep->sim_nanos = spent;
  return last;
}

Status StorageClient::Put(const std::string& table, Key key, Value value) {
  VELOX_ASSIGN_OR_RETURN(std::vector<NodeId> owners, cluster_->OwnersOf(key));
  SimulatedNetwork* net = cluster_->network();
  const int64_t deadline = options_.op_deadline_nanos;
  const int64_t fail_wait = net->fault_timeout_nanos();
  const uint64_t payload = sizeof(Key) + value.size();
  int64_t spent = 0;

  Status first_error;
  Status last_transient;
  size_t succeeded = 0;
  std::vector<NodeId> pending = std::move(owners);
  const int32_t max_attempts = std::max(1, options_.max_attempts);
  for (int32_t attempt = 0; attempt < max_attempts && !pending.empty(); ++attempt) {
    if (attempt > 0) {
      int64_t wait = BackoffNanos(attempt);
      if (deadline > 0 && spent + wait > deadline) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      net->ChargeWait(wait);
      backoff_nanos_.fetch_add(wait, std::memory_order_relaxed);
      spent += wait;
      retries_.fetch_add(1, std::memory_order_relaxed);
    }
    std::vector<NodeId> still_pending;
    for (NodeId owner : pending) {
      Result<int64_t> sent = net->TryCharge(origin_, owner, payload);
      if (!sent.ok()) {
        last_transient = sent.status();
        spent += fail_wait;
        still_pending.push_back(owner);
        continue;
      }
      spent += sent.value();
      auto t = cluster_->store(owner)->GetTable(table);
      if (!t.ok()) {
        if (first_error.ok()) first_error = t.status();
        continue;  // definitive: no point retrying a missing table
      }
      Status put = t.value()->Put(key, value);
      if (!put.ok()) {
        // A replica refusing the write is a real failure; swallowing it
        // (the old behavior) let replicas silently diverge.
        if (first_error.ok()) first_error = put;
        continue;
      }
      ++succeeded;
    }
    pending = std::move(still_pending);
    if (deadline > 0 && spent >= deadline && !pending.empty()) {
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }

  if (!pending.empty() && first_error.ok()) {
    first_error = last_transient.ok()
                      ? Status::Unavailable("replica unreachable for write")
                      : last_transient;
  }
  if (!first_error.ok() && succeeded > 0) {
    partial_writes_.fetch_add(1, std::memory_order_relaxed);
  }
  return first_error;
}

MultiGetResult StorageClient::MultiGet(const std::string& table,
                                       const std::vector<Key>& keys) {
  MultiGetResult out;
  if (keys.empty()) return out;
  multiget_batches_.fetch_add(1, std::memory_order_relaxed);
  multiget_keys_.fetch_add(keys.size(), std::memory_order_relaxed);

  // Merge duplicate keys into one slot: a batch asking for the same
  // item twice fetches it once (the coalescer above relies on this).
  struct Slot {
    Key key = 0;
    std::vector<NodeId> owners;
    // Replica visiting order is owners[(start + step) % size]: start is
    // rotated to 1 when the slot's primary sub-batch gets hedged, step
    // counts replicas visited in the current delivery pass.
    size_t start = 0;
    size_t step = 0;
    bool transient = false;  // saw a transient failure this pass
    bool done = false;
    int hedge_group = -1;
    Status last = Status::NotFound("no replica produced the key");
  };
  std::vector<Slot> slots;
  std::vector<std::optional<Result<Value>>> results;
  std::vector<size_t> key_to_slot(keys.size());
  {
    std::unordered_map<Key, size_t> first;
    first.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      auto [it, inserted] = first.emplace(keys[i], slots.size());
      if (inserted) {
        Slot s;
        s.key = keys[i];
        slots.push_back(std::move(s));
        results.emplace_back(std::nullopt);
      } else {
        multiget_merged_misses_.fetch_add(1, std::memory_order_relaxed);
      }
      key_to_slot[i] = it->second;
    }
  }
  for (size_t s = 0; s < slots.size(); ++s) {
    auto owners = cluster_->OwnersOf(slots[s].key);
    if (!owners.ok()) {
      slots[s].done = true;
      results[s] = owners.status();
      continue;
    }
    slots[s].owners = std::move(owners).value();
  }

  SimulatedNetwork* net = cluster_->network();
  const int64_t deadline = options_.op_deadline_nanos;
  const int64_t fail_wait = net->fault_timeout_nanos();
  int64_t spent = 0;
  StorageOpReport rep;
  // One hedge_win at most per fired hedge, however many keys it moved.
  std::vector<bool> hedge_won;
  bool deadline_missed = false;

  auto replica_pos = [](const Slot& s) {
    return (s.start + s.step) % s.owners.size();
  };

  const int32_t max_attempts = std::max(1, options_.max_attempts);
  for (int32_t attempt = 0; attempt < max_attempts; ++attempt) {
    bool any_pending = false;
    for (const Slot& s : slots) any_pending |= !s.done;
    if (!any_pending) break;
    if (attempt > 0) {
      // One backoff + one retry count per delivery pass, shared by
      // every still-missing key — never per key.
      int64_t wait = BackoffNanos(attempt);
      if (deadline > 0 && spent + wait > deadline) {
        deadline_missed = true;
        break;
      }
      net->ChargeWait(wait);
      backoff_nanos_.fetch_add(wait, std::memory_order_relaxed);
      rep.backoff_nanos += wait;
      spent += wait;
      retries_.fetch_add(1, std::memory_order_relaxed);
    }
    rep.attempts = attempt + 1;
    for (Slot& s : slots) {
      if (s.done) continue;
      s.step = 0;
      s.transient = false;
    }

    // Walk rounds within the pass: group still-missing keys by the
    // replica each is currently trying, send one sub-batch message per
    // node, advance keys that missed to their next replica, regroup.
    // Every processed slot advances `step`, so this terminates.
    while (true) {
      std::map<NodeId, std::vector<size_t>> groups;
      for (size_t s = 0; s < slots.size(); ++s) {
        Slot& sl = slots[s];
        if (sl.done || sl.step >= sl.owners.size()) continue;
        groups[sl.owners[replica_pos(sl)]].push_back(s);
      }
      if (groups.empty()) break;

      for (auto& [node, members] : groups) {
        const uint64_t req_bytes = kBatchHeaderBytes + sizeof(Key) * members.size();

        // Hedge whole sub-batches, never keys: when "wait out the hedge
        // delay, then ask the replica set" is projected faster than this
        // node, abandon the in-flight request (still wire traffic) and
        // rotate every member to its second replica.
        if (attempt == 0 && options_.hedge_reads && node != origin_) {
          bool hedgeable = true;
          for (size_t s : members) {
            const Slot& sl = slots[s];
            hedgeable &= sl.step == 0 && sl.start == 0 && sl.owners.size() > 1 &&
                         sl.hedge_group < 0;
          }
          if (hedgeable) {
            const Slot& probe = slots[members.front()];
            const int64_t primary_rtt = 2 * net->CostNanos(origin_, node, req_bytes);
            int64_t best_rtt = primary_rtt;
            for (size_t i = 1; i < probe.owners.size(); ++i) {
              int64_t rtt = options_.hedge_delay_nanos +
                            2 * net->CostNanos(origin_, probe.owners[i], req_bytes);
              best_rtt = std::min(best_rtt, rtt);
            }
            if (best_rtt < primary_rtt) {
              hedged_reads_.fetch_add(1, std::memory_order_relaxed);
              rep.hedged = true;
              net->ChargeWait(options_.hedge_delay_nanos);
              net->ChargeAbandoned(origin_, node, req_bytes);
              backoff_nanos_.fetch_add(options_.hedge_delay_nanos,
                                       std::memory_order_relaxed);
              rep.backoff_nanos += options_.hedge_delay_nanos;
              spent += options_.hedge_delay_nanos;
              int group = static_cast<int>(hedge_won.size());
              hedge_won.push_back(false);
              for (size_t s : members) {
                slots[s].start = 1;
                slots[s].hedge_group = group;
              }
              continue;  // members regroup at their second replicas
            }
          }
        }

        multiget_sub_batches_.fetch_add(1, std::memory_order_relaxed);
        Result<int64_t> sent =
            net->TryChargeBatch(origin_, node, req_bytes,
                                static_cast<uint32_t>(members.size()));
        if (!sent.ok()) {
          // The whole sub-batch is lost as one message.
          spent += fail_wait;
          for (size_t s : members) {
            slots[s].transient = true;
            slots[s].last = sent.status();
            ++slots[s].step;
          }
          continue;
        }
        spent += sent.value();

        auto t = cluster_->store(node)->GetTable(table);
        if (!t.ok()) {
          // The node answered: definitive for this replica.
          for (size_t s : members) {
            slots[s].last = t.status();
            ++slots[s].step;
          }
          continue;
        }
        std::vector<Key> batch_keys;
        batch_keys.reserve(members.size());
        for (size_t s : members) batch_keys.push_back(slots[s].key);
        std::vector<Result<Value>> vals = t.value()->MultiGet(batch_keys);
        uint64_t value_bytes = 0;
        for (const auto& v : vals) {
          if (v.ok()) value_bytes += v.value().size();
        }
        const uint64_t resp_bytes =
            kBatchHeaderBytes + members.size() + value_bytes;  // status byte per key
        Result<int64_t> resp =
            net->TryChargeBatch(node, origin_, resp_bytes,
                                static_cast<uint32_t>(members.size()));
        if (!resp.ok()) {
          // The replica served it, but the response (found values
          // included) was lost in flight — nothing is committed.
          spent += fail_wait;
          for (size_t s : members) {
            slots[s].transient = true;
            slots[s].last = resp.status();
            ++slots[s].step;
          }
          continue;
        }
        spent += resp.value();

        bool group_failover = false;
        for (size_t i = 0; i < members.size(); ++i) {
          Slot& sl = slots[members[i]];
          if (!vals[i].ok()) {
            sl.last = vals[i].status();  // definitive miss on this replica
            ++sl.step;
            continue;
          }
          if (replica_pos(sl) != 0) {
            if (sl.hedge_group >= 0 && !hedge_won[static_cast<size_t>(sl.hedge_group)]) {
              hedge_won[static_cast<size_t>(sl.hedge_group)] = true;
              hedge_wins_.fetch_add(1, std::memory_order_relaxed);
            } else {
              group_failover = true;
            }
          }
          sl.done = true;
          results[members[i]] = std::move(vals[i]);
          if (node != origin_) out.any_remote = true;
        }
        // A sub-batch served off the primary is one failover, not one
        // per key it carried.
        if (group_failover) failovers_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // End of pass: slots that saw only definitive answers on every
    // replica are final; transient ones re-shard into the next pass.
    bool any_transient = false;
    for (size_t s = 0; s < slots.size(); ++s) {
      Slot& sl = slots[s];
      if (sl.done) continue;
      if (sl.transient) {
        any_transient = true;
      } else {
        sl.done = true;
        results[s] = sl.last;
      }
    }
    if (!any_transient) break;
    if (deadline > 0 && spent >= deadline) {
      deadline_missed = true;
      break;
    }
  }

  if (deadline_missed) {
    // One deadline miss per op, however many keys it stranded.
    deadline_misses_.fetch_add(1, std::memory_order_relaxed);
    rep.deadline_missed = true;
  }
  for (size_t s = 0; s < slots.size(); ++s) {
    if (results[s].has_value()) continue;
    results[s] = deadline_missed
                     ? Status::Unavailable("storage multiget: deadline exceeded")
                     : slots[s].last;
  }

  rep.sim_nanos = spent;
  out.report = rep;
  out.values.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    out.values.push_back(*results[key_to_slot[i]]);
  }
  return out;
}

std::vector<Status> StorageClient::MultiPut(
    const std::string& table, std::vector<std::pair<Key, Value>> entries) {
  std::vector<Status> statuses(entries.size());
  if (entries.empty()) return statuses;
  multiput_batches_.fetch_add(1, std::memory_order_relaxed);
  multiput_keys_.fetch_add(entries.size(), std::memory_order_relaxed);

  // Per-entry replication state; each entry must land on every owner.
  struct Ent {
    std::vector<NodeId> pending;  // replicas not yet written
    size_t ok_replicas = 0;
    Status first_error;
  };
  std::vector<Ent> ents(entries.size());
  for (size_t e = 0; e < entries.size(); ++e) {
    auto owners = cluster_->OwnersOf(entries[e].first);
    if (!owners.ok()) {
      ents[e].first_error = owners.status();
      continue;
    }
    ents[e].pending = std::move(owners).value();
  }

  SimulatedNetwork* net = cluster_->network();
  const int64_t deadline = options_.op_deadline_nanos;
  const int64_t fail_wait = net->fault_timeout_nanos();
  int64_t spent = 0;
  bool deadline_missed = false;

  const int32_t max_attempts = std::max(1, options_.max_attempts);
  for (int32_t attempt = 0; attempt < max_attempts; ++attempt) {
    // Snapshot the still-pending (entry, replica) pairs and group them
    // into one sub-batch message per node.
    std::map<NodeId, std::vector<size_t>> groups;
    for (size_t e = 0; e < ents.size(); ++e) {
      for (NodeId node : ents[e].pending) groups[node].push_back(e);
      ents[e].pending.clear();
    }
    if (groups.empty()) break;
    if (attempt > 0) {
      int64_t wait = BackoffNanos(attempt);
      if (deadline > 0 && spent + wait > deadline) {
        deadline_missed = true;
        // Put the snapshot back so the entries finalize as unreachable.
        for (auto& [node, members] : groups) {
          for (size_t e : members) ents[e].pending.push_back(node);
        }
        break;
      }
      net->ChargeWait(wait);
      backoff_nanos_.fetch_add(wait, std::memory_order_relaxed);
      spent += wait;
      retries_.fetch_add(1, std::memory_order_relaxed);
    }

    for (auto& [node, members] : groups) {
      uint64_t req_bytes = kBatchHeaderBytes;
      for (size_t e : members) req_bytes += sizeof(Key) + entries[e].second.size();
      multiput_sub_batches_.fetch_add(1, std::memory_order_relaxed);
      Result<int64_t> sent =
          net->TryChargeBatch(origin_, node, req_bytes,
                              static_cast<uint32_t>(members.size()));
      if (!sent.ok()) {
        // Transient: this node's writes re-shard into the next pass.
        spent += fail_wait;
        for (size_t e : members) ents[e].pending.push_back(node);
        continue;
      }
      spent += sent.value();
      auto t = cluster_->store(node)->GetTable(table);
      if (!t.ok()) {
        // Definitive: a missing table cannot be retried into existence.
        for (size_t e : members) {
          if (ents[e].first_error.ok()) ents[e].first_error = t.status();
        }
        continue;
      }
      std::vector<std::pair<Key, Value>> batch;
      batch.reserve(members.size());
      for (size_t e : members) batch.push_back(entries[e]);
      std::vector<Status> put = t.value()->MultiPut(batch);
      for (size_t i = 0; i < members.size(); ++i) {
        Ent& ent = ents[members[i]];
        if (put[i].ok()) {
          ++ent.ok_replicas;
        } else if (ent.first_error.ok()) {
          ent.first_error = put[i];
        }
      }
    }
    if (deadline > 0 && spent >= deadline) {
      bool any_pending = false;
      for (const Ent& e : ents) any_pending |= !e.pending.empty();
      if (any_pending) {
        deadline_missed = true;
        break;
      }
    }
  }

  if (deadline_missed) {
    deadline_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  for (size_t e = 0; e < ents.size(); ++e) {
    Status s = ents[e].first_error;
    if (s.ok() && !ents[e].pending.empty()) {
      s = Status::Unavailable("replica unreachable for write");
    }
    if (!s.ok() && ents[e].ok_replicas > 0) {
      partial_writes_.fetch_add(1, std::memory_order_relaxed);
    }
    statuses[e] = s;
  }
  return statuses;
}

Status StorageClient::Delete(const std::string& table, Key key) {
  VELOX_ASSIGN_OR_RETURN(std::vector<NodeId> owners, cluster_->OwnersOf(key));
  // Best-effort single pass: deletes are rare control-plane operations
  // (table GC), so they skip the retry machinery; an unreachable
  // replica surfaces as Unavailable unless another replica held the key.
  bool deleted = false;
  bool transient = false;
  for (NodeId owner : owners) {
    Result<int64_t> sent = cluster_->network()->TryCharge(origin_, owner, sizeof(Key));
    if (!sent.ok()) {
      transient = true;
      continue;
    }
    auto t = cluster_->store(owner)->GetTable(table);
    if (!t.ok()) continue;
    if (t.value()->Delete(key).ok()) deleted = true;
  }
  if (deleted) return Status::OK();
  if (transient) return Status::Unavailable("replica unreachable for delete");
  return Status::NotFound("key absent on all replicas");
}

uint64_t StorageClient::AppendObservation(const Observation& obs) {
  cluster_->network()->Charge(origin_, origin_, obs.Serialize().size());
  return cluster_->observation_log(origin_)->Append(obs);
}

StorageClientStats StorageClient::stats() const {
  StorageClientStats s;
  s.retries = retries_.load(std::memory_order_relaxed);
  s.hedged_reads = hedged_reads_.load(std::memory_order_relaxed);
  s.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  s.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.partial_writes = partial_writes_.load(std::memory_order_relaxed);
  s.backoff_nanos = backoff_nanos_.load(std::memory_order_relaxed);
  s.multiget_batches = multiget_batches_.load(std::memory_order_relaxed);
  s.multiget_keys = multiget_keys_.load(std::memory_order_relaxed);
  s.multiget_sub_batches = multiget_sub_batches_.load(std::memory_order_relaxed);
  s.multiget_merged_misses = multiget_merged_misses_.load(std::memory_order_relaxed);
  s.multiput_batches = multiput_batches_.load(std::memory_order_relaxed);
  s.multiput_keys = multiput_keys_.load(std::memory_order_relaxed);
  s.multiput_sub_batches = multiput_sub_batches_.load(std::memory_order_relaxed);
  return s;
}

void StorageClient::ResetStats() {
  retries_.store(0, std::memory_order_relaxed);
  hedged_reads_.store(0, std::memory_order_relaxed);
  hedge_wins_.store(0, std::memory_order_relaxed);
  deadline_misses_.store(0, std::memory_order_relaxed);
  failovers_.store(0, std::memory_order_relaxed);
  partial_writes_.store(0, std::memory_order_relaxed);
  backoff_nanos_.store(0, std::memory_order_relaxed);
  multiget_batches_.store(0, std::memory_order_relaxed);
  multiget_keys_.store(0, std::memory_order_relaxed);
  multiget_sub_batches_.store(0, std::memory_order_relaxed);
  multiget_merged_misses_.store(0, std::memory_order_relaxed);
  multiput_batches_.store(0, std::memory_order_relaxed);
  multiput_keys_.store(0, std::memory_order_relaxed);
  multiput_sub_batches_.store(0, std::memory_order_relaxed);
}

}  // namespace velox
