// Write-ahead log for the observation stream.
//
// The paper's storage tier (Tachyon) is "fault-tolerant"; in this
// implementation the in-memory observation-log shard on a crashed node
// is lost (tests/core/failover_test.cc documents it). The WAL closes
// that gap for deployments that want durable feedback: every
// observation is appended to an append-only file as
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// and recovered on restart. Recovery tolerates a torn tail (a crash
// mid-append) by truncating at the first invalid record; everything
// before it is returned.
#ifndef VELOX_STORAGE_WAL_H_
#define VELOX_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/observation_log.h"

namespace velox {

class WriteAheadLog {
 public:
  // Opens for appending, creating the file if needed.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Appends one record and flushes it to the OS.
  Status Append(const Observation& obs);

  uint64_t records_appended() const;
  const std::string& path() const { return path_; }

  struct RecoveryResult {
    std::vector<Observation> records;
    // False when recovery stopped at a torn/corrupt record before the
    // end of the file (records up to that point are still returned).
    bool clean = true;
    // Bytes of valid log; a writer reopening the file should truncate
    // to this offset before appending.
    uint64_t valid_bytes = 0;
  };

  // Reads every valid record from `path`. Missing file -> IoError.
  static Result<RecoveryResult> Recover(const std::string& path);

 private:
  WriteAheadLog(std::string path, std::FILE* file);

  std::string path_;
  mutable std::mutex mu_;
  std::FILE* file_;
  uint64_t records_ = 0;
};

// An ObservationLog mirrored to a WriteAheadLog: appends go to memory
// and disk; ReplayInto loads a WAL back into a fresh in-memory log.
class DurableObservationLog {
 public:
  static Result<std::unique_ptr<DurableObservationLog>> Open(const std::string& path);

  // Appends durably; returns the in-memory sequence number.
  Result<uint64_t> Append(const Observation& obs);

  ObservationLog* log() { return &log_; }
  WriteAheadLog* wal() { return wal_.get(); }

 private:
  DurableObservationLog(std::unique_ptr<WriteAheadLog> wal,
                        std::vector<Observation> recovered);

  ObservationLog log_;
  std::unique_ptr<WriteAheadLog> wal_;
};

}  // namespace velox

#endif  // VELOX_STORAGE_WAL_H_
