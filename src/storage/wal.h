// Write-ahead log for durable serving state.
//
// The paper's storage tier (Tachyon) is "fault-tolerant"; in this
// implementation the in-memory state on a crashed node is lost
// (tests/core/failover_test.cc documents it). The WAL closes that gap:
// records (arbitrary byte payloads — observations, user-weight
// mutations) are appended to an append-only file as
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// and recovered on restart. Open() itself recovers the file and
// truncates a torn tail (a crash mid-append) before appending, so a
// directly-opened WAL can never append after garbage; everything
// before the tear is returned to the caller.
//
// Durability is governed by WalSyncPolicy. Be precise about what each
// setting survives:
//
//   kNone   Appends sit in the process's stdio buffer. Survives
//           nothing: a crash of this process loses buffered records.
//   kFlush  (default) Every append is fflush()ed to the kernel page
//           cache. Survives a *process* crash (the OS still holds the
//           data) but NOT a machine/kernel crash or power loss before
//           the kernel writes back.
//   kFsync  Every fsync_every_n-th append additionally fdatasync()s
//           the file. With fsync_every_n == 1 every acknowledged
//           record survives machine crash / power loss; with N > 1
//           (group commit) at most the last N-1 acknowledged records
//           can be lost to a machine crash — a process crash still
//           loses nothing beyond kFlush semantics.
#ifndef VELOX_STORAGE_WAL_H_
#define VELOX_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/observation_log.h"

namespace velox {

enum class WalSyncPolicy {
  kNone,   // buffered in-process only
  kFlush,  // fflush to the OS on every append (default)
  kFsync,  // fdatasync every fsync_every_n appends (group commit)
};

const char* WalSyncPolicyName(WalSyncPolicy policy);

struct WalOptions {
  WalSyncPolicy sync = WalSyncPolicy::kFlush;
  // Under kFsync: fdatasync once per this many appends. 1 = every
  // append (strict); larger values trade bounded machine-crash loss
  // for amortized sync cost (group commit).
  int64_t fsync_every_n = 1;
  // Resume point from a snapshot that already covers the log's prefix:
  // Open() seeks to `resume_offset_bytes` (a record boundary the
  // snapshot recorded) and scans only the suffix, so recovery cost is
  // O(suffix), not O(log). `resume_offset_records` is the number of
  // records before that boundary; it keeps total_records() — the index
  // space snapshots cut against — monotonic across restarts. If the
  // file is shorter than the resume offset (WAL torn below the
  // snapshot's cover point), the unverifiable remainder is discarded
  // (truncate to zero, recovered_clean() == false) — the snapshot is
  // the more durable artifact and appends must never land after bytes
  // recovery cannot vouch for. Both default to 0: scan everything.
  uint64_t resume_offset_bytes = 0;
  uint64_t resume_offset_records = 0;
};

class WriteAheadLog {
 public:
  // Opens for appending, creating the file if needed. An existing file
  // is recovered first: its valid records are retained (readable via
  // TakeRecoveredPayloads()) and a torn tail is truncated so appends
  // always start at a valid record boundary. A stat() failure other
  // than ENOENT (EACCES, EIO, ENOTDIR, ...) is an IoError — it may
  // hide an existing log and must never be treated as "fresh file".
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path,
                                                     WalOptions options = {});

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Appends one raw record under the configured sync policy.
  Status AppendPayload(const std::vector<uint8_t>& payload);

  // Convenience: appends a serialized Observation.
  Status Append(const Observation& obs);

  // Forces buffered appends to disk (fflush + fdatasync) regardless of
  // policy — e.g. before a snapshot declares the log covered.
  Status Sync();

  // Group commit window: between BeginGroup() and the matching
  // EndGroup(), AppendPayload defers its per-append sync entirely (the
  // record still lands in the stdio buffer); the outermost EndGroup()
  // performs one policy-appropriate sync for the whole window — a
  // single fflush under kFlush, a single fflush+fdatasync under kFsync
  // (regardless of fsync_every_n: the window IS the commit group),
  // nothing under kNone. Callers must not acknowledge a grouped append
  // until EndGroup() returns OK: inside the window a record is only as
  // durable as kNone. Windows nest (refcounted); EndGroup without a
  // matching BeginGroup is a no-op returning OK.
  void BeginGroup();
  Status EndGroup();

  // Completed group-commit windows that synced at least one deferred
  // append (observability for the batching plane).
  uint64_t group_commits() const;

  // Records appended through this handle (excludes recovered ones).
  uint64_t records_appended() const;
  // Valid records scanned from the file at Open() (past any resume
  // offset).
  uint64_t recovered_records() const { return recovered_records_; }
  // resume_offset_records + recovered_records() + records_appended():
  // the absolute record index the next append receives.
  uint64_t total_records() const;
  // Bytes of valid log: the scanned end at Open() plus every append's
  // framing+payload. With total_records(), this is the cut a snapshot
  // stamps so the next Open() can seek straight past the covered
  // prefix.
  uint64_t total_bytes() const;
  // False when Open() truncated a torn tail.
  bool recovered_clean() const { return recovered_clean_; }
  // Payloads recovered at Open(), in log order. Destructive: the
  // internal copy is released to the caller.
  std::vector<std::vector<uint8_t>> TakeRecoveredPayloads();

  const std::string& path() const { return path_; }
  const WalOptions& options() const { return options_; }

  struct RawRecoveryResult {
    std::vector<std::vector<uint8_t>> payloads;
    // False when recovery stopped at a torn/corrupt record before the
    // end of the file (payloads up to that point are still returned).
    bool clean = true;
    // Bytes of valid log; a writer reopening the file should truncate
    // to this offset before appending (Open() does this itself).
    uint64_t valid_bytes = 0;
  };

  struct RecoveryResult {
    std::vector<Observation> records;
    bool clean = true;
    uint64_t valid_bytes = 0;
  };

  // Reads every CRC-valid record from `path`, starting at byte
  // `start_offset` (must be a record boundary; valid_bytes in the
  // result stays absolute). Missing file -> IoError.
  static Result<RawRecoveryResult> RecoverRaw(const std::string& path,
                                              uint64_t start_offset = 0);
  // Typed recovery: raw records decoded as Observations. A CRC-valid
  // payload that fails to decode stops recovery (clean = false), like
  // a torn record.
  static Result<RecoveryResult> Recover(const std::string& path);

 private:
  WriteAheadLog(std::string path, std::FILE* file, WalOptions options);

  Status SyncLocked();

  std::string path_;
  WalOptions options_;
  mutable std::mutex mu_;
  std::FILE* file_;
  uint64_t records_ = 0;
  uint64_t recovered_records_ = 0;
  // Record index space consumed before the resume point (see
  // WalOptions::resume_offset_records).
  uint64_t base_records_ = 0;
  // Valid log length in bytes (absolute), advanced by every append.
  uint64_t total_bytes_ = 0;
  bool recovered_clean_ = true;
  int64_t unsynced_ = 0;
  // Nesting depth of open group-commit windows; > 0 defers all
  // per-append syncing to the outermost EndGroup().
  int64_t group_depth_ = 0;
  // Appends landed inside the current window (pending its sync).
  int64_t group_pending_ = 0;
  uint64_t group_commits_ = 0;
  std::vector<std::vector<uint8_t>> recovered_payloads_;
};

// An ObservationLog mirrored to a WriteAheadLog: appends go to memory
// and disk; Open loads the WAL back into a fresh in-memory log.
class DurableObservationLog {
 public:
  static Result<std::unique_ptr<DurableObservationLog>> Open(const std::string& path,
                                                             WalOptions options = {});

  // Appends durably; returns the in-memory sequence number.
  Result<uint64_t> Append(const Observation& obs);

  ObservationLog* log() { return &log_; }
  WriteAheadLog* wal() { return wal_.get(); }

 private:
  DurableObservationLog(std::unique_ptr<WriteAheadLog> wal,
                        std::vector<Observation> recovered);

  ObservationLog log_;
  std::unique_ptr<WriteAheadLog> wal_;
};

}  // namespace velox

#endif  // VELOX_STORAGE_WAL_H_
