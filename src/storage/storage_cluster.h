// The distributed storage tier: one KvStore per simulated node, a
// consistent-hash router assigning keys to nodes, and a shared
// SimulatedNetwork charging local/remote access costs. This is our
// from-scratch stand-in for Tachyon (see DESIGN.md §2).
//
// Access goes through StorageClient (storage/storage_client.h), which
// is bound to an origin node so the network model can distinguish
// node-local from remote operations — the mechanism behind the paper's
// §5 locality claims.
#ifndef VELOX_STORAGE_STORAGE_CLUSTER_H_
#define VELOX_STORAGE_STORAGE_CLUSTER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/network.h"
#include "cluster/router.h"
#include "common/result.h"
#include "storage/kv_store.h"
#include "storage/observation_log.h"

namespace velox {

struct StorageClusterOptions {
  int32_t num_nodes = 1;
  int32_t partitions_per_table = 16;
  // Copies of each key (clamped to num_nodes). With R > 1, writes go to
  // the first R distinct ring successors and reads fall back along the
  // replica list — the fault-tolerance role Tachyon plays in the paper.
  int32_t replication_factor = 1;
  NetworkOptions network;
  // When set, the cluster constructs with this fault plan installed on
  // its network (deterministic under faults.seed). Benches and tests
  // can also install/adjust plans at runtime via network().
  bool inject_faults = false;
  FaultInjectionOptions faults;
};

class StorageCluster {
 public:
  explicit StorageCluster(StorageClusterOptions options);

  int32_t num_nodes() const { return static_cast<int32_t>(stores_.size()); }

  // Node owning `key` according to the ring (primary replica).
  Result<NodeId> OwnerOf(Key key) const;

  // Replica list for `key`: primary first, then the next distinct alive
  // ring successors, up to the replication factor.
  Result<std::vector<NodeId>> OwnersOf(Key key) const;

  // Simulates a node crash: marks it dead and removes it from the ring,
  // so ownership immediately remaps to the survivors. Unreplicated data
  // on the node (including its observation-log shard) is lost, as it
  // would be on a real crash.
  Status FailNode(NodeId node);

  bool IsAlive(NodeId node) const;
  int32_t replication_factor() const { return replication_; }

  // Wedges one node's stores (reads fine, writes rejected) — the
  // partial-write fault the replica write path must surface.
  Status SetNodeFailWrites(NodeId node, bool fail);

  // Cluster-wide logical timestamps: monotone across all nodes, used to
  // order observations from different log shards (windowed retraining).
  int64_t NextTimestamp() { return logical_time_.fetch_add(1) + 1; }
  // Ensures future timestamps exceed `t` (called after loading
  // historical data that carries its own timestamps).
  void AdvanceTimestampTo(int64_t t);

  // Creates `name` on every node (each node stores the shard of keys
  // the ring assigns it).
  Status CreateTable(const std::string& name);

  // Direct handles (no network charge) — used by node-local components
  // and tests.
  KvStore* store(NodeId node) { return stores_[static_cast<size_t>(node)].get(); }
  const KvStore* store(NodeId node) const {
    return stores_[static_cast<size_t>(node)].get();
  }

  // The per-node observation log shard.
  ObservationLog* observation_log(NodeId node) {
    return logs_[static_cast<size_t>(node)].get();
  }

  // Reads every *alive* node's observation-log shard into one vector
  // (offline retraining input). Order: by node, then by sequence.
  std::vector<Observation> AllObservations() const;

  SimulatedNetwork* network() { return &network_; }
  const ConsistentHashRouter& router() const { return router_; }
  Cluster* cluster() { return &cluster_; }
  const StorageClusterOptions& options() const { return options_; }

 private:
  StorageClusterOptions options_;
  Cluster cluster_;
  // Guards the ring, which mutates on node failure.
  mutable std::mutex router_mu_;
  ConsistentHashRouter router_;
  SimulatedNetwork network_;
  int32_t replication_ = 1;
  std::atomic<int64_t> logical_time_{0};
  std::vector<std::unique_ptr<KvStore>> stores_;
  std::vector<std::unique_ptr<ObservationLog>> logs_;
};

}  // namespace velox

#endif  // VELOX_STORAGE_STORAGE_CLUSTER_H_
