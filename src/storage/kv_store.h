// Per-node in-memory key-value store with named, partitioned tables —
// the role Tachyon plays in the paper's architecture ("a fault-
// tolerant, memory-optimized distributed storage system in BDAS"). A
// StorageCluster (storage/storage_cluster.h) composes one KvStore per
// simulated node.
#ifndef VELOX_STORAGE_KV_STORE_H_
#define VELOX_STORAGE_KV_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "common/result.h"
#include "storage/partition.h"

namespace velox {

class KvTable {
 public:
  KvTable(std::string name, int32_t num_partitions);

  const std::string& name() const { return name_; }
  int32_t num_partitions() const { return partitioner_.num_partitions(); }

  Result<Value> Get(Key key) const;
  // Inserts or overwrites. Fails (Unavailable) while the table is
  // rejecting writes — replica-write callers must check this or
  // replicas silently diverge.
  Status Put(Key key, Value value);
  Status Delete(Key key);
  bool Contains(Key key) const;

  // Batched point lookups: one Result per input key, in input order
  // (NotFound entries for absent keys — a partial answer, not an op
  // failure).
  std::vector<Result<Value>> MultiGet(const std::vector<Key>& keys) const;
  // Batched upserts: one Status per input entry, in input order.
  // Entries fail individually (Unavailable) while the table is
  // rejecting writes.
  std::vector<Status> MultiPut(const std::vector<std::pair<Key, Value>>& entries);

  // Simulates a wedged replica (disk full, read-only remount): reads
  // keep working, writes fail until cleared.
  void SetFailWrites(bool fail) { fail_writes_.store(fail, std::memory_order_relaxed); }
  bool fail_writes() const { return fail_writes_.load(std::memory_order_relaxed); }

  // Point-in-time copy of all rows (per-partition consistency).
  std::vector<std::pair<Key, Value>> Snapshot() const;

  Partition* partition(int32_t index) { return partitions_[index].get(); }
  const Partition* partition(int32_t index) const { return partitions_[index].get(); }

  size_t size() const;
  uint64_t SizeBytes() const;

 private:
  std::string name_;
  HashPartitioner partitioner_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::atomic<bool> fail_writes_{false};
};

class KvStore {
 public:
  KvStore() = default;

  // Creates a table; AlreadyExists if the name is taken.
  Result<KvTable*> CreateTable(const std::string& name, int32_t num_partitions = 16);
  Result<KvTable*> GetTable(const std::string& name) const;
  // Creates if absent, returns existing otherwise.
  KvTable* GetOrCreateTable(const std::string& name, int32_t num_partitions = 16);
  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;
  uint64_t TotalSizeBytes() const;

  // Wedges (or un-wedges) every table on this store, existing and
  // future: reads succeed, writes fail Unavailable.
  void SetFailWrites(bool fail);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<KvTable>> tables_;
  bool fail_writes_ = false;
};

}  // namespace velox

#endif  // VELOX_STORAGE_KV_STORE_H_
