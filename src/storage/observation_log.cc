#include "storage/observation_log.h"

#include <algorithm>

namespace velox {

std::vector<uint8_t> Observation::Serialize() const {
  ByteWriter w;
  w.PutU64(uid);
  w.PutU64(item_id);
  w.PutDouble(label);
  w.PutI64(timestamp);
  return w.Release();
}

Result<Observation> Observation::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  Observation obs;
  VELOX_ASSIGN_OR_RETURN(obs.uid, r.GetU64());
  VELOX_ASSIGN_OR_RETURN(obs.item_id, r.GetU64());
  VELOX_ASSIGN_OR_RETURN(obs.label, r.GetDouble());
  VELOX_ASSIGN_OR_RETURN(obs.timestamp, r.GetI64());
  return obs;
}

uint64_t ObservationLog::Append(const Observation& obs) {
  std::lock_guard<std::mutex> lock(mu_);
  log_.push_back(obs);
  return base_seq_ + log_.size() - 1;
}

std::vector<Observation> ObservationLog::ReadFrom(uint64_t from_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t start = std::max(from_seq, base_seq_);
  if (start >= base_seq_ + log_.size()) return {};
  return std::vector<Observation>(
      log_.begin() + static_cast<ptrdiff_t>(start - base_seq_), log_.end());
}

std::vector<Observation> ObservationLog::ReadRange(uint64_t from_seq,
                                                   uint64_t to_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t end_seq = base_seq_ + log_.size();
  from_seq = std::clamp(from_seq, base_seq_, end_seq);
  to_seq = std::clamp(to_seq, base_seq_, end_seq);
  if (from_seq >= to_seq) return {};
  return std::vector<Observation>(
      log_.begin() + static_cast<ptrdiff_t>(from_seq - base_seq_),
      log_.begin() + static_cast<ptrdiff_t>(to_seq - base_seq_));
}

uint64_t ObservationLog::NextSeq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_seq_ + log_.size();
}

uint64_t ObservationLog::FirstSeq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_seq_;
}

uint64_t ObservationLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.size();
}

uint64_t ObservationLog::Compact(uint64_t keep_from_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (keep_from_seq <= base_seq_) return 0;
  uint64_t end_seq = base_seq_ + log_.size();
  uint64_t drop = std::min(keep_from_seq, end_seq) - base_seq_;
  log_.erase(log_.begin(), log_.begin() + static_cast<ptrdiff_t>(drop));
  base_seq_ += drop;
  return drop;
}

}  // namespace velox
