#include "storage/wal.h"

#include <sys/stat.h>

#include "common/bytes.h"
#include "common/string_util.h"

namespace velox {

WriteAheadLog::WriteAheadLog(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

WriteAheadLog::~WriteAheadLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open wal for append: " + path);
  }
  return std::unique_ptr<WriteAheadLog>(new WriteAheadLog(path, file));
}

Status WriteAheadLog::Append(const Observation& obs) {
  std::vector<uint8_t> payload = obs.Serialize();
  ByteWriter header;
  header.PutU32(static_cast<uint32_t>(payload.size()));
  header.PutU32(Crc32(payload));

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal closed");
  if (std::fwrite(header.data().data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size()) {
    return Status::IoError("wal append failed: " + path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("wal flush failed: " + path_);
  }
  ++records_;
  return Status::OK();
}

uint64_t WriteAheadLog::records_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

Result<WriteAheadLog::RecoveryResult> WriteAheadLog::Recover(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open wal: " + path);

  RecoveryResult result;
  uint64_t offset = 0;
  while (true) {
    uint8_t header[8];
    size_t got = std::fread(header, 1, sizeof(header), file);
    if (got == 0) break;  // clean EOF
    if (got < sizeof(header)) {
      result.clean = false;  // torn header
      break;
    }
    ByteReader hr(header, sizeof(header));
    uint32_t len = hr.GetU32().value();
    uint32_t crc = hr.GetU32().value();
    // Reject absurd lengths (corrupt header) without huge allocation:
    // an observation record is a few dozen bytes.
    if (len > (1u << 20)) {
      result.clean = false;
      break;
    }
    std::vector<uint8_t> payload(len);
    if (std::fread(payload.data(), 1, len, file) != len) {
      result.clean = false;  // torn payload
      break;
    }
    if (Crc32(payload) != crc) {
      result.clean = false;  // corrupt record
      break;
    }
    auto obs = Observation::Deserialize(payload);
    if (!obs.ok()) {
      result.clean = false;
      break;
    }
    result.records.push_back(std::move(obs).value());
    offset += sizeof(header) + len;
    result.valid_bytes = offset;
  }
  std::fclose(file);
  return result;
}

DurableObservationLog::DurableObservationLog(std::unique_ptr<WriteAheadLog> wal,
                                             std::vector<Observation> recovered)
    : wal_(std::move(wal)) {
  for (const Observation& obs : recovered) log_.Append(obs);
}

Result<std::unique_ptr<DurableObservationLog>> DurableObservationLog::Open(
    const std::string& path) {
  std::vector<Observation> recovered;
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    VELOX_ASSIGN_OR_RETURN(WriteAheadLog::RecoveryResult recovery,
                           WriteAheadLog::Recover(path));
    // Truncate a torn tail so new appends start at a valid boundary.
    if (!recovery.clean) {
      if (::truncate(path.c_str(), static_cast<off_t>(recovery.valid_bytes)) != 0) {
        return Status::IoError("cannot truncate torn wal tail: " + path);
      }
    }
    recovered = std::move(recovery.records);
  }
  VELOX_ASSIGN_OR_RETURN(std::unique_ptr<WriteAheadLog> wal, WriteAheadLog::Open(path));
  return std::unique_ptr<DurableObservationLog>(
      new DurableObservationLog(std::move(wal), std::move(recovered)));
}

Result<uint64_t> DurableObservationLog::Append(const Observation& obs) {
  // WAL first: if the durable write fails, memory must not get ahead.
  VELOX_RETURN_NOT_OK(wal_->Append(obs));
  return log_.Append(obs);
}

}  // namespace velox
