#include "storage/wal.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sys/stat.h>

#include "common/bytes.h"
#include "common/string_util.h"

namespace velox {

const char* WalSyncPolicyName(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kNone:
      return "none";
    case WalSyncPolicy::kFlush:
      return "flush";
    case WalSyncPolicy::kFsync:
      return "fsync";
  }
  return "unknown";
}

WriteAheadLog::WriteAheadLog(std::string path, std::FILE* file, WalOptions options)
    : path_(std::move(path)), options_(options), file_(file) {}

WriteAheadLog::~WriteAheadLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    // Clean shutdown keeps the policy's promise: under kFsync the last
    // group-commit window must not ride on fclose's flush alone.
    if (options_.sync == WalSyncPolicy::kFsync &&
        (unsynced_ > 0 || group_pending_ > 0)) {
      (void)SyncLocked();
    }
    std::fclose(file_);
  }
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(const std::string& path,
                                                           WalOptions options) {
  RawRecoveryResult recovery;
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno != ENOENT) {
      // EACCES/EIO/ENOTDIR may hide an existing log; opening "ab" here
      // could silently shadow (or append past) history we cannot see.
      return Status::IoError(StrFormat("cannot stat wal %s: %s", path.c_str(),
                                       std::strerror(errno)));
    }
    // ENOENT: genuinely fresh log. With a resume offset this means the
    // snapshot outlived the WAL; the index space still continues past
    // the records the snapshot covers.
    if (options.resume_offset_bytes > 0) recovery.clean = false;
  } else if (options.resume_offset_bytes > static_cast<uint64_t>(st.st_size)) {
    // WAL torn below the snapshot's cover point. The snapshot
    // (fsync'd before rename) is the more durable artifact; drop the
    // unverifiable remainder so appends never land after bytes
    // recovery cannot vouch for.
    if (::truncate(path.c_str(), 0) != 0) {
      return Status::IoError("cannot truncate wal below resume point: " + path);
    }
    recovery.clean = false;
  } else {
    VELOX_ASSIGN_OR_RETURN(recovery, RecoverRaw(path, options.resume_offset_bytes));
    // Truncate a torn tail so new appends start at a valid boundary —
    // appending after garbage would make every later record
    // unrecoverable (recovery stops at the first invalid record).
    if (!recovery.clean) {
      if (::truncate(path.c_str(), static_cast<off_t>(recovery.valid_bytes)) != 0) {
        return Status::IoError("cannot truncate torn wal tail: " + path);
      }
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open wal for append: " + path);
  }
  auto wal = std::unique_ptr<WriteAheadLog>(new WriteAheadLog(path, file, options));
  wal->recovered_records_ = recovery.payloads.size();
  wal->base_records_ = options.resume_offset_records;
  wal->total_bytes_ = recovery.valid_bytes;
  wal->recovered_clean_ = recovery.clean;
  wal->recovered_payloads_ = std::move(recovery.payloads);
  return wal;
}

Status WriteAheadLog::SyncLocked() {
  if (std::fflush(file_) != 0) {
    return Status::IoError("wal flush failed: " + path_);
  }
  if (::fdatasync(::fileno(file_)) != 0) {
    return Status::IoError("wal fdatasync failed: " + path_);
  }
  unsynced_ = 0;
  return Status::OK();
}

Status WriteAheadLog::AppendPayload(const std::vector<uint8_t>& payload) {
  ByteWriter header;
  header.PutU32(static_cast<uint32_t>(payload.size()));
  header.PutU32(Crc32(payload));

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal closed");
  if (std::fwrite(header.data().data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size()) {
    return Status::IoError("wal append failed: " + path_);
  }
  if (group_depth_ > 0) {
    // Inside a group-commit window: defer every sync to EndGroup().
    ++group_pending_;
  } else {
    switch (options_.sync) {
      case WalSyncPolicy::kNone:
        break;
      case WalSyncPolicy::kFlush:
        if (std::fflush(file_) != 0) {
          return Status::IoError("wal flush failed: " + path_);
        }
        break;
      case WalSyncPolicy::kFsync:
        if (++unsynced_ >= std::max<int64_t>(1, options_.fsync_every_n)) {
          VELOX_RETURN_NOT_OK(SyncLocked());
        } else if (std::fflush(file_) != 0) {
          // Between group commits the record still reaches the OS, so a
          // process crash inside the window loses nothing.
          return Status::IoError("wal flush failed: " + path_);
        }
        break;
    }
  }
  ++records_;
  total_bytes_ += header.size() + payload.size();
  return Status::OK();
}

Status WriteAheadLog::Append(const Observation& obs) {
  return AppendPayload(obs.Serialize());
}

Status WriteAheadLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal closed");
  return SyncLocked();
}

void WriteAheadLog::BeginGroup() {
  std::lock_guard<std::mutex> lock(mu_);
  ++group_depth_;
}

Status WriteAheadLog::EndGroup() {
  std::lock_guard<std::mutex> lock(mu_);
  if (group_depth_ == 0) return Status::OK();
  if (--group_depth_ > 0) return Status::OK();
  const int64_t pending = group_pending_;
  group_pending_ = 0;
  if (pending == 0 || file_ == nullptr) return Status::OK();
  switch (options_.sync) {
    case WalSyncPolicy::kNone:
      break;
    case WalSyncPolicy::kFlush:
      if (std::fflush(file_) != 0) {
        return Status::IoError("wal flush failed: " + path_);
      }
      ++group_commits_;
      break;
    case WalSyncPolicy::kFsync:
      // One durable point for the whole window; resets the
      // fsync_every_n countdown too (SyncLocked zeroes unsynced_).
      VELOX_RETURN_NOT_OK(SyncLocked());
      ++group_commits_;
      break;
  }
  return Status::OK();
}

uint64_t WriteAheadLog::group_commits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return group_commits_;
}

uint64_t WriteAheadLog::records_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

uint64_t WriteAheadLog::total_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_records_ + recovered_records_ + records_;
}

uint64_t WriteAheadLog::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

std::vector<std::vector<uint8_t>> WriteAheadLog::TakeRecoveredPayloads() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(recovered_payloads_);
}

Result<WriteAheadLog::RawRecoveryResult> WriteAheadLog::RecoverRaw(
    const std::string& path, uint64_t start_offset) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open wal: " + path);

  RawRecoveryResult result;
  uint64_t offset = start_offset;
  result.valid_bytes = start_offset;
  if (start_offset > 0 &&
      std::fseek(file, static_cast<long>(start_offset), SEEK_SET) != 0) {
    std::fclose(file);
    return Status::IoError("cannot seek wal to resume offset: " + path);
  }
  while (true) {
    uint8_t header[8];
    size_t got = std::fread(header, 1, sizeof(header), file);
    if (got == 0) break;  // clean EOF
    if (got < sizeof(header)) {
      result.clean = false;  // torn header
      break;
    }
    ByteReader hr(header, sizeof(header));
    uint32_t len = hr.GetU32().value();
    uint32_t crc = hr.GetU32().value();
    // Reject absurd lengths (corrupt header) without huge allocation:
    // a serving-state record is at most a few KB.
    if (len > (1u << 20)) {
      result.clean = false;
      break;
    }
    std::vector<uint8_t> payload(len);
    if (std::fread(payload.data(), 1, len, file) != len) {
      result.clean = false;  // torn payload
      break;
    }
    if (Crc32(payload) != crc) {
      result.clean = false;  // corrupt record
      break;
    }
    result.payloads.push_back(std::move(payload));
    offset += sizeof(header) + len;
    result.valid_bytes = offset;
  }
  std::fclose(file);
  return result;
}

Result<WriteAheadLog::RecoveryResult> WriteAheadLog::Recover(const std::string& path) {
  VELOX_ASSIGN_OR_RETURN(RawRecoveryResult raw, RecoverRaw(path));
  RecoveryResult result;
  result.clean = raw.clean;
  uint64_t offset = 0;
  for (const std::vector<uint8_t>& payload : raw.payloads) {
    auto obs = Observation::Deserialize(payload);
    if (!obs.ok()) {
      result.clean = false;
      break;
    }
    result.records.push_back(std::move(obs).value());
    offset += 8 + payload.size();
    result.valid_bytes = offset;
  }
  return result;
}

DurableObservationLog::DurableObservationLog(std::unique_ptr<WriteAheadLog> wal,
                                             std::vector<Observation> recovered)
    : wal_(std::move(wal)) {
  for (const Observation& obs : recovered) log_.Append(obs);
}

Result<std::unique_ptr<DurableObservationLog>> DurableObservationLog::Open(
    const std::string& path, WalOptions options) {
  // Open() recovers and truncates the torn tail itself; only ENOENT is
  // "fresh" — any other stat failure surfaces as IoError instead of
  // silently discarding history.
  VELOX_ASSIGN_OR_RETURN(std::unique_ptr<WriteAheadLog> wal,
                         WriteAheadLog::Open(path, options));
  std::vector<Observation> recovered;
  for (const std::vector<uint8_t>& payload : wal->TakeRecoveredPayloads()) {
    auto obs = Observation::Deserialize(payload);
    // A CRC-valid payload that is not an Observation means the file
    // holds something else; stop at the prefix like typed Recover().
    if (!obs.ok()) break;
    recovered.push_back(std::move(obs).value());
  }
  return std::unique_ptr<DurableObservationLog>(
      new DurableObservationLog(std::move(wal), std::move(recovered)));
}

Result<uint64_t> DurableObservationLog::Append(const Observation& obs) {
  // WAL first: if the durable write fails, memory must not get ahead.
  VELOX_RETURN_NOT_OK(wal_->Append(obs));
  return log_.Append(obs);
}

}  // namespace velox
