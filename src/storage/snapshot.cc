#include "storage/snapshot.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/bytes.h"
#include "common/string_util.h"

namespace velox {

namespace {

constexpr uint32_t kSnapshotMagic = 0x56585557;  // "VXUW"
// Format 2 added wal_bytes_covered (the suffix seek point).
constexpr uint32_t kSnapshotFormat = 2;

// First byte of every journal record; rejects files that hold some
// other payload type (e.g. an observation log opened by mistake).
constexpr uint8_t kRecordMagic = 0xA7;

}  // namespace

std::vector<uint8_t> UserWeightWalRecord::Serialize() const {
  ByteWriter w;
  w.PutU8(kRecordMagic);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutU64(uid);
  w.PutU32(static_cast<uint32_t>(model_version));
  switch (kind) {
    case Kind::kSeed:
      w.PutDoubleVector(weights.values());
      break;
    case Kind::kObservationUpdate:
      w.PutDoubleVector(features.values());
      w.PutDouble(label);
      break;
    case Kind::kVersionReset:
      break;
  }
  return w.Release();
}

Result<UserWeightWalRecord> UserWeightWalRecord::Deserialize(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  VELOX_ASSIGN_OR_RETURN(uint8_t magic, r.GetU8());
  if (magic != kRecordMagic) {
    return Status::InvalidArgument("not a user-weight wal record (bad magic)");
  }
  VELOX_ASSIGN_OR_RETURN(uint8_t kind_byte, r.GetU8());
  UserWeightWalRecord record;
  VELOX_ASSIGN_OR_RETURN(record.uid, r.GetU64());
  VELOX_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  record.model_version = static_cast<int32_t>(version);
  switch (kind_byte) {
    case static_cast<uint8_t>(Kind::kSeed): {
      record.kind = Kind::kSeed;
      VELOX_ASSIGN_OR_RETURN(std::vector<double> values, r.GetDoubleVector());
      record.weights = DenseVector(std::move(values));
      break;
    }
    case static_cast<uint8_t>(Kind::kObservationUpdate): {
      record.kind = Kind::kObservationUpdate;
      VELOX_ASSIGN_OR_RETURN(std::vector<double> values, r.GetDoubleVector());
      record.features = DenseVector(std::move(values));
      VELOX_ASSIGN_OR_RETURN(record.label, r.GetDouble());
      break;
    }
    case static_cast<uint8_t>(Kind::kVersionReset):
      record.kind = Kind::kVersionReset;
      break;
    default:
      return Status::InvalidArgument(
          StrFormat("unknown user-weight wal record kind %u", kind_byte));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after user-weight wal record");
  }
  return record;
}

Status SaveUserWeightSnapshotFile(const std::string& path,
                                  const std::vector<uint8_t>& state,
                                  uint64_t wal_records_covered,
                                  uint64_t wal_bytes_covered) {
  ByteWriter w;
  w.PutU32(kSnapshotMagic);
  w.PutU32(kSnapshotFormat);
  w.PutU64(wal_records_covered);
  w.PutU64(wal_bytes_covered);
  w.PutU32(Crc32(state));
  w.PutBytes(state);
  const std::vector<uint8_t>& bytes = w.data();

  // tmp + fsync + rename: a crash at any point leaves either the old
  // snapshot or the complete new one, never a torn file under `path`.
  std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open snapshot for write: " + tmp);
  }
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  ok = ok && std::fflush(file) == 0;
  ok = ok && ::fdatasync(::fileno(file)) == 0;
  if (std::fclose(file) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("snapshot write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("snapshot rename failed: " + path);
  }
  return Status::OK();
}

Result<LoadedUserWeightSnapshot> LoadUserWeightSnapshotFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open snapshot: " + path);
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[1 << 16];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) return Status::IoError("snapshot read failed: " + path);

  ByteReader r(bytes);
  VELOX_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a user-weight snapshot (bad magic)");
  }
  VELOX_ASSIGN_OR_RETURN(uint32_t format, r.GetU32());
  if (format != kSnapshotFormat) {
    return Status::Unimplemented(
        StrFormat("unsupported user-weight snapshot format %u", format));
  }
  LoadedUserWeightSnapshot loaded;
  VELOX_ASSIGN_OR_RETURN(loaded.wal_records_covered, r.GetU64());
  VELOX_ASSIGN_OR_RETURN(loaded.wal_bytes_covered, r.GetU64());
  VELOX_ASSIGN_OR_RETURN(uint32_t crc, r.GetU32());
  VELOX_ASSIGN_OR_RETURN(loaded.state, r.GetBytes());
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot payload");
  }
  if (Crc32(loaded.state) != crc) {
    return Status::IoError("user-weight snapshot crc mismatch: " + path);
  }
  return loaded;
}

UserWeightJournal::UserWeightJournal(UserWeightJournalOptions options,
                                     std::unique_ptr<WriteAheadLog> wal)
    : options_(std::move(options)), wal_(std::move(wal)) {}

Result<std::unique_ptr<UserWeightJournal>> UserWeightJournal::Open(
    UserWeightJournalOptions options) {
  UserWeightRecovery recovery;
  // Load the snapshot FIRST: its covered byte offset becomes the WAL
  // resume point, so the covered prefix is never read — restart cost
  // is O(suffix), not O(log). The snapshot is best-effort: missing or
  // invalid means replay from genesis; it is never fatal (the WAL is
  // the source of truth).
  WalOptions wal_options = options.wal;
  if (!options.snapshot_path.empty()) {
    auto loaded = LoadUserWeightSnapshotFile(options.snapshot_path);
    if (loaded.ok()) {
      recovery.snapshot_state = std::move(loaded.value().state);
      recovery.snapshot_covers = loaded.value().wal_records_covered;
      recovery.snapshot_loaded = true;
      wal_options.resume_offset_bytes = loaded.value().wal_bytes_covered;
      wal_options.resume_offset_records = loaded.value().wal_records_covered;
    }
  }
  // Open() handles a WAL torn shorter than the resume point itself:
  // the snapshot (fdatasync'd before rename) is the more durable
  // artifact, so the unverifiable remainder is dropped and the scan
  // yields no suffix.
  VELOX_ASSIGN_OR_RETURN(std::unique_ptr<WriteAheadLog> wal,
                         WriteAheadLog::Open(options.wal_path, wal_options));
  recovery.wal_clean = wal->recovered_clean();
  std::vector<std::vector<uint8_t>> payloads = wal->TakeRecoveredPayloads();
  recovery.wal_records = wal->total_records();

  for (size_t i = 0; i < payloads.size(); ++i) {
    auto record = UserWeightWalRecord::Deserialize(payloads[i]);
    if (!record.ok()) {
      // CRC-valid but undecodable: stop at the prefix, like a torn
      // tail; later records may depend on this one.
      recovery.undecodable = payloads.size() - i;
      recovery.wal_clean = false;
      break;
    }
    recovery.suffix.push_back(std::move(record).value());
  }

  auto journal = std::unique_ptr<UserWeightJournal>(
      new UserWeightJournal(std::move(options), std::move(wal)));
  journal->last_snapshot_covers_.store(recovery.snapshot_covers,
                                       std::memory_order_relaxed);
  journal->recovered_ = std::move(recovery);
  return journal;
}

Status UserWeightJournal::Append(const UserWeightWalRecord& record) {
  return wal_->AppendPayload(record.Serialize());
}

bool UserWeightJournal::SnapshotDue() const {
  if (options_.snapshot_every == 0 || options_.snapshot_path.empty()) return false;
  return wal_->total_records() >=
         last_snapshot_covers_.load(std::memory_order_relaxed) + options_.snapshot_every;
}

Status UserWeightJournal::WriteSnapshot(const std::vector<uint8_t>& state,
                                        uint64_t wal_records_covered,
                                        uint64_t wal_bytes_covered) {
  if (options_.snapshot_path.empty()) {
    return Status::FailedPrecondition("journal has no snapshot path");
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  // The snapshot claims the first `wal_records_covered` records are
  // reflected in `state`; make sure those records are on disk too, or
  // a machine crash could leave a snapshot covering records the WAL
  // never persisted (harmless) while losing newer ones it should have
  // kept (also harmless — but sync keeps the artifacts consistent).
  VELOX_RETURN_NOT_OK(wal_->Sync());
  VELOX_RETURN_NOT_OK(SaveUserWeightSnapshotFile(options_.snapshot_path, state,
                                                 wal_records_covered,
                                                 wal_bytes_covered));
  last_snapshot_covers_.store(wal_records_covered, std::memory_order_relaxed);
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

UserWeightRecovery UserWeightJournal::TakeRecovered() {
  return std::move(recovered_);
}

}  // namespace velox
