// Durable user-weight serving state: mutation journal + snapshots.
//
// The paper assumes the storage tier is fault-tolerant; in this
// reproduction each user's weight vector w_u and its online-learning
// sufficient statistics live only in the owning node's memory. The
// UserWeightJournal closes that gap, Clipper-style ("serving state is
// rebuildable from logs"):
//
//  * every UserWeightStore mutation appends one UserWeightWalRecord to
//    a per-node write-ahead log (storage/wal.h) — seeds carry the
//    exact initial vector, observation updates carry the resolved
//    feature vector + label, version resets mark a table wipe — so
//    replaying the log through the store's own state machine
//    reconstructs W *and* the sufficient statistics bit-identically
//    (every update is a deterministic FP-op sequence on logged data;
//    replay never consults θ, the bootstrapper, or storage);
//  * periodically the whole table is serialized (a copy-on-write-style
//    cut: stripe locks are held only while the in-memory image is
//    copied, the file write happens with mutators running) into a
//    snapshot file stamped with the WAL record count it covers, so
//    restart recovery is "load newest valid snapshot, replay the WAL
//    suffix" instead of replaying from genesis.
//
// Loss bounds per WalSyncPolicy (see storage/wal.h): under kFsync
// (every-N group commit) at most the last N-1 acknowledged mutations
// can be lost to a machine crash and none to a process crash; under
// kFlush a process crash loses nothing but a machine crash can lose
// any OS-buffered suffix; under kNone nothing is promised.
#ifndef VELOX_STORAGE_SNAPSHOT_H_
#define VELOX_STORAGE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/vector.h"
#include "storage/wal.h"

namespace velox {

// One logged mutation of a UserWeightStore.
struct UserWeightWalRecord {
  enum class Kind : uint8_t {
    // User created or reset to an explicit weight vector (offline seed,
    // bootstrap-mean cold start, or storage-tier failover recovery).
    kSeed = 1,
    // One Eq. 2 online update: the resolved feature vector + label.
    kObservationUpdate = 2,
    // Whole-table wipe at a model version swap; kSeed records for the
    // new version's users follow.
    kVersionReset = 3,
  };

  Kind kind = Kind::kSeed;
  uint64_t uid = 0;
  int32_t model_version = 0;
  DenseVector weights;   // kSeed: the seeded vector
  DenseVector features;  // kObservationUpdate
  double label = 0.0;    // kObservationUpdate

  std::vector<uint8_t> Serialize() const;
  static Result<UserWeightWalRecord> Deserialize(const std::vector<uint8_t>& bytes);
};

// Snapshot file codec: [magic][format][wal_records_covered]
// [wal_bytes_covered][crc32(state)][state blob]. The state blob is an
// opaque UserWeightStore::SerializeState() image; the byte offset lets
// the next Open() seek straight past the covered WAL prefix instead of
// re-scanning it, so restart cost is O(suffix), not O(log). Saved
// atomically (<path>.tmp + fsync + rename), so a crash mid-snapshot
// leaves the previous snapshot intact.
Status SaveUserWeightSnapshotFile(const std::string& path,
                                  const std::vector<uint8_t>& state,
                                  uint64_t wal_records_covered,
                                  uint64_t wal_bytes_covered);
struct LoadedUserWeightSnapshot {
  std::vector<uint8_t> state;
  uint64_t wal_records_covered = 0;
  uint64_t wal_bytes_covered = 0;
};
Result<LoadedUserWeightSnapshot> LoadUserWeightSnapshotFile(const std::string& path);

struct UserWeightJournalOptions {
  std::string wal_path;
  std::string snapshot_path;
  WalOptions wal;
  // Write a snapshot once this many records accumulate past the last
  // one; 0 disables automatic snapshots (WriteSnapshot still works).
  uint64_t snapshot_every = 0;
};

// Everything recovered at Open(): the newest valid snapshot (if any)
// and the WAL records past the point it covers (the WAL scan starts at
// the snapshot's covered byte offset, so only the suffix is read). A
// missing or invalid snapshot degrades to genesis replay (empty state,
// full suffix); a WAL torn shorter than the snapshot's cover point
// degrades to the snapshot alone (it is the more durable artifact).
struct UserWeightRecovery {
  std::vector<uint8_t> snapshot_state;  // empty when none loaded
  uint64_t snapshot_covers = 0;
  bool snapshot_loaded = false;
  std::vector<UserWeightWalRecord> suffix;  // replay these, in order
  uint64_t wal_records = 0;                 // valid records in the WAL
  bool wal_clean = true;                    // false if a torn tail was truncated
  // CRC-valid WAL payloads that failed to decode as records (count).
  uint64_t undecodable = 0;
};

class UserWeightJournal {
 public:
  static Result<std::unique_ptr<UserWeightJournal>> Open(UserWeightJournalOptions options);

  // Appends one mutation under the WAL's sync policy. Callers hold the
  // mutated user's stripe lock, so per-user record order matches
  // mutation order (cross-user order is arbitrary but cross-user
  // mutations commute).
  Status Append(const UserWeightWalRecord& record);

  // Group-commit window forwarded to the underlying WAL (see
  // WriteAheadLog::BeginGroup): appends between the calls defer their
  // per-record sync; EndGroupCommit performs one policy-appropriate
  // sync for the whole window. A batch of observations acknowledged
  // after EndGroupCommit has exactly the per-record durability of the
  // configured WalSyncPolicy at a single sync's cost.
  void BeginGroupCommit() { wal_->BeginGroup(); }
  Status EndGroupCommit() { return wal_->EndGroup(); }
  uint64_t group_commits() const { return wal_->group_commits(); }

  // True when snapshot_every > 0 and that many records accumulated
  // past the last snapshot.
  bool SnapshotDue() const;

  // Persists `state` as covering the first `wal_records_covered` WAL
  // records (`wal_bytes_covered` bytes — both taken from records() /
  // bytes() at the same consistent cut). Syncs the WAL first so the
  // cover point is itself durable. Serialized internally; concurrent
  // callers queue.
  Status WriteSnapshot(const std::vector<uint8_t>& state, uint64_t wal_records_covered,
                       uint64_t wal_bytes_covered);

  // Recovery artifacts computed at Open(); destructive (the suffix is
  // released to the caller).
  UserWeightRecovery TakeRecovered();

  // Total records in the journal: recovered + appended through this
  // handle. This is the cut offset a snapshot of current state covers.
  uint64_t records() const { return wal_->total_records(); }
  // Valid journal bytes at the same cut (the seek point a snapshot
  // stamps for the next restart).
  uint64_t bytes() const { return wal_->total_bytes(); }
  // Records appended through this handle (the wal.appends metric).
  uint64_t appends() const { return wal_->records_appended(); }
  uint64_t snapshots_written() const {
    return snapshots_.load(std::memory_order_relaxed);
  }

  const UserWeightJournalOptions& options() const { return options_; }

 private:
  UserWeightJournal(UserWeightJournalOptions options,
                    std::unique_ptr<WriteAheadLog> wal);

  UserWeightJournalOptions options_;
  std::unique_ptr<WriteAheadLog> wal_;
  UserWeightRecovery recovered_;
  std::mutex snapshot_mu_;
  std::atomic<uint64_t> last_snapshot_covers_{0};
  std::atomic<uint64_t> snapshots_{0};
};

}  // namespace velox

#endif  // VELOX_STORAGE_SNAPSHOT_H_
