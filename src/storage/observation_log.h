// Append-only observation log.
//
// Paper §4.1: "In addition to being used to trigger online updates, the
// observation is written to Tachyon for use by Spark when retraining
// the model offline." This log is that durable record: every observe()
// call appends an Observation; the offline retraining job reads a
// sequence-consistent snapshot.
#ifndef VELOX_STORAGE_OBSERVATION_LOG_H_
#define VELOX_STORAGE_OBSERVATION_LOG_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace velox {

// One observation: user `uid` gave label `label` (e.g., a rating) to
// item `item_id` at logical time `timestamp`.
struct Observation {
  uint64_t uid = 0;
  uint64_t item_id = 0;
  double label = 0.0;
  int64_t timestamp = 0;

  std::vector<uint8_t> Serialize() const;
  static Result<Observation> Deserialize(const std::vector<uint8_t>& bytes);

  friend bool operator==(const Observation& a, const Observation& b) {
    return a.uid == b.uid && a.item_id == b.item_id && a.label == b.label &&
           a.timestamp == b.timestamp;
  }
};

class ObservationLog {
 public:
  ObservationLog() = default;

  // Appends and returns the record's sequence number (0-based, dense).
  uint64_t Append(const Observation& obs);

  // All records with sequence number in [from_seq, NextSeq()).
  std::vector<Observation> ReadFrom(uint64_t from_seq) const;

  // Records in [from_seq, to_seq).
  std::vector<Observation> ReadRange(uint64_t from_seq, uint64_t to_seq) const;

  // The sequence number the next Append will get.
  uint64_t NextSeq() const;

  // Sequence number of the oldest retained record (> 0 after
  // compaction). Reads below it return nothing.
  uint64_t FirstSeq() const;

  // Retained record count (NextSeq() - FirstSeq()).
  uint64_t size() const;

  // Compaction: drops all records with sequence number < keep_from_seq.
  // Sequence numbers of retained and future records are unchanged, so
  // readers holding offsets stay correct. Pairs with windowed
  // retraining (RetrainSchedulerOptions.max_observations) to bound the
  // log's memory. Returns the number of records dropped.
  uint64_t Compact(uint64_t keep_from_seq);

 private:
  mutable std::mutex mu_;
  // log_[i] holds sequence number base_seq_ + i.
  uint64_t base_seq_ = 0;
  std::vector<Observation> log_;
};

}  // namespace velox

#endif  // VELOX_STORAGE_OBSERVATION_LOG_H_
