#include "data/movielens.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace velox {

double SyntheticDataset::TrueScore(uint64_t uid, uint64_t item_id) const {
  auto u = true_user_factors.find(uid);
  auto i = true_item_factors.find(item_id);
  if (u == true_user_factors.end() || i == true_item_factors.end()) {
    return config.mean_rating;
  }
  return config.mean_rating + Dot(u->second, i->second);
}

Result<SyntheticDataset> GenerateSyntheticMovieLens(
    const SyntheticMovieLensConfig& config) {
  if (config.num_users <= 0 || config.num_items <= 0) {
    return Status::InvalidArgument("num_users and num_items must be positive");
  }
  if (config.latent_rank == 0) {
    return Status::InvalidArgument("latent_rank must be positive");
  }
  if (config.min_ratings_per_user <= 0 ||
      config.max_ratings_per_user < config.min_ratings_per_user) {
    return Status::InvalidArgument("invalid ratings_per_user range");
  }
  if (config.max_ratings_per_user > config.num_items) {
    return Status::InvalidArgument("max_ratings_per_user exceeds catalog size");
  }
  if (config.rating_min >= config.rating_max) {
    return Status::InvalidArgument("rating_min must be < rating_max");
  }

  SyntheticDataset ds;
  ds.config = config;

  // Factor scale: entries N(0, 1/sqrt(rank)) make w.x have unit-ish
  // variance, spreading planted scores across the rating range.
  double factor_stddev = 1.0 / std::sqrt(static_cast<double>(config.latent_rank));
  for (int64_t u = 0; u < config.num_users; ++u) {
    ds.true_user_factors[static_cast<uint64_t>(u)] = InitFactor(
        config.latent_rank, factor_stddev, config.seed ^ 0x75736572ULL,  // "user"
        static_cast<uint64_t>(u));
  }
  for (int64_t i = 0; i < config.num_items; ++i) {
    ds.true_item_factors[static_cast<uint64_t>(i)] = InitFactor(
        config.latent_rank, factor_stddev, config.seed ^ 0x6974656dULL,  // "item"
        static_cast<uint64_t>(i));
  }

  Rng rng(config.seed);
  ZipfDistribution item_pop(config.num_items, config.zipf_exponent);
  int64_t timestamp = 0;
  for (int64_t u = 0; u < config.num_users; ++u) {
    int64_t count =
        rng.UniformInt(config.min_ratings_per_user, config.max_ratings_per_user);
    std::unordered_set<uint64_t> rated;
    rated.reserve(static_cast<size_t>(count) * 2);
    int64_t attempts = 0;
    // Zipf sampling with rejection of repeats; bail to uniform fill if
    // the head is so hot that distinct draws stall.
    const int64_t max_attempts = count * 50;
    while (static_cast<int64_t>(rated.size()) < count && attempts < max_attempts) {
      ++attempts;
      uint64_t item = static_cast<uint64_t>(item_pop.Sample(&rng));
      if (!rated.insert(item).second) continue;
      Observation obs;
      obs.uid = static_cast<uint64_t>(u);
      obs.item_id = item;
      double raw = ds.TrueScore(obs.uid, item) + rng.Gaussian(0.0, config.noise_stddev);
      raw = std::clamp(raw, config.rating_min, config.rating_max);
      if (config.half_star_rounding) raw = std::round(raw * 2.0) / 2.0;
      obs.label = raw;
      obs.timestamp = timestamp++;
      ds.ratings.push_back(obs);
    }
  }
  return ds;
}

Result<std::vector<Observation>> LoadMovieLensRatings(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open ratings file: " + path);
  std::vector<Observation> out;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    auto fields = StrSplit(stripped, std::string_view("::"));
    if (fields.size() != 4) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: expected 4 '::'-separated fields", path.c_str(), line_no));
    }
    Observation obs;
    VELOX_ASSIGN_OR_RETURN(int64_t uid, ParseInt64(fields[0]));
    VELOX_ASSIGN_OR_RETURN(int64_t item, ParseInt64(fields[1]));
    VELOX_ASSIGN_OR_RETURN(obs.label, ParseDouble(fields[2]));
    VELOX_ASSIGN_OR_RETURN(obs.timestamp, ParseInt64(fields[3]));
    obs.uid = static_cast<uint64_t>(uid);
    obs.item_id = static_cast<uint64_t>(item);
    out.push_back(obs);
  }
  return out;
}

Result<std::vector<Observation>> LoadMovieLensCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open ratings file: " + path);
  std::vector<Observation> out;
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    if (!saw_header) {
      saw_header = true;
      if (StartsWith(stripped, "userId")) continue;  // header row
      // Headerless files are accepted; fall through and parse the row.
    }
    auto fields = StrSplit(stripped, ',');
    if (fields.size() != 4) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: expected 4 comma-separated fields", path.c_str(), line_no));
    }
    Observation obs;
    VELOX_ASSIGN_OR_RETURN(int64_t uid, ParseInt64(fields[0]));
    VELOX_ASSIGN_OR_RETURN(int64_t item, ParseInt64(fields[1]));
    VELOX_ASSIGN_OR_RETURN(obs.label, ParseDouble(fields[2]));
    VELOX_ASSIGN_OR_RETURN(obs.timestamp, ParseInt64(fields[3]));
    obs.uid = static_cast<uint64_t>(uid);
    obs.item_id = static_cast<uint64_t>(item);
    out.push_back(obs);
  }
  return out;
}

void SplitPerUserChronological(const std::vector<Observation>& ratings,
                               double head_fraction, std::vector<Observation>* head,
                               std::vector<Observation>* tail) {
  VELOX_CHECK(head != nullptr && tail != nullptr);
  VELOX_CHECK_GE(head_fraction, 0.0);
  VELOX_CHECK_LE(head_fraction, 1.0);
  head->clear();
  tail->clear();
  std::unordered_map<uint64_t, std::vector<Observation>> per_user;
  for (const Observation& obs : ratings) per_user[obs.uid].push_back(obs);
  for (auto& [uid, list] : per_user) {
    std::sort(list.begin(), list.end(),
              [](const Observation& a, const Observation& b) {
                return a.timestamp < b.timestamp;
              });
    size_t cut = static_cast<size_t>(
        std::llround(head_fraction * static_cast<double>(list.size())));
    for (size_t i = 0; i < list.size(); ++i) {
      (i < cut ? head : tail)->push_back(list[i]);
    }
  }
}

}  // namespace velox
