// MovieLens-like data: a loader for the real MovieLens ratings format
// and a synthetic generator with the statistical shape the paper's
// experiments rely on.
//
// The paper evaluates on MovieLens 10M (69,878 users; 10,677 movies;
// 10M ratings in {0.5, 1.0, ..., 5.0}). That file is not available
// offline, so GenerateSyntheticMovieLens produces ratings from a
// planted low-rank model: ground-truth user/item factors, Gaussian
// noise, Zipfian item popularity (§5: "item popularity often follows a
// Zipfian distribution"), and MovieLens-style half-star clipping. The
// planted factors give every accuracy experiment a known ground truth
// (DESIGN.md §2 documents this substitution).
#ifndef VELOX_DATA_MOVIELENS_H_
#define VELOX_DATA_MOVIELENS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/als.h"
#include "storage/observation_log.h"

namespace velox {

struct SyntheticMovieLensConfig {
  int64_t num_users = 1000;
  int64_t num_items = 2000;
  // Rank of the planted factor model.
  size_t latent_rank = 10;
  // Rating = clip(mean + w_uᵀx_i + N(0, noise)).
  double mean_rating = 3.5;
  double noise_stddev = 0.4;
  // Popularity skew of item selection (0 = uniform).
  double zipf_exponent = 1.0;
  // Each user rates between min_ratings_per_user and
  // max_ratings_per_user distinct items (uniform).
  int64_t min_ratings_per_user = 10;
  int64_t max_ratings_per_user = 30;
  double rating_min = 0.5;
  double rating_max = 5.0;
  // Round ratings to half stars like MovieLens.
  bool half_star_rounding = true;
  uint64_t seed = 42;
};

struct SyntheticDataset {
  SyntheticMovieLensConfig config;
  // The planted ground truth.
  FactorMap true_user_factors;
  FactorMap true_item_factors;
  // Observed (noisy, clipped) ratings, timestamp-ordered per user.
  std::vector<Observation> ratings;

  // Noise-free planted score for (uid, item).
  double TrueScore(uint64_t uid, uint64_t item_id) const;
};

Result<SyntheticDataset> GenerateSyntheticMovieLens(const SyntheticMovieLensConfig& config);

// Parses the MovieLens "uid::item::rating::timestamp" format (ML-1M /
// ML-10M ratings.dat). Malformed lines fail the load.
Result<std::vector<Observation>> LoadMovieLensRatings(const std::string& path);

// Parses the newer ml-latest CSV format: a "userId,movieId,rating,
// timestamp" header followed by comma-separated rows.
Result<std::vector<Observation>> LoadMovieLensCsv(const std::string& path);

// Chronological per-user split helper for the §4.2 protocol: for each
// user, the first `head_fraction` of their ratings (by timestamp) go
// to `head`, the rest to `tail`.
void SplitPerUserChronological(const std::vector<Observation>& ratings,
                               double head_fraction, std::vector<Observation>* head,
                               std::vector<Observation>* tail);

}  // namespace velox

#endif  // VELOX_DATA_MOVIELENS_H_
