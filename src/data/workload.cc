#include "data/workload.h"

#include <unordered_set>

#include "common/logging.h"

namespace velox {

Result<WorkloadGenerator> WorkloadGenerator::Make(const WorkloadConfig& config) {
  if (config.num_users <= 0 || config.num_items <= 0) {
    return Status::InvalidArgument("num_users and num_items must be positive");
  }
  if (config.predict_fraction < 0.0 || config.topk_fraction < 0.0 ||
      config.predict_fraction + config.topk_fraction > 1.0) {
    return Status::InvalidArgument("invalid request mix");
  }
  if (config.topk_set_size <= 0 || config.topk_set_size > config.num_items) {
    return Status::InvalidArgument("invalid topk_set_size");
  }
  return WorkloadGenerator(config);
}

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config)
    : config_(config),
      rng_(config.seed),
      item_pop_(config.num_items, config.zipf_exponent) {}

Request WorkloadGenerator::Next() {
  Request req;
  req.uid = rng_.UniformU64(static_cast<uint64_t>(config_.num_users));
  double roll = rng_.UniformDouble();
  if (roll < config_.predict_fraction) {
    req.type = RequestType::kPredict;
    req.items.push_back(static_cast<uint64_t>(item_pop_.Sample(&rng_)));
  } else if (roll < config_.predict_fraction + config_.topk_fraction) {
    req.type = RequestType::kTopK;
    // Distinct Zipf-popular candidates.
    std::unordered_set<uint64_t> chosen;
    chosen.reserve(static_cast<size_t>(config_.topk_set_size) * 2);
    int64_t attempts = 0;
    const int64_t max_attempts = config_.topk_set_size * 50;
    while (static_cast<int64_t>(chosen.size()) < config_.topk_set_size &&
           attempts++ < max_attempts) {
      chosen.insert(static_cast<uint64_t>(item_pop_.Sample(&rng_)));
    }
    // Fill any shortfall (pathologically hot heads) uniformly.
    while (static_cast<int64_t>(chosen.size()) < config_.topk_set_size) {
      chosen.insert(rng_.UniformU64(static_cast<uint64_t>(config_.num_items)));
    }
    req.items.assign(chosen.begin(), chosen.end());
  } else {
    req.type = RequestType::kObserve;
    req.items.push_back(static_cast<uint64_t>(item_pop_.Sample(&rng_)));
    req.label = rng_.UniformDouble(config_.label_min, config_.label_max);
  }
  return req;
}

std::vector<Request> WorkloadGenerator::NextBatch(size_t n) {
  std::vector<Request> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace velox
