// Serving workload generator: a stream of predict / topK / observe
// requests with Zipfian item popularity and uniform user arrivals,
// used by the examples and the latency/caching benchmarks.
#ifndef VELOX_DATA_WORKLOAD_H_
#define VELOX_DATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace velox {

enum class RequestType { kPredict, kTopK, kObserve };

struct Request {
  RequestType type = RequestType::kPredict;
  uint64_t uid = 0;
  // kPredict/kObserve use items[0]; kTopK uses the whole set.
  std::vector<uint64_t> items;
  // Label supplied with kObserve.
  double label = 0.0;
};

struct WorkloadConfig {
  int64_t num_users = 1000;
  int64_t num_items = 2000;
  double zipf_exponent = 1.0;
  // Request mix; must sum to <= 1.0 (remainder = observe).
  double predict_fraction = 0.6;
  double topk_fraction = 0.3;
  // Candidate-set size for topK requests.
  int64_t topk_set_size = 20;
  double label_min = 0.5;
  double label_max = 5.0;
  uint64_t seed = 7;
};

class WorkloadGenerator {
 public:
  // Fails on invalid mixes/sizes.
  static Result<WorkloadGenerator> Make(const WorkloadConfig& config);

  Request Next();

  // Convenience: a batch of `n` requests.
  std::vector<Request> NextBatch(size_t n);

  const WorkloadConfig& config() const { return config_; }

 private:
  explicit WorkloadGenerator(const WorkloadConfig& config);

  WorkloadConfig config_;
  Rng rng_;
  ZipfDistribution item_pop_;
};

}  // namespace velox

#endif  // VELOX_DATA_WORKLOAD_H_
