// Feature transformation functions f(x, θ) — the heart of the paper's
// modeling framework (Eq. 1: prediction(u, x) = w_uᵀ f(x, θ)).
//
// The paper distinguishes two kinds of f (§5 "Caching", §6):
//  * materialized — f is a lookup into a precomputed table (e.g., the
//    item latent-factor matrix X of a matrix-factorization model);
//  * computational — f evaluates basis functions on the raw input
//    (e.g., an ensemble of SVMs, RBF/random-Fourier features standing
//    in for a network's representation).
//
// This header provides the computational family plus a local
// materialized-table variant. Distribution concerns (remote fetch of
// materialized features, caching) live in core/prediction_service.h,
// which wraps any FeatureFunction.
#ifndef VELOX_ML_FEATURE_FUNCTION_H_
#define VELOX_ML_FEATURE_FUNCTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/random.h"
#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace velox {

// An input object ("Data" in the paper's Listing 1/2): an item id plus
// optional raw content attributes used by computational features.
struct Item {
  uint64_t id = 0;
  DenseVector attributes;
};

class FeatureFunction {
 public:
  virtual ~FeatureFunction() = default;

  virtual std::string name() const = 0;
  // Output dimension d of f (must equal the user-weight dimension).
  virtual size_t dim() const = 0;
  // True when f is a table lookup (invalidated only by offline
  // retraining); false when f is computed from x.attributes.
  virtual bool is_materialized() const = 0;
  // Evaluates f(x, θ).
  virtual Result<DenseVector> Features(const Item& x) const = 0;
};

// Materialized f: item id -> latent factor lookup. The table is
// immutable once constructed; offline retraining builds a new one
// (model versions are immutable snapshots, see core/model_registry.h).
class MaterializedFeatureFunction final : public FeatureFunction {
 public:
  using FactorTable = std::unordered_map<uint64_t, DenseVector>;

  MaterializedFeatureFunction(std::shared_ptr<const FactorTable> table, size_t dim);

  std::string name() const override { return "materialized_lookup"; }
  size_t dim() const override { return dim_; }
  bool is_materialized() const override { return true; }
  // NotFound for unknown items.
  Result<DenseVector> Features(const Item& x) const override;

  const FactorTable& table() const { return *table_; }

 private:
  std::shared_ptr<const FactorTable> table_;
  size_t dim_;
};

// f(x) = x.attributes, optionally with a trailing bias term.
class IdentityFeatureFunction final : public FeatureFunction {
 public:
  explicit IdentityFeatureFunction(size_t input_dim, bool add_bias = false);

  std::string name() const override { return "identity"; }
  size_t dim() const override { return input_dim_ + (add_bias_ ? 1 : 0); }
  bool is_materialized() const override { return false; }
  Result<DenseVector> Features(const Item& x) const override;

 private:
  size_t input_dim_;
  bool add_bias_;
};

// Gaussian RBF basis: f_k(x) = exp(-gamma ||x - c_k||^2) over
// `num_centers` random centers.
class RbfFeatureFunction final : public FeatureFunction {
 public:
  RbfFeatureFunction(size_t input_dim, size_t num_centers, double gamma, uint64_t seed);

  std::string name() const override { return "rbf_basis"; }
  size_t dim() const override { return centers_.rows(); }
  bool is_materialized() const override { return false; }
  Result<DenseVector> Features(const Item& x) const override;

 private:
  DenseMatrix centers_;  // num_centers x input_dim
  double gamma_;
};

// Random Fourier features: f_k(x) = sqrt(2/D) cos(w_kᵀx + b_k); a
// standard stand-in for an expensive learned representation (the
// paper's "deep neural network" computational-f case).
class RandomFourierFeatureFunction final : public FeatureFunction {
 public:
  RandomFourierFeatureFunction(size_t input_dim, size_t num_features, double bandwidth,
                               uint64_t seed);

  std::string name() const override { return "random_fourier"; }
  size_t dim() const override { return weights_.rows(); }
  bool is_materialized() const override { return false; }
  Result<DenseVector> Features(const Item& x) const override;

 private:
  DenseMatrix weights_;  // num_features x input_dim
  DenseVector offsets_;  // num_features
};

// Degree-2 polynomial expansion: [x, x_i * x_j for i <= j] with an
// optional bias — the classic low-cost interaction featurizer for
// linear-in-the-weights personalization.
class PolynomialFeatureFunction final : public FeatureFunction {
 public:
  explicit PolynomialFeatureFunction(size_t input_dim, bool add_bias = true);

  std::string name() const override { return "polynomial2"; }
  size_t dim() const override;
  bool is_materialized() const override { return false; }
  Result<DenseVector> Features(const Item& x) const override;

 private:
  size_t input_dim_;
  bool add_bias_;
};

// Affine normalization wrapper: f'(x) = (f(x) - shift) * scale,
// element-wise — applies the standardization parameters learned offline
// (part of θ) so the online ridge problem stays well conditioned.
class NormalizingFeatureFunction final : public FeatureFunction {
 public:
  // shift/scale dims must equal inner->dim(); every scale entry must be
  // finite and non-zero.
  NormalizingFeatureFunction(std::shared_ptr<const FeatureFunction> inner,
                             DenseVector shift, DenseVector scale);

  std::string name() const override { return "normalized:" + inner_->name(); }
  size_t dim() const override { return inner_->dim(); }
  bool is_materialized() const override { return inner_->is_materialized(); }
  Result<DenseVector> Features(const Item& x) const override;

 private:
  std::shared_ptr<const FeatureFunction> inner_;
  DenseVector shift_;
  DenseVector scale_;
};

// Hashing-trick featurizer: projects arbitrary-dimension sparse-ish
// attribute vectors into a fixed d-dimensional space by hashing each
// input index to an output bucket with a ±1 sign (Weinberger et al.).
// Unlike the other computational functions it accepts inputs of any
// dimension, which models heterogeneous item metadata.
class HashingFeatureFunction final : public FeatureFunction {
 public:
  HashingFeatureFunction(size_t output_dim, uint64_t seed);

  std::string name() const override { return "hashing"; }
  size_t dim() const override { return output_dim_; }
  bool is_materialized() const override { return false; }
  Result<DenseVector> Features(const Item& x) const override;

 private:
  size_t output_dim_;
  uint64_t seed_;
};

// The paper's §6 running example: "an ensemble of SVMs learned offline
// and used as the feature transformation function". Each output
// coordinate is tanh(w_kᵀx + b_k) — the margin of one SVM squashed to
// a bounded score.
class SvmEnsembleFeatureFunction final : public FeatureFunction {
 public:
  // Builds `num_svms` random hyperplanes; real deployments would load
  // offline-trained ones via the (weights, biases) constructor.
  SvmEnsembleFeatureFunction(size_t input_dim, size_t num_svms, uint64_t seed);
  SvmEnsembleFeatureFunction(DenseMatrix weights, DenseVector biases);

  std::string name() const override { return "svm_ensemble"; }
  size_t dim() const override { return weights_.rows(); }
  bool is_materialized() const override { return false; }
  Result<DenseVector> Features(const Item& x) const override;

 private:
  DenseMatrix weights_;  // num_svms x input_dim
  DenseVector biases_;   // num_svms
};

}  // namespace velox

#endif  // VELOX_ML_FEATURE_FUNCTION_H_
