// Feature transformation functions f(x, θ) — the heart of the paper's
// modeling framework (Eq. 1: prediction(u, x) = w_uᵀ f(x, θ)).
//
// The paper distinguishes two kinds of f (§5 "Caching", §6):
//  * materialized — f is a lookup into a precomputed table (e.g., the
//    item latent-factor matrix X of a matrix-factorization model);
//  * computational — f evaluates basis functions on the raw input
//    (e.g., an ensemble of SVMs, RBF/random-Fourier features standing
//    in for a network's representation).
//
// This header provides the computational family plus a local
// materialized-table variant. Distribution concerns (remote fetch of
// materialized features, caching) live in core/prediction_service.h,
// which wraps any FeatureFunction.
#ifndef VELOX_ML_FEATURE_FUNCTION_H_
#define VELOX_ML_FEATURE_FUNCTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/random.h"
#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace velox {

// An input object ("Data" in the paper's Listing 1/2): an item id plus
// optional raw content attributes used by computational features.
struct Item {
  uint64_t id = 0;
  DenseVector attributes;
};

// Immutable, contiguous, row-major copy of a materialized factor table
// — the scoring plane for full-catalog top-K (paper §8: "more
// efficient top-K support for our linear modeling tasks").
//
// Layout: row r holds the factor of item_ids()[r] at data() + r *
// stride(), zero-padded from dim() to stride() (stride rounds dim up
// to a multiple of 8 doubles = one 64-byte cache line) so rows never
// straddle lines unpredictably and blocked kernels can assume a fixed
// pitch. Rows are sorted by ascending item id, which makes every scan
// order — and therefore every tie-break — deterministic.
//
// Lifecycle: built once when a MaterializedFeatureFunction is
// constructed and attached to the ModelVersion at ModelRegistry
// install time; like the version it is immutable, so scans take no
// locks and concurrent readers share it via shared_ptr. A retrain
// builds a whole new plane with the new θ.
class ItemFactorPlane {
 public:
  // One row of the plane, with the stride math resolved: `data`/`fdata`
  // point at the row start, `dim` is the logical factor dimension and
  // `padded` the physical pitch (dim rounded up to the stride, zeros in
  // between). Kernels may read `padded` doubles — the zero padding makes
  // DotKernel(data, w_padded, padded) bit-identical to the dim-length
  // product (scoring_kernels.h's zero-padding invariance).
  struct RowSpan {
    const double* data = nullptr;
    const float* fdata = nullptr;
    uint64_t item_id = 0;
    size_t dim = 0;
    size_t padded = 0;
  };

  // Copies `table` into the contiguous layout; rows whose factor
  // dimension differs from `dim` are dropped (mirrors the defensive
  // skip in the per-item scan).
  ItemFactorPlane(const std::unordered_map<uint64_t, DenseVector>& table, size_t dim);

  size_t num_items() const { return item_ids_.size(); }
  size_t dim() const { return dim_; }
  size_t stride() const { return stride_; }

  // Item ids in ascending order; row r scores item_ids()[r].
  const std::vector<uint64_t>& item_ids() const { return item_ids_; }
  const double* data() const { return data_.data(); }
  const double* row(size_t r) const { return data_.data() + r * stride_; }

  // Row r with its stride math pre-resolved — the one place consumers
  // (scan kernels, ANN build/rescore) get row pointers from.
  RowSpan row_span(size_t r) const {
    return RowSpan{data_.data() + r * stride_, fdata_.data() + r * stride_,
                   item_ids_[r], dim_, stride_};
  }

  // Single-precision mirror of data() (same stride/padding) plus the
  // largest row 2-norm, for the mixed-precision top-K pre-filter: scan
  // the float plane (half the memory traffic), bound every row's score
  // error by eps_max ∝ max_row_norm2()·‖w‖₂, and rescore only the rows
  // whose error interval can still reach the top k in double. Only
  // usable when every factor is finite.
  bool float_ok() const { return float_ok_; }
  const float* fdata() const { return fdata_.data(); }
  const float* frow(size_t r) const { return fdata_.data() + r * stride_; }
  double max_row_norm2() const { return max_row_norm2_; }

 private:
  size_t dim_ = 0;
  size_t stride_ = 0;
  bool float_ok_ = true;
  double max_row_norm2_ = 0.0;
  std::vector<uint64_t> item_ids_;
  std::vector<double> data_;  // num_items * stride, zero-padded
  std::vector<float> fdata_;  // same layout, float-converted
};

class FeatureFunction {
 public:
  virtual ~FeatureFunction() = default;

  virtual std::string name() const = 0;
  // Output dimension d of f (must equal the user-weight dimension).
  virtual size_t dim() const = 0;
  // True when f is a table lookup (invalidated only by offline
  // retraining); false when f is computed from x.attributes.
  virtual bool is_materialized() const = 0;
  // Evaluates f(x, θ).
  virtual Result<DenseVector> Features(const Item& x) const = 0;
};

// Materialized f: item id -> latent factor lookup. The table is
// immutable once constructed; offline retraining builds a new one
// (model versions are immutable snapshots, see core/model_registry.h).
class MaterializedFeatureFunction final : public FeatureFunction {
 public:
  using FactorTable = std::unordered_map<uint64_t, DenseVector>;

  MaterializedFeatureFunction(std::shared_ptr<const FactorTable> table, size_t dim);

  std::string name() const override { return "materialized_lookup"; }
  size_t dim() const override { return dim_; }
  bool is_materialized() const override { return true; }
  // NotFound for unknown items.
  Result<DenseVector> Features(const Item& x) const override;

  const FactorTable& table() const { return *table_; }
  // Contiguous scoring plane over the same factors, built once at
  // construction (the table is immutable). Never null.
  std::shared_ptr<const ItemFactorPlane> plane() const { return plane_; }

 private:
  std::shared_ptr<const FactorTable> table_;
  std::shared_ptr<const ItemFactorPlane> plane_;
  size_t dim_;
};

// f(x) = x.attributes, optionally with a trailing bias term.
class IdentityFeatureFunction final : public FeatureFunction {
 public:
  explicit IdentityFeatureFunction(size_t input_dim, bool add_bias = false);

  std::string name() const override { return "identity"; }
  size_t dim() const override { return input_dim_ + (add_bias_ ? 1 : 0); }
  bool is_materialized() const override { return false; }
  Result<DenseVector> Features(const Item& x) const override;

 private:
  size_t input_dim_;
  bool add_bias_;
};

// Gaussian RBF basis: f_k(x) = exp(-gamma ||x - c_k||^2) over
// `num_centers` random centers.
class RbfFeatureFunction final : public FeatureFunction {
 public:
  RbfFeatureFunction(size_t input_dim, size_t num_centers, double gamma, uint64_t seed);

  std::string name() const override { return "rbf_basis"; }
  size_t dim() const override { return centers_.rows(); }
  bool is_materialized() const override { return false; }
  Result<DenseVector> Features(const Item& x) const override;

 private:
  DenseMatrix centers_;  // num_centers x input_dim
  double gamma_;
};

// Random Fourier features: f_k(x) = sqrt(2/D) cos(w_kᵀx + b_k); a
// standard stand-in for an expensive learned representation (the
// paper's "deep neural network" computational-f case).
class RandomFourierFeatureFunction final : public FeatureFunction {
 public:
  RandomFourierFeatureFunction(size_t input_dim, size_t num_features, double bandwidth,
                               uint64_t seed);

  std::string name() const override { return "random_fourier"; }
  size_t dim() const override { return weights_.rows(); }
  bool is_materialized() const override { return false; }
  Result<DenseVector> Features(const Item& x) const override;

 private:
  DenseMatrix weights_;  // num_features x input_dim
  DenseVector offsets_;  // num_features
};

// Degree-2 polynomial expansion: [x, x_i * x_j for i <= j] with an
// optional bias — the classic low-cost interaction featurizer for
// linear-in-the-weights personalization.
class PolynomialFeatureFunction final : public FeatureFunction {
 public:
  explicit PolynomialFeatureFunction(size_t input_dim, bool add_bias = true);

  std::string name() const override { return "polynomial2"; }
  size_t dim() const override;
  bool is_materialized() const override { return false; }
  Result<DenseVector> Features(const Item& x) const override;

 private:
  size_t input_dim_;
  bool add_bias_;
};

// Affine normalization wrapper: f'(x) = (f(x) - shift) * scale,
// element-wise — applies the standardization parameters learned offline
// (part of θ) so the online ridge problem stays well conditioned.
class NormalizingFeatureFunction final : public FeatureFunction {
 public:
  // shift/scale dims must equal inner->dim(); every scale entry must be
  // finite and non-zero.
  NormalizingFeatureFunction(std::shared_ptr<const FeatureFunction> inner,
                             DenseVector shift, DenseVector scale);

  std::string name() const override { return "normalized:" + inner_->name(); }
  size_t dim() const override { return inner_->dim(); }
  bool is_materialized() const override { return inner_->is_materialized(); }
  Result<DenseVector> Features(const Item& x) const override;

 private:
  std::shared_ptr<const FeatureFunction> inner_;
  DenseVector shift_;
  DenseVector scale_;
};

// Hashing-trick featurizer: projects arbitrary-dimension sparse-ish
// attribute vectors into a fixed d-dimensional space by hashing each
// input index to an output bucket with a ±1 sign (Weinberger et al.).
// Unlike the other computational functions it accepts inputs of any
// dimension, which models heterogeneous item metadata.
class HashingFeatureFunction final : public FeatureFunction {
 public:
  HashingFeatureFunction(size_t output_dim, uint64_t seed);

  std::string name() const override { return "hashing"; }
  size_t dim() const override { return output_dim_; }
  bool is_materialized() const override { return false; }
  Result<DenseVector> Features(const Item& x) const override;

 private:
  size_t output_dim_;
  uint64_t seed_;
};

// The paper's §6 running example: "an ensemble of SVMs learned offline
// and used as the feature transformation function". Each output
// coordinate is tanh(w_kᵀx + b_k) — the margin of one SVM squashed to
// a bounded score.
class SvmEnsembleFeatureFunction final : public FeatureFunction {
 public:
  // Builds `num_svms` random hyperplanes; real deployments would load
  // offline-trained ones via the (weights, biases) constructor.
  SvmEnsembleFeatureFunction(size_t input_dim, size_t num_svms, uint64_t seed);
  SvmEnsembleFeatureFunction(DenseMatrix weights, DenseVector biases);

  std::string name() const override { return "svm_ensemble"; }
  size_t dim() const override { return weights_.rows(); }
  bool is_materialized() const override { return false; }
  Result<DenseVector> Features(const Item& x) const override;

 private:
  DenseMatrix weights_;  // num_svms x input_dim
  DenseVector biases_;   // num_svms
};

}  // namespace velox

#endif  // VELOX_ML_FEATURE_FUNCTION_H_
