#include "ml/sgd.h"

#include "common/logging.h"
#include "common/random.h"

namespace velox {

SgdTrainer::SgdTrainer(SgdConfig config) : config_(config) {
  VELOX_CHECK_GT(config_.rank, 0u);
  VELOX_CHECK_GT(config_.learning_rate, 0.0);
  VELOX_CHECK_GT(config_.epochs, 0);
}

Result<MfModel> SgdTrainer::Train(const std::vector<Observation>& ratings) const {
  MfModel cold;
  cold.rank = config_.rank;
  cold.lambda = config_.lambda;
  return TrainWarmStart(ratings, cold);
}

Result<MfModel> SgdTrainer::TrainWarmStart(const std::vector<Observation>& ratings,
                                           const MfModel& init) const {
  if (ratings.empty()) return Status::InvalidArgument("no training ratings");
  if (!init.user_factors.empty() && init.rank != config_.rank) {
    return Status::InvalidArgument("warm-start rank mismatch");
  }

  MfModel model;
  model.rank = config_.rank;
  model.lambda = config_.lambda;
  model.user_factors = init.user_factors;
  model.item_factors = init.item_factors;
  for (const Observation& obs : ratings) {
    if (model.user_factors.count(obs.uid) == 0) {
      model.user_factors[obs.uid] =
          InitFactor(config_.rank, config_.init_stddev, config_.seed, obs.uid);
    }
    if (model.item_factors.count(obs.item_id) == 0) {
      model.item_factors[obs.item_id] =
          InitFactor(config_.rank, config_.init_stddev, config_.seed ^ 0xabcdULL,
                     obs.item_id);
    }
  }

  Rng rng(config_.seed);
  std::vector<size_t> order(ratings.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  double lr = config_.learning_rate;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      const Observation& obs = ratings[idx];
      DenseVector& w = model.user_factors[obs.uid];
      DenseVector& x = model.item_factors[obs.item_id];
      double err = obs.label - Dot(w, x);
      // w += lr (err x − λ w); x += lr (err w − λ x), updated jointly.
      for (size_t k = 0; k < config_.rank; ++k) {
        double wk = w[k];
        double xk = x[k];
        w[k] += lr * (err * xk - config_.lambda * wk);
        x[k] += lr * (err * wk - config_.lambda * xk);
      }
    }
    lr *= config_.lr_decay;
  }
  return model;
}

}  // namespace velox
