// Prediction-quality metrics for the §4.2 accuracy experiment and the
// Evaluator's model monitoring.
#ifndef VELOX_ML_EVAL_METRICS_H_
#define VELOX_ML_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace velox {

struct PredictionPair {
  double label = 0.0;
  double predicted = 0.0;
};

double Rmse(const std::vector<PredictionPair>& pairs);
double Mae(const std::vector<PredictionPair>& pairs);

// ---- Ranking metrics (top-K recommendation quality) ----
// `ranked` is the system's recommendation list, best first;
// `relevant` the ground-truth relevant item set.

// |top-k of ranked ∩ relevant| / k. 0 when k == 0.
double PrecisionAtK(const std::vector<uint64_t>& ranked,
                    const std::vector<uint64_t>& relevant, size_t k);

// |top-k of ranked ∩ relevant| / |relevant|. 0 when relevant is empty.
double RecallAtK(const std::vector<uint64_t>& ranked,
                 const std::vector<uint64_t>& relevant, size_t k);

// Binary-relevance NDCG@k: DCG with 1/log2(rank+1) gains, normalized by
// the ideal ordering. 0 when relevant is empty or k == 0.
double NdcgAtK(const std::vector<uint64_t>& ranked,
               const std::vector<uint64_t>& relevant, size_t k);

// Relative improvement of `candidate` over `baseline` in percent:
// 100 * (baseline - candidate) / baseline. Positive = candidate better
// (lower error). This is how we report the paper's "1.6% improvement
// in prediction accuracy" (§4.2) — as error reduction.
double RelativeErrorReductionPercent(double baseline_error, double candidate_error);

// Streaming mean/variance (Welford) for running per-user error
// aggregates (§4.3).
class RunningStat {
 public:
  void Add(double x);
  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Exponentially weighted moving average — the drift-sensitive error
// signal the staleness detector compares against its baseline.
class Ewma {
 public:
  explicit Ewma(double alpha);
  void Add(double x);
  double value() const { return value_; }
  bool initialized() const { return initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace velox

#endif  // VELOX_ML_EVAL_METRICS_H_
