#include "ml/feature_function.h"

#include <algorithm>
#include <cmath>

#include "cluster/router.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace velox {

ItemFactorPlane::ItemFactorPlane(const std::unordered_map<uint64_t, DenseVector>& table,
                                 size_t dim)
    : dim_(dim), stride_((dim + 7) / 8 * 8) {
  item_ids_.reserve(table.size());
  for (const auto& [item_id, factor] : table) {
    if (factor.dim() != dim_) continue;
    item_ids_.push_back(item_id);
  }
  std::sort(item_ids_.begin(), item_ids_.end());
  data_.assign(item_ids_.size() * stride_, 0.0);
  fdata_.assign(item_ids_.size() * stride_, 0.0f);
  for (size_t r = 0; r < item_ids_.size(); ++r) {
    const DenseVector& factor = table.at(item_ids_[r]);
    std::copy(factor.data(), factor.data() + dim_, data_.begin() + r * stride_);
    double sq = 0.0;
    for (size_t c = 0; c < dim_; ++c) {
      double v = factor[c];
      if (!std::isfinite(v)) float_ok_ = false;
      fdata_[r * stride_ + c] = static_cast<float>(v);
      sq += v * v;
    }
    max_row_norm2_ = std::max(max_row_norm2_, std::sqrt(sq));
  }
}

MaterializedFeatureFunction::MaterializedFeatureFunction(
    std::shared_ptr<const FactorTable> table, size_t dim)
    : table_(std::move(table)), dim_(dim) {
  VELOX_CHECK(table_ != nullptr);
  plane_ = std::make_shared<const ItemFactorPlane>(*table_, dim_);
}

Result<DenseVector> MaterializedFeatureFunction::Features(const Item& x) const {
  auto it = table_->find(x.id);
  if (it == table_->end()) {
    return Status::NotFound(
        StrFormat("no materialized features for item %llu",
                  static_cast<unsigned long long>(x.id)));
  }
  return it->second;
}

IdentityFeatureFunction::IdentityFeatureFunction(size_t input_dim, bool add_bias)
    : input_dim_(input_dim), add_bias_(add_bias) {}

Result<DenseVector> IdentityFeatureFunction::Features(const Item& x) const {
  if (x.attributes.dim() != input_dim_) {
    return Status::InvalidArgument(
        StrFormat("identity feature: expected %zu attributes, got %zu", input_dim_,
                  x.attributes.dim()));
  }
  if (!add_bias_) return x.attributes;
  DenseVector out(input_dim_ + 1);
  for (size_t i = 0; i < input_dim_; ++i) out[i] = x.attributes[i];
  out[input_dim_] = 1.0;
  return out;
}

RbfFeatureFunction::RbfFeatureFunction(size_t input_dim, size_t num_centers,
                                       double gamma, uint64_t seed)
    : centers_(num_centers, input_dim), gamma_(gamma) {
  VELOX_CHECK_GT(gamma, 0.0);
  Rng rng(seed);
  for (size_t r = 0; r < num_centers; ++r) {
    for (size_t c = 0; c < input_dim; ++c) centers_.At(r, c) = rng.Gaussian();
  }
}

Result<DenseVector> RbfFeatureFunction::Features(const Item& x) const {
  if (x.attributes.dim() != centers_.cols()) {
    return Status::InvalidArgument(
        StrFormat("rbf feature: expected %zu attributes, got %zu", centers_.cols(),
                  x.attributes.dim()));
  }
  DenseVector out(centers_.rows());
  for (size_t k = 0; k < centers_.rows(); ++k) {
    const double* center = centers_.RowPtr(k);
    double sq = 0.0;
    for (size_t c = 0; c < centers_.cols(); ++c) {
      double diff = x.attributes[c] - center[c];
      sq += diff * diff;
    }
    out[k] = std::exp(-gamma_ * sq);
  }
  return out;
}

RandomFourierFeatureFunction::RandomFourierFeatureFunction(size_t input_dim,
                                                           size_t num_features,
                                                           double bandwidth,
                                                           uint64_t seed)
    : weights_(num_features, input_dim), offsets_(num_features) {
  VELOX_CHECK_GT(bandwidth, 0.0);
  Rng rng(seed);
  for (size_t r = 0; r < num_features; ++r) {
    for (size_t c = 0; c < input_dim; ++c) {
      weights_.At(r, c) = rng.Gaussian() / bandwidth;
    }
    offsets_[r] = rng.UniformDouble(0.0, 2.0 * M_PI);
  }
}

Result<DenseVector> RandomFourierFeatureFunction::Features(const Item& x) const {
  if (x.attributes.dim() != weights_.cols()) {
    return Status::InvalidArgument(
        StrFormat("random fourier feature: expected %zu attributes, got %zu",
                  weights_.cols(), x.attributes.dim()));
  }
  DenseVector out(weights_.rows());
  double scale = std::sqrt(2.0 / static_cast<double>(weights_.rows()));
  for (size_t k = 0; k < weights_.rows(); ++k) {
    const double* row = weights_.RowPtr(k);
    double s = offsets_[k];
    for (size_t c = 0; c < weights_.cols(); ++c) s += row[c] * x.attributes[c];
    out[k] = scale * std::cos(s);
  }
  return out;
}

PolynomialFeatureFunction::PolynomialFeatureFunction(size_t input_dim, bool add_bias)
    : input_dim_(input_dim), add_bias_(add_bias) {
  VELOX_CHECK_GT(input_dim, 0u);
}

size_t PolynomialFeatureFunction::dim() const {
  // x (n) + upper-triangular products (n(n+1)/2) + optional bias.
  return input_dim_ + input_dim_ * (input_dim_ + 1) / 2 + (add_bias_ ? 1 : 0);
}

Result<DenseVector> PolynomialFeatureFunction::Features(const Item& x) const {
  if (x.attributes.dim() != input_dim_) {
    return Status::InvalidArgument(
        StrFormat("polynomial feature: expected %zu attributes, got %zu", input_dim_,
                  x.attributes.dim()));
  }
  DenseVector out(dim());
  size_t k = 0;
  for (size_t i = 0; i < input_dim_; ++i) out[k++] = x.attributes[i];
  for (size_t i = 0; i < input_dim_; ++i) {
    for (size_t j = i; j < input_dim_; ++j) {
      out[k++] = x.attributes[i] * x.attributes[j];
    }
  }
  if (add_bias_) out[k++] = 1.0;
  return out;
}

NormalizingFeatureFunction::NormalizingFeatureFunction(
    std::shared_ptr<const FeatureFunction> inner, DenseVector shift, DenseVector scale)
    : inner_(std::move(inner)), shift_(std::move(shift)), scale_(std::move(scale)) {
  VELOX_CHECK(inner_ != nullptr);
  VELOX_CHECK_EQ(shift_.dim(), inner_->dim());
  VELOX_CHECK_EQ(scale_.dim(), inner_->dim());
  for (size_t i = 0; i < scale_.dim(); ++i) {
    VELOX_CHECK(std::isfinite(scale_[i]) && scale_[i] != 0.0)
        << "scale[" << i << "] must be finite and non-zero";
  }
}

Result<DenseVector> NormalizingFeatureFunction::Features(const Item& x) const {
  VELOX_ASSIGN_OR_RETURN(DenseVector f, inner_->Features(x));
  for (size_t i = 0; i < f.dim(); ++i) f[i] = (f[i] - shift_[i]) * scale_[i];
  return f;
}

HashingFeatureFunction::HashingFeatureFunction(size_t output_dim, uint64_t seed)
    : output_dim_(output_dim), seed_(seed) {
  VELOX_CHECK_GT(output_dim, 0u);
}

Result<DenseVector> HashingFeatureFunction::Features(const Item& x) const {
  DenseVector out(output_dim_);
  for (size_t i = 0; i < x.attributes.dim(); ++i) {
    double v = x.attributes[i];
    if (v == 0.0) continue;
    // Two independent hashes of the input index: bucket and sign.
    uint64_t h = HashPartitioner::MixHash(seed_ ^ (static_cast<uint64_t>(i) << 1));
    uint64_t s = HashPartitioner::MixHash(seed_ ^ ((static_cast<uint64_t>(i) << 1) | 1));
    size_t bucket = static_cast<size_t>(h % output_dim_);
    out[bucket] += (s & 1) != 0 ? v : -v;
  }
  return out;
}

SvmEnsembleFeatureFunction::SvmEnsembleFeatureFunction(size_t input_dim,
                                                       size_t num_svms, uint64_t seed)
    : weights_(num_svms, input_dim), biases_(num_svms) {
  Rng rng(seed);
  for (size_t r = 0; r < num_svms; ++r) {
    for (size_t c = 0; c < input_dim; ++c) weights_.At(r, c) = rng.Gaussian();
    biases_[r] = rng.Gaussian();
  }
}

SvmEnsembleFeatureFunction::SvmEnsembleFeatureFunction(DenseMatrix weights,
                                                       DenseVector biases)
    : weights_(std::move(weights)), biases_(std::move(biases)) {
  VELOX_CHECK_EQ(weights_.rows(), biases_.dim());
}

Result<DenseVector> SvmEnsembleFeatureFunction::Features(const Item& x) const {
  if (x.attributes.dim() != weights_.cols()) {
    return Status::InvalidArgument(
        StrFormat("svm ensemble feature: expected %zu attributes, got %zu",
                  weights_.cols(), x.attributes.dim()));
  }
  DenseVector out(weights_.rows());
  for (size_t k = 0; k < weights_.rows(); ++k) {
    const double* row = weights_.RowPtr(k);
    double margin = biases_[k];
    for (size_t c = 0; c < weights_.cols(); ++c) margin += row[c] * x.attributes[c];
    out[k] = std::tanh(margin);
  }
  return out;
}

}  // namespace velox
