#include "ml/loss.h"

#include <cmath>

#include "common/logging.h"

namespace velox {

double SquaredLoss::Loss(double label, double predicted) const {
  double e = label - predicted;
  return 0.5 * e * e;
}

double SquaredLoss::Gradient(double label, double predicted) const {
  return predicted - label;
}

double AbsoluteLoss::Loss(double label, double predicted) const {
  return std::abs(label - predicted);
}

double AbsoluteLoss::Gradient(double label, double predicted) const {
  if (predicted > label) return 1.0;
  if (predicted < label) return -1.0;
  return 0.0;
}

HuberLoss::HuberLoss(double delta) : delta_(delta) { VELOX_CHECK_GT(delta, 0.0); }

double HuberLoss::Loss(double label, double predicted) const {
  double e = std::abs(label - predicted);
  if (e <= delta_) return 0.5 * e * e;
  return delta_ * (e - 0.5 * delta_);
}

double HuberLoss::Gradient(double label, double predicted) const {
  double e = predicted - label;
  if (e > delta_) return delta_;
  if (e < -delta_) return -delta_;
  return e;
}

std::unique_ptr<LossFunction> MakeLoss(const std::string& name) {
  if (name == "squared") return std::make_unique<SquaredLoss>();
  if (name == "absolute") return std::make_unique<AbsoluteLoss>();
  if (name == "huber") return std::make_unique<HuberLoss>(1.0);
  return nullptr;
}

}  // namespace velox
