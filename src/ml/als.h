// Alternating least squares matrix factorization, expressed as a job
// on the batch-compute substrate — the offline training phase of the
// paper's running example (§2: matrix-factorization recommender
// trained periodically "using a large-scale cluster compute framework
// like Spark").
//
// Solves  argmin_{W,X}  λ(||W||² + ||X||²) + Σ_{(u,i)∈Obs} (r_ui − w_uᵀx_i)²
// by alternating ridge solves: fix X, solve every w_u; fix W, solve
// every x_i. Each half-iteration is one batch stage (users/items are
// independent given the other side).
#ifndef VELOX_ML_ALS_H_
#define VELOX_ML_ALS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "batch/executor.h"
#include "common/result.h"
#include "linalg/vector.h"
#include "storage/observation_log.h"

namespace velox {

using FactorMap = std::unordered_map<uint64_t, DenseVector>;

// The output of offline training: user factors W and item factors X
// (X doubles as the materialized feature table θ for serving).
struct MfModel {
  size_t rank = 0;
  double lambda = 0.0;
  FactorMap user_factors;
  FactorMap item_factors;

  // w_uᵀ x_i, or `fallback` when either side is unknown.
  double PredictOr(uint64_t uid, uint64_t item_id, double fallback) const;

  // Mean of all user factor vectors — the paper's new-user bootstrap
  // (§5 "Bootstrapping"). Zero vector if no users.
  DenseVector MeanUserFactor() const;
};

struct AlsConfig {
  size_t rank = 10;
  double lambda = 0.1;
  int iterations = 10;
  uint64_t seed = 42;
  // Stddev of the Gaussian factor initialization.
  double init_stddev = 0.1;
  // Partitions for the group-by stages.
  size_t num_partitions = 8;
  // ALS-WR (Zhou et al. 2008): scale each entity's regularizer by its
  // rating count (λ · n_u), so heavily-rated entities are not
  // under-regularized relative to sparse ones. Markedly better
  // held-out error on MovieLens-shaped data.
  bool weighted_regularization = false;
};

class AlsTrainer {
 public:
  explicit AlsTrainer(AlsConfig config);

  // Cold-start training: factors initialized from config.seed.
  Result<MfModel> Train(BatchExecutor* executor,
                        const std::vector<Observation>& ratings) const;

  // Warm-start: begins from `init` (the paper's retrain path "depends
  // on the current user weights", §4.2); entities absent from `init`
  // get fresh random factors.
  Result<MfModel> TrainWarmStart(BatchExecutor* executor,
                                 const std::vector<Observation>& ratings,
                                 const MfModel& init) const;

  const AlsConfig& config() const { return config_; }

 private:
  AlsConfig config_;
};

// Training-set RMSE of `model` on `ratings` (unknown entities predicted
// as 0).
double MfTrainRmse(const MfModel& model, const std::vector<Observation>& ratings);

// Deterministic per-entity factor init: depends only on (seed, id), not
// on data order.
DenseVector InitFactor(size_t rank, double stddev, uint64_t seed, uint64_t entity_id);

}  // namespace velox

#endif  // VELOX_ML_ALS_H_
