#include "ml/eval_metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace velox {

double Rmse(const std::vector<PredictionPair>& pairs) {
  if (pairs.empty()) return 0.0;
  double sq = 0.0;
  for (const auto& p : pairs) {
    double e = p.label - p.predicted;
    sq += e * e;
  }
  return std::sqrt(sq / static_cast<double>(pairs.size()));
}

double Mae(const std::vector<PredictionPair>& pairs) {
  if (pairs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : pairs) sum += std::abs(p.label - p.predicted);
  return sum / static_cast<double>(pairs.size());
}

namespace {

size_t HitsInTopK(const std::vector<uint64_t>& ranked,
                  const std::vector<uint64_t>& relevant, size_t k) {
  std::unordered_set<uint64_t> relevant_set(relevant.begin(), relevant.end());
  size_t hits = 0;
  for (size_t i = 0; i < ranked.size() && i < k; ++i) {
    if (relevant_set.count(ranked[i]) > 0) ++hits;
  }
  return hits;
}

}  // namespace

double PrecisionAtK(const std::vector<uint64_t>& ranked,
                    const std::vector<uint64_t>& relevant, size_t k) {
  if (k == 0) return 0.0;
  return static_cast<double>(HitsInTopK(ranked, relevant, k)) /
         static_cast<double>(k);
}

double RecallAtK(const std::vector<uint64_t>& ranked,
                 const std::vector<uint64_t>& relevant, size_t k) {
  if (relevant.empty()) return 0.0;
  return static_cast<double>(HitsInTopK(ranked, relevant, k)) /
         static_cast<double>(relevant.size());
}

double NdcgAtK(const std::vector<uint64_t>& ranked,
               const std::vector<uint64_t>& relevant, size_t k) {
  if (relevant.empty() || k == 0) return 0.0;
  std::unordered_set<uint64_t> relevant_set(relevant.begin(), relevant.end());
  double dcg = 0.0;
  for (size_t i = 0; i < ranked.size() && i < k; ++i) {
    if (relevant_set.count(ranked[i]) > 0) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  double ideal = 0.0;
  size_t ideal_hits = std::min(relevant.size(), k);
  for (size_t i = 0; i < ideal_hits; ++i) {
    ideal += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return ideal == 0.0 ? 0.0 : dcg / ideal;
}

double RelativeErrorReductionPercent(double baseline_error, double candidate_error) {
  if (baseline_error == 0.0) return 0.0;
  return 100.0 * (baseline_error - candidate_error) / baseline_error;
}

void RunningStat::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Ewma::Ewma(double alpha) : alpha_(alpha) {
  VELOX_CHECK_GT(alpha, 0.0);
  VELOX_CHECK_LE(alpha, 1.0);
}

void Ewma::Add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace velox
