// Stochastic gradient descent matrix factorization — the baseline
// trainer the paper's related work points at (Li et al., "Sparkler:
// supporting large-scale matrix factorization", §7). Included both as
// a comparison trainer and to exercise a second offline-training path
// through the batch substrate.
#ifndef VELOX_ML_SGD_H_
#define VELOX_ML_SGD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ml/als.h"
#include "storage/observation_log.h"

namespace velox {

struct SgdConfig {
  size_t rank = 10;
  double lambda = 0.05;
  double learning_rate = 0.01;
  // Multiplied into the learning rate after each epoch.
  double lr_decay = 0.95;
  int epochs = 20;
  uint64_t seed = 42;
  double init_stddev = 0.1;
};

class SgdTrainer {
 public:
  explicit SgdTrainer(SgdConfig config);

  // Sequential SGD over shuffled ratings (deterministic given seed).
  Result<MfModel> Train(const std::vector<Observation>& ratings) const;

  // Warm start: factors present in `init` seed the optimization;
  // entities absent from it get fresh random factors.
  Result<MfModel> TrainWarmStart(const std::vector<Observation>& ratings,
                                 const MfModel& init) const;

  const SgdConfig& config() const { return config_; }

 private:
  SgdConfig config_;
};

}  // namespace velox

#endif  // VELOX_ML_SGD_H_
