// Loss functions for model-quality evaluation and online updates.
// The paper's prototype restricts online learning to squared error
// with L2 regularization (§4.2); the loss is also the staleness signal
// (§4.3, §6: "the loss is evaluated every time new data is observed").
#ifndef VELOX_ML_LOSS_H_
#define VELOX_ML_LOSS_H_

#include <memory>
#include <string>

namespace velox {

class LossFunction {
 public:
  virtual ~LossFunction() = default;
  virtual std::string name() const = 0;
  // Pointwise loss of predicting `predicted` when the truth is `label`.
  virtual double Loss(double label, double predicted) const = 0;
  // d loss / d predicted.
  virtual double Gradient(double label, double predicted) const = 0;
};

// (y - yhat)^2 / 2.
class SquaredLoss final : public LossFunction {
 public:
  std::string name() const override { return "squared"; }
  double Loss(double label, double predicted) const override;
  double Gradient(double label, double predicted) const override;
};

// |y - yhat|.
class AbsoluteLoss final : public LossFunction {
 public:
  std::string name() const override { return "absolute"; }
  double Loss(double label, double predicted) const override;
  double Gradient(double label, double predicted) const override;
};

// Quadratic within `delta` of the label, linear beyond — robust to the
// occasional wild rating.
class HuberLoss final : public LossFunction {
 public:
  explicit HuberLoss(double delta);
  std::string name() const override { return "huber"; }
  double Loss(double label, double predicted) const override;
  double Gradient(double label, double predicted) const override;

 private:
  double delta_;
};

// Factory by name ("squared", "absolute", "huber"); nullptr if unknown.
std::unique_ptr<LossFunction> MakeLoss(const std::string& name);

}  // namespace velox

#endif  // VELOX_ML_LOSS_H_
