#include "ml/als.h"

#include <cmath>
#include <mutex>

#include "batch/dataset.h"
#include "cluster/router.h"
#include "common/logging.h"
#include "common/random.h"
#include "linalg/ridge.h"

namespace velox {

double MfModel::PredictOr(uint64_t uid, uint64_t item_id, double fallback) const {
  auto u = user_factors.find(uid);
  auto i = item_factors.find(item_id);
  if (u == user_factors.end() || i == item_factors.end()) return fallback;
  return Dot(u->second, i->second);
}

DenseVector MfModel::MeanUserFactor() const {
  DenseVector mean(rank);
  if (user_factors.empty()) return mean;
  for (const auto& [uid, w] : user_factors) mean.Axpy(1.0, w);
  mean.Scale(1.0 / static_cast<double>(user_factors.size()));
  return mean;
}

DenseVector InitFactor(size_t rank, double stddev, uint64_t seed, uint64_t entity_id) {
  Rng rng(seed ^ HashPartitioner::MixHash(entity_id));
  DenseVector v(rank);
  for (size_t k = 0; k < rank; ++k) v[k] = rng.Gaussian(0.0, stddev);
  return v;
}

AlsTrainer::AlsTrainer(AlsConfig config) : config_(config) {
  VELOX_CHECK_GT(config_.rank, 0u);
  VELOX_CHECK_GT(config_.lambda, 0.0);
  VELOX_CHECK_GT(config_.iterations, 0);
  VELOX_CHECK_GT(config_.num_partitions, 0u);
}

namespace {

// One ALS half-step: for every entity on the solving side, ridge-solve
// its factor against the `fixed` opposite-side factors. Groups are
// (entity_id, its ratings); `other_is_item` says which id of each
// rating indexes the fixed side.
Status SolveSide(BatchExecutor* executor,
               const Dataset<std::pair<uint64_t, std::vector<Observation>>>& groups,
               const FactorMap& fixed, size_t rank, double lambda,
               bool weighted_regularization, double init_stddev, uint64_t seed,
               bool other_is_item, FactorMap* out) {
  std::mutex out_mu;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(groups.num_partitions());
  for (size_t p = 0; p < groups.num_partitions(); ++p) {
    tasks.push_back([&, p] {
      FactorMap local;
      for (const auto& [entity_id, ratings] : groups.partition(p)) {
        RidgeAccumulator acc(rank);
        for (const Observation& obs : ratings) {
          uint64_t other = other_is_item ? obs.item_id : obs.uid;
          auto it = fixed.find(other);
          if (it != fixed.end()) {
            acc.AddExample(it->second, obs.label);
          } else {
            // The opposite side may be missing a factor in the first
            // iteration of a warm start with new entities; seed it
            // deterministically so both sides see the same value.
            acc.AddExample(InitFactor(rank, init_stddev, seed, other), obs.label);
          }
        }
        // ALS-WR: regularize proportionally to the entity's rating count.
        double reg = weighted_regularization
                         ? lambda * static_cast<double>(acc.num_examples())
                         : lambda;
        auto solved = acc.Solve(reg);
        if (solved.ok()) {
          local[entity_id] = std::move(solved).value();
        } else {
          // Singular system (shouldn't happen with lambda > 0): keep a
          // deterministic fallback rather than dropping the entity.
          local[entity_id] = InitFactor(rank, init_stddev, seed, entity_id);
        }
      }
      std::lock_guard<std::mutex> lock(out_mu);
      for (auto& [k, v] : local) (*out)[k] = std::move(v);
    });
  }
  return executor->RunStage(other_is_item ? "als-solve-users" : "als-solve-items",
                            std::move(tasks));
}

}  // namespace

Result<MfModel> AlsTrainer::Train(BatchExecutor* executor,
                                  const std::vector<Observation>& ratings) const {
  MfModel init;
  init.rank = config_.rank;
  init.lambda = config_.lambda;
  return TrainWarmStart(executor, ratings, init);
}

Result<MfModel> AlsTrainer::TrainWarmStart(BatchExecutor* executor,
                                           const std::vector<Observation>& ratings,
                                           const MfModel& init) const {
  if (executor == nullptr) return Status::InvalidArgument("executor is null");
  if (ratings.empty()) return Status::InvalidArgument("no training ratings");
  if (!init.user_factors.empty() && init.rank != config_.rank) {
    return Status::InvalidArgument("warm-start rank mismatch");
  }

  MfModel model;
  model.rank = config_.rank;
  model.lambda = config_.lambda;
  model.user_factors = init.user_factors;
  model.item_factors = init.item_factors;

  auto data = Dataset<Observation>::Parallelize(executor, ratings,
                                                config_.num_partitions);
  auto by_user = data.GroupBy<uint64_t>(
      [](const Observation& o) { return o.uid; });
  auto by_item = data.GroupBy<uint64_t>(
      [](const Observation& o) { return o.item_id; });

  // Ensure every item has an initial factor so the first user solve has
  // a complete fixed side.
  for (size_t p = 0; p < by_item.num_partitions(); ++p) {
    for (const auto& [item_id, group] : by_item.partition(p)) {
      if (model.item_factors.count(item_id) == 0) {
        model.item_factors[item_id] =
            InitFactor(config_.rank, config_.init_stddev, config_.seed, item_id);
      }
    }
  }

  for (int iter = 0; iter < config_.iterations; ++iter) {
    FactorMap new_users;
    VELOX_RETURN_NOT_OK(SolveSide(executor, by_user, model.item_factors,
                                  config_.rank, config_.lambda,
                                  config_.weighted_regularization,
                                  config_.init_stddev, config_.seed,
                                  /*other_is_item=*/true, &new_users));
    model.user_factors = std::move(new_users);

    FactorMap new_items;
    VELOX_RETURN_NOT_OK(SolveSide(executor, by_item, model.user_factors,
                                  config_.rank, config_.lambda,
                                  config_.weighted_regularization,
                                  config_.init_stddev, config_.seed,
                                  /*other_is_item=*/false, &new_items));
    model.item_factors = std::move(new_items);
  }
  return model;
}

double MfTrainRmse(const MfModel& model, const std::vector<Observation>& ratings) {
  if (ratings.empty()) return 0.0;
  double sq = 0.0;
  for (const Observation& obs : ratings) {
    double e = obs.label - model.PredictOr(obs.uid, obs.item_id, 0.0);
    sq += e * e;
  }
  return std::sqrt(sq / static_cast<double>(ratings.size()));
}

}  // namespace velox
