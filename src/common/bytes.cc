#include "common/bytes.h"

namespace velox {

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::PutDoubleVector(const std::vector<double>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (double d : v) PutDouble(d);
}

void ByteWriter::PutBytes(const std::vector<uint8_t>& b) {
  PutU64(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

Status ByteReader::Need(size_t n) const {
  if (pos_ + n > size_) {
    return Status::OutOfRange("byte buffer underflow");
  }
  return Status::OK();
}

Result<uint8_t> ByteReader::GetU8() {
  VELOX_RETURN_NOT_OK(Need(1));
  return data_[pos_++];
}

Result<uint32_t> ByteReader::GetU32() {
  VELOX_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  VELOX_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> ByteReader::GetI64() {
  VELOX_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::GetDouble() {
  VELOX_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> ByteReader::GetString() {
  VELOX_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  VELOX_RETURN_NOT_OK(Need(len));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Result<std::vector<double>> ByteReader::GetDoubleVector() {
  VELOX_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  // Each double occupies 8 bytes; validate before allocating.
  VELOX_RETURN_NOT_OK(Need(static_cast<size_t>(len) * 8));
  std::vector<double> v;
  v.reserve(len);
  for (uint32_t i = 0; i < len; ++i) {
    VELOX_ASSIGN_OR_RETURN(double d, GetDouble());
    v.push_back(d);
  }
  return v;
}

Result<std::vector<uint8_t>> ByteReader::GetBytes() {
  VELOX_ASSIGN_OR_RETURN(uint64_t len, GetU64());
  if (len > remaining()) {
    return Status::OutOfRange("byte buffer underflow");
  }
  std::vector<uint8_t> b(data_ + pos_, data_ + pos_ + len);
  pos_ += static_cast<size_t>(len);
  return b;
}

uint32_t Crc32(const uint8_t* data, size_t size) {
  // Table generated on first use from the reflected polynomial.
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace velox
