// Per-request stage tracing for the serving and update hot paths.
//
// A request-scoped StageTimer accumulates elapsed microseconds per
// pipeline stage on the stack (no allocation, no locks, no clock reads
// when tracing is disabled) and flushes once, at end of request, into a
// StageRegistry — one bounded log-bucketed Histogram per stage. Each
// node owns a registry; VeloxServer merges the per-node HistogramData
// into one cluster-wide breakdown (Clipper-style latency attribution:
// where do the p99 microseconds actually go — caches, feature
// resolution, kernels, the solver, or the WAL?).
#ifndef VELOX_COMMON_STAGE_TRACE_H_
#define VELOX_COMMON_STAGE_TRACE_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/histogram.h"

namespace velox {

// The serving/update pipeline stages. Keep in sync with StageName().
enum class Stage : int {
  kUserWeightLookup = 0,   // per-user weight fetch (incl. bootstrap)
  kPredictionCacheProbe,   // prediction-cache lookup
  kFeatureResolveLocal,    // f(x, θ): cache hit or node-local compute
  kFeatureResolveRemote,   // f(x, θ): fetched from a remote node
  kKernelScore,            // dot products / plane scans
  kBanditOrder,            // bandit policy ranking
  kOnlineSolve,            // per-observation weight update
  kPersist,                // observation WAL append + weight write
  kStorageBackoff,         // simulated retry/hedge waits on storage ops
  kDegradedServe,          // fallback answer after feature resolution failed
  kAnnCandidateProbe,      // IVF centroid ranking + inverted-list gather
  kAnnRescore,             // exact double rescore of ANN candidates
  kQueueWait,              // dispatch-queue residency before a worker ran it
  kAdmission,              // rate-limit + queue admission decision
  kShed,                   // degraded fast-path answer for a shed request
  kRecoveryReplay,         // snapshot restore + WAL replay at (re)start
  kDriftCheck,             // per-item drift merge + refresh-set selection
  kIncrementalSolve,       // frozen-basis re-solve of drifted item factors
  kBatchForm,              // cross-request batch formation (drain + linger)
  kBatchExecute,           // grouped batch execution through the frontend
};

inline constexpr int kNumStages = 20;

// Short stable identifier used in metrics names and JSON keys.
const char* StageName(Stage stage);

// Per-node sink: one histogram of per-request microseconds per stage.
class StageRegistry {
 public:
  StageRegistry() = default;

  void Record(Stage stage, double micros) {
    histograms_[static_cast<size_t>(stage)].Record(micros);
  }

  HistogramData Data(Stage stage) const {
    return histograms_[static_cast<size_t>(stage)].Data();
  }
  HistogramSnapshot Snapshot(Stage stage) const {
    return histograms_[static_cast<size_t>(stage)].Snapshot();
  }

  void ResetStats() {
    for (auto& h : histograms_) h.ResetStats();
  }

 private:
  std::array<Histogram, kNumStages> histograms_;
};

// Stack-allocated per-request accumulator. Usage:
//
//   StageTimer timer(stage_registry_);       // null registry => no-op
//   { StageTimer::Scope s(timer, Stage::kKernelScore); ... }
//   timer.Add(Stage::kPersist, micros);      // for hand-measured spans
//   // flushes to the registry on destruction
//
// A stage touched multiple times in one request (e.g. feature resolve
// per candidate in TopK) contributes its total to a single histogram
// sample, so stage histograms stay per-request like the frontend's
// end-to-end latency histogram.
class StageTimer {
 public:
  explicit StageTimer(StageRegistry* registry) : registry_(registry) {
    micros_.fill(0.0);
  }
  ~StageTimer() { Flush(); }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  bool enabled() const { return registry_ != nullptr; }

  void Add(Stage stage, double micros) {
    if (registry_ == nullptr) return;
    micros_[static_cast<size_t>(stage)] += micros;
    touched_[static_cast<size_t>(stage)] = true;
  }

  // Flushes accumulated totals (once; destruction flushes remainder).
  void Flush() {
    if (registry_ == nullptr) return;
    for (size_t i = 0; i < micros_.size(); ++i) {
      if (touched_[i]) registry_->Record(static_cast<Stage>(i), micros_[i]);
      touched_[i] = false;
      micros_[i] = 0.0;
    }
  }

  // RAII span: measures wall time into `stage` of `timer`. Reads the
  // clock only when the timer is enabled.
  class Scope {
   public:
    Scope(StageTimer& timer, Stage stage) : timer_(timer), stage_(stage) {
      if (timer_.enabled()) start_nanos_ = SteadyClock::Default()->NowNanos();
    }
    ~Scope() { Stop(); }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    // Ends the span early; later Stop() calls are no-ops. `stage`
    // overrides the charged stage (used when the span's classification
    // is only known at the end, e.g. local vs. remote feature fetch).
    void Stop() { Stop(stage_); }
    void Stop(Stage stage) {
      if (stopped_) return;
      stopped_ = true;
      if (!timer_.enabled()) return;
      const int64_t elapsed = SteadyClock::Default()->NowNanos() - start_nanos_;
      timer_.Add(stage, static_cast<double>(elapsed) / 1e3);
    }

   private:
    StageTimer& timer_;
    Stage stage_;
    int64_t start_nanos_ = 0;
    bool stopped_ = false;
  };

 private:
  StageRegistry* registry_;
  std::array<double, kNumStages> micros_;
  std::array<bool, kNumStages> touched_{};
};

}  // namespace velox

#endif  // VELOX_COMMON_STAGE_TRACE_H_
