// Sharded LRU cache template, the engine behind the Feature Cache and
// Prediction Cache in the Velox predictor (paper §5 "Caching": "caching
// the hot items on each machine using a simple cache eviction strategy
// like LRU will tend to have a high hit rate").
//
// Sharding bounds lock contention under concurrent serving threads;
// hit/miss/eviction counters are atomics readable without locks.
#ifndef VELOX_COMMON_LRU_H_
#define VELOX_COMMON_LRU_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace velox {

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  uint64_t entries = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  // `capacity` is the total entry budget split across shards. The
  // remainder is distributed one entry at a time (the first
  // capacity % num_shards shards hold one extra) so the shard budgets
  // sum to exactly `capacity` — rounding every shard up would let the
  // cache hold up to num_shards-1 entries over budget.
  explicit LruCache(size_t capacity, size_t num_shards = 8) {
    VELOX_CHECK_GT(capacity, 0u);
    if (num_shards == 0) num_shards = 1;
    if (num_shards > capacity) num_shards = capacity;
    size_t base = capacity / num_shards;
    size_t remainder = capacity % num_shards;
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(base + (i < remainder ? 1 : 0)));
    }
  }

  // Returns the cached value or nullopt; promotes on hit.
  std::optional<V> Get(const K& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return it->second->second;
  }

  // Inserts or overwrites; evicts the shard's LRU entry when full.
  void Put(const K& key, V value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return;
    }
    if (shard.index.size() >= shard.capacity) {
      auto& victim = shard.order.back();
      shard.index.erase(victim.first);
      shard.order.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.order.emplace_front(key, std::move(value));
    shard.index[key] = shard.order.begin();
  }

  // Removes one key if present; returns whether it was present.
  bool Erase(const K& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.order.erase(it->second);
    shard.index.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Drops every entry (model-version swap invalidation path).
  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      invalidations_.fetch_add(shard->index.size(), std::memory_order_relaxed);
      shard->index.clear();
      shard->order.clear();
    }
  }

  // Snapshot of the most-recently-used keys, up to `limit` per shard.
  // Used to compute the warm set to precompute during offline retrain
  // (paper §4.2: the batch job recomputes "all predictions and feature
  // transformations that were cached at the time").
  std::vector<K> HotKeys(size_t limit_per_shard) const {
    std::vector<K> keys;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      size_t taken = 0;
      for (const auto& [k, v] : shard->order) {
        if (taken++ >= limit_per_shard) break;
        keys.push_back(k);
      }
    }
    return keys;
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->index.size();
    }
    return total;
  }

  CacheStats stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.invalidations = invalidations_.load(std::memory_order_relaxed);
    s.entries = size();
    return s;
  }

  void ResetStats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    invalidations_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Shard {
    explicit Shard(size_t cap) : capacity(cap) {}
    mutable std::mutex mu;
    size_t capacity;
    std::list<std::pair<K, V>> order;  // front = most recent
    std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash> index;
  };

  Shard& ShardFor(const K& key) {
    size_t h = Hash{}(key);
    // Mix so that low-entropy hashes (e.g., identity for ints) spread.
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return *shards_[h % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace velox

#endif  // VELOX_COMMON_LRU_H_
