#include "common/status.h"

namespace velox {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) {
    rep_ = std::make_unique<Rep>(*other.rep_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out.append(": ");
  out.append(rep_->message);
  return out;
}

}  // namespace velox
