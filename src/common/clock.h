// Clock abstraction: wall/steady time for real measurements, plus a
// manually-advanced SimulatedClock used by the simulated cluster
// (cluster/network.h) so the routing/locality experiments charge
// network latency to a logical clock deterministically.
#ifndef VELOX_COMMON_CLOCK_H_
#define VELOX_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace velox {

class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic nanoseconds since an arbitrary epoch.
  virtual int64_t NowNanos() const = 0;

  // Advances the clock by `nanos` (no-op for real clocks, which advance
  // on their own).
  virtual void AdvanceNanos(int64_t nanos) = 0;
};

// Real monotonic clock backed by std::chrono::steady_clock.
class SteadyClock : public Clock {
 public:
  int64_t NowNanos() const override;
  void AdvanceNanos(int64_t nanos) override;  // no-op

  // Process-wide instance.
  static SteadyClock* Default();
};

// Logical clock advanced explicitly; thread-safe.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(int64_t start_nanos = 0) : now_nanos_(start_nanos) {}

  int64_t NowNanos() const override {
    return now_nanos_.load(std::memory_order_relaxed);
  }
  void AdvanceNanos(int64_t nanos) override {
    now_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }
  void SetNanos(int64_t nanos) {
    now_nanos_.store(nanos, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_nanos_;
};

// RAII stopwatch measuring elapsed wall time on a SteadyClock.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart();
  int64_t ElapsedNanos() const;
  double ElapsedMicros() const { return static_cast<double>(ElapsedNanos()) / 1e3; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedNanos()) / 1e6; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) / 1e9; }

 private:
  int64_t start_nanos_ = 0;
};

}  // namespace velox

#endif  // VELOX_COMMON_CLOCK_H_
