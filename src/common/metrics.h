// Lightweight metrics: named counters, gauges, and histograms grouped
// in a registry. The model manager's Evaluator and the caches publish
// their statistics here so operators (and the benchmark harnesses) can
// inspect a consistent snapshot.
#ifndef VELOX_COMMON_METRICS_H_
#define VELOX_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/histogram.h"

namespace velox {

class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Owns named metric instances; pointers returned remain valid for the
// registry's lifetime. Thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Multi-line "name value" dump, sorted by name.
  std::string Report() const;

  // Process-wide default registry.
  static MetricsRegistry* Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace velox

#endif  // VELOX_COMMON_METRICS_H_
