#include "common/random.h"

#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace velox {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  // xoshiro256++
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t n) {
  VELOX_CHECK_GT(n, 0u);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < n) {
    uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  VELOX_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 random bits scaled to [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0, 1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  VELOX_CHECK_GE(n, k);
  VELOX_CHECK_GE(k, 0);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(k));
  if (k > n / 2) {
    // Dense regime: partial Fisher-Yates over the full index range.
    std::vector<int64_t> idx(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
    for (int64_t i = 0; i < k; ++i) {
      int64_t j = UniformInt(i, n - 1);
      std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
      out.push_back(idx[static_cast<size_t>(i)]);
    }
  } else {
    // Sparse regime: rejection sampling into a hash set.
    std::unordered_set<int64_t> seen;
    seen.reserve(static_cast<size_t>(k) * 2);
    while (static_cast<int64_t>(out.size()) < k) {
      int64_t candidate = static_cast<int64_t>(UniformU64(static_cast<uint64_t>(n)));
      if (seen.insert(candidate).second) out.push_back(candidate);
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextU64()); }

ZipfDistribution::ZipfDistribution(int64_t n, double exponent)
    : n_(n), exponent_(exponent) {
  VELOX_CHECK_GT(n, 0);
  VELOX_CHECK_GE(exponent, 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -exponent_));
}

// H(x) = integral of 1/t^exponent, handled continuously across
// exponent == 1 where the integral is log(x).
double ZipfDistribution::H(double x) const {
  if (std::abs(exponent_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - exponent_) - 1.0) / (1.0 - exponent_);
}

double ZipfDistribution::HInverse(double x) const {
  if (std::abs(exponent_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - exponent_), 1.0 / (1.0 - exponent_));
}

int64_t ZipfDistribution::Sample(Rng* rng) const {
  if (exponent_ == 0.0) {
    return static_cast<int64_t>(rng->UniformU64(static_cast<uint64_t>(n_)));
  }
  // Rejection-inversion: ranks are 1-based internally, returned 0-based.
  while (true) {
    double u = h_n_ + rng->UniformDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    int64_t k = static_cast<int64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -exponent_)) {
      return k - 1;
    }
  }
}

}  // namespace velox
