// Small string helpers used across modules (parsing the MovieLens file
// format, config files, and formatting benchmark tables).
#ifndef VELOX_COMMON_STRING_UTIL_H_
#define VELOX_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace velox {

// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> StrSplit(std::string_view input, char delim);

// Splits on a multi-character separator (e.g., MovieLens "::").
std::vector<std::string> StrSplit(std::string_view input, std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

bool StartsWith(std::string_view s, std::string_view prefix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

// Joins with `sep` between elements.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

// Human-readable quantity, e.g. 1234567 -> "1.23M".
std::string HumanCount(double v);

}  // namespace velox

#endif  // VELOX_COMMON_STRING_UTIL_H_
