// Bounded top-K selection under the serving scan's total order.
//
// Every top-K path in the system — the generic candidate scorer, the
// exact plane scans (serial, sharded, mixed-precision), and the ANN
// candidate/rescore stages — ranks with the same comparator: higher
// score first, ties broken by smaller id. Sharing the comparator and
// the bounded worst-at-top heap here is what makes their outputs agree
// bit-for-bit: any two paths that score an item identically place it
// identically.
#ifndef VELOX_COMMON_TOPK_HEAP_H_
#define VELOX_COMMON_TOPK_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace velox {

// One scored entry during a scan. `id` is an item id in serving paths
// and a plane row index in ANN shortlist selection — the comparator
// only needs it to be a stable total-order tie-break.
struct TopKEntry {
  double score = 0.0;
  uint64_t id = 0;
};

// The scan's total ranking order: higher score first, ties broken by
// smaller id. Deterministic regardless of visit order.
inline bool BetterTopKEntry(const TopKEntry& a, const TopKEntry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

// Bounded "worst of the current best k at the front" heap: O(log k)
// per accepted offer, O(1) per rejected one, O(k) space.
class BoundedTopK {
 public:
  explicit BoundedTopK(size_t k) : k_(k) { entries_.reserve(k); }

  void Offer(double score, uint64_t id) {
    TopKEntry e{score, id};
    if (entries_.size() < k_) {
      entries_.push_back(e);
      std::push_heap(entries_.begin(), entries_.end(), BetterTopKEntry);
      return;
    }
    if (!BetterTopKEntry(e, entries_.front())) return;
    std::pop_heap(entries_.begin(), entries_.end(), BetterTopKEntry);
    entries_.back() = e;
    std::push_heap(entries_.begin(), entries_.end(), BetterTopKEntry);
  }

  // Consumes the heap, returning entries best-first.
  std::vector<TopKEntry> TakeSorted() {
    std::sort(entries_.begin(), entries_.end(), BetterTopKEntry);
    return std::move(entries_);
  }

  bool Full() const { return entries_.size() >= k_; }
  // Worst score currently kept; only meaningful when Full().
  double Worst() const { return entries_.front().score; }

  std::vector<TopKEntry>& entries() { return entries_; }

 private:
  size_t k_;
  std::vector<TopKEntry> entries_;
};

}  // namespace velox

#endif  // VELOX_COMMON_TOPK_HEAP_H_
