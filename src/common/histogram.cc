#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

namespace velox {

namespace {

inline uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline double DoubleOf(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Atomic add for doubles via CAS (portable pre-C++20 fetch_add).
inline void AtomicAdd(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

inline void AtomicMin(std::atomic<uint64_t>& target_bits, double v) {
  uint64_t cur = target_bits.load(std::memory_order_relaxed);
  while (v < DoubleOf(cur) &&
         !target_bits.compare_exchange_weak(cur, BitsOf(v), std::memory_order_relaxed)) {
  }
}

inline void AtomicMax(std::atomic<uint64_t>& target_bits, double v) {
  uint64_t cur = target_bits.load(std::memory_order_relaxed);
  while (v > DoubleOf(cur) &&
         !target_bits.compare_exchange_weak(cur, BitsOf(v), std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string HistogramSnapshot::ToString() const {
  std::ostringstream os;
  os << "count=" << count << " mean=" << mean << " +/-" << ci95_halfwidth
     << " p50=" << p50 << " p95=" << p95 << " p99=" << p99 << " min=" << min
     << " max=" << max;
  return os.str();
}

// ---------------------------------------------------------------------------
// Bucket geometry.
// ---------------------------------------------------------------------------

size_t Histogram::BucketIndex(double value) {
  // NaN, zero, negatives, and subnormal-range values fall into the
  // underflow bucket; its representative is the recorded min.
  if (!(value > 0.0)) return 0;
  const uint64_t bits = BitsOf(value);
  const int biased_exp = static_cast<int>((bits >> 52) & 0x7FF);
  if (biased_exp == 0) return 0;  // subnormal
  const int exp = biased_exp - 1023;
  if (exp < kMinExponent) return 0;
  if (exp >= kMaxExponent) return kNumBuckets - 1;
  // Top kSubBucketBits mantissa bits pick the log-spaced sub-bucket
  // inside the octave [2^exp, 2^(exp+1)).
  const size_t sub = static_cast<size_t>((bits >> (52 - kSubBucketBits)) &
                                         static_cast<uint64_t>(kSubBuckets - 1));
  return 1 + static_cast<size_t>(exp - kMinExponent) * kSubBuckets + sub;
}

double Histogram::BucketValue(size_t index) {
  if (index == 0) return 0.0;
  if (index >= kNumBuckets) index = kNumBuckets - 1;
  const size_t linear = index - 1;
  const int exp = kMinExponent + static_cast<int>(linear / kSubBuckets);
  const double sub = static_cast<double>(linear % kSubBuckets);
  const double lower = std::ldexp(1.0 + sub / kSubBuckets, exp);
  const double upper = std::ldexp(1.0 + (sub + 1.0) / kSubBuckets, exp);
  return std::sqrt(lower * upper);  // geometric midpoint: min relative error
}

// ---------------------------------------------------------------------------
// HistogramData.
// ---------------------------------------------------------------------------

void HistogramData::Merge(const HistogramData& other) {
  if (other.count_ == 0) return;
  if (buckets_.size() < other.buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  min_ = (count_ == 0) ? other.min_ : std::min(min_, other.min_);
  max_ = (count_ == 0) ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
}

double HistogramData::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const uint64_t needed = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= needed) {
      const double v = Histogram::BucketValue(i);
      return std::min(max_, std::max(min_, v));
    }
  }
  return max_;
}

HistogramSnapshot HistogramData::Summarize() const {
  HistogramSnapshot snap;
  snap.count = count_;
  if (count_ == 0) return snap;
  const double n = static_cast<double>(count_);
  snap.mean = sum_ / n;
  if (count_ > 1) {
    // Sample variance from the sum of squares; clamp the subtraction's
    // floating-point noise at zero.
    const double var = std::max(0.0, (sum_squares_ - n * snap.mean * snap.mean) / (n - 1.0));
    snap.stddev = std::sqrt(var);
  }
  snap.min = min_;
  snap.max = max_;
  snap.p50 = Quantile(0.50);
  snap.p95 = Quantile(0.95);
  snap.p99 = Quantile(0.99);
  snap.ci95_halfwidth = 1.96 * snap.stddev / std::sqrt(n);
  return snap;
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

Histogram::Histogram() : stripes_(kNumStripes) {
  for (auto& stripe : stripes_) {
    stripe.buckets.reset(new std::atomic<uint64_t>[kNumBuckets]);
    for (size_t i = 0; i < kNumBuckets; ++i) {
      stripe.buckets[i].store(0, std::memory_order_relaxed);
    }
    stripe.min_bits.store(BitsOf(std::numeric_limits<double>::infinity()),
                          std::memory_order_relaxed);
    stripe.max_bits.store(BitsOf(-std::numeric_limits<double>::infinity()),
                          std::memory_order_relaxed);
  }
}

Histogram::Histogram(Histogram&& other) noexcept : stripes_(std::move(other.stripes_)) {}

Histogram::Stripe& Histogram::StripeForThisThread() {
  static std::atomic<size_t> next_stripe{0};
  thread_local const size_t idx =
      next_stripe.fetch_add(1, std::memory_order_relaxed) % kNumStripes;
  return stripes_[idx];
}

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  Stripe& stripe = StripeForThisThread();
  stripe.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(stripe.sum, value);
  AtomicAdd(stripe.sum_squares, value * value);
  AtomicMin(stripe.min_bits, value);
  AtomicMax(stripe.max_bits, value);
}

void Histogram::Clear() {
  for (auto& stripe : stripes_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      stripe.buckets[i].store(0, std::memory_order_relaxed);
    }
    stripe.count.store(0, std::memory_order_relaxed);
    stripe.sum.store(0.0, std::memory_order_relaxed);
    stripe.sum_squares.store(0.0, std::memory_order_relaxed);
    stripe.min_bits.store(BitsOf(std::numeric_limits<double>::infinity()),
                          std::memory_order_relaxed);
    stripe.max_bits.store(BitsOf(-std::numeric_limits<double>::infinity()),
                          std::memory_order_relaxed);
  }
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& stripe : stripes_) total += stripe.count.load(std::memory_order_relaxed);
  return total;
}

HistogramData Histogram::Data() const {
  HistogramData data;
  data.buckets_.assign(kNumBuckets, 0);
  double min_v = std::numeric_limits<double>::infinity();
  double max_v = -std::numeric_limits<double>::infinity();
  for (const auto& stripe : stripes_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      data.buckets_[i] += stripe.buckets[i].load(std::memory_order_relaxed);
    }
    data.count_ += stripe.count.load(std::memory_order_relaxed);
    data.sum_ += stripe.sum.load(std::memory_order_relaxed);
    data.sum_squares_ += stripe.sum_squares.load(std::memory_order_relaxed);
    min_v = std::min(min_v, DoubleOf(stripe.min_bits.load(std::memory_order_relaxed)));
    max_v = std::max(max_v, DoubleOf(stripe.max_bits.load(std::memory_order_relaxed)));
  }
  data.min_ = std::isfinite(min_v) ? min_v : 0.0;
  data.max_ = std::isfinite(max_v) ? max_v : 0.0;
  return data;
}

}  // namespace velox
