#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace velox {

namespace {

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  double rank = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

std::string HistogramSnapshot::ToString() const {
  std::ostringstream os;
  os << "count=" << count << " mean=" << mean << " +/-" << ci95_halfwidth
     << " p50=" << p50 << " p95=" << p95 << " p99=" << p99 << " min=" << min
     << " max=" << max;
  return os.str();
}

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  values_.push_back(value);
}

void Histogram::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  values_.clear();
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_.size();
}

HistogramSnapshot Histogram::Snapshot() const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = values_;
  }
  HistogramSnapshot snap;
  snap.count = sorted.size();
  if (sorted.empty()) return snap;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double v : sorted) sum += v;
  snap.mean = sum / static_cast<double>(sorted.size());
  double sq = 0.0;
  for (double v : sorted) sq += (v - snap.mean) * (v - snap.mean);
  snap.stddev = sorted.size() > 1
                    ? std::sqrt(sq / static_cast<double>(sorted.size() - 1))
                    : 0.0;
  snap.min = sorted.front();
  snap.max = sorted.back();
  snap.p50 = PercentileOfSorted(sorted, 0.50);
  snap.p95 = PercentileOfSorted(sorted, 0.95);
  snap.p99 = PercentileOfSorted(sorted, 0.99);
  snap.ci95_halfwidth =
      1.96 * snap.stddev / std::sqrt(static_cast<double>(sorted.size()));
  return snap;
}

}  // namespace velox
