// Latency histogram with mean, percentiles, and 95% confidence
// intervals — the statistics the paper's Figures 3 and 4 report
// ("averaged over 5000 updates ... error bars represent 95% confidence
// intervals").
#ifndef VELOX_COMMON_HISTOGRAM_H_
#define VELOX_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace velox {

// Summary statistics of a recorded sample set.
struct HistogramSnapshot {
  uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  // Half-width of the 95% confidence interval of the mean
  // (1.96 * stddev / sqrt(count)).
  double ci95_halfwidth = 0.0;

  std::string ToString() const;
};

// Records raw values (e.g., latencies in microseconds). Thread-safe.
// Keeps every sample: the evaluation sample counts here (<= a few
// hundred thousand) make exact percentiles affordable.
class Histogram {
 public:
  Histogram() = default;

  void Record(double value);
  void Clear();

  HistogramSnapshot Snapshot() const;
  uint64_t count() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> values_;
};

}  // namespace velox

#endif  // VELOX_COMMON_HISTOGRAM_H_
