// Latency histogram with mean, percentiles, and 95% confidence
// intervals — the statistics the paper's Figures 3 and 4 report
// ("averaged over 5000 updates ... error bars represent 95% confidence
// intervals").
//
// HDR-style implementation: values land in fixed log-spaced buckets
// (64 sub-buckets per power of two, so any reported quantile is within
// ~0.8% relative error of the exact sample quantile), counted by
// striped atomic counters. Record() is lock-free, allocation-free, and
// O(1); memory is O(buckets) regardless of how many samples are
// recorded — the properties the serving hot path needs at
// millions-of-requests scale. Exact count/sum/min/max are tracked on
// the side, so mean, stddev and the CI are sample-exact; only the
// percentiles are bucket-quantized.
#ifndef VELOX_COMMON_HISTOGRAM_H_
#define VELOX_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace velox {

// Summary statistics of a recorded sample set.
struct HistogramSnapshot {
  uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  // Half-width of the 95% confidence interval of the mean
  // (1.96 * stddev / sqrt(count)).
  double ci95_halfwidth = 0.0;

  std::string ToString() const;
};

// A consistent, mergeable copy of a histogram's state: the bucket
// counts plus the exact side statistics. Snapshots taken on different
// nodes merge losslessly (bucket counts add), which is how VeloxServer
// aggregates per-node stage latencies into one cluster view.
class HistogramData {
 public:
  HistogramData() = default;

  // Folds `other` in: the result summarizes the union of both sample
  // sets (bucket counts are exact; sum/sumsq addition is the only
  // floating-point reassociation).
  void Merge(const HistogramData& other);

  // Quantile estimate in [0, 1], clamped to the exact [min, max].
  double Quantile(double q) const;

  // Full summary (mean/stddev/CI exact, percentiles bucket-quantized).
  HistogramSnapshot Summarize() const;

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  friend class Histogram;

  uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_squares_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  // Dense bucket counts; empty until the first merge/record (an empty
  // vector means "no samples" and merges as such).
  std::vector<uint64_t> buckets_;
};

// Records nonnegative values (e.g., latencies in microseconds).
// Thread-safe; Record() takes no lock and performs no allocation.
class Histogram {
 public:
  // Bucket geometry: 64 log-spaced sub-buckets per power of two,
  // covering [2^kMinExponent, 2^kMaxExponent). In microseconds that is
  // ~0.001 us to ~5.5e11 us (~6 days) — everything outside clamps to
  // the edge buckets. 0.78% worst-case relative quantization error.
  static constexpr int kSubBucketBits = 6;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kMinExponent = -10;
  static constexpr int kMaxExponent = 40;
  // +1 for the underflow bucket (zero, negatives, subnormal tails).
  static constexpr size_t kNumBuckets =
      1 + static_cast<size_t>(kMaxExponent - kMinExponent) * kSubBuckets;

  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;
  // Movable so containers of histograms (bench code) keep working.
  // Not safe against concurrent Record on the moved-from instance.
  Histogram(Histogram&& other) noexcept;

  // Lock-free, allocation-free hot path. NaN is ignored.
  void Record(double value);

  // Zeroes all buckets and statistics. Safe against concurrent
  // Record(): a racing sample may land wholly before or after the
  // clear, never as a torn half-counted state that violates
  // count >= any bucket sum invariants by more than the in-flight
  // samples themselves.
  void Clear();
  void ResetStats() { Clear(); }

  // Consistent-enough copy for reporting (concurrent Records may or
  // may not be included; no torn buckets).
  HistogramData Data() const;
  HistogramSnapshot Snapshot() const { return Data().Summarize(); }
  uint64_t count() const;

  // Bucket index for a value (underflow bucket 0 for v <= smallest
  // tracked; the last bucket absorbs overflow).
  static size_t BucketIndex(double value);
  // Representative value (geometric midpoint of the bucket's bounds).
  static double BucketValue(size_t index);

 private:
  // A stripe owns a full bucket array plus side statistics; threads
  // hash to stripes so concurrent Record()s rarely contend on the same
  // cache lines. Snapshot folds all stripes.
  struct Stripe {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> sum_squares{0.0};
    // Stored as bit-cast doubles updated by CAS-min/max.
    std::atomic<uint64_t> min_bits;
    std::atomic<uint64_t> max_bits;
  };

  static constexpr size_t kNumStripes = 4;

  Stripe& StripeForThisThread();

  std::vector<Stripe> stripes_;
};

}  // namespace velox

#endif  // VELOX_COMMON_HISTOGRAM_H_
