// Deterministic random number generation.
//
// Every stochastic component in velox (synthetic data, workloads,
// bandit policies, ALS initialization) takes an explicit seed so that
// tests and benchmark tables are reproducible run-to-run.
//
// Rng is xoshiro256++ seeded via SplitMix64. ZipfDistribution samples a
// power-law item-popularity distribution (paper §5: "item popularity
// often follows a Zipfian distribution") using rejection-inversion
// (Hörmann & Derflinger 1996), O(1) per sample for any exponent.
#ifndef VELOX_COMMON_RANDOM_H_
#define VELOX_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace velox {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 random bits.
  uint64_t NextU64();

  // Uniform integer in [0, n); n must be > 0.
  uint64_t UniformU64(uint64_t n);
  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Uniform double in [0, 1).
  double UniformDouble();
  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);
  // Standard normal via Box-Muller (cached second deviate).
  double Gaussian();
  double Gaussian(double mean, double stddev);
  // Bernoulli(p).
  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformU64(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // Samples k distinct indices from [0, n) (k <= n), unsorted.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  // Derives an independent child generator (for per-partition streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Zipfian distribution over {0, 1, ..., n-1} with P(k) proportional to
// 1 / (k+1)^exponent. exponent == 0 degenerates to uniform.
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t n, double exponent);

  int64_t Sample(Rng* rng) const;

  int64_t n() const { return n_; }
  double exponent() const { return exponent_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  int64_t n_;
  double exponent_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace velox

#endif  // VELOX_COMMON_RANDOM_H_
