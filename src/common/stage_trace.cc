#include "common/stage_trace.h"

namespace velox {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kUserWeightLookup:
      return "user_weight_lookup";
    case Stage::kPredictionCacheProbe:
      return "prediction_cache_probe";
    case Stage::kFeatureResolveLocal:
      return "feature_resolve_local";
    case Stage::kFeatureResolveRemote:
      return "feature_resolve_remote";
    case Stage::kKernelScore:
      return "kernel_score";
    case Stage::kBanditOrder:
      return "bandit_order";
    case Stage::kOnlineSolve:
      return "online_solve";
    case Stage::kPersist:
      return "persist";
    case Stage::kStorageBackoff:
      return "storage_backoff";
    case Stage::kDegradedServe:
      return "degraded_serve";
    case Stage::kAnnCandidateProbe:
      return "ann_candidate_probe";
    case Stage::kAnnRescore:
      return "ann_rescore";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kAdmission:
      return "admission";
    case Stage::kShed:
      return "shed";
    case Stage::kRecoveryReplay:
      return "recovery_replay";
    case Stage::kDriftCheck:
      return "drift_check";
    case Stage::kIncrementalSolve:
      return "incremental_solve";
    case Stage::kBatchForm:
      return "batch_form";
    case Stage::kBatchExecute:
      return "batch_execute";
  }
  return "unknown";
}

}  // namespace velox
