// Status: error handling without exceptions (RocksDB/Arrow idiom).
//
// Every fallible operation in velox returns either a Status or a
// Result<T> (see common/result.h). Status is cheap to copy in the OK
// case (no allocation) and carries a code plus a human-readable message
// otherwise.
#ifndef VELOX_COMMON_STATUS_H_
#define VELOX_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace velox {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnavailable = 6,
  kAborted = 7,
  kInternal = 8,
  kUnimplemented = 9,
  kIoError = 10,
};

// Returns a stable, human-readable name ("OK", "NotFound", ...).
std::string_view StatusCodeToString(StatusCode code);

class Status {
 public:
  // Default-constructed Status is OK.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }
  // Message text; empty for OK.
  std::string_view message() const {
    return rep_ == nullptr ? std::string_view() : std::string_view(rep_->message);
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const { return code() == StatusCode::kFailedPrecondition; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; this keeps the common path allocation-free.
  std::unique_ptr<Rep> rep_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

// Propagates a non-OK Status to the caller.
#define VELOX_RETURN_NOT_OK(expr)                   \
  do {                                              \
    ::velox::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (false)

}  // namespace velox

#endif  // VELOX_COMMON_STATUS_H_
