// Result<T>: a value or a non-OK Status (Arrow's arrow::Result idiom).
//
// Usage:
//   Result<Model> LoadModel(...);
//   auto r = LoadModel(...);
//   if (!r.ok()) return r.status();
//   Model m = std::move(r).value();
#ifndef VELOX_COMMON_RESULT_H_
#define VELOX_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/status.h"

namespace velox {

template <typename T>
class Result {
 public:
  // Implicit conversions from T and Status make `return value;` and
  // `return Status::NotFound(...);` both work, mirroring arrow::Result.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status)                         // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    // An OK status carries no value; normalize to an Internal error so
    // the invariant "ok() implies value present" always holds.
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status without a value");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  // Requires ok(). The &&-qualified overload enables `std::move(r).value()`.
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::move(std::get<T>(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<Status, T> repr_;
};

// Assigns the value of a Result expression to `lhs`, or returns its
// error Status from the enclosing function.
#define VELOX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define VELOX_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define VELOX_ASSIGN_OR_RETURN_NAME(a, b) VELOX_ASSIGN_OR_RETURN_CONCAT(a, b)
#define VELOX_ASSIGN_OR_RETURN(lhs, expr) \
  VELOX_ASSIGN_OR_RETURN_IMPL(            \
      VELOX_ASSIGN_OR_RETURN_NAME(_velox_result_, __LINE__), lhs, expr)

}  // namespace velox

#endif  // VELOX_COMMON_RESULT_H_
