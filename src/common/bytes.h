// Byte-level serialization used by the storage layer (table values,
// observation-log records) and model snapshots. Fixed-width
// little-endian encoding; readers validate bounds and return Status
// rather than crashing on corrupt input.
#ifndef VELOX_COMMON_BYTES_H_
#define VELOX_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace velox {

// Append-only encoder.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutString(std::string_view s);           // length-prefixed
  void PutDoubleVector(const std::vector<double>& v);
  void PutBytes(const std::vector<uint8_t>& b);  // u64-length-prefixed

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

// Bounds-checked decoder over a borrowed buffer.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<std::vector<double>> GetDoubleVector();
  Result<std::vector<uint8_t>> GetBytes();

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Need(size_t n) const;

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte buffer —
// integrity checksum for write-ahead-log records and snapshots.
uint32_t Crc32(const uint8_t* data, size_t size);
inline uint32_t Crc32(const std::vector<uint8_t>& buf) {
  return Crc32(buf.data(), buf.size());
}

}  // namespace velox

#endif  // VELOX_COMMON_BYTES_H_
