#include "common/config.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace velox {

Result<Config> Config::FromString(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    size_t eq = stripped.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("config line %d: missing '='", line_no));
    }
    std::string key(StripWhitespace(stripped.substr(0, eq)));
    std::string value(StripWhitespace(stripped.substr(eq + 1)));
    if (key.empty()) {
      return Status::InvalidArgument(StrFormat("config line %d: empty key", line_no));
    }
    cfg.entries_[key] = value;
  }
  return cfg;
}

Result<Config> Config::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromString(buf.str());
}

void Config::Set(const std::string& key, const std::string& value) {
  entries_[key] = value;
}

bool Config::Has(const std::string& key) const { return entries_.count(key) > 0; }

std::string Config::GetString(const std::string& key,
                              const std::string& fallback) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? fallback : it->second;
}

int64_t Config::GetInt(const std::string& key, int64_t fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  auto r = ParseInt64(it->second);
  return r.ok() ? r.value() : fallback;
}

double Config::GetDouble(const std::string& key, double fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  auto r = ParseDouble(it->second);
  return r.ok() ? r.value() : fallback;
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return fallback;
}

Result<int64_t> Config::GetIntOrError(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return Status::NotFound("missing config key: " + key);
  return ParseInt64(it->second);
}

Result<double> Config::GetDoubleOrError(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return Status::NotFound("missing config key: " + key);
  return ParseDouble(it->second);
}

}  // namespace velox
