#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace velox {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// Serializes writes so concurrent log lines do not interleave.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

char LevelChar(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kFatal:
      return 'F';
  }
  return '?';
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetMinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << LevelChar(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace velox
