#include "common/metrics.h"

#include <sstream>

namespace velox {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << name << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << name << " " << gauge->value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    os << name << " " << histogram->Snapshot().ToString() << "\n";
  }
  return os.str();
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace velox
