// Simple "key = value" configuration with '#' comments, used to
// parameterize examples and benchmark harnesses from files or strings.
#ifndef VELOX_COMMON_CONFIG_H_
#define VELOX_COMMON_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"

namespace velox {

class Config {
 public:
  Config() = default;

  // Parses "key = value" lines; '#' starts a comment; blank lines
  // ignored. Later duplicate keys override earlier ones.
  static Result<Config> FromString(const std::string& text);
  static Result<Config> FromFile(const std::string& path);

  void Set(const std::string& key, const std::string& value);

  bool Has(const std::string& key) const;
  // Typed getters return `fallback` when the key is absent; a present
  // but malformed value is an error surfaced via GetStatus-style
  // Result getters below.
  std::string GetString(const std::string& key, const std::string& fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  Result<int64_t> GetIntOrError(const std::string& key) const;
  Result<double> GetDoubleOrError(const std::string& key) const;

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace velox

#endif  // VELOX_COMMON_CONFIG_H_
