#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace velox {

std::vector<std::string> StrSplit(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view input, std::string_view sep) {
  std::vector<std::string> out;
  if (sep.empty()) {
    out.emplace_back(input);
    return out;
  }
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + sep.size();
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(StripWhitespace(s));
  if (buf.empty()) return Status::InvalidArgument("empty integer string");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(StripWhitespace(s));
  if (buf.empty()) return Status::InvalidArgument("empty double string");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("double out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: " + buf);
  }
  return v;
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string HumanCount(double v) {
  const char* suffix = "";
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "K";
  }
  return StrFormat("%.2f%s", v, suffix);
}

}  // namespace velox
