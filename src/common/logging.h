// Minimal leveled logging plus CHECK macros.
//
// VELOX_LOG(INFO) << "loaded " << n << " ratings";
// VELOX_CHECK(ptr != nullptr) << "null model";
//
// Log output goes to stderr. The minimum level is process-wide and can
// be raised to silence benchmarks (SetMinLogLevel). CHECK failures
// abort the process (there are no exceptions in this codebase).
#ifndef VELOX_COMMON_LOGGING_H_
#define VELOX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

#include "common/status.h"

namespace velox {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Sets the process-wide minimum level; messages below it are dropped.
void SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  // Flushes the message; aborts if level is kFatal.
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the log level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define VELOX_LOG_LEVEL_DEBUG ::velox::LogLevel::kDebug
#define VELOX_LOG_LEVEL_INFO ::velox::LogLevel::kInfo
#define VELOX_LOG_LEVEL_WARNING ::velox::LogLevel::kWarning
#define VELOX_LOG_LEVEL_ERROR ::velox::LogLevel::kError
#define VELOX_LOG_LEVEL_FATAL ::velox::LogLevel::kFatal

#define VELOX_LOG(severity)                                          \
  if (VELOX_LOG_LEVEL_##severity < ::velox::GetMinLogLevel())        \
    ;                                                                \
  else                                                               \
    ::velox::internal::LogMessage(VELOX_LOG_LEVEL_##severity,        \
                                  __FILE__, __LINE__)                \
        .stream()

// CHECK: always on, aborts on failure.
#define VELOX_CHECK(condition)                                        \
  if (condition)                                                      \
    ;                                                                 \
  else                                                                \
    ::velox::internal::LogMessage(::velox::LogLevel::kFatal,          \
                                  __FILE__, __LINE__)                 \
            .stream()                                                 \
        << "Check failed: " #condition " "

#define VELOX_CHECK_EQ(a, b) VELOX_CHECK((a) == (b))
#define VELOX_CHECK_NE(a, b) VELOX_CHECK((a) != (b))
#define VELOX_CHECK_LT(a, b) VELOX_CHECK((a) < (b))
#define VELOX_CHECK_LE(a, b) VELOX_CHECK((a) <= (b))
#define VELOX_CHECK_GT(a, b) VELOX_CHECK((a) > (b))
#define VELOX_CHECK_GE(a, b) VELOX_CHECK((a) >= (b))
#define VELOX_CHECK_OK(expr)                        \
  do {                                              \
    ::velox::Status _st = (expr);                   \
    VELOX_CHECK(_st.ok()) << _st.ToString();        \
  } while (false)

#define VELOX_DCHECK(condition) VELOX_CHECK(condition)

}  // namespace velox

#endif  // VELOX_COMMON_LOGGING_H_
