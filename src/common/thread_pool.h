// Fixed-size thread pool used by the serving frontend (core/frontend.h)
// and the batch-compute executor (batch/executor.h).
#ifndef VELOX_COMMON_THREAD_POOL_H_
#define VELOX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace velox {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  // Drains pending work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Must not be called after Shutdown().
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  // Stops accepting work, drains the queue, joins workers. Idempotent.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }
  // Tasks submitted over the pool's lifetime.
  uint64_t tasks_submitted() const;
  uint64_t tasks_completed() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_workers_ = 0;
  uint64_t tasks_submitted_ = 0;
  uint64_t tasks_completed_ = 0;
  bool shutting_down_ = false;
};

// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
// Falls back to inline execution when pool is nullptr.
void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn);

}  // namespace velox

#endif  // VELOX_COMMON_THREAD_POOL_H_
