// Fixed-size thread pool used by the serving frontend (core/frontend.h),
// the server plane's dispatcher (server/dispatcher.h), and the
// batch-compute executor (batch/executor.h).
//
// Crash-safety contract (the server plane depends on all three):
//  * Submit() after Shutdown() began returns false instead of aborting,
//    so a serving thread racing a pool teardown gets a rejection it can
//    handle, not a process death.
//  * An exception escaping a task is caught at the worker loop (counted
//    in task_failures()) instead of reaching std::terminate; one bad
//    request cannot take down every request.
//  * ParallelFor() surfaces task exceptions as a Status and falls back
//    to inline execution when the pool rejects work mid-shutdown, so it
//    always completes every index or reports why it could not.
#ifndef VELOX_COMMON_THREAD_POOL_H_
#define VELOX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace velox {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  // Drains pending work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Returns false — and does not run `task` — once
  // Shutdown() has begun (racing submitters see a clean rejection, not
  // an abort).
  [[nodiscard]] bool Submit(std::function<void()> task);

  // Blocks until the queue is empty and all workers are idle. A task is
  // popped and marked active under one lock acquisition (WorkerLoop),
  // so there is no window where a task is in flight while both the
  // queue and the active count read as idle.
  void WaitIdle();

  // Stops accepting work, drains the queue, joins workers. Idempotent.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }
  // Tasks accepted over the pool's lifetime (rejected submits excluded).
  uint64_t tasks_submitted() const;
  uint64_t tasks_completed() const;
  // Tasks whose body threw; the exception was swallowed at the worker
  // loop. Failed tasks also count as completed.
  uint64_t task_failures() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_workers_ = 0;
  uint64_t tasks_submitted_ = 0;
  uint64_t tasks_completed_ = 0;
  uint64_t task_failures_ = 0;
  bool shutting_down_ = false;
};

// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
// Falls back to inline execution when pool is nullptr, and runs a
// range inline if the pool rejects it (shutdown race) — every index is
// attempted exactly once either way. If any invocation throws, the
// remaining indices of that range are skipped and the first error comes
// back as an Internal Status; other ranges still run to completion.
[[nodiscard]] Status ParallelFor(ThreadPool* pool, size_t n,
                                 const std::function<void(size_t)>& fn);

}  // namespace velox

#endif  // VELOX_COMMON_THREAD_POOL_H_
