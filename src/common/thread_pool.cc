#include "common/thread_pool.h"

#include <atomic>
#include <exception>

#include "common/logging.h"

namespace velox {

namespace {

// Human-readable description of the in-flight exception (for Status
// messages and worker-loop logging).
std::string CurrentExceptionMessage() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
    ++tasks_submitted_;
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_workers_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

uint64_t ThreadPool::tasks_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_submitted_;
}

uint64_t ThreadPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_completed_;
}

uint64_t ThreadPool::task_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return task_failures_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ and drained: exit.
        return;
      }
      // Pop and activate under one lock acquisition: WaitIdle's
      // "queue empty && no active workers" predicate can never observe
      // an in-flight task as idle.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_workers_;
    }
    bool failed = false;
    try {
      task();
    } catch (...) {
      // A throwing task must not reach std::terminate and take the
      // whole server with it. Swallow, count, log.
      failed = true;
      VELOX_LOG(WARNING) << "thread pool task threw: " << CurrentExceptionMessage();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
      ++tasks_completed_;
      if (failed) ++task_failures_;
      if (queue_.empty() && active_workers_ == 0) idle_.notify_all();
    }
  }
}

Status ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn) {
  // Shared capture of the first task exception across ranges.
  std::mutex err_mu;
  Status first_error;
  auto run_range = [&](size_t begin, size_t end) {
    size_t i = begin;
    try {
      for (; i < end; ++i) fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (first_error.ok()) {
        first_error = Status::Internal("ParallelFor task threw at index " +
                                       std::to_string(i) + ": " +
                                       CurrentExceptionMessage());
      }
    }
  };

  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    run_range(0, n);
    return first_error;
  }
  // Submit one contiguous range per worker instead of one closure per
  // index: small-body loops would otherwise drown in queue/mutex
  // overhead (one Submit + two lock acquisitions per index).
  size_t num_tasks = std::min(n, pool->num_threads());
  size_t base = n / num_tasks;
  size_t extra = n % num_tasks;  // first `extra` tasks take one more
  std::atomic<size_t> remaining{num_tasks};
  std::mutex mu;
  std::condition_variable done;
  size_t begin = 0;
  for (size_t t = 0; t < num_tasks; ++t) {
    size_t end = begin + base + (t < extra ? 1 : 0);
    bool accepted = pool->Submit([&, begin, end] {
      run_range(begin, end);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        done.notify_all();
      }
    });
    if (!accepted) {
      // Pool is shutting down: run the range on the caller so the loop
      // still covers every index (and the wait below can terminate).
      run_range(begin, end);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        done.notify_all();
      }
    }
    begin = end;
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining.load() == 0; });
  std::lock_guard<std::mutex> err_lock(err_mu);
  return first_error;
}

}  // namespace velox
