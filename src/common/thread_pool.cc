#include "common/thread_pool.h"

#include <atomic>

#include "common/logging.h"

namespace velox {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    VELOX_CHECK(!shutting_down_) << "Submit after Shutdown";
    queue_.push_back(std::move(task));
    ++tasks_submitted_;
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_workers_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

uint64_t ThreadPool::tasks_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_submitted_;
}

uint64_t ThreadPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_completed_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ and drained: exit.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_workers_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
      ++tasks_completed_;
      if (queue_.empty() && active_workers_ == 0) idle_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Submit one contiguous range per worker instead of one closure per
  // index: small-body loops would otherwise drown in queue/mutex
  // overhead (one Submit + two lock acquisitions per index).
  size_t num_tasks = std::min(n, pool->num_threads());
  size_t base = n / num_tasks;
  size_t extra = n % num_tasks;  // first `extra` tasks take one more
  std::atomic<size_t> remaining{num_tasks};
  std::mutex mu;
  std::condition_variable done;
  size_t begin = 0;
  for (size_t t = 0; t < num_tasks; ++t) {
    size_t end = begin + base + (t < extra ? 1 : 0);
    pool->Submit([&, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        done.notify_all();
      }
    });
    begin = end;
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining.load() == 0; });
}

}  // namespace velox
