#include "common/clock.h"

#include <chrono>

namespace velox {

int64_t SteadyClock::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SteadyClock::AdvanceNanos(int64_t /*nanos*/) {}

SteadyClock* SteadyClock::Default() {
  static SteadyClock* clock = new SteadyClock();
  return clock;
}

void Stopwatch::Restart() { start_nanos_ = SteadyClock::Default()->NowNanos(); }

int64_t Stopwatch::ElapsedNanos() const {
  return SteadyClock::Default()->NowNanos() - start_nanos_;
}

}  // namespace velox
