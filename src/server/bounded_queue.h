// BoundedQueue<T>: the per-stage admission boundary of the server
// plane. Producers TryPush (non-blocking, refused when full — the
// caller sheds instead of queueing unboundedly); consumers Pop
// (blocking until work or close). Capacity 0 disables the bound — the
// "no admission control" baseline the serving_load bench compares
// against.
//
// A popped item is tracked as in flight *inside the queue*, under the
// same lock acquisition as the pop, so WaitDrained() cannot observe an
// empty queue while a worker still holds an item (the same
// pop-to-active discipline ThreadPool::WaitIdle uses).
#ifndef VELOX_SERVER_BOUNDED_QUEUE_H_
#define VELOX_SERVER_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace velox {

template <typename T>
class BoundedQueue {
 public:
  // capacity 0 = unbounded.
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Enqueues unless the queue is full or closed. Never blocks: a full
  // queue is a shed signal, not a wait. On refusal `item` is untouched
  // (the rvalue reference binds without moving), so the caller can
  // still answer the request it carries.
  bool TryPush(T&& item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    if (capacity_ != 0 && queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(item));
    if (queue_.size() > peak_depth_) peak_depth_ = queue_.size();
    work_available_.notify_one();
    return true;
  }

  // Blocks until an item is available (true) or the queue is closed and
  // empty (false). The popped item counts as in flight until the caller
  // invokes MarkDone().
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    work_available_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    return true;
  }

  // Non-blocking batch pop: drains up to `max` items in one lock
  // acquisition, appending to `*out`. Every popped item counts as in
  // flight until the caller invokes MarkDone() once per item. Returns
  // the number of items popped (0 when the queue is empty or max is 0).
  size_t TryPopMany(std::vector<T>* out, size_t max) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t popped = 0;
    while (popped < max && !queue_.empty()) {
      out->push_back(std::move(queue_.front()));
      queue_.pop_front();
      ++in_flight_;
      ++popped;
    }
    return popped;
  }

  // Batch-formation drain: pops up to `max` items, waiting at most
  // `linger_nanos` (total) for stragglers to arrive while fewer than
  // `max` are in hand. Unlike Pop this never blocks indefinitely — a
  // worker that already holds a batch's first task calls this to gather
  // the rest, and the linger bound guarantees a lone request is never
  // held hostage to batch formation. linger_nanos <= 0 takes only what
  // is queued right now. Popped items count as in flight until
  // MarkDone() is called once per item. Returns the number popped.
  size_t PopManyFor(std::vector<T>* out, size_t max, int64_t linger_nanos) {
    if (max == 0) return 0;
    std::unique_lock<std::mutex> lock(mu_);
    size_t popped = 0;
    auto drain = [&] {
      while (popped < max && !queue_.empty()) {
        out->push_back(std::move(queue_.front()));
        queue_.pop_front();
        ++in_flight_;
        ++popped;
      }
    };
    drain();
    if (linger_nanos > 0 && popped < max && !closed_) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::nanoseconds(linger_nanos);
      while (popped < max && !closed_) {
        if (!work_available_.wait_until(lock, deadline, [this] {
              return closed_ || !queue_.empty();
            })) {
          break;  // linger expired
        }
        drain();
      }
    }
    return popped;
  }

  // Consumer finished processing a popped item.
  void MarkDone() {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) drained_.notify_all();
  }

  // Blocks until the queue is empty and no popped item is still being
  // processed.
  void WaitDrained() {
    std::unique_lock<std::mutex> lock(mu_);
    drained_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }

  // Rejects future pushes and wakes blocked poppers once the backlog is
  // consumed. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    work_available_.notify_all();
    if (queue_.empty() && in_flight_ == 0) drained_.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }
  // Deepest backlog ever observed — the bench's bounded-vs-unbounded
  // growth evidence.
  size_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_depth_;
  }
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable drained_;
  std::deque<T> queue_;
  size_t in_flight_ = 0;
  size_t peak_depth_ = 0;
  bool closed_ = false;
};

}  // namespace velox

#endif  // VELOX_SERVER_BOUNDED_QUEUE_H_
