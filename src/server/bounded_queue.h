// BoundedQueue<T>: the per-stage admission boundary of the server
// plane. Producers TryPush (non-blocking, refused when full — the
// caller sheds instead of queueing unboundedly); consumers Pop
// (blocking until work or close). Capacity 0 disables the bound — the
// "no admission control" baseline the serving_load bench compares
// against.
//
// A popped item is tracked as in flight *inside the queue*, under the
// same lock acquisition as the pop, so WaitDrained() cannot observe an
// empty queue while a worker still holds an item (the same
// pop-to-active discipline ThreadPool::WaitIdle uses).
#ifndef VELOX_SERVER_BOUNDED_QUEUE_H_
#define VELOX_SERVER_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace velox {

template <typename T>
class BoundedQueue {
 public:
  // capacity 0 = unbounded.
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Enqueues unless the queue is full or closed. Never blocks: a full
  // queue is a shed signal, not a wait. On refusal `item` is untouched
  // (the rvalue reference binds without moving), so the caller can
  // still answer the request it carries.
  bool TryPush(T&& item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    if (capacity_ != 0 && queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(item));
    if (queue_.size() > peak_depth_) peak_depth_ = queue_.size();
    work_available_.notify_one();
    return true;
  }

  // Blocks until an item is available (true) or the queue is closed and
  // empty (false). The popped item counts as in flight until the caller
  // invokes MarkDone().
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    work_available_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    return true;
  }

  // Consumer finished processing a popped item.
  void MarkDone() {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) drained_.notify_all();
  }

  // Blocks until the queue is empty and no popped item is still being
  // processed.
  void WaitDrained() {
    std::unique_lock<std::mutex> lock(mu_);
    drained_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }

  // Rejects future pushes and wakes blocked poppers once the backlog is
  // consumed. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    work_available_.notify_all();
    if (queue_.empty() && in_flight_ == 0) drained_.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }
  // Deepest backlog ever observed — the bench's bounded-vs-unbounded
  // growth evidence.
  size_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_depth_;
  }
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable drained_;
  std::deque<T> queue_;
  size_t in_flight_ = 0;
  size_t peak_depth_ = 0;
  bool closed_ = false;
};

}  // namespace velox

#endif  // VELOX_SERVER_BOUNDED_QUEUE_H_
