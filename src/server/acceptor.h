// RequestAcceptor — the server plane's public face. Composes the whole
// admitted-request pipeline in front of a VeloxFrontend:
//
//   SubmitAt ──► AdmissionController (per-tenant token buckets)
//                  │ admitted                       │ shed
//                  ▼                                ▼
//              RequestDispatcher              degraded fast path
//              (bounded read/write lanes,     (VeloxServer::Degraded*,
//               worker pools, kQueueWait)      the PR-3 ladder: stale
//                  │                           score → bootstrap mean,
//                  ▼                           flagged shed/degraded)
//              VeloxFrontend::Handle
//
// Every submitted request is answered exactly once — admitted, shed, or
// rejected at teardown — so availability is 100% by construction; what
// overload costs is answer *quality* (degraded scores, dropped observe
// updates), never an unbounded queue. Latency of served requests stays
// bounded past saturation because excess arrivals shed in O(1) instead
// of queueing; the serving_load bench plots exactly this against the
// unbounded baseline.
#ifndef VELOX_SERVER_ACCEPTOR_H_
#define VELOX_SERVER_ACCEPTOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/stage_trace.h"
#include "core/frontend.h"
#include "server/admission.h"
#include "server/dispatcher.h"

namespace velox {

struct AcceptorOptions {
  AdmissionOptions admission;
  DispatcherOptions dispatcher;
};

class RequestAcceptor {
 public:
  // `frontend` is borrowed and must outlive the acceptor. `clock`
  // (borrowed, may be null = steady clock) feeds the token buckets.
  RequestAcceptor(AcceptorOptions options, VeloxFrontend* frontend,
                  Clock* clock = nullptr);
  ~RequestAcceptor();

  RequestAcceptor(const RequestAcceptor&) = delete;
  RequestAcceptor& operator=(const RequestAcceptor&) = delete;

  // Submits with arrival = now.
  void Submit(Request request, std::function<void(FrontendResponse)> done);

  // Open-loop submission: `arrival_nanos` is the request's *scheduled*
  // arrival on the load generator's timeline, so end-to-end latency
  // measured from it includes any sender-side stall (the
  // coordinated-omission correction; EXPERIMENTS.md A13). `done` runs
  // on a worker thread (admitted) or inline (shed / teardown) — exactly
  // once either way.
  void SubmitAt(Request request, int64_t arrival_nanos,
                std::function<void(FrontendResponse)> done);

  // Waits until every admitted request has completed. Stop offering
  // load first.
  void Drain();
  // Closes the lanes and joins the workers. Submissions afterwards are
  // still answered — inline, off the degraded fast path — so the
  // exactly-once callback guarantee survives teardown. Idempotent.
  void Stop();

  AdmissionController* admission() { return &admission_; }
  RequestDispatcher* dispatcher() { return &dispatcher_; }
  StageRegistry* plane_stages() { return &plane_stages_; }

  uint64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  uint64_t shed_total() const { return admission_.shed_total(); }

  // Cluster view of one stage: the wrapped server's per-node registries
  // merged with the plane's own (queue_wait / admission / shed).
  HistogramData StageData(Stage stage) const;
  // JSON breakdown over the merged view — the bench's `stage_breakdown`
  // section, now including the plane stages.
  std::string StageBreakdownJson() const;

  // Publishes server.* gauges (queue depths and peaks, accepted/shed
  // counters, served-latency percentiles) plus the frontend's and
  // server's full metric sets into `registry` (nullptr = scratch) and
  // returns the textual report.
  std::string MetricsReport(MetricsRegistry* registry = nullptr) const;

  // Human-readable plane summary (the shell's `server` command).
  std::string Report() const;

 private:
  // Answers a shed request off the degradation ladder, inline on the
  // submitting thread — O(1), no storage I/O, no queueing.
  void ShedAnswer(const Request& request, int64_t arrival_nanos,
                  const std::function<void(FrontendResponse)>& done);

  AcceptorOptions options_;
  VeloxFrontend* frontend_;
  Clock* clock_;
  AdmissionController admission_;
  // The plane's own stage sink (queue_wait, admission, shed); node
  // registries keep the per-request pipeline stages.
  StageRegistry plane_stages_;
  RequestDispatcher dispatcher_;
  std::atomic<uint64_t> accepted_{0};
  // End-to-end latency of *served* (admitted) requests, micros from
  // arrival; shed answers land in shed_latency_.
  Histogram served_latency_;
  Histogram shed_latency_;
};

}  // namespace velox

#endif  // VELOX_SERVER_ACCEPTOR_H_
