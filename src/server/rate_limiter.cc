#include "server/rate_limiter.h"

#include <algorithm>

namespace velox {

TenantRateLimiter::TenantRateLimiter(TenantRateLimiterOptions options, Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : SteadyClock::Default()) {}

void TenantRateLimiter::SetLimit(uint64_t tenant, double rate_per_sec, double burst) {
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = buckets_[tenant];
  b.rate_per_sec = rate_per_sec;
  b.burst = burst;
  b.tokens = burst;
  b.last_refill_nanos = clock_->NowNanos();
}

bool TenantRateLimiter::Admit(uint64_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    if (options_.default_rate_per_sec <= 0.0) {
      // Unlimited default: don't even materialize a bucket.
      ++admitted_;
      return true;
    }
    Bucket b;
    b.rate_per_sec = options_.default_rate_per_sec;
    b.burst = options_.default_burst;
    b.tokens = b.burst;
    b.last_refill_nanos = clock_->NowNanos();
    it = buckets_.emplace(tenant, b).first;
  }
  Bucket& b = it->second;
  if (b.rate_per_sec <= 0.0) {
    ++admitted_;
    return true;
  }
  const int64_t now = clock_->NowNanos();
  const double elapsed_sec =
      static_cast<double>(now - b.last_refill_nanos) / 1e9;
  if (elapsed_sec > 0.0) {
    b.tokens = std::min(b.burst, b.tokens + elapsed_sec * b.rate_per_sec);
    b.last_refill_nanos = now;
  }
  if (b.tokens < 1.0) {
    ++rejected_;
    return false;
  }
  b.tokens -= 1.0;
  ++admitted_;
  return true;
}

uint64_t TenantRateLimiter::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t TenantRateLimiter::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

}  // namespace velox
