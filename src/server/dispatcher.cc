#include "server/dispatcher.h"

#include "common/clock.h"
#include "common/logging.h"

namespace velox {

RequestDispatcher::RequestDispatcher(DispatcherOptions options, Handler handler,
                                     StageRegistry* stages)
    : options_(options),
      handler_(std::move(handler)),
      stages_(stages),
      read_queue_(options_.read_queue_capacity),
      write_queue_(options_.write_queue_capacity) {
  VELOX_CHECK(handler_ != nullptr);
  VELOX_CHECK_GT(options_.read_workers, 0u);
  VELOX_CHECK_GT(options_.write_workers, 0u);
  pool_ = std::make_unique<ThreadPool>(options_.read_workers +
                                       options_.write_workers);
  // Long-running worker loops, one per pool thread: each parks on its
  // lane's queue until Stop() closes it. The pool is private and sized
  // exactly, so no loop ever waits behind another's submission.
  for (size_t i = 0; i < options_.read_workers; ++i) {
    bool ok = pool_->Submit([this] { WorkerLoop(&read_queue_); });
    VELOX_CHECK(ok);
  }
  for (size_t i = 0; i < options_.write_workers; ++i) {
    bool ok = pool_->Submit([this] { WorkerLoop(&write_queue_); });
    VELOX_CHECK(ok);
  }
}

RequestDispatcher::~RequestDispatcher() { Stop(); }

bool RequestDispatcher::Submit(ServerTask&& task) {
  if (stopped_.load(std::memory_order_acquire)) return false;
  task.enqueue_nanos = SteadyClock::Default()->NowNanos();
  BoundedQueue<ServerTask>* lane =
      task.request.type == RequestType::kObserve ? &write_queue_ : &read_queue_;
  return lane->TryPush(std::move(task));
}

void RequestDispatcher::WorkerLoop(BoundedQueue<ServerTask>* lane) {
  ServerTask task;
  while (lane->Pop(&task)) {
    {
      // Queue residency, charged per request like every other stage.
      StageTimer timer(stages_);
      if (timer.enabled()) {
        const int64_t waited =
            SteadyClock::Default()->NowNanos() - task.enqueue_nanos;
        timer.Add(Stage::kQueueWait, static_cast<double>(waited) / 1e3);
      }
      // A throwing handler or callback must not unwind into the pool:
      // that would end this (long-running) loop task and strand the
      // popped request without a MarkDone, hanging Drain(). Answer with
      // an Internal status instead.
      try {
        FrontendResponse response = handler_(task.request);
        if (task.done) task.done(std::move(response));
      } catch (const std::exception& e) {
        VELOX_LOG(WARNING) << "server task threw: " << e.what();
        FrontendResponse response;
        response.status = Status::Internal(e.what());
        if (task.done) {
          try {
            task.done(std::move(response));
          } catch (...) {
          }
        }
      } catch (...) {
        VELOX_LOG(WARNING) << "server task threw a non-exception";
      }
      dispatched_.fetch_add(1, std::memory_order_relaxed);
    }
    // Release the task's closures before the queue stops counting it as
    // in flight, then mark done (WaitDrained must not return while the
    // callback is still running).
    task = ServerTask();
    lane->MarkDone();
  }
}

void RequestDispatcher::Drain() {
  read_queue_.WaitDrained();
  write_queue_.WaitDrained();
}

void RequestDispatcher::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    // A prior Stop already closed the lanes and joined the pool.
    return;
  }
  read_queue_.Close();
  write_queue_.Close();
  pool_->Shutdown();
}

}  // namespace velox
