#include "server/dispatcher.h"

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"

namespace velox {

RequestDispatcher::RequestDispatcher(DispatcherOptions options, Handler handler,
                                     StageRegistry* stages)
    : RequestDispatcher(options, std::move(handler), nullptr, stages) {}

RequestDispatcher::RequestDispatcher(DispatcherOptions options, Handler handler,
                                     BatchHandler batch_handler,
                                     StageRegistry* stages)
    : options_(options),
      handler_(std::move(handler)),
      batch_handler_(std::move(batch_handler)),
      stages_(stages),
      read_lane_(options_.read_queue_capacity),
      write_lane_(options_.write_queue_capacity) {
  VELOX_CHECK(handler_ != nullptr);
  VELOX_CHECK_GT(options_.read_workers, 0u);
  VELOX_CHECK_GT(options_.write_workers, 0u);
  if (options_.batch_max == 0) options_.batch_max = 1;
  pool_ = std::make_unique<ThreadPool>(options_.read_workers +
                                       options_.write_workers);
  // Long-running worker loops, one per pool thread: each parks on its
  // lane's queue until Stop() closes it. The pool is private and sized
  // exactly, so no loop ever waits behind another's submission.
  for (size_t i = 0; i < options_.read_workers; ++i) {
    bool ok = pool_->Submit([this] { WorkerLoop(&read_lane_); });
    VELOX_CHECK(ok);
  }
  for (size_t i = 0; i < options_.write_workers; ++i) {
    bool ok = pool_->Submit([this] { WorkerLoop(&write_lane_); });
    VELOX_CHECK(ok);
  }
}

RequestDispatcher::~RequestDispatcher() { Stop(); }

bool RequestDispatcher::Submit(ServerTask&& task) {
  if (stopped_.load(std::memory_order_acquire)) return false;
  Lane* lane =
      task.request.type == RequestType::kObserve ? &write_lane_ : &read_lane_;
  task.enqueue_nanos = SteadyClock::Default()->NowNanos();
  if (lane->queue.TryPush(std::move(task))) return true;
  // Refused: the rvalue reference bound without moving, so the task is
  // intact for the caller's shed path — un-stamp it so a later retry's
  // queue_wait is measured from its own push, not this failed one.
  task.enqueue_nanos = 0;
  return false;
}

double RequestDispatcher::CurrentBatchLimit(const Lane& lane) const {
  if (options_.batch_max <= 1) return 1.0;
  if (options_.batch_slo_micros <= 0) {
    return static_cast<double>(options_.batch_max);
  }
  return lane.aimd_limit.load(std::memory_order_relaxed);
}

FrontendResponse RequestDispatcher::RunSingleton(const Request& request) {
  // A throwing handler must not unwind into the pool: that would end
  // this (long-running) loop task and strand popped requests without a
  // MarkDone, hanging Drain(). Answer with an Internal status instead.
  try {
    return handler_(request);
  } catch (const std::exception& e) {
    VELOX_LOG(WARNING) << "server task threw: " << e.what();
    FrontendResponse response;
    response.status = Status::Internal(e.what());
    return response;
  } catch (...) {
    VELOX_LOG(WARNING) << "server task threw a non-exception";
    FrontendResponse response;
    response.status = Status::Internal("server task threw a non-exception");
    return response;
  }
}

void RequestDispatcher::WorkerLoop(Lane* lane) {
  std::vector<ServerTask> batch;
  ServerTask first;
  while (lane->queue.Pop(&first)) {
    batch.clear();
    batch.push_back(std::move(first));
    first = ServerTask();
    const size_t limit = static_cast<size_t>(std::max(
        1.0, std::min(static_cast<double>(options_.batch_max),
                      CurrentBatchLimit(*lane) + 0.5)));
    if (limit > 1) {
      // Batch formation: drain what is queued and linger briefly for
      // stragglers. Charged to kBatchForm (idle waiting for the first
      // task is not — that is the worker parking, not batching cost).
      StageTimer timer(stages_);
      StageTimer::Scope span(timer, Stage::kBatchForm);
      lane->queue.PopManyFor(&batch, limit - 1,
                             options_.batch_delay_micros * 1000);
    }
    ExecuteBatch(lane, &batch);
  }
}

void RequestDispatcher::ExecuteBatch(Lane* lane, std::vector<ServerTask>* batch) {
  const size_t n = batch->size();
  if (stages_ != nullptr) {
    // Queue residency, charged per request like every other stage.
    const int64_t now = SteadyClock::Default()->NowNanos();
    for (const ServerTask& task : *batch) {
      stages_->Record(Stage::kQueueWait,
                      static_cast<double>(now - task.enqueue_nanos) / 1e3);
    }
  }

  const bool adapt = options_.batch_max > 1 && options_.batch_slo_micros > 0;
  const int64_t exec_start =
      (adapt || stages_ != nullptr) ? SteadyClock::Default()->NowNanos() : 0;

  std::vector<FrontendResponse> responses;
  if (n > 1 && batch_handler_) {
    // Grouped execution. A throwing batch handler may have partially
    // applied writes, so the batch is NOT re-run per task — every
    // request is answered with an Internal status instead (the same
    // containment contract as the singleton path).
    std::vector<const Request*> requests;
    requests.reserve(n);
    for (const ServerTask& task : *batch) requests.push_back(&task.request);
    std::string error;
    try {
      responses = batch_handler_(requests);
      if (responses.size() != n) {
        error = "batch handler returned a mismatched response count";
        responses.clear();
      }
    } catch (const std::exception& e) {
      VELOX_LOG(WARNING) << "server batch threw: " << e.what();
      error = e.what();
      responses.clear();
    } catch (...) {
      VELOX_LOG(WARNING) << "server batch threw a non-exception";
      error = "server batch threw a non-exception";
      responses.clear();
    }
    if (responses.empty()) {
      responses.resize(n);
      for (FrontendResponse& r : responses) r.status = Status::Internal(error);
    }
  } else {
    responses.reserve(n);
    for (const ServerTask& task : *batch) {
      responses.push_back(RunSingleton(task.request));
    }
  }

  double exec_micros = 0.0;
  if (exec_start != 0) {
    exec_micros =
        static_cast<double>(SteadyClock::Default()->NowNanos() - exec_start) /
        1e3;
    if (stages_ != nullptr) stages_->Record(Stage::kBatchExecute, exec_micros);
  }

  // AIMD search (Clipper §4.3-style): grow additively while execution
  // meets the lane SLO, back off multiplicatively on a violation. Plain
  // load/store — concurrent workers may lose an adaptation step, never
  // correctness.
  if (adapt) {
    double limit = lane->aimd_limit.load(std::memory_order_relaxed);
    if (exec_micros > static_cast<double>(options_.batch_slo_micros)) {
      limit = std::max(1.0, limit * 0.5);
      lane->aimd_backoffs.fetch_add(1, std::memory_order_relaxed);
    } else {
      limit = std::min(static_cast<double>(options_.batch_max), limit + 1.0);
    }
    lane->aimd_limit.store(limit, std::memory_order_relaxed);
  }
  if (n > 1) {
    lane->batches_formed.fetch_add(1, std::memory_order_relaxed);
  } else {
    lane->singletons.fetch_add(1, std::memory_order_relaxed);
  }
  dispatched_.fetch_add(n, std::memory_order_relaxed);

  for (size_t i = 0; i < n; ++i) {
    ServerTask& task = (*batch)[i];
    if (task.done) {
      try {
        task.done(std::move(responses[i]));
      } catch (const std::exception& e) {
        VELOX_LOG(WARNING) << "server task callback threw: " << e.what();
      } catch (...) {
        VELOX_LOG(WARNING) << "server task callback threw a non-exception";
      }
    }
    // Release the task's closures before the queue stops counting it as
    // in flight, then mark done (WaitDrained must not return while the
    // callback is still running).
    task = ServerTask();
    lane->queue.MarkDone();
  }
  batch->clear();
}

void RequestDispatcher::Drain() {
  read_lane_.queue.WaitDrained();
  write_lane_.queue.WaitDrained();
}

void RequestDispatcher::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    // A prior Stop already closed the lanes and joined the pool.
    return;
  }
  read_lane_.queue.Close();
  write_lane_.queue.Close();
  pool_->Shutdown();
}

}  // namespace velox
