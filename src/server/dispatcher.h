// RequestDispatcher: the queued middle of the server plane. Admitted
// requests land in one of two bounded lanes — reads (predict/topK) and
// writes (observe) — and long-running workers on a dedicated ThreadPool
// pop, time the queue residency (Stage::kQueueWait), run the handler,
// and complete the callback.
//
// Two lanes because the paper's read and write paths have different
// cost and different overload behavior: a burst of observes (online
// solves + WAL appends) must not queue ahead of cheap cache-hit
// predicts. Each lane's depth is capped; a full lane refuses the push
// and the acceptor sheds — queueing delay is bounded by construction,
// not by hope.
//
// Cross-request batching (Clipper-style adaptive dynamic batching,
// DESIGN.md §15): with batch_max > 1 a worker drains up to its lane's
// current batch limit in one pop (lingering at most batch_delay_micros
// past the first task for stragglers — a lone request is never held
// hostage) and executes the whole batch through the batch handler,
// which amortizes per-request cost: one coalesced feature MultiGet per
// batch on the read lane, one WAL group commit per batch on the write
// lane. The limit adapts per lane by AIMD search against
// batch_slo_micros: additive growth (+1) while a batch's execute
// latency stays under the SLO, multiplicative backoff (×1/2) on a
// violation. Responses stay bit-identical to singleton dispatch and
// every task's `done` still fires exactly once.
#ifndef VELOX_SERVER_DISPATCHER_H_
#define VELOX_SERVER_DISPATCHER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stage_trace.h"
#include "common/thread_pool.h"
#include "core/frontend.h"
#include "server/bounded_queue.h"

namespace velox {

// One admitted request in flight through the plane.
struct ServerTask {
  Request request;
  std::function<void(FrontendResponse)> done;
  // When the request logically arrived (open-loop schedule time; the
  // coordinated-omission-correct latency origin).
  int64_t arrival_nanos = 0;
  // When it entered the dispatch queue; queue_wait = pop - enqueue.
  // Stamped by Submit only when the push succeeds.
  int64_t enqueue_nanos = 0;
};

struct DispatcherOptions {
  // Lane depths; 0 = unbounded (the no-admission baseline).
  size_t read_queue_capacity = 256;
  size_t write_queue_capacity = 256;
  size_t read_workers = 4;
  size_t write_workers = 2;
  // ---- cross-request batching ----
  // Most tasks a worker may drain from its lane in one pop. 1 (the
  // default) = singleton dispatch, batching off.
  size_t batch_max = 1;
  // After the first task of a batch is in hand, wait at most this long
  // for stragglers before executing a partial batch. 0 = take only
  // what is already queued.
  int64_t batch_delay_micros = 0;
  // Per-lane latency SLO for the AIMD batch-size search: a batch whose
  // execute latency exceeds this halves the lane's batch limit
  // (floored at 1); one under it grows the limit by 1 (capped at
  // batch_max). 0 = no adaptation, the limit is pinned at batch_max.
  int64_t batch_slo_micros = 0;
};

class RequestDispatcher {
 public:
  using Handler = std::function<FrontendResponse(const Request&)>;
  // Executes a formed batch, returning one response per request in
  // input order (VeloxFrontend::HandleBatch). May be null: batches
  // then execute by running the singleton handler per task (queue-pop
  // amortization only).
  using BatchHandler =
      std::function<std::vector<FrontendResponse>(const std::vector<const Request*>&)>;

  // `stages` (borrowed, may be null) receives per-request kQueueWait
  // samples plus per-batch kBatchForm / kBatchExecute samples. Workers
  // start immediately.
  RequestDispatcher(DispatcherOptions options, Handler handler,
                    StageRegistry* stages);
  RequestDispatcher(DispatcherOptions options, Handler handler,
                    BatchHandler batch_handler, StageRegistry* stages);
  ~RequestDispatcher();

  RequestDispatcher(const RequestDispatcher&) = delete;
  RequestDispatcher& operator=(const RequestDispatcher&) = delete;

  // Routes by request type into the matching lane. False = lane full or
  // dispatcher stopped; `task` is left intact (and unstamped) so the
  // caller can still answer it (shed path).
  [[nodiscard]] bool Submit(ServerTask&& task);

  // Blocks until both lanes are empty and no popped task is still
  // executing. Callers stop offering load first.
  void Drain();

  // Closes both lanes, lets workers finish the backlog, joins them.
  // Idempotent; Submit returns false afterwards.
  void Stop();

  size_t read_depth() const { return read_lane_.queue.depth(); }
  size_t write_depth() const { return write_lane_.queue.depth(); }
  size_t read_peak_depth() const { return read_lane_.queue.peak_depth(); }
  size_t write_peak_depth() const { return write_lane_.queue.peak_depth(); }
  uint64_t dispatched() const {
    return dispatched_.load(std::memory_order_relaxed);
  }

  // ---- batching observability (the server.batch.* metric source) ----
  // Worker pops that executed >= 2 tasks as one batch.
  uint64_t batches_formed() const {
    return read_lane_.batches_formed.load(std::memory_order_relaxed) +
           write_lane_.batches_formed.load(std::memory_order_relaxed);
  }
  // Worker pops that executed exactly 1 task.
  uint64_t batch_singletons() const {
    return read_lane_.singletons.load(std::memory_order_relaxed) +
           write_lane_.singletons.load(std::memory_order_relaxed);
  }
  // AIMD multiplicative backoffs (SLO violations), both lanes.
  uint64_t aimd_backoffs() const {
    return read_lane_.aimd_backoffs.load(std::memory_order_relaxed) +
           write_lane_.aimd_backoffs.load(std::memory_order_relaxed);
  }
  // Mean tasks per worker pop (1.0 under singleton dispatch).
  double mean_batch_size() const {
    const uint64_t pops = batches_formed() + batch_singletons();
    return pops == 0 ? 0.0
                     : static_cast<double>(dispatched()) /
                           static_cast<double>(pops);
  }
  // A lane's current AIMD batch limit (batch_max when adaptation off).
  double read_batch_limit() const { return CurrentBatchLimit(read_lane_); }
  double write_batch_limit() const { return CurrentBatchLimit(write_lane_); }

  const DispatcherOptions& options() const { return options_; }

 private:
  struct Lane {
    explicit Lane(size_t capacity) : queue(capacity) {}
    BoundedQueue<ServerTask> queue;
    // AIMD state: the allowed batch size, a double in [1, batch_max] so
    // additive growth survives rounding. Plain load/store (advisory —
    // a lost update costs one adaptation step, never correctness).
    std::atomic<double> aimd_limit{1.0};
    std::atomic<uint64_t> batches_formed{0};
    std::atomic<uint64_t> singletons{0};
    std::atomic<uint64_t> aimd_backoffs{0};
  };

  void WorkerLoop(Lane* lane);
  // Executes `batch` (non-empty), answers every task exactly once,
  // updates the lane's AIMD state and counters, MarkDone per task.
  void ExecuteBatch(Lane* lane, std::vector<ServerTask>* batch);
  // Runs one task through the singleton handler with exception
  // containment; never throws.
  FrontendResponse RunSingleton(const Request& request);
  double CurrentBatchLimit(const Lane& lane) const;

  DispatcherOptions options_;
  Handler handler_;
  BatchHandler batch_handler_;
  StageRegistry* stages_;
  Lane read_lane_;
  Lane write_lane_;
  std::atomic<uint64_t> dispatched_{0};
  std::atomic<bool> stopped_{false};
  // Declared last: workers touch every member above, so the pool must
  // die first.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace velox

#endif  // VELOX_SERVER_DISPATCHER_H_
