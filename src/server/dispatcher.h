// RequestDispatcher: the queued middle of the server plane. Admitted
// requests land in one of two bounded lanes — reads (predict/topK) and
// writes (observe) — and long-running workers on a dedicated ThreadPool
// pop, time the queue residency (Stage::kQueueWait), run the handler,
// and complete the callback.
//
// Two lanes because the paper's read and write paths have different
// cost and different overload behavior: a burst of observes (online
// solves + WAL appends) must not queue ahead of cheap cache-hit
// predicts. Each lane's depth is capped; a full lane refuses the push
// and the acceptor sheds — queueing delay is bounded by construction,
// not by hope.
#ifndef VELOX_SERVER_DISPATCHER_H_
#define VELOX_SERVER_DISPATCHER_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "common/stage_trace.h"
#include "common/thread_pool.h"
#include "core/frontend.h"
#include "server/bounded_queue.h"

namespace velox {

// One admitted request in flight through the plane.
struct ServerTask {
  Request request;
  std::function<void(FrontendResponse)> done;
  // When the request logically arrived (open-loop schedule time; the
  // coordinated-omission-correct latency origin).
  int64_t arrival_nanos = 0;
  // When it entered the dispatch queue; queue_wait = pop - enqueue.
  int64_t enqueue_nanos = 0;
};

struct DispatcherOptions {
  // Lane depths; 0 = unbounded (the no-admission baseline).
  size_t read_queue_capacity = 256;
  size_t write_queue_capacity = 256;
  size_t read_workers = 4;
  size_t write_workers = 2;
};

class RequestDispatcher {
 public:
  using Handler = std::function<FrontendResponse(const Request&)>;

  // `stages` (borrowed, may be null) receives per-request kQueueWait
  // samples. Workers start immediately.
  RequestDispatcher(DispatcherOptions options, Handler handler,
                    StageRegistry* stages);
  ~RequestDispatcher();

  RequestDispatcher(const RequestDispatcher&) = delete;
  RequestDispatcher& operator=(const RequestDispatcher&) = delete;

  // Routes by request type into the matching lane. False = lane full or
  // dispatcher stopped; `task` is left intact so the caller can still
  // answer it (shed path).
  [[nodiscard]] bool Submit(ServerTask&& task);

  // Blocks until both lanes are empty and no popped task is still
  // executing. Callers stop offering load first.
  void Drain();

  // Closes both lanes, lets workers finish the backlog, joins them.
  // Idempotent; Submit returns false afterwards.
  void Stop();

  size_t read_depth() const { return read_queue_.depth(); }
  size_t write_depth() const { return write_queue_.depth(); }
  size_t read_peak_depth() const { return read_queue_.peak_depth(); }
  size_t write_peak_depth() const { return write_queue_.peak_depth(); }
  uint64_t dispatched() const {
    return dispatched_.load(std::memory_order_relaxed);
  }
  const DispatcherOptions& options() const { return options_; }

 private:
  void WorkerLoop(BoundedQueue<ServerTask>* lane);

  DispatcherOptions options_;
  Handler handler_;
  StageRegistry* stages_;
  BoundedQueue<ServerTask> read_queue_;
  BoundedQueue<ServerTask> write_queue_;
  std::atomic<uint64_t> dispatched_{0};
  std::atomic<bool> stopped_{false};
  // Declared last: workers touch every member above, so the pool must
  // die first.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace velox

#endif  // VELOX_SERVER_DISPATCHER_H_
