// Per-tenant token-bucket rate limiting for the server plane's
// admission controller. Each tenant (we key tenants by uid — the unit
// the paper routes and stores by) owns a bucket refilled continuously
// at `rate_per_sec` up to `burst`; a request spends one token or is
// shed. A hot tenant drains only its own bucket, so well-behaved
// tenants keep their throughput (see server_plane_test's isolation
// test).
//
// Time comes from an injected Clock so tests drive refill
// deterministically with SimulatedClock.
#ifndef VELOX_SERVER_RATE_LIMITER_H_
#define VELOX_SERVER_RATE_LIMITER_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/clock.h"

namespace velox {

struct TenantRateLimiterOptions {
  // Steady-state tokens per second granted to a tenant with no
  // override. <= 0 disables rate limiting entirely (every Admit
  // succeeds) — the bench's no-admission baseline.
  double default_rate_per_sec = 0.0;
  // Bucket capacity: how far a tenant can burst above steady state.
  double default_burst = 100.0;
};

class TenantRateLimiter {
 public:
  // `clock` is borrowed and may be null (uses the process steady clock).
  explicit TenantRateLimiter(TenantRateLimiterOptions options,
                             Clock* clock = nullptr);

  TenantRateLimiter(const TenantRateLimiter&) = delete;
  TenantRateLimiter& operator=(const TenantRateLimiter&) = delete;

  // Per-tenant override (e.g. a capped free tier or an uncapped
  // internal tenant). rate_per_sec <= 0 makes the tenant unlimited.
  void SetLimit(uint64_t tenant, double rate_per_sec, double burst);

  // Spends one token from the tenant's bucket; false = shed. A tenant's
  // first request finds a full bucket.
  bool Admit(uint64_t tenant);

  uint64_t admitted() const;
  uint64_t rejected() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    double rate_per_sec = 0.0;
    double burst = 0.0;
    int64_t last_refill_nanos = 0;
  };

  TenantRateLimiterOptions options_;
  Clock* clock_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Bucket> buckets_;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace velox

#endif  // VELOX_SERVER_RATE_LIMITER_H_
