#include "server/acceptor.h"

#include <sstream>
#include <utility>

#include "common/logging.h"

namespace velox {

RequestAcceptor::RequestAcceptor(AcceptorOptions options, VeloxFrontend* frontend,
                                 Clock* clock)
    : options_(options),
      frontend_(frontend),
      clock_(clock != nullptr ? clock : SteadyClock::Default()),
      admission_(options_.admission, clock_),
      dispatcher_(
          options_.dispatcher,
          [frontend](const Request& request) { return frontend->Handle(request); },
          [frontend](const std::vector<const Request*>& batch) {
            return frontend->HandleBatch(batch);
          },
          &plane_stages_) {
  VELOX_CHECK(frontend_ != nullptr);
}

RequestAcceptor::~RequestAcceptor() { Stop(); }

void RequestAcceptor::Submit(Request request,
                             std::function<void(FrontendResponse)> done) {
  SubmitAt(std::move(request), SteadyClock::Default()->NowNanos(),
           std::move(done));
}

void RequestAcceptor::SubmitAt(Request request, int64_t arrival_nanos,
                               std::function<void(FrontendResponse)> done) {
  {
    StageTimer timer(&plane_stages_);
    StageTimer::Scope span(timer, Stage::kAdmission);
    if (!admission_.Admit(request.uid)) {
      span.Stop();
      ShedAnswer(request, arrival_nanos, done);
      return;
    }
  }

  ServerTask task;
  task.request = std::move(request);
  task.arrival_nanos = arrival_nanos;
  // `done` stays a copy (not moved into the wrapper) so the rejection
  // path below can still answer with the *unwrapped* callback — a shed
  // response must not land in the served-latency histogram.
  task.done = [this, arrival_nanos, done](FrontendResponse response) {
    response.latency_micros = static_cast<double>(SteadyClock::Default()->NowNanos() -
                                                  arrival_nanos) /
                              1e3;
    served_latency_.Record(response.latency_micros);
    if (done) done(std::move(response));
  };
  if (!dispatcher_.Submit(std::move(task))) {
    // Lane full (shed) or dispatcher stopped (reject): either way the
    // task was not consumed, so its request is still intact.
    admission_.NoteQueueFull();
    ShedAnswer(task.request, arrival_nanos, done);
    return;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
}

void RequestAcceptor::ShedAnswer(const Request& request, int64_t arrival_nanos,
                                 const std::function<void(FrontendResponse)>& done) {
  StageTimer timer(&plane_stages_);
  StageTimer::Scope span(timer, Stage::kShed);
  FrontendResponse response;
  response.shed = true;
  VeloxServer* server = frontend_->server();
  switch (request.type) {
    case RequestType::kPredict: {
      if (request.items.empty()) {
        response.status = Status::InvalidArgument("predict requires an item");
        break;
      }
      auto r = server->DegradedPredict(request.uid, request.items[0]);
      response.status = r.status();
      if (r.ok()) response.items.push_back(r.value());
      break;
    }
    case RequestType::kTopK: {
      auto r = server->DegradedTopK(request.uid, request.items,
                                    frontend_->options().topk_k);
      response.status = r.status();
      if (r.ok()) response.items = r.value().items;
      break;
    }
    case RequestType::kObserve:
      // Acknowledged but dropped: under overload the feedback loop goes
      // lossy before the serving path goes slow. The `shed` flag tells
      // the client its update was not applied.
      response.status = Status::OK();
      break;
  }
  span.Stop();
  response.latency_micros =
      static_cast<double>(SteadyClock::Default()->NowNanos() - arrival_nanos) / 1e3;
  shed_latency_.Record(response.latency_micros);
  if (done) done(std::move(response));
}

void RequestAcceptor::Drain() { dispatcher_.Drain(); }

void RequestAcceptor::Stop() { dispatcher_.Stop(); }

HistogramData RequestAcceptor::StageData(Stage stage) const {
  HistogramData merged = frontend_->server()->StageData(stage);
  merged.Merge(plane_stages_.Data(stage));
  return merged;
}

std::string RequestAcceptor::StageBreakdownJson() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (int s = 0; s < kNumStages; ++s) {
    Stage stage = static_cast<Stage>(s);
    HistogramSnapshot snap = StageData(stage).Summarize();
    if (snap.count == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "\"" << StageName(stage) << "\": {\"count\": " << snap.count
       << ", \"mean_us\": " << snap.mean << ", \"p50_us\": " << snap.p50
       << ", \"p95_us\": " << snap.p95 << ", \"p99_us\": " << snap.p99
       << ", \"max_us\": " << snap.max << "}";
  }
  os << "}";
  return os.str();
}

std::string RequestAcceptor::MetricsReport(MetricsRegistry* registry) const {
  MetricsRegistry scratch;
  MetricsRegistry* target = registry != nullptr ? registry : &scratch;

  target->GetGauge("server.queue_depth.read")
      ->Set(static_cast<double>(dispatcher_.read_depth()));
  target->GetGauge("server.queue_depth.write")
      ->Set(static_cast<double>(dispatcher_.write_depth()));
  target->GetGauge("server.queue_depth.read_peak")
      ->Set(static_cast<double>(dispatcher_.read_peak_depth()));
  target->GetGauge("server.queue_depth.write_peak")
      ->Set(static_cast<double>(dispatcher_.write_peak_depth()));
  target->GetGauge("server.accepted")->Set(static_cast<double>(accepted()));
  target->GetGauge("server.shed_total")->Set(static_cast<double>(shed_total()));
  target->GetGauge("server.shed_rate_limited")
      ->Set(static_cast<double>(admission_.shed_rate_limited()));
  target->GetGauge("server.shed_queue_full")
      ->Set(static_cast<double>(admission_.shed_queue_full()));

  // Cross-request batching (DESIGN.md §15): achieved batch size, how
  // often batches actually formed vs degenerated to singletons, and how
  // often the AIMD search hit the lane SLO and backed off.
  target->GetGauge("server.batch.size")->Set(dispatcher_.mean_batch_size());
  target->GetGauge("server.batch.formed")
      ->Set(static_cast<double>(dispatcher_.batches_formed()));
  target->GetGauge("server.batch.singleton")
      ->Set(static_cast<double>(dispatcher_.batch_singletons()));
  target->GetGauge("server.batch.aimd_backoffs")
      ->Set(static_cast<double>(dispatcher_.aimd_backoffs()));
  target->GetGauge("server.batch.limit.read")->Set(dispatcher_.read_batch_limit());
  target->GetGauge("server.batch.limit.write")
      ->Set(dispatcher_.write_batch_limit());

  const std::pair<const char*, const Histogram*> kinds[] = {
      {"served", &served_latency_},
      {"shed", &shed_latency_},
  };
  for (const auto& [name, histogram] : kinds) {
    HistogramSnapshot snap = histogram->Snapshot();
    if (snap.count == 0) continue;
    std::string prefix = std::string("server.") + name + ".";
    target->GetGauge(prefix + "count")->Set(static_cast<double>(snap.count));
    target->GetGauge(prefix + "mean_us")->Set(snap.mean);
    target->GetGauge(prefix + "p50_us")->Set(snap.p50);
    target->GetGauge(prefix + "p95_us")->Set(snap.p95);
    target->GetGauge(prefix + "p99_us")->Set(snap.p99);
  }

  // The frontend call chains to the server, so one call exports the
  // whole stack: plane, frontend, node pipelines, caches, storage.
  return frontend_->MetricsReport(target);
}

std::string RequestAcceptor::Report() const {
  std::ostringstream os;
  os << "server plane\n";
  os << "  admission: " << (admission_.enabled() ? "on" : "off")
     << "  accepted=" << accepted() << " shed=" << shed_total()
     << " (rate_limited=" << admission_.shed_rate_limited()
     << " queue_full=" << admission_.shed_queue_full() << ")\n";
  os << "  queues: read " << dispatcher_.read_depth() << "/"
     << (dispatcher_.options().read_queue_capacity == 0
             ? std::string("inf")
             : std::to_string(dispatcher_.options().read_queue_capacity))
     << " (peak " << dispatcher_.read_peak_depth() << "), write "
     << dispatcher_.write_depth() << "/"
     << (dispatcher_.options().write_queue_capacity == 0
             ? std::string("inf")
             : std::to_string(dispatcher_.options().write_queue_capacity))
     << " (peak " << dispatcher_.write_peak_depth() << ")\n";
  const DispatcherOptions& dopts = dispatcher_.options();
  if (dopts.batch_max > 1) {
    os << "  batching: on  max=" << dopts.batch_max
       << " delay_us=" << dopts.batch_delay_micros
       << " slo_us=" << dopts.batch_slo_micros
       << "  formed=" << dispatcher_.batches_formed()
       << " singleton=" << dispatcher_.batch_singletons()
       << " mean_size=" << dispatcher_.mean_batch_size()
       << " backoffs=" << dispatcher_.aimd_backoffs()
       << " limit read=" << dispatcher_.read_batch_limit() << " write="
       << dispatcher_.write_batch_limit() << "\n";
  } else {
    os << "  batching: off (batch_max=1)\n";
  }
  HistogramSnapshot served = served_latency_.Snapshot();
  if (served.count > 0) {
    os << "  served: " << served.ToString() << "\n";
  }
  HistogramSnapshot shed = shed_latency_.Snapshot();
  if (shed.count > 0) {
    os << "  shed:   " << shed.ToString() << "\n";
  }
  for (Stage stage : {Stage::kAdmission, Stage::kQueueWait, Stage::kShed,
                      Stage::kBatchForm, Stage::kBatchExecute}) {
    HistogramSnapshot snap = plane_stages_.Snapshot(stage);
    if (snap.count == 0) continue;
    os << "  stage " << StageName(stage) << " " << snap.ToString() << "\n";
  }
  return os.str();
}

}  // namespace velox
