#include "server/admission.h"

namespace velox {

AdmissionController::AdmissionController(AdmissionOptions options, Clock* clock)
    : options_(options), limiter_(options.rate_limit, clock) {}

bool AdmissionController::Admit(uint64_t tenant) {
  if (!options_.enabled) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (!limiter_.Admit(tenant)) {
    shed_rate_limited_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace velox
