// AdmissionController: the server plane's front door. Decides, before
// a request touches a queue, whether it proceeds into the pipeline or
// is shed to the degraded fast path. Two independent gates:
//
//  1. per-tenant token buckets (rate_limiter.h) — a hot tenant is
//     clipped to its own budget;
//  2. bounded dispatch queues — the *caller* reports a refused push via
//     NoteQueueFull(), so all shed accounting lives here regardless of
//     which gate fired.
//
// Shedding is load-bearing, not an error: a shed request still gets an
// answer (the PR-3 degradation ladder — stale score, else bootstrap
// mean, flagged `degraded`), so availability stays 100% while latency
// of *served* requests stays bounded. That trade is the paper's
// low-latency contract under overload.
#ifndef VELOX_SERVER_ADMISSION_H_
#define VELOX_SERVER_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "server/rate_limiter.h"

namespace velox {

struct AdmissionOptions {
  // Master switch: false admits everything (queues may still refuse
  // pushes when bounded; with unbounded queues this is the open-loop
  // baseline that melts down past saturation).
  bool enabled = true;
  TenantRateLimiterOptions rate_limit;
};

class AdmissionController {
 public:
  // `clock` is borrowed, may be null (steady clock), and feeds the
  // token buckets — tests pass a SimulatedClock.
  explicit AdmissionController(AdmissionOptions options, Clock* clock = nullptr);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Gate 1. False = shed (rate-limited); accounting is internal.
  bool Admit(uint64_t tenant);

  // Gate 2 fired at the caller: a bounded queue refused the push.
  void NoteQueueFull() {
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
  }

  void SetTenantLimit(uint64_t tenant, double rate_per_sec, double burst) {
    limiter_.SetLimit(tenant, rate_per_sec, burst);
  }

  bool enabled() const { return options_.enabled; }
  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t shed_rate_limited() const {
    return shed_rate_limited_.load(std::memory_order_relaxed);
  }
  uint64_t shed_queue_full() const {
    return shed_queue_full_.load(std::memory_order_relaxed);
  }
  uint64_t shed_total() const { return shed_rate_limited() + shed_queue_full(); }

 private:
  AdmissionOptions options_;
  TenantRateLimiter limiter_;
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_rate_limited_{0};
  std::atomic<uint64_t> shed_queue_full_{0};
};

}  // namespace velox

#endif  // VELOX_SERVER_ADMISSION_H_
