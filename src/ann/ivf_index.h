// Approximate candidate generation over an ItemFactorPlane: an IVF
// (inverted-file) index with an optional product-quantized mirror.
//
// The serving problem is MIPS — argmax_x w_uᵀ f(x) over the catalog —
// and the exact plane scan is O(|catalog|·d) per request. The IVF
// index trades a bounded recall loss for a much smaller scan:
//  * Build time (model install): a seeded k-means coarse quantizer
//    clusters the plane's rows into `nlist` cells; each cell's rows are
//    stored contiguously in one inverted list (CSR layout), rows
//    ascending within a list.
//  * Query time: rank the `nlist` centroids by inner product with the
//    user weights, take the top `nprobe` lists, and either
//      - Probe(): return every row in the probed lists (post-filter), or
//      - ProbePq(): scan the probed lists' PQ codes (residuals against
//        the list centroid) with an asymmetric distance table computed
//        once per query, approximating w·row as w·centroid +
//        adc(residual), and keep only a bounded shortlist — ~m
//        byte-loads + m adds per row instead of d multiply-adds, and
//        1/8th the memory traffic.
//  * The caller then rescores the candidates exactly in double through
//    the shared scoring kernels, so every returned score is
//    bit-identical to what the exact scan would have produced for that
//    item (zero-padding invariance, scoring_kernels.h).
//
// Determinism contract: Build() is a pure function of (plane bytes,
// options). k-means samples with a seeded Rng, assigns rows to
// centroids in fixed 2048-row chunks whose results are written to
// per-row slots (so thread count and pool presence are invisible),
// accumulates centroids serially in row order, and breaks every
// nearest-centroid tie toward the lowest index. Same seed, same plane
// => byte-identical centroids, list offsets, list rows, and PQ codes.
#ifndef VELOX_ANN_IVF_INDEX_H_
#define VELOX_ANN_IVF_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "ml/feature_function.h"

namespace velox {

struct AnnIndexOptions {
  // Number of coarse cells; 0 = auto: clamp(num_items/256, 16, 2048).
  size_t nlist = 0;
  // Default number of lists probed per query (callers may override).
  size_t nprobe = 16;
  size_t kmeans_iters = 5;
  // Rows sampled for k-means training; 0 = auto:
  // clamp(8*nlist, 4096, 131072). Clamped to num_items.
  size_t train_sample = 0;
  uint64_t seed = 0x5eedULL;

  // Product-quantized mirror: each row's *residual* against its list's
  // centroid is split into m = ceil(dim/pq_dsub) subvectors, each coded
  // against a 256-entry codebook (residual coding keeps the codes
  // informative when the catalog is clustered — exactly when IVF wins).
  bool build_pq = true;
  size_t pq_dsub = 4;
  size_t pq_kmeans_iters = 4;
  size_t pq_train_sample = 32768;
  // PQ shortlist size as a multiple of k: ProbePq keeps the
  // rescore_multiple*k best ADC scores for exact rescoring. Rescoring
  // is cheap relative to the probe scan, so the default is generous —
  // it buys back the recall the 8-byte codes give up.
  size_t rescore_multiple = 8;
};

class IvfIndex {
 public:
  using Filter = std::function<bool(uint64_t item_id)>;

  struct ProbeStats {
    size_t lists_probed = 0;
    // Rows seen in the probed lists, before filtering/shortlisting.
    size_t candidates = 0;
  };

  // Builds the index over `plane` (kept alive via shared_ptr).
  // Returns nullptr for an empty plane. `pool` may be null (inline
  // build); the result is byte-identical either way.
  static std::shared_ptr<const IvfIndex> Build(
      std::shared_ptr<const ItemFactorPlane> plane, const AnnIndexOptions& options,
      ThreadPool* pool);

  // Ranks centroids against `wpad` (stride()-padded user weights) and
  // returns every row index in the top-`nprobe` lists that passes
  // `filter` (null = keep all). Rows are ascending.
  std::vector<uint32_t> Probe(const double* wpad, size_t nprobe, const Filter& filter,
                              ProbeStats* stats) const;

  // As Probe(), but scans the probed lists' PQ codes with an ADC table
  // and returns only the `shortlist` best rows under (adc score desc,
  // row asc), ascending by row. Falls back to Probe() when the index
  // was built without PQ.
  std::vector<uint32_t> ProbePq(const double* wpad, size_t nprobe, size_t shortlist,
                                const Filter& filter, ProbeStats* stats) const;

  const ItemFactorPlane& plane() const { return *plane_; }
  size_t nlist() const { return nlist_; }
  size_t default_nprobe() const { return options_.nprobe; }
  const AnnIndexOptions& options() const { return options_; }
  bool has_pq() const { return has_pq_; }
  size_t pq_m() const { return pq_m_; }

  // Raw structure, exposed for determinism tests and stats.
  const std::vector<double>& centroids() const { return centroids_; }
  const std::vector<uint32_t>& list_offsets() const { return list_offsets_; }
  const std::vector<uint32_t>& list_rows() const { return list_rows_; }
  const std::vector<uint8_t>& codes() const { return codes_; }

 private:
  IvfIndex() = default;

  // Centroid indices of the top-`nprobe` lists by (w·c desc, idx asc).
  std::vector<uint32_t> RankLists(const double* wpad, size_t nprobe) const;

  std::shared_ptr<const ItemFactorPlane> plane_;
  AnnIndexOptions options_;  // with auto fields resolved
  size_t nlist_ = 0;

  std::vector<double> centroids_;      // nlist * plane stride, zero-padded
  std::vector<uint32_t> list_offsets_; // nlist + 1 (CSR)
  std::vector<uint32_t> list_rows_;    // num_items, ascending within a list

  bool has_pq_ = false;
  size_t pq_m_ = 0;     // subvectors per row
  size_t pq_ksub_ = 0;  // codebook entries per subvector (<= 256)
  size_t pq_dsub_ = 0;  // dims per subvector (last one may cover fewer)
  std::vector<double> pq_codebooks_;  // m * ksub * pq_dsub, zero-padded
  std::vector<uint8_t> codes_;        // num_items * m, in list_rows_ order
};

}  // namespace velox

#endif  // VELOX_ANN_IVF_INDEX_H_
