#include "ann/ivf_index.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/random.h"
#include "common/topk_heap.h"
#include "linalg/scoring_kernels.h"

namespace velox {
namespace {

// Parallel assignment runs over fixed-size row chunks regardless of
// pool size, and each chunk writes only its own rows' slots, so the
// assignment — and therefore the whole build — is byte-identical with
// any pool (or none).
constexpr size_t kAssignChunk = 2048;

// Nearest centroid of `row` under L2, as argmax_c (row·c - ½‖c‖²),
// ties toward the lowest index. `scores` is a scratch buffer of nlist.
uint32_t NearestCentroid(const double* centroids, size_t nlist, size_t stride,
                         const double* half_norms, const double* row,
                         double* scores) {
  ScoreRows(centroids, nlist, stride, row, stride, scores);
  uint32_t best = 0;
  double best_score = scores[0] - half_norms[0];
  for (size_t c = 1; c < nlist; ++c) {
    const double s = scores[c] - half_norms[c];
    if (s > best_score) {
      best_score = s;
      best = static_cast<uint32_t>(c);
    }
  }
  return best;
}

void ComputeHalfNorms(const double* centroids, size_t nlist, size_t stride,
                      std::vector<double>* half_norms) {
  half_norms->resize(nlist);
  for (size_t c = 0; c < nlist; ++c) {
    const double* p = centroids + c * stride;
    (*half_norms)[c] = 0.5 * DotKernel(p, p, stride);
  }
}

// Assigns each plane row named by `rows` (nullptr = all of [0, n)) to
// its nearest centroid, in parallel fixed chunks, writing assign[i] for
// the i-th entry.
void AssignRows(const ItemFactorPlane& plane, const std::vector<int64_t>* rows,
                size_t n, const std::vector<double>& centroids, size_t nlist,
                const std::vector<double>& half_norms, ThreadPool* pool,
                std::vector<uint32_t>* assign) {
  const size_t stride = plane.stride();
  assign->resize(n);
  const size_t num_chunks = (n + kAssignChunk - 1) / kAssignChunk;
  // Pure arithmetic closure: a non-OK status here means a logic bug,
  // not a recoverable condition — fail the build loudly.
  Status status = ParallelFor(pool, num_chunks, [&](size_t chunk) {
    std::vector<double> scores(nlist);
    const size_t begin = chunk * kAssignChunk;
    const size_t end = std::min(n, begin + kAssignChunk);
    for (size_t i = begin; i < end; ++i) {
      const size_t r = rows == nullptr ? i : static_cast<size_t>((*rows)[i]);
      (*assign)[i] = NearestCentroid(centroids.data(), nlist, stride,
                                     half_norms.data(), plane.row(r),
                                     scores.data());
    }
  });
  VELOX_CHECK(status.ok());
}

size_t Clamp(size_t v, size_t lo, size_t hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

std::shared_ptr<const IvfIndex> IvfIndex::Build(
    std::shared_ptr<const ItemFactorPlane> plane, const AnnIndexOptions& options,
    ThreadPool* pool) {
  if (plane == nullptr || plane->num_items() == 0) return nullptr;
  const size_t n = plane->num_items();
  const size_t dim = plane->dim();
  const size_t stride = plane->stride();

  auto index = std::shared_ptr<IvfIndex>(new IvfIndex());
  index->plane_ = plane;
  AnnIndexOptions opts = options;
  if (opts.nlist == 0) opts.nlist = Clamp(n / 256, 16, 2048);
  opts.nlist = std::min(opts.nlist, n);
  if (opts.train_sample == 0) opts.train_sample = Clamp(8 * opts.nlist, 4096, 131072);
  opts.train_sample = Clamp(opts.train_sample, opts.nlist, n);
  const size_t nlist = opts.nlist;
  index->nlist_ = nlist;

  // --- Coarse quantizer: seeded k-means over a row sample. ---
  Rng rng(opts.seed);
  std::vector<int64_t> sample = rng.SampleWithoutReplacement(
      static_cast<int64_t>(n), static_cast<int64_t>(opts.train_sample));
  std::sort(sample.begin(), sample.end());
  const size_t train_n = sample.size();

  std::vector<double>& centroids = index->centroids_;
  centroids.assign(nlist * stride, 0.0);
  for (size_t c = 0; c < nlist; ++c) {
    std::memcpy(centroids.data() + c * stride,
                plane->row(static_cast<size_t>(sample[c])),
                stride * sizeof(double));
  }

  std::vector<double> half_norms;
  std::vector<uint32_t> assign;
  std::vector<double> sums(nlist * stride);
  std::vector<uint32_t> counts(nlist);
  for (size_t iter = 0; iter < opts.kmeans_iters; ++iter) {
    ComputeHalfNorms(centroids.data(), nlist, stride, &half_norms);
    AssignRows(*plane, &sample, train_n, centroids, nlist, half_norms, pool,
               &assign);
    // Serial accumulation in sample (= ascending row) order keeps the
    // floating-point sums independent of the pool.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t i = 0; i < train_n; ++i) {
      const uint32_t c = assign[i];
      const double* row = plane->row(static_cast<size_t>(sample[i]));
      double* acc = sums.data() + static_cast<size_t>(c) * stride;
      for (size_t j = 0; j < stride; ++j) acc[j] += row[j];
      ++counts[c];
    }
    for (size_t c = 0; c < nlist; ++c) {
      if (counts[c] == 0) continue;  // empty cell keeps its old centroid
      const double inv = 1.0 / static_cast<double>(counts[c]);
      double* dst = centroids.data() + c * stride;
      const double* src = sums.data() + c * stride;
      for (size_t j = 0; j < stride; ++j) dst[j] = src[j] * inv;
    }
  }

  // --- Inverted lists: one full assignment pass, then counting sort.
  // Iterating rows in ascending order keeps each list ascending. ---
  ComputeHalfNorms(centroids.data(), nlist, stride, &half_norms);
  AssignRows(*plane, nullptr, n, centroids, nlist, half_norms, pool, &assign);
  index->list_offsets_.assign(nlist + 1, 0);
  for (size_t r = 0; r < n; ++r) ++index->list_offsets_[assign[r] + 1];
  for (size_t c = 0; c < nlist; ++c) {
    index->list_offsets_[c + 1] += index->list_offsets_[c];
  }
  index->list_rows_.resize(n);
  std::vector<uint32_t> cursor(index->list_offsets_.begin(),
                               index->list_offsets_.end() - 1);
  for (size_t r = 0; r < n; ++r) {
    index->list_rows_[cursor[assign[r]]++] = static_cast<uint32_t>(r);
  }

  // --- PQ mirror: per-subvector codebooks over *residuals* (row minus
  // its list's centroid — raw-vector PQ collapses clustered catalogs
  // onto a few codes and recall craters), codes stored in list order so
  // list scans stream the code bytes contiguously. ---
  if (opts.build_pq && dim > 0) {
    const size_t dsub = Clamp(opts.pq_dsub, 1, dim);
    const size_t m = (dim + dsub - 1) / dsub;
    const size_t ksub = std::min<size_t>(256, n);
    index->has_pq_ = true;
    index->pq_m_ = m;
    index->pq_ksub_ = ksub;
    index->pq_dsub_ = dsub;

    // `assign` still holds the final full-plane assignment from the
    // inverted-list pass: assign[r] is row r's list.
    const auto residual_of = [&](size_t r, double* out) {
      const double* row = plane->row(r);
      const double* cen = centroids.data() + static_cast<size_t>(assign[r]) * stride;
      for (size_t t = 0; t < dim; ++t) out[t] = row[t] - cen[t];
    };

    Rng pq_rng = rng.Fork();
    const size_t pq_train = Clamp(opts.pq_train_sample, ksub, n);
    std::vector<int64_t> pq_sample = pq_rng.SampleWithoutReplacement(
        static_cast<int64_t>(n), static_cast<int64_t>(pq_train));
    std::sort(pq_sample.begin(), pq_sample.end());
    std::vector<double> train_res(pq_sample.size() * dim);
    for (size_t i = 0; i < pq_sample.size(); ++i) {
      residual_of(static_cast<size_t>(pq_sample[i]), train_res.data() + i * dim);
    }

    std::vector<double>& cb = index->pq_codebooks_;
    cb.assign(m * ksub * dsub, 0.0);
    std::vector<uint8_t> sub_assign(pq_sample.size());
    std::vector<double> sub_sums(ksub * dsub);
    std::vector<uint32_t> sub_counts(ksub);
    for (size_t j = 0; j < m; ++j) {
      const size_t d0 = j * dsub;
      const size_t dj = std::min(dsub, dim - d0);
      double* cbj = cb.data() + j * ksub * dsub;
      for (size_t c = 0; c < ksub; ++c) {
        const double* res = train_res.data() + c * dim;
        for (size_t t = 0; t < dj; ++t) cbj[c * dsub + t] = res[d0 + t];
      }
      for (size_t iter = 0; iter < opts.pq_kmeans_iters; ++iter) {
        for (size_t i = 0; i < pq_sample.size(); ++i) {
          const double* res = train_res.data() + i * dim;
          size_t best = 0;
          double best_d = 0.0;
          for (size_t c = 0; c < ksub; ++c) {
            double d2 = 0.0;
            for (size_t t = 0; t < dj; ++t) {
              const double diff = res[d0 + t] - cbj[c * dsub + t];
              d2 += diff * diff;
            }
            if (c == 0 || d2 < best_d) {
              best_d = d2;
              best = c;
            }
          }
          sub_assign[i] = static_cast<uint8_t>(best);
        }
        std::fill(sub_sums.begin(), sub_sums.end(), 0.0);
        std::fill(sub_counts.begin(), sub_counts.end(), 0u);
        for (size_t i = 0; i < pq_sample.size(); ++i) {
          const double* res = train_res.data() + i * dim;
          double* acc = sub_sums.data() + sub_assign[i] * dsub;
          for (size_t t = 0; t < dj; ++t) acc[t] += res[d0 + t];
          ++sub_counts[sub_assign[i]];
        }
        for (size_t c = 0; c < ksub; ++c) {
          if (sub_counts[c] == 0) continue;
          const double inv = 1.0 / static_cast<double>(sub_counts[c]);
          for (size_t t = 0; t < dj; ++t) cbj[c * dsub + t] = sub_sums[c * dsub + t] * inv;
        }
      }
    }

    // Encode every row's residual (parallel, per-row slots =>
    // deterministic), then permute the codes into list order.
    std::vector<uint8_t> row_codes(n * m);
    const size_t num_chunks = (n + kAssignChunk - 1) / kAssignChunk;
    Status encode_status = ParallelFor(pool, num_chunks, [&](size_t chunk) {
      std::vector<double> res(dim);
      const size_t begin = chunk * kAssignChunk;
      const size_t end = std::min(n, begin + kAssignChunk);
      for (size_t r = begin; r < end; ++r) {
        residual_of(r, res.data());
        uint8_t* out = row_codes.data() + r * m;
        for (size_t j = 0; j < m; ++j) {
          const size_t d0 = j * dsub;
          const size_t dj = std::min(dsub, dim - d0);
          const double* cbj = cb.data() + j * ksub * dsub;
          size_t best = 0;
          double best_d = 0.0;
          for (size_t c = 0; c < ksub; ++c) {
            double d2 = 0.0;
            for (size_t t = 0; t < dj; ++t) {
              const double diff = res[d0 + t] - cbj[c * dsub + t];
              d2 += diff * diff;
            }
            if (c == 0 || d2 < best_d) {
              best_d = d2;
              best = c;
            }
          }
          out[j] = static_cast<uint8_t>(best);
        }
      }
    });
    VELOX_CHECK(encode_status.ok());
    index->codes_.resize(n * m);
    for (size_t pos = 0; pos < n; ++pos) {
      std::memcpy(index->codes_.data() + pos * m,
                  row_codes.data() + static_cast<size_t>(index->list_rows_[pos]) * m,
                  m);
    }
  }

  index->options_ = opts;
  return index;
}

std::vector<uint32_t> IvfIndex::RankLists(const double* wpad, size_t nprobe) const {
  const size_t stride = plane_->stride();
  std::vector<double> scores(nlist_);
  ScoreRows(centroids_.data(), nlist_, stride, wpad, stride, scores.data());
  std::vector<uint32_t> order(nlist_);
  for (size_t c = 0; c < nlist_; ++c) order[c] = static_cast<uint32_t>(c);
  nprobe = std::min(nprobe, nlist_);
  std::partial_sort(order.begin(), order.begin() + nprobe, order.end(),
                    [&](uint32_t a, uint32_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(nprobe);
  return order;
}

std::vector<uint32_t> IvfIndex::Probe(const double* wpad, size_t nprobe,
                                      const Filter& filter, ProbeStats* stats) const {
  if (nprobe == 0) nprobe = options_.nprobe;
  const std::vector<uint32_t> lists = RankLists(wpad, nprobe);
  const std::vector<uint64_t>& ids = plane_->item_ids();
  std::vector<uint32_t> rows;
  for (uint32_t list : lists) {
    const uint32_t begin = list_offsets_[list];
    const uint32_t end = list_offsets_[list + 1];
    if (stats != nullptr) stats->candidates += end - begin;
    for (uint32_t pos = begin; pos < end; ++pos) {
      const uint32_t r = list_rows_[pos];
      if (filter != nullptr && !filter(ids[r])) continue;
      rows.push_back(r);
    }
  }
  if (stats != nullptr) stats->lists_probed += lists.size();
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<uint32_t> IvfIndex::ProbePq(const double* wpad, size_t nprobe,
                                        size_t shortlist, const Filter& filter,
                                        ProbeStats* stats) const {
  if (!has_pq_) return Probe(wpad, nprobe, filter, stats);
  if (nprobe == 0) nprobe = options_.nprobe;
  if (shortlist == 0) shortlist = 1;
  const std::vector<uint32_t> lists = RankLists(wpad, nprobe);
  const size_t dim = plane_->dim();
  const size_t stride = plane_->stride();

  // Asymmetric distance table over the residual codebooks:
  // adc[j*ksub + c] = w_sub_j · codebook_j[c]. A row's approximate
  // score is w·centroid(list) + the sum of m table lookups, since
  // w·row ≈ w·(centroid + residual).
  std::vector<double> adc(pq_m_ * pq_ksub_, 0.0);
  for (size_t j = 0; j < pq_m_; ++j) {
    const size_t d0 = j * pq_dsub_;
    const size_t dj = std::min(pq_dsub_, dim - d0);
    const double* cbj = pq_codebooks_.data() + j * pq_ksub_ * pq_dsub_;
    for (size_t c = 0; c < pq_ksub_; ++c) {
      double s = 0.0;
      for (size_t t = 0; t < dj; ++t) s += wpad[d0 + t] * cbj[c * pq_dsub_ + t];
      adc[j * pq_ksub_ + c] = s;
    }
  }

  const std::vector<uint64_t>& ids = plane_->item_ids();
  BoundedTopK heap(shortlist);
  for (uint32_t list : lists) {
    const uint32_t begin = list_offsets_[list];
    const uint32_t end = list_offsets_[list + 1];
    if (stats != nullptr) stats->candidates += end - begin;
    const double base =
        DotKernel(wpad, centroids_.data() + static_cast<size_t>(list) * stride,
                  stride);
    for (uint32_t pos = begin; pos < end; ++pos) {
      const uint32_t r = list_rows_[pos];
      if (filter != nullptr && !filter(ids[r])) continue;
      const uint8_t* code = codes_.data() + static_cast<size_t>(pos) * pq_m_;
      double s = base;
      for (size_t j = 0; j < pq_m_; ++j) s += adc[j * pq_ksub_ + code[j]];
      heap.Offer(s, r);
    }
  }
  if (stats != nullptr) stats->lists_probed += lists.size();
  std::vector<TopKEntry> best = heap.TakeSorted();
  std::vector<uint32_t> rows;
  rows.reserve(best.size());
  for (const TopKEntry& e : best) rows.push_back(static_cast<uint32_t>(e.id));
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace velox
