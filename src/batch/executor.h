// Batch-compute executor: runs the tasks of a stage across a worker
// pool and records per-stage metrics. This plus batch/dataset.h is our
// from-scratch stand-in for the role Spark plays in the paper: an
// "opaque batch UDF runner" for offline (re)training (DESIGN.md §2).
#ifndef VELOX_BATCH_EXECUTOR_H_
#define VELOX_BATCH_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace velox {

struct StageInfo {
  std::string name;
  size_t num_tasks = 0;
  double wall_millis = 0.0;
};

class BatchExecutor {
 public:
  explicit BatchExecutor(size_t num_workers);

  // Runs all tasks of one stage to completion (barrier semantics, like
  // a Spark stage boundary). A UDF exception fails the stage with an
  // Internal Status instead of terminating the process; the first
  // failure is also latched (see TakeFirstError) so callers that cannot
  // return a Status — the Dataset operators — still surface it to the
  // job driver.
  Status RunStage(const std::string& name, std::vector<std::function<void()>> tasks);

  // Returns the first stage failure since the last call (OK if none)
  // and clears the latch. JobDriver::Submit consumes this after each
  // job so a UDF exception anywhere in the job fails the job.
  Status TakeFirstError();

  size_t num_workers() const { return pool_.num_threads(); }
  std::vector<StageInfo> stage_history() const;
  uint64_t stages_run() const;

 private:
  ThreadPool pool_;
  mutable std::mutex mu_;
  std::vector<StageInfo> history_;
  Status first_error_;
};

}  // namespace velox

#endif  // VELOX_BATCH_EXECUTOR_H_
