// Batch job abstraction + driver.
//
// The paper treats offline training as "an opaque Spark UDF" submitted
// by the model manager when a model goes stale (§4.2, §6 retrain).
// BatchJob is that UDF surface; JobDriver runs jobs sequentially (the
// cluster is shared) and records a history the manager can inspect.
#ifndef VELOX_BATCH_JOB_H_
#define VELOX_BATCH_JOB_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "batch/executor.h"
#include "common/result.h"

namespace velox {

class BatchJob {
 public:
  virtual ~BatchJob() = default;
  virtual std::string name() const = 0;
  virtual Status Run(BatchExecutor* executor) = 0;
};

struct JobRecord {
  std::string name;
  bool succeeded = false;
  std::string error;
  double wall_millis = 0.0;
};

class JobDriver {
 public:
  explicit JobDriver(size_t num_workers);

  // Runs the job synchronously on this driver's executor.
  Status Submit(BatchJob* job);

  BatchExecutor* executor() { return &executor_; }
  std::vector<JobRecord> history() const;
  uint64_t jobs_run() const;

 private:
  BatchExecutor executor_;
  mutable std::mutex mu_;
  std::vector<JobRecord> history_;
};

}  // namespace velox

#endif  // VELOX_BATCH_JOB_H_
