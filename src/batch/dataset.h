// Dataset<T>: a partitioned, in-memory collection with data-parallel
// operators (map / filter / group-by / aggregate / collect), executed
// stage-by-stage on a BatchExecutor. A deliberately small, deterministic
// subset of the RDD model — exactly the surface the Velox offline
// (re)training jobs need.
//
// Semantics notes:
//  * Operators are eager (each call runs one stage); there is no DAG
//    optimizer and no mid-query fault tolerance — the paper argues those
//    are batch-tier concerns ("mid-query fault tolerance guarantees ...
//    are overkill" for serving, §1), and our batch tier is a simulator.
//  * GroupBy performs a hash shuffle: elements are re-partitioned by
//    key hash so each output group is wholly contained in one partition.
//  * Operators return plain datasets, so a UDF exception cannot be
//    returned from here; RunStage latches it on the executor and
//    JobDriver::Submit fails the whole job (TakeFirstError). Output
//    partitions of a failed stage may be partially filled.
#ifndef VELOX_BATCH_DATASET_H_
#define VELOX_BATCH_DATASET_H_

#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "batch/executor.h"
#include "cluster/router.h"
#include "common/logging.h"

namespace velox {

template <typename T>
class Dataset {
 public:
  Dataset() = default;
  Dataset(BatchExecutor* executor, std::vector<std::vector<T>> partitions)
      : executor_(executor), partitions_(std::move(partitions)) {
    VELOX_CHECK(executor_ != nullptr);
  }

  // Splits `data` round-robin into `num_partitions` partitions.
  static Dataset<T> Parallelize(BatchExecutor* executor, std::vector<T> data,
                                size_t num_partitions) {
    VELOX_CHECK_GT(num_partitions, 0u);
    std::vector<std::vector<T>> parts(num_partitions);
    for (auto& p : parts) p.reserve(data.size() / num_partitions + 1);
    for (size_t i = 0; i < data.size(); ++i) {
      parts[i % num_partitions].push_back(std::move(data[i]));
    }
    return Dataset<T>(executor, std::move(parts));
  }

  size_t num_partitions() const { return partitions_.size(); }

  size_t Count() const {
    size_t n = 0;
    for (const auto& p : partitions_) n += p.size();
    return n;
  }

  const std::vector<T>& partition(size_t i) const { return partitions_[i]; }
  BatchExecutor* executor() const { return executor_; }

  // One output element per input element.
  template <typename U>
  Dataset<U> Map(const std::function<U(const T&)>& fn) const {
    std::vector<std::vector<U>> out(partitions_.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(partitions_.size());
    for (size_t i = 0; i < partitions_.size(); ++i) {
      tasks.push_back([this, &out, &fn, i] {
        out[i].reserve(partitions_[i].size());
        for (const T& item : partitions_[i]) out[i].push_back(fn(item));
      });
    }
    executor_->RunStage("map", std::move(tasks));
    return Dataset<U>(executor_, std::move(out));
  }

  Dataset<T> Filter(const std::function<bool(const T&)>& pred) const {
    std::vector<std::vector<T>> out(partitions_.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(partitions_.size());
    for (size_t i = 0; i < partitions_.size(); ++i) {
      tasks.push_back([this, &out, &pred, i] {
        for (const T& item : partitions_[i]) {
          if (pred(item)) out[i].push_back(item);
        }
      });
    }
    executor_->RunStage("filter", std::move(tasks));
    return Dataset<T>(executor_, std::move(out));
  }

  // Hash-shuffles by key so each key's group lives in one partition,
  // then materializes (key, values) pairs.
  template <typename K>
  Dataset<std::pair<K, std::vector<T>>> GroupBy(
      const std::function<K(const T&)>& key_fn) const {
    const size_t np = partitions_.size();
    // Shuffle write: each input partition buckets its rows by target.
    std::vector<std::vector<std::vector<T>>> buckets(
        np, std::vector<std::vector<T>>(np));
    std::vector<std::function<void()>> shuffle_tasks;
    shuffle_tasks.reserve(np);
    for (size_t i = 0; i < np; ++i) {
      shuffle_tasks.push_back([this, &buckets, &key_fn, np, i] {
        for (const T& item : partitions_[i]) {
          size_t target =
              HashPartitioner::MixHash(std::hash<K>{}(key_fn(item))) % np;
          buckets[i][target].push_back(item);
        }
      });
    }
    executor_->RunStage("groupby-shuffle", std::move(shuffle_tasks));

    // Shuffle read + group: each output partition merges its buckets.
    using Group = std::pair<K, std::vector<T>>;
    std::vector<std::vector<Group>> out(np);
    std::vector<std::function<void()>> group_tasks;
    group_tasks.reserve(np);
    for (size_t target = 0; target < np; ++target) {
      group_tasks.push_back([&buckets, &out, &key_fn, np, target] {
        std::unordered_map<K, std::vector<T>> groups;
        for (size_t source = 0; source < np; ++source) {
          for (T& item : buckets[source][target]) {
            groups[key_fn(item)].push_back(std::move(item));
          }
        }
        out[target].reserve(groups.size());
        for (auto& [k, vs] : groups) out[target].emplace_back(k, std::move(vs));
      });
    }
    executor_->RunStage("groupby-merge", std::move(group_tasks));
    return Dataset<Group>(executor_, std::move(out));
  }

  // Tree aggregation: per-partition fold with `seq`, then a sequential
  // combine with `comb`. `A` must be copyable.
  template <typename A>
  A Aggregate(A zero, const std::function<void(A*, const T&)>& seq,
              const std::function<void(A*, const A&)>& comb) const {
    std::vector<A> partials(partitions_.size(), zero);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(partitions_.size());
    for (size_t i = 0; i < partitions_.size(); ++i) {
      tasks.push_back([this, &partials, &seq, i] {
        for (const T& item : partitions_[i]) seq(&partials[i], item);
      });
    }
    executor_->RunStage("aggregate", std::move(tasks));
    A result = zero;
    for (const A& p : partials) comb(&result, p);
    return result;
  }

  // Gathers all elements to the driver (partition order preserved).
  std::vector<T> Collect() const {
    std::vector<T> out;
    out.reserve(Count());
    for (const auto& p : partitions_) out.insert(out.end(), p.begin(), p.end());
    return out;
  }

  // Runs fn once per partition (for side-effecting sinks).
  void ForEachPartition(const std::function<void(size_t, const std::vector<T>&)>& fn) const {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(partitions_.size());
    for (size_t i = 0; i < partitions_.size(); ++i) {
      tasks.push_back([this, &fn, i] { fn(i, partitions_[i]); });
    }
    executor_->RunStage("foreach", std::move(tasks));
  }

 private:
  BatchExecutor* executor_ = nullptr;
  std::vector<std::vector<T>> partitions_;
};

}  // namespace velox

#endif  // VELOX_BATCH_DATASET_H_
