#include "batch/job.h"

#include "common/clock.h"
#include "common/logging.h"

namespace velox {

JobDriver::JobDriver(size_t num_workers) : executor_(num_workers) {}

Status JobDriver::Submit(BatchJob* job) {
  VELOX_CHECK(job != nullptr);
  Stopwatch watch;
  Status status = job->Run(&executor_);
  // A UDF exception inside any stage of this job (latched by the
  // executor because Dataset operators cannot return a Status) fails
  // the job even if Run() itself reported OK.
  Status stage_error = executor_.TakeFirstError();
  if (status.ok() && !stage_error.ok()) status = stage_error;
  JobRecord record;
  record.name = job->name();
  record.succeeded = status.ok();
  record.error = status.ok() ? "" : status.ToString();
  record.wall_millis = watch.ElapsedMillis();
  {
    std::lock_guard<std::mutex> lock(mu_);
    history_.push_back(std::move(record));
  }
  if (!status.ok()) {
    VELOX_LOG(WARNING) << "batch job '" << job->name()
                       << "' failed: " << status.ToString();
  }
  return status;
}

std::vector<JobRecord> JobDriver::history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

uint64_t JobDriver::jobs_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_.size();
}

}  // namespace velox
