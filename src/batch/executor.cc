#include "batch/executor.h"

#include "common/clock.h"

namespace velox {

BatchExecutor::BatchExecutor(size_t num_workers) : pool_(num_workers) {}

Status BatchExecutor::RunStage(const std::string& name,
                               std::vector<std::function<void()>> tasks) {
  Stopwatch watch;
  Status status =
      ParallelFor(&pool_, tasks.size(), [&tasks](size_t i) { tasks[i](); });
  StageInfo info;
  info.name = name;
  info.num_tasks = tasks.size();
  info.wall_millis = watch.ElapsedMillis();
  std::lock_guard<std::mutex> lock(mu_);
  history_.push_back(std::move(info));
  if (!status.ok() && first_error_.ok()) {
    first_error_ = Status(status.code(),
                          "stage '" + name + "': " + std::string(status.message()));
  }
  return status;
}

Status BatchExecutor::TakeFirstError() {
  std::lock_guard<std::mutex> lock(mu_);
  Status out = std::move(first_error_);
  first_error_ = Status::OK();
  return out;
}

std::vector<StageInfo> BatchExecutor::stage_history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

uint64_t BatchExecutor::stages_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_.size();
}

}  // namespace velox
