#!/usr/bin/env bash
# Docs-freshness check: greps the operator-facing docs for references
# that no longer match the tree — bench targets, BENCH_*.json sidecars,
# file paths, identifiers, and pipeline stage names. Pure text checks,
# no build required; run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
err() {
  echo "docs-freshness: $*" >&2
  fail=1
}

DOCS="README.md docs/architecture.md docs/operations.md docs/benchmarks.md"

# --- 1. bench targets <-> docs/benchmarks.md, both directions --------------
benches=$(sed -n 's/^velox_bench(\([a-z0-9_]*\)).*/\1/p' bench/CMakeLists.txt)
[ -n "$benches" ] || err "no velox_bench targets parsed from bench/CMakeLists.txt"
for b in $benches; do
  grep -q "\`$b\`" docs/benchmarks.md ||
    err "bench target '$b' is not documented in docs/benchmarks.md"
done
for b in $(sed -n 's/^| `\([a-z0-9_]*\)` |.*/\1/p' docs/benchmarks.md); do
  echo "$benches" | grep -qx "$b" ||
    err "docs/benchmarks.md documents '$b' but bench/CMakeLists.txt has no such target"
done

# --- 2. every BENCH_*.json a doc mentions is written by some bench source --
for j in $(grep -rhoE 'BENCH_[A-Za-z0-9_]+\.json' $DOCS DESIGN.md EXPERIMENTS.md | sort -u); do
  grep -rq "$j" bench/ ||
    err "docs mention $j but nothing under bench/ writes it"
done

# --- 3. backticked repo paths exist --------------------------------------
# Tokens like `src/core/model.h` or `core/model.h` (headers/sources are
# also resolved under src/); skip templated tokens (<N>, {h,cc}, globs).
for p in $(grep -rhoE '`[A-Za-z0-9_./-]+\.(h|cc|cpp|md|sh|yml|json)`' $DOCS |
           tr -d '\`' | sort -u); do
  case "$p" in BENCH_*.json) continue ;; esac  # build artifacts, checked above
  [ -e "$p" ] || [ -e "src/$p" ] ||
    err "docs reference path '$p' which does not exist (nor under src/)"
done

# --- 4. backticked identifiers exist in the tree -------------------------
# CamelCase / UPPER_SNAKE tokens (ItemDriftTracker, VELOX_BENCH_SMOKE, a
# leading Namespace::Member keeps its first component).
for sym in $(grep -rhoE '`[A-Za-z_][A-Za-z0-9_:]*`' $DOCS | tr -d '\`' |
             sed 's/::.*//' | grep -E '^[A-Za-z_]*[A-Z][A-Za-z0-9_]*$' |
             grep -vE '^(N|E|F|S|R|I|II|III|IV|V)$' | sort -u); do
  grep -rq --include='*.h' --include='*.cc' --include='*.cpp' -- "$sym" \
      src tests bench tools examples ||
    err "docs reference identifier '$sym' not found in src/tests/bench/tools/examples"
done

# --- 5. every pipeline stage the code defines is documented ---------------
for s in $(grep -oE '"[a-z_]+"' src/common/stage_trace.cc | tr -d '"' | sort -u); do
  [ "$s" = "unknown" ] && continue
  grep -q "\`$s\`" docs/operations.md ||
    err "stage '$s' (stage_trace.cc) is not documented in docs/operations.md"
done

if [ "$fail" -ne 0 ]; then
  echo "docs-freshness: FAILED" >&2
  exit 1
fi
echo "docs-freshness: OK"
