// velox_shell — interactive / scriptable front door to a Velox server.
//
//   velox_shell [--users N] [--items N] [--rank R] [--nodes N]
//               [--ratings path.dat] [--csv path.csv] [--seed S]
//               [--ann-min-items N] [--ann-nprobe N]
//               [--durability-dir path] [--wal-sync none|flush|fsync]
//               [--fsync-every N] [--snapshot-every N]
//               [--retrain-mode full|incremental|auto] [--drift-min-obs N]
//               [--drift-error E] [--auto-full-fraction F]
//               [--batch-max N] [--batch-delay-us U] [--batch-slo-us U]
//
// Reads commands from stdin (one per line; see `help`). With real
// MovieLens data pass --ratings (ml-1m/10m ::-format) or --csv
// (ml-latest); otherwise a synthetic MovieLens-shaped dataset is
// generated. Example session:
//
//   $ echo -e "train\npredict 1 42\ntopk 1 5\nreport" | build/tools/velox_shell
//
// --durability-dir journals every user-weight mutation (DESIGN.md
// §13). Recovery is deliberately NOT run at construction — the shell
// installs its model via `train`, which would otherwise overwrite the
// replayed state — so every session is `train` then `recover`: the
// recover replays the journal (a no-op on fresh files) and attaches
// it, after which mutations are logged. On a restart the pre-crash
// weights win:
//
//   $ echo -e "train\nrecover\nobserve 1 42 5\nquit" |
//       build/tools/velox_shell --durability-dir /tmp/dur
//   $ echo -e "train\nrecover\npredict 1 42\nreport" |
//       build/tools/velox_shell --durability-dir /tmp/dur
#include <cstdio>
#include <iostream>
#include <string>

#include "core/shell.h"
#include "core/velox.h"
#include "server/acceptor.h"

namespace {

// Minimal --flag value parser.
std::string FlagValue(int argc, char** argv, const std::string& flag,
                      const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace velox;

  int64_t users = std::stoll(FlagValue(argc, argv, "--users", "500"));
  int64_t items = std::stoll(FlagValue(argc, argv, "--items", "800"));
  int64_t rank = std::stoll(FlagValue(argc, argv, "--rank", "10"));
  int64_t nodes = std::stoll(FlagValue(argc, argv, "--nodes", "1"));
  uint64_t seed = std::stoull(FlagValue(argc, argv, "--seed", "42"));
  std::string ratings_path = FlagValue(argc, argv, "--ratings", "");
  std::string csv_path = FlagValue(argc, argv, "--csv", "");

  std::vector<Observation> dataset;
  if (!ratings_path.empty()) {
    auto loaded = LoadMovieLensRatings(ratings_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
    std::fprintf(stderr, "loaded %zu ratings from %s\n", dataset.size(),
                 ratings_path.c_str());
  } else if (!csv_path.empty()) {
    auto loaded = LoadMovieLensCsv(csv_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
    std::fprintf(stderr, "loaded %zu ratings from %s\n", dataset.size(),
                 csv_path.c_str());
  } else {
    SyntheticMovieLensConfig config;
    config.num_users = users;
    config.num_items = items;
    config.latent_rank = static_cast<size_t>(rank);
    config.seed = seed;
    auto generated = GenerateSyntheticMovieLens(config);
    if (!generated.ok()) {
      std::fprintf(stderr, "error: %s\n", generated.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(generated->ratings);
    std::fprintf(stderr, "generated %zu synthetic ratings (%lld users, %lld items)\n",
                 dataset.size(), static_cast<long long>(users),
                 static_cast<long long>(items));
  }

  AlsConfig als;
  als.rank = static_cast<size_t>(rank);
  als.lambda = 0.1;
  als.iterations = 10;
  als.weighted_regularization = true;
  VeloxServerConfig config;
  config.num_nodes = static_cast<int32_t>(nodes);
  config.dim = als.rank;
  config.seed = seed;
  // ANN candidate generation (DESIGN.md §11): catalogs below
  // ann.min_items never build an index; lowering both floors lets a
  // shell-sized catalog exercise the IVF path (`topk` + `stages`).
  config.ann.min_items = static_cast<size_t>(std::stoll(
      FlagValue(argc, argv, "--ann-min-items",
                std::to_string(config.ann.min_items))));
  config.topk_auto_ann_min_rows = static_cast<size_t>(std::stoll(
      FlagValue(argc, argv, "--ann-min-items",
                std::to_string(config.topk_auto_ann_min_rows))));
  config.ann_nprobe = static_cast<size_t>(
      std::stoll(FlagValue(argc, argv, "--ann-nprobe", "0")));
  // Nearline retraining (DESIGN.md §14): --retrain-mode steers what
  // `maybe-retrain` / the auto-retrain hook run; the explicit `retrain
  // <mode>` shell command overrides per invocation.
  std::string retrain_mode = FlagValue(argc, argv, "--retrain-mode", "full");
  if (retrain_mode == "full") {
    config.retrain.mode = RetrainMode::kFull;
  } else if (retrain_mode == "incremental") {
    config.retrain.mode = RetrainMode::kIncremental;
  } else if (retrain_mode == "auto") {
    config.retrain.mode = RetrainMode::kAuto;
  } else {
    std::fprintf(stderr, "error: unknown --retrain-mode '%s'\n",
                 retrain_mode.c_str());
    return 1;
  }
  config.retrain.incremental.min_observations = std::stoll(FlagValue(
      argc, argv, "--drift-min-obs",
      std::to_string(config.retrain.incremental.min_observations)));
  config.retrain.incremental.error_threshold = std::stod(FlagValue(
      argc, argv, "--drift-error",
      std::to_string(config.retrain.incremental.error_threshold)));
  config.retrain.incremental.auto_full_fraction = std::stod(FlagValue(
      argc, argv, "--auto-full-fraction",
      std::to_string(config.retrain.incremental.auto_full_fraction)));
  config.durability.dir = FlagValue(argc, argv, "--durability-dir", "");
  if (!config.durability.dir.empty()) {
    std::string sync = FlagValue(argc, argv, "--wal-sync", "flush");
    if (sync == "none") {
      config.durability.wal.sync = WalSyncPolicy::kNone;
    } else if (sync == "flush") {
      config.durability.wal.sync = WalSyncPolicy::kFlush;
    } else if (sync == "fsync") {
      config.durability.wal.sync = WalSyncPolicy::kFsync;
    } else {
      std::fprintf(stderr, "error: unknown --wal-sync '%s'\n", sync.c_str());
      return 1;
    }
    config.durability.wal.fsync_every_n =
        std::stoll(FlagValue(argc, argv, "--fsync-every", "1"));
    config.durability.snapshot_every = static_cast<uint64_t>(
        std::stoll(FlagValue(argc, argv, "--snapshot-every", "4096")));
    // The shell installs its model through `train` after construction;
    // replaying first would be overwritten. `recover` runs it on demand.
    config.durability.recover_on_start = false;
  }
  VeloxServer server(config,
                     std::make_unique<MatrixFactorizationModel>("shell", als));
  VeloxShell shell(&server, std::move(dataset));

  // Server plane with cross-request batching (DESIGN.md §15): the
  // `server` shell command reports admission/queue/batching state.
  // --batch-max > 1 turns adaptive batching on; --batch-slo-us > 0
  // enables the AIMD batch-size search against that SLO.
  FrontendOptions fopts;
  fopts.num_threads = 2;
  VeloxFrontend frontend(fopts, &server);
  AcceptorOptions aopts;
  aopts.dispatcher.batch_max = static_cast<size_t>(
      std::stoll(FlagValue(argc, argv, "--batch-max", "1")));
  aopts.dispatcher.batch_delay_micros =
      std::stoll(FlagValue(argc, argv, "--batch-delay-us", "200"));
  aopts.dispatcher.batch_slo_micros =
      std::stoll(FlagValue(argc, argv, "--batch-slo-us", "0"));
  RequestAcceptor acceptor(aopts, &frontend);
  shell.AttachServingPlane(&acceptor);

  std::fprintf(stderr, "velox shell ready — type `help` for commands\n");
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    auto result = shell.Execute(line);
    if (result.ok()) {
      if (!result.value().empty()) std::printf("%s\n", result.value().c_str());
    } else {
      std::printf("error: %s\n", result.status().ToString().c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}
