// Quickstart: train a matrix-factorization model offline, serve
// predictions, and apply online updates — the Listing 1 API end to end
// in ~60 lines.
//
//   build/examples/quickstart
#include <cstdio>

#include "core/velox.h"

int main() {
  using namespace velox;

  // 1. Data: a synthetic MovieLens-shaped ratings set (see
  //    data/movielens.h; swap in LoadMovieLensRatings for the real
  //    files).
  SyntheticMovieLensConfig data_config;
  data_config.num_users = 500;
  data_config.num_items = 800;
  data_config.latent_rank = 8;
  data_config.seed = 42;
  auto data = GenerateSyntheticMovieLens(data_config);
  if (!data.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %zu ratings\n", data->ratings.size());

  // 2. Model + server: personalized linear model over latent item
  //    factors (Eq. 1), trained with ALS on the batch substrate.
  AlsConfig als;
  als.rank = 8;
  als.lambda = 0.1;
  als.iterations = 10;
  VeloxServerConfig config;
  config.num_nodes = 1;
  config.dim = als.rank;
  VeloxServer server(config,
                     std::make_unique<MatrixFactorizationModel>("songs", als));

  // 3. Bootstrap: offline training installs model version 1.
  if (Status st = server.Bootstrap(data->ratings); !st.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("installed model version %d (training RMSE %.3f)\n",
              server.current_version(), server.VersionHistory()[0].training_rmse);

  // 4. Serve: point prediction and topK (Listing 1).
  Item song;
  song.id = data->ratings[0].item_id;
  uint64_t uid = data->ratings[0].uid;
  auto prediction = server.Predict(uid, song);
  if (prediction.ok()) {
    std::printf("predict(user=%llu, song=%llu) = %.2f\n",
                static_cast<unsigned long long>(uid),
                static_cast<unsigned long long>(song.id), prediction->score);
  }

  std::vector<Item> candidates;
  for (uint64_t i = 0; i < 30; ++i) {
    Item item;
    item.id = data->ratings[i].item_id;
    candidates.push_back(item);
  }
  auto top = server.TopK(uid, candidates, 5);
  if (top.ok()) {
    std::printf("top-5 for user %llu:", static_cast<unsigned long long>(uid));
    for (const auto& item : top->items) {
      std::printf(" %llu(%.2f)", static_cast<unsigned long long>(item.item_id),
                  item.score);
    }
    std::printf("\n");
  }

  // 5. Learn online: the user loves this song; the next prediction
  //    reflects it immediately (no batch retrain required).
  for (int i = 0; i < 5; ++i) {
    if (Status st = server.Observe(uid, song, 5.0); !st.ok()) {
      std::fprintf(stderr, "observe failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  auto updated = server.Predict(uid, song);
  if (updated.ok()) {
    std::printf("after 5 five-star ratings: predict = %.2f\n", updated->score);
  }

  std::printf("quality: %s\n",
              server.QualityReport().stale ? "model stale" : "model healthy");
  return 0;
}
