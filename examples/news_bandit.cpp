// Personalized news with contextual bandits — the paper's §5 "Bandits
// and Multiple Models" scenario (after Li et al., WWW'10). The editor's
// deployed model was trained on mainstream-news history, but a cohort
// of readers secretly loves long-form investigative pieces — a topic
// the model has zero weight on. Since only *recommended* articles
// generate engagement data, a greedy policy never learns this (the
// paper's feedback loop); LinUCB's "max sum of score and uncertainty"
// rule probes the unexplored topic dimensions and escapes. This example
// runs four policies side by side and prints the engagement gap.
//
//   build/examples/news_bandit
#include <cstdio>
#include <unordered_set>

#include "core/velox.h"

namespace {

constexpr uint64_t kNumArticles = 200;
constexpr uint64_t kNumReaders = 60;
constexpr size_t kTopics = 6;  // dims 0-2 mainstream, 3-5 investigative
constexpr int kRounds = 6000;

// Every 4th article is investigative long-form.
bool IsInvestigative(uint64_t article) { return article % 4 == 0; }

}  // namespace

int main() {
  using namespace velox;

  std::printf("== velox news recommendation with contextual bandits ==\n");

  Rng rng(314);
  // Articles embedded in topic space: mainstream pieces span dims 0-2,
  // investigative pieces dims 3-5.
  FactorMap article_topics;
  for (uint64_t a = 0; a < kNumArticles; ++a) {
    DenseVector f(kTopics);
    Rng article_rng(1000 + a);
    if (IsInvestigative(a)) {
      for (size_t k = 3; k < kTopics; ++k) f[k] = article_rng.UniformDouble(0.2, 0.8);
    } else {
      for (size_t k = 0; k < 3; ++k) f[k] = article_rng.UniformDouble(0.2, 0.8);
    }
    article_topics[a] = std::move(f);
  }
  // Readers: mild mainstream interest, strong appetite for long-form.
  FactorMap reader_interests;
  for (uint64_t r = 0; r < kNumReaders; ++r) {
    DenseVector w(kTopics);
    Rng reader_rng(2000 + r);
    for (size_t k = 0; k < 3; ++k) w[k] = 0.4 + reader_rng.Gaussian(0.0, 0.05);
    for (size_t k = 3; k < kTopics; ++k) w[k] = 1.4 + reader_rng.Gaussian(0.0, 0.1);
    reader_interests[r] = std::move(w);
  }

  auto run_policy = [&](const std::string& policy) {
    VeloxServerConfig config;
    config.num_nodes = 1;
    config.dim = kTopics;
    config.lambda = 0.5;
    config.bandit_policy = policy;
    config.batch_workers = 1;
    AlsConfig als;
    als.rank = kTopics;
    als.lambda = 0.5;
    als.iterations = 1;
    VeloxServer server(config,
                       std::make_unique<MatrixFactorizationModel>("news", als));
    RetrainOutput init;
    auto table =
        std::make_shared<MaterializedFeatureFunction::FactorTable>(article_topics);
    init.features = std::make_shared<MaterializedFeatureFunction>(
        std::shared_ptr<const MaterializedFeatureFunction::FactorTable>(table),
        kTopics);
    // The deployed model: trained on mainstream history only, so reader
    // weights are positive on dims 0-2 and zero on the investigative
    // dimensions.
    for (uint64_t r = 0; r < kNumReaders; ++r) {
      DenseVector w0(kTopics);
      for (size_t k = 0; k < 3; ++k) w0[k] = 0.5;
      init.user_weights[r] = std::move(w0);
    }
    init.training_rmse = 1.0;
    VELOX_CHECK_OK(server.InstallVersion(init).status());

    Rng local(271);
    double total_engagement = 0.0;
    int investigative_shown = 0;
    for (int round = 0; round < kRounds; ++round) {
      uint64_t reader = local.UniformU64(kNumReaders);
      // Today's front-page slate.
      std::vector<Item> slate;
      std::unordered_set<uint64_t> ids;
      while (slate.size() < 15) {
        uint64_t a = local.UniformU64(kNumArticles);
        if (!ids.insert(a).second) continue;
        Item item;
        item.id = a;
        slate.push_back(item);
      }
      auto top = server.TopK(reader, slate, 1);
      VELOX_CHECK_OK(top.status());
      uint64_t shown_article = top->items[0].item_id;
      if (IsInvestigative(shown_article)) ++investigative_shown;
      // Engagement signal: dwell-time proxy = interest dot topic + noise.
      double engagement = Dot(reader_interests[reader], article_topics[shown_article]) +
                          local.Gaussian(0.0, 0.1);
      total_engagement += engagement;
      Item item;
      item.id = shown_article;
      VELOX_CHECK_OK(server.ObserveWithProvenance(reader, item, engagement,
                                                  top->top_is_exploratory));
    }
    std::printf("%-20s mean engagement %.4f, investigative picks %.1f%%\n",
                policy.c_str(), total_engagement / kRounds,
                100.0 * investigative_shown / kRounds);
    return total_engagement / kRounds;
  };

  double greedy = run_policy("greedy");
  run_policy("epsilon_greedy:0.1");
  double linucb = run_policy("linucb:1.0");
  run_policy("thompson");

  std::printf(
      "\nLinUCB beats greedy by %.0f%% mean engagement: exploration escapes the\n"
      "feedback loop the paper warns about (\"a music recommendation service that\n"
      "only plays the current Top40 songs will never receive feedback ...\").\n",
      100.0 * (linucb - greedy) / std::abs(greedy));
  return 0;
}
