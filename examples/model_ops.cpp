// Model operations tour — the §2.1 "model lifecycle management"
// challenges as a day in the life of a Velox operator:
//
//  1. a multi-model deployment (Listing 1's ModelSchema dimension),
//  2. snapshotting a trained version to disk and restoring it into a
//     fresh server (restart without retraining),
//  3. automatic staleness-triggered retraining on an observe cadence,
//  4. a node failure with replicated storage: serving continues and
//     online-learned user weights are recovered,
//  5. the metrics report an operator would scrape.
//
//   build/examples/model_ops
#include <cstdio>

#include "core/velox.h"

namespace {

velox::Item MakeItem(uint64_t id) {
  velox::Item item;
  item.id = id;
  return item;
}

}  // namespace

int main() {
  using namespace velox;

  std::printf("== velox model ops tour ==\n\n");

  // -- 1. Deploy two models behind one dispatch surface. --------------
  SyntheticMovieLensConfig data_config;
  data_config.num_users = 300;
  data_config.num_items = 400;
  data_config.latent_rank = 6;
  data_config.seed = 11;
  auto songs_data = GenerateSyntheticMovieLens(data_config);
  data_config.seed = 22;
  auto films_data = GenerateSyntheticMovieLens(data_config);
  VELOX_CHECK_OK(songs_data.status());
  VELOX_CHECK_OK(films_data.status());

  AlsConfig als;
  als.rank = 6;
  als.iterations = 8;
  auto make_config = [&als] {
    VeloxServerConfig config;
    config.num_nodes = 3;
    config.dim = als.rank;
    config.storage.replication_factor = 2;
    config.auto_retrain_check_every = 50;
    config.evaluator.min_observations = 200;
    config.evaluator.baseline_from_heldout_samples = 200;
    config.evaluator.staleness_threshold_ratio = 2.0;
    config.updater.cross_validation_every = 1;
    config.batch_workers = 2;
    return config;
  };

  VeloxDeployment deployment;
  auto songs = deployment.AddModel(
      make_config(), std::make_unique<MatrixFactorizationModel>("songs", als));
  auto films = deployment.AddModel(
      make_config(), std::make_unique<MatrixFactorizationModel>("films", als));
  VELOX_CHECK_OK(songs.status());
  VELOX_CHECK_OK(films.status());
  VELOX_CHECK_OK(songs.value()->Bootstrap(songs_data->ratings));
  VELOX_CHECK_OK(films.value()->Bootstrap(films_data->ratings));
  for (const auto& m : deployment.ListModels()) {
    std::printf("deployed model '%s' v%d (%zu users)\n", m.name.c_str(),
                m.current_version, m.users);
  }

  // Schema-qualified Listing 1 calls.
  uint64_t uid = songs_data->ratings[0].uid;
  uint64_t item = songs_data->ratings[0].item_id;
  auto s = deployment.Predict("songs", uid, MakeItem(item));
  auto f = deployment.Predict("films", uid, MakeItem(item));
  if (s.ok() && f.ok()) {
    std::printf("predict(songs, u%llu, i%llu)=%.2f   predict(films, ...)=%.2f\n\n",
                static_cast<unsigned long long>(uid),
                static_cast<unsigned long long>(item), s->score, f->score);
  }

  // -- 2. Snapshot the songs model; restore it into a fresh server. ---
  auto version = songs.value()->registry()->Current();
  VELOX_CHECK_OK(version.status());
  RetrainOutput live;
  live.features = version.value()->features;
  live.user_weights = songs.value()->user_weights(0)->ExportWeights();
  for (int n = 1; n < 3; ++n) {
    for (auto& [id, w] : songs.value()->user_weights(n)->ExportWeights()) {
      live.user_weights[id] = w;
    }
  }
  live.training_rmse = version.value()->training_rmse;
  std::string snapshot_path = "/tmp/velox_songs.vxms";
  VELOX_CHECK_OK(
      SaveModelSnapshot(ModelSnapshot::FromRetrainOutput("songs", live), snapshot_path));
  std::printf("snapshotted 'songs' v%d -> %s\n", version.value()->version,
              snapshot_path.c_str());

  auto loaded = LoadModelSnapshot(snapshot_path);
  VELOX_CHECK_OK(loaded.status());
  auto restored_output = loaded->ToRetrainOutput();
  VELOX_CHECK_OK(restored_output.status());
  VeloxServer restored(make_config(),
                       std::make_unique<MatrixFactorizationModel>("songs", als));
  VELOX_CHECK_OK(restored.InstallVersion(restored_output.value()).status());
  auto check = restored.Predict(uid, MakeItem(item));
  std::printf("restored server predicts %.2f (original %.2f)\n\n",
              check.ok() ? check->score : -1.0, s.ok() ? s->score : -1.0);

  // -- 3. Automatic retraining: drift the films model; the observe
  //       cadence triggers the retrain without any operator polling. --
  Rng rng(7);
  // Healthy traffic first: the self-calibrating staleness baseline
  // (baseline_from_heldout_samples) must learn what fresh serving loss
  // looks like before drift can register as drift.
  for (int i = 0; i < 600; ++i) {
    const Observation& obs =
        films_data->ratings[rng.UniformU64(films_data->ratings.size())];
    VELOX_CHECK_OK(
        deployment.Observe("films", obs.uid, MakeItem(obs.item_id), obs.label));
  }
  int streamed = 0;
  while (films.value()->current_version() == 1 && streamed < 4000) {
    const Observation& obs =
        films_data->ratings[rng.UniformU64(films_data->ratings.size())];
    VELOX_CHECK_OK(deployment.Observe("films", obs.uid, MakeItem(obs.item_id),
                                      5.5 - obs.label));
    ++streamed;
  }
  std::printf("films drift: auto-retrained to v%d after %d drifted observations\n\n",
              films.value()->current_version(), streamed);

  // -- 4. Node failure: replicated storage keeps a learned preference. -
  uint64_t fan = songs_data->ratings[10].uid;
  uint64_t anthem = songs_data->ratings[10].item_id;
  for (int i = 0; i < 12; ++i) {
    VELOX_CHECK_OK(deployment.Observe("songs", fan, MakeItem(anthem), 5.0));
  }
  auto before = deployment.Predict("songs", fan, MakeItem(anthem));
  NodeId home = songs.value()->storage()->OwnerOf(fan).value();
  VELOX_CHECK_OK(songs.value()->FailNode(home));
  auto after = deployment.Predict("songs", fan, MakeItem(anthem));
  std::printf("node %d failed; fan's prediction %.2f -> %.2f (weights recovered "
              "from replicas)\n\n",
              home, before.ok() ? before->score : -1.0,
              after.ok() ? after->score : -1.0);

  // -- 5. Operator metrics. -------------------------------------------
  std::printf("--- metrics (songs) ---\n%s",
              songs.value()->MetricsReport().c_str());
  std::remove(snapshot_path.c_str());
  return 0;
}
