// Targeted advertising — the paper's §2.1 lifecycle example ("an
// advertising service may run a series of ad campaigns, each with
// separate models over the same set of users") built on the
// *computational* feature-function path (§6): ads are featurized by an
// ensemble of SVMs learned offline, and each user carries a personal
// weight vector over that basis. Two campaigns run as two VeloxServer
// instances over the same user population; click feedback personalizes
// each campaign's user weights online.
//
//   build/examples/ad_targeting
#include <cstdio>
#include <unordered_map>

#include "core/velox.h"

namespace {

constexpr size_t kAdAttributes = 12;  // raw creative features
constexpr size_t kBasisDim = 16;      // SVM-ensemble output dimension
constexpr uint64_t kNumAds = 400;
constexpr uint64_t kNumUsers = 300;

}  // namespace

int main() {
  using namespace velox;

  std::printf("== velox ad targeting (computational features) ==\n");

  // Shared ad catalog: each ad has raw creative attributes.
  Rng rng(2024);
  auto catalog = std::make_shared<std::unordered_map<uint64_t, Item>>();
  for (uint64_t ad = 0; ad < kNumAds; ++ad) {
    Item item;
    item.id = ad;
    DenseVector attrs(kAdAttributes);
    for (size_t k = 0; k < kAdAttributes; ++k) attrs[k] = rng.Gaussian();
    item.attributes = attrs;
    (*catalog)[ad] = item;
  }

  // θ: an SVM ensemble "learned offline" (here: fixed random
  // hyperplanes standing in for the offline classifiers).
  auto basis = std::make_shared<SvmEnsembleFeatureFunction>(kAdAttributes, kBasisDim,
                                                            /*seed=*/7);

  // Ground-truth click propensity per (campaign, user): a weight vector
  // in basis space.
  auto true_score = [&](const FactorMap& prefs, uint64_t uid, uint64_t ad) {
    auto f = basis->Features((*catalog)[ad]);
    VELOX_CHECK_OK(f.status());
    return Dot(prefs.at(uid), f.value());
  };

  // Two campaigns with different audiences over the same users.
  const char* campaign_names[2] = {"spring_sale", "brand_awareness"};
  std::unique_ptr<VeloxServer> campaigns[2];
  FactorMap campaign_truth[2];
  for (int c = 0; c < 2; ++c) {
    for (uint64_t u = 0; u < kNumUsers; ++u) {
      campaign_truth[c][u] =
          InitFactor(kBasisDim, 0.8, 100 + static_cast<uint64_t>(c), u);
    }
    // Historical impression logs: labels from the planted propensities.
    std::vector<Observation> history;
    for (uint64_t u = 0; u < kNumUsers; ++u) {
      for (int j = 0; j < 25; ++j) {
        uint64_t ad = rng.UniformU64(kNumAds);
        history.push_back(Observation{
            u, ad, true_score(campaign_truth[c], u, ad) + rng.Gaussian(0.0, 0.2),
            static_cast<int64_t>(j)});
      }
    }
    VeloxServerConfig config;
    config.num_nodes = 2;
    config.dim = kBasisDim;
    config.lambda = 0.05;
    config.bandit_policy = "epsilon_greedy:0.05";
    // Click labels carry noise the training RMSE does not reflect;
    // calibrate the staleness baseline from early serving losses.
    config.evaluator.baseline_from_heldout_samples = 200;
    config.evaluator.staleness_threshold_ratio = 2.0;
    config.batch_workers = 2;
    campaigns[c] = std::make_unique<VeloxServer>(
        config, std::make_unique<ComputationalModel>(campaign_names[c], basis,
                                                     catalog, 0.05));
    VELOX_CHECK_OK(campaigns[c]->Bootstrap(history));
    std::printf("campaign '%s': trained v%d on %zu impressions (rmse %.3f)\n",
                campaign_names[c], campaigns[c]->current_version(), history.size(),
                campaigns[c]->VersionHistory()[0].training_rmse);
  }

  // Serving: for each page view, both campaigns score a slate of ads;
  // the better campaign wins the slot; the click outcome feeds back.
  int wins[2] = {0, 0};
  double realized[2] = {0.0, 0.0};
  for (int impression = 0; impression < 4000; ++impression) {
    uint64_t uid = rng.UniformU64(kNumUsers);
    std::vector<Item> slate;
    for (int j = 0; j < 10; ++j) slate.push_back((*catalog)[rng.UniformU64(kNumAds)]);

    ScoredItem best[2];
    for (int c = 0; c < 2; ++c) {
      auto top = campaigns[c]->TopK(uid, slate, 1);
      VELOX_CHECK_OK(top.status());
      best[c] = top->items[0];
    }
    int winner = best[0].score >= best[1].score ? 0 : 1;
    ++wins[winner];
    double outcome = true_score(campaign_truth[winner], uid, best[winner].item_id) +
                     rng.Gaussian(0.0, 0.2);
    realized[winner] += outcome;
    VELOX_CHECK_OK(campaigns[winner]->Observe(uid, (*catalog)[best[winner].item_id],
                                              outcome));
  }
  for (int c = 0; c < 2; ++c) {
    std::printf("campaign '%s': won %d slots, mean realized score %.3f\n",
                campaign_names[c], wins[c],
                wins[c] > 0 ? realized[c] / wins[c] : 0.0);
  }

  // Lifecycle check: per-campaign model health is tracked separately.
  for (int c = 0; c < 2; ++c) {
    auto report = campaigns[c]->QualityReport();
    std::printf("campaign '%s': %lld online observations, mean loss %.3f, %s\n",
                campaign_names[c],
                static_cast<long long>(report.observations_since_baseline),
                report.mean_online_loss, report.stale ? "STALE" : "healthy");
  }
  return 0;
}
