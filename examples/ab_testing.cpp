// A/B testing with dynamic weighting — the abstract's "online model
// maintenance and selection (i.e., dynamic weighting)" as a product
// team would use it: two candidate recommenders (ALS-WR-trained "A" and
// SGD-trained "B") serve live traffic behind a ModelSelector that
// shifts requests toward whichever converts better, while both keep
// learning online from the feedback they receive.
//
//   build/examples/ab_testing
#include <cstdio>

#include "core/velox.h"

namespace {

velox::Item MakeItem(uint64_t id) {
  velox::Item item;
  item.id = id;
  return item;
}

}  // namespace

int main() {
  using namespace velox;

  std::printf("== velox A/B test with dynamic traffic weighting ==\n");

  SyntheticMovieLensConfig data_config;
  data_config.num_users = 600;
  data_config.num_items = 500;
  data_config.latent_rank = 10;
  data_config.noise_stddev = 0.35;
  data_config.min_ratings_per_user = 18;
  data_config.max_ratings_per_user = 28;
  data_config.seed = 77;
  auto data = GenerateSyntheticMovieLens(data_config);
  VELOX_CHECK_OK(data.status());

  VeloxServerConfig config;
  config.num_nodes = 1;
  config.dim = 10;
  config.bandit_policy = "";
  config.batch_workers = 2;
  config.evaluator.min_observations = 1LL << 40;

  // Variant A: ALS-WR. Variant B: SGD (fewer epochs — the challenger).
  AlsConfig als;
  als.rank = 10;
  als.lambda = 0.05;
  als.iterations = 8;
  als.weighted_regularization = true;
  VeloxServer variant_a(config,
                        std::make_unique<MatrixFactorizationModel>("als_wr", als));
  SgdConfig sgd;
  sgd.rank = 10;
  sgd.lambda = 0.05;
  sgd.learning_rate = 0.02;
  sgd.epochs = 10;
  VeloxServer variant_b(config,
                        std::make_unique<MatrixFactorizationModel>("sgd", sgd));
  VELOX_CHECK_OK(variant_a.Bootstrap(data->ratings));
  VELOX_CHECK_OK(variant_b.Bootstrap(data->ratings));
  std::printf("variant A (ALS-WR) train rmse %.3f; variant B (SGD) train rmse %.3f\n",
              variant_a.VersionHistory()[0].training_rmse,
              variant_b.VersionHistory()[0].training_rmse);

  ModelSelectorOptions sel_opts;
  sel_opts.policy = SelectionPolicy::kExpWeights;
  sel_opts.loss_cap = 4.0;
  ModelSelector selector(sel_opts);
  VELOX_CHECK_OK(selector.AddModel("A"));
  VELOX_CHECK_OK(selector.AddModel("B"));

  // Live traffic: each request is routed by the selector; the realized
  // squared error (vs the user's true taste) is the reported loss; the
  // serving variant also absorbs the feedback online.
  Rng rng(5);
  int served[2] = {0, 0};
  double loss_sum[2] = {0.0, 0.0};
  const int kRequests = 8000;
  for (int i = 0; i < kRequests; ++i) {
    const Observation& obs = data->ratings[rng.UniformU64(data->ratings.size())];
    double truth =
        std::clamp(data->TrueScore(obs.uid, obs.item_id) + rng.Gaussian(0.0, 0.2),
                   0.5, 5.0);
    auto pick = selector.SelectModel();
    VELOX_CHECK_OK(pick.status());
    VeloxServer* server = pick.value() == "A" ? &variant_a : &variant_b;
    int index = pick.value() == "A" ? 0 : 1;
    auto pred = server->Predict(obs.uid, MakeItem(obs.item_id));
    double loss = 4.0;
    if (pred.ok()) {
      double e = pred->score - truth;
      loss = 0.5 * e * e;
      VELOX_CHECK_OK(server->Observe(obs.uid, MakeItem(obs.item_id), truth));
    }
    ++served[index];
    loss_sum[index] += loss;
    VELOX_CHECK_OK(selector.ReportLoss(pick.value(), loss));
  }

  std::printf("\nafter %d requests:\n", kRequests);
  auto stats = selector.Stats();
  for (const auto& arm : stats) {
    const char* label = arm.name == "A" ? "A (ALS-WR)" : "B (SGD)   ";
    std::printf("  %s  traffic %5.1f%%  current weight %.3f  mean loss %.4f\n",
                label,
                100.0 * static_cast<double>(arm.pulls) / kRequests, arm.weight,
                arm.mean_loss);
  }
  int winner = loss_sum[0] / std::max(served[0], 1) <
                       loss_sum[1] / std::max(served[1], 1)
                   ? 0
                   : 1;
  std::printf(
      "\nthe selector concentrated traffic on variant %s without any manual\n"
      "experiment analysis — losing-variant exposure is bounded by the\n"
      "exploration floor.\n",
      winner == 0 ? "A" : "B");
  return 0;
}
