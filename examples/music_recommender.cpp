// Music recommendation service — the paper's §2 running example as a
// full data product: a 4-node Velox deployment serving personalized
// playlists from a matrix-factorization model, with a closed feedback
// loop (recommend → listen → rate → online update), automatic staleness
// detection when listener tastes drift, offline retraining on the batch
// tier, a warmed version swap, and an operator rollback at the end.
//
//   build/examples/music_recommender
#include <cstdio>

#include "core/velox.h"

namespace {

velox::Item Song(uint64_t id) {
  velox::Item item;
  item.id = id;
  return item;
}

void PrintVersions(velox::VeloxServer* server) {
  std::printf("  model versions:");
  for (const auto& v : server->VersionHistory()) {
    std::printf(" v%d(rmse=%.3f)%s", v.version, v.training_rmse,
                v.is_current ? "*" : "");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace velox;

  std::printf("== velox music recommender ==\n");

  // Historical listening data: 1000 listeners, 1500 songs, Zipfian
  // popularity (Top-40 effect).
  SyntheticMovieLensConfig data_config;
  data_config.num_users = 1000;
  data_config.num_items = 1500;
  data_config.latent_rank = 10;
  data_config.zipf_exponent = 1.0;
  data_config.min_ratings_per_user = 15;
  data_config.max_ratings_per_user = 30;
  data_config.seed = 1989;
  auto data = GenerateSyntheticMovieLens(data_config);
  VELOX_CHECK_OK(data.status());
  std::printf("catalog: %lld songs, %lld listeners, %zu historical ratings\n",
              static_cast<long long>(data_config.num_items),
              static_cast<long long>(data_config.num_users), data->ratings.size());

  // A 4-node deployment: item factors distributed across the storage
  // tier, requests routed to each listener's home node, LinUCB
  // exploration on playlist generation.
  AlsConfig als;
  als.rank = 10;
  als.lambda = 0.1;
  als.iterations = 10;
  VeloxServerConfig config;
  config.num_nodes = 4;
  config.dim = als.rank;
  config.distribute_item_features = true;
  config.bandit_policy = "linucb:0.3";
  config.evaluator.min_observations = 300;
  config.evaluator.staleness_threshold_ratio = 2.0;
  // Training RMSE understates serving loss; calibrate the staleness
  // baseline from the first 300 held-out losses after each (re)train.
  config.evaluator.baseline_from_heldout_samples = 300;
  config.evaluator.ewma_alpha = 0.05;
  config.updater.cross_validation_every = 1;
  config.batch_workers = 2;
  VeloxServer server(config,
                     std::make_unique<MatrixFactorizationModel>("songs", als));
  VELOX_CHECK_OK(server.Bootstrap(data->ratings));
  std::printf("bootstrapped: version %d serving on %d nodes\n",
              server.current_version(), config.num_nodes);
  PrintVersions(&server);

  // Closed-loop serving: each round a listener asks for a playlist,
  // listens to the top pick, and rates it with their true taste.
  Rng rng(7);
  WorkloadConfig wconfig;
  wconfig.num_users = data_config.num_users;
  wconfig.num_items = data_config.num_items;
  wconfig.zipf_exponent = 1.0;
  wconfig.topk_set_size = 25;
  wconfig.predict_fraction = 0.0;
  wconfig.topk_fraction = 1.0;
  auto workload = WorkloadGenerator::Make(wconfig);
  VELOX_CHECK_OK(workload.status());

  Histogram playlist_latency;
  int served = 0;
  int explored = 0;
  for (int round = 0; round < 3000; ++round) {
    Request req = workload->Next();
    std::vector<Item> slate;
    for (uint64_t id : req.items) slate.push_back(Song(id));
    Stopwatch watch;
    auto playlist = server.TopK(req.uid, slate, 10);
    playlist_latency.Record(watch.ElapsedMicros());
    if (!playlist.ok()) continue;
    ++served;
    if (playlist->top_is_exploratory) ++explored;
    uint64_t played = playlist->items[0].item_id;
    double rating =
        std::clamp(data->TrueScore(req.uid, played) + rng.Gaussian(0.0, 0.3), 0.5, 5.0);
    VELOX_CHECK_OK(server.ObserveWithProvenance(req.uid, Song(played), rating,
                                                playlist->top_is_exploratory));
  }
  auto lat = playlist_latency.Snapshot();
  std::printf(
      "served %d playlists (%.1f%% exploratory picks), p50=%.0fus p99=%.0fus\n",
      served, 100.0 * explored / std::max(served, 1), lat.p50, lat.p99);
  auto caches = server.AggregatedCacheStats();
  std::printf("feature cache hit rate: %.1f%%, prediction cache hit rate: %.1f%%\n",
              100.0 * caches.feature.HitRate(), 100.0 * caches.prediction.HitRate());
  auto net = server.NetworkStatistics();
  std::printf("storage traffic: %.1f%% remote (uid routing keeps W local)\n",
              100.0 * net.RemoteFraction());

  // Taste drift: a new genre sweeps the service — listeners now invert
  // their old preferences. The evaluator notices, the manager retrains.
  std::printf("\n-- taste drift begins --\n");
  int drift_rounds = 0;
  bool retrained = false;
  for (int round = 0; round < 4000 && !retrained; ++round) {
    const Observation& obs = data->ratings[rng.UniformU64(data->ratings.size())];
    double drifted = std::clamp(5.5 - obs.label, 0.5, 5.0);
    VELOX_CHECK_OK(server.Observe(obs.uid, Song(obs.item_id), drifted));
    ++drift_rounds;
    auto maybe = server.MaybeRetrain();
    VELOX_CHECK_OK(maybe.status());
    retrained = maybe.value();
  }
  if (retrained) {
    std::printf("staleness detected after %d drifted ratings -> retrained to v%d\n",
                drift_rounds, server.current_version());
  } else {
    std::printf("no retrain fired within %d drifted ratings\n", drift_rounds);
  }
  PrintVersions(&server);

  // Operator decides the old model was better for a legacy cohort and
  // rolls back — versioned snapshots make this a pointer swap.
  VELOX_CHECK_OK(server.Rollback(1));
  std::printf("rolled back to v1\n");
  PrintVersions(&server);

  auto report = server.QualityReport();
  std::printf("\nfinal quality report: %lld observations, mean online loss %.3f, %s\n",
              static_cast<long long>(report.observations_since_baseline),
              report.mean_online_loss, report.stale ? "STALE" : "healthy");
  return 0;
}
