#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace velox {
namespace {

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

UserWeightWalRecord SeedRecord(uint64_t uid) {
  UserWeightWalRecord r;
  r.kind = UserWeightWalRecord::Kind::kSeed;
  r.uid = uid;
  r.model_version = 3;
  r.weights = DenseVector({0.5, -1.25, static_cast<double>(uid)});
  return r;
}

UserWeightWalRecord UpdateRecord(uint64_t uid, double label) {
  UserWeightWalRecord r;
  r.kind = UserWeightWalRecord::Kind::kObservationUpdate;
  r.uid = uid;
  r.model_version = 3;
  r.features = DenseVector({1.0, 0.0, -2.5});
  r.label = label;
  return r;
}

TEST(UserWeightWalRecordTest, SeedRoundTrip) {
  auto record = SeedRecord(42);
  auto decoded = UserWeightWalRecord::Deserialize(record.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, UserWeightWalRecord::Kind::kSeed);
  EXPECT_EQ(decoded->uid, 42u);
  EXPECT_EQ(decoded->model_version, 3);
  EXPECT_EQ(decoded->weights, record.weights);
}

TEST(UserWeightWalRecordTest, ObservationUpdateRoundTrip) {
  auto record = UpdateRecord(7, 4.5);
  auto decoded = UserWeightWalRecord::Deserialize(record.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, UserWeightWalRecord::Kind::kObservationUpdate);
  EXPECT_EQ(decoded->uid, 7u);
  EXPECT_EQ(decoded->features, record.features);
  EXPECT_EQ(decoded->label, 4.5);
}

TEST(UserWeightWalRecordTest, VersionResetRoundTrip) {
  UserWeightWalRecord record;
  record.kind = UserWeightWalRecord::Kind::kVersionReset;
  record.model_version = 9;
  auto decoded = UserWeightWalRecord::Deserialize(record.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, UserWeightWalRecord::Kind::kVersionReset);
  EXPECT_EQ(decoded->model_version, 9);
}

TEST(UserWeightWalRecordTest, RejectsForeignAndMalformedPayloads) {
  // Wrong leading magic (e.g. an observation-log payload).
  EXPECT_TRUE(UserWeightWalRecord::Deserialize({0x00, 0x01, 0x02}).status().IsInvalidArgument());
  // Empty (reader underflow, not a magic mismatch).
  EXPECT_FALSE(UserWeightWalRecord::Deserialize({}).ok());
  // Unknown kind byte.
  auto bytes = SeedRecord(1).Serialize();
  bytes[1] = 0x7f;
  EXPECT_TRUE(UserWeightWalRecord::Deserialize(bytes).status().IsInvalidArgument());
  // Trailing garbage after a valid record.
  bytes = SeedRecord(1).Serialize();
  bytes.push_back(0xee);
  EXPECT_TRUE(UserWeightWalRecord::Deserialize(bytes).status().IsInvalidArgument());
  // Truncated body.
  bytes = SeedRecord(1).Serialize();
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(UserWeightWalRecord::Deserialize(bytes).ok());
}

TEST(SnapshotFileTest, SaveLoadRoundTrip) {
  std::string path = TempPath("uw.snap");
  std::vector<uint8_t> state = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  ASSERT_TRUE(SaveUserWeightSnapshotFile(path, state, 1234, 99000).ok());
  auto loaded = LoadUserWeightSnapshotFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->state, state);
  EXPECT_EQ(loaded->wal_records_covered, 1234u);
  EXPECT_EQ(loaded->wal_bytes_covered, 99000u);
  // Overwrite is atomic and picks up the new cover point.
  ASSERT_TRUE(SaveUserWeightSnapshotFile(path, state, 5678, 123456).ok());
  loaded = LoadUserWeightSnapshotFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->wal_records_covered, 5678u);
  EXPECT_EQ(loaded->wal_bytes_covered, 123456u);
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, CorruptStateFailsCrc) {
  std::string path = TempPath("uw_corrupt.snap");
  std::vector<uint8_t> state(64, 0x5a);
  ASSERT_TRUE(SaveUserWeightSnapshotFile(path, state, 10, 0).ok());
  {
    // Flip one byte of the state payload (past the 28-byte header and
    // the 8-byte length prefix).
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(40);
    byte ^= 0x01;
    f.write(&byte, 1);
  }
  auto loaded = LoadUserWeightSnapshotFile(path);
  EXPECT_TRUE(loaded.status().IsIoError()) << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, MissingFileIsError) {
  EXPECT_FALSE(LoadUserWeightSnapshotFile(TempPath("no_such.snap")).ok());
}

TEST(SnapshotFileTest, ForeignFileRejected) {
  std::string path = TempPath("uw_foreign.snap");
  { std::ofstream(path) << "definitely not a snapshot"; }
  EXPECT_FALSE(LoadUserWeightSnapshotFile(path).ok());
  std::remove(path.c_str());
}

UserWeightJournalOptions JournalOptions(const std::string& stem) {
  UserWeightJournalOptions options;
  options.wal_path = TempPath(stem + ".wal");
  options.snapshot_path = TempPath(stem + ".snap");
  return options;
}

void Cleanup(const UserWeightJournalOptions& options) {
  std::remove(options.wal_path.c_str());
  std::remove(options.snapshot_path.c_str());
}

TEST(UserWeightJournalTest, FreshOpenRecoversNothing) {
  auto options = JournalOptions("uwj_fresh");
  auto journal = UserWeightJournal::Open(options);
  ASSERT_TRUE(journal.ok());
  auto recovery = (*journal)->TakeRecovered();
  EXPECT_FALSE(recovery.snapshot_loaded);
  EXPECT_TRUE(recovery.suffix.empty());
  EXPECT_EQ(recovery.wal_records, 0u);
  EXPECT_TRUE(recovery.wal_clean);
  Cleanup(options);
}

TEST(UserWeightJournalTest, WalOnlyRecoveryReplaysFromGenesis) {
  auto options = JournalOptions("uwj_walonly");
  {
    auto journal = UserWeightJournal::Open(options);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(SeedRecord(1)).ok());
    ASSERT_TRUE((*journal)->Append(UpdateRecord(1, 2.0)).ok());
    ASSERT_TRUE((*journal)->Append(UpdateRecord(1, 3.0)).ok());
    EXPECT_EQ((*journal)->records(), 3u);
    EXPECT_EQ((*journal)->appends(), 3u);
  }
  auto journal = UserWeightJournal::Open(options);
  ASSERT_TRUE(journal.ok());
  auto recovery = (*journal)->TakeRecovered();
  EXPECT_FALSE(recovery.snapshot_loaded);
  EXPECT_EQ(recovery.snapshot_covers, 0u);
  ASSERT_EQ(recovery.suffix.size(), 3u);
  EXPECT_EQ(recovery.suffix[0].kind, UserWeightWalRecord::Kind::kSeed);
  EXPECT_EQ(recovery.suffix[2].label, 3.0);
  EXPECT_EQ(recovery.wal_records, 3u);
  // Recovered records count toward the journal total (cut offset).
  EXPECT_EQ((*journal)->records(), 3u);
  EXPECT_EQ((*journal)->appends(), 0u);
  Cleanup(options);
}

TEST(UserWeightJournalTest, SnapshotPlusSuffixRecovery) {
  auto options = JournalOptions("uwj_snap");
  std::vector<uint8_t> state = {9, 9, 9};
  {
    auto journal = UserWeightJournal::Open(options);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(SeedRecord(1)).ok());
    ASSERT_TRUE((*journal)->Append(UpdateRecord(1, 2.0)).ok());
    ASSERT_TRUE(
        (*journal)->WriteSnapshot(state, (*journal)->records(), (*journal)->bytes()).ok());
    EXPECT_EQ((*journal)->snapshots_written(), 1u);
    // Two records past the snapshot.
    ASSERT_TRUE((*journal)->Append(UpdateRecord(1, 3.0)).ok());
    ASSERT_TRUE((*journal)->Append(UpdateRecord(1, 4.0)).ok());
  }
  auto journal = UserWeightJournal::Open(options);
  ASSERT_TRUE(journal.ok());
  auto recovery = (*journal)->TakeRecovered();
  EXPECT_TRUE(recovery.snapshot_loaded);
  EXPECT_EQ(recovery.snapshot_state, state);
  EXPECT_EQ(recovery.snapshot_covers, 2u);
  ASSERT_EQ(recovery.suffix.size(), 2u);
  EXPECT_EQ(recovery.suffix[0].label, 3.0);
  EXPECT_EQ(recovery.suffix[1].label, 4.0);
  EXPECT_EQ(recovery.wal_records, 4u);
  Cleanup(options);
}

TEST(UserWeightJournalTest, CoveredWalPrefixIsNeverRead) {
  // Byte-offset resume means the snapshot-covered prefix is not even
  // scanned at Open(): corrupting it must not disturb recovery.
  auto options = JournalOptions("uwj_prefix");
  std::vector<uint8_t> state = {7, 7};
  {
    auto journal = UserWeightJournal::Open(options);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(SeedRecord(1)).ok());
    ASSERT_TRUE((*journal)->Append(UpdateRecord(1, 1.0)).ok());
    ASSERT_TRUE(
        (*journal)->WriteSnapshot(state, (*journal)->records(), (*journal)->bytes()).ok());
    ASSERT_TRUE((*journal)->Append(UpdateRecord(1, 9.0)).ok());
  }
  {
    // Smash the first record's header — genesis replay would now fail.
    std::fstream f(options.wal_path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    const char garbage[4] = {'\xff', '\xff', '\xff', '\xff'};
    f.write(garbage, 4);
  }
  auto journal = UserWeightJournal::Open(options);
  ASSERT_TRUE(journal.ok());
  auto recovery = (*journal)->TakeRecovered();
  EXPECT_TRUE(recovery.snapshot_loaded);
  EXPECT_EQ(recovery.snapshot_state, state);
  EXPECT_EQ(recovery.snapshot_covers, 2u);
  ASSERT_EQ(recovery.suffix.size(), 1u);
  EXPECT_EQ(recovery.suffix[0].label, 9.0);
  EXPECT_TRUE(recovery.wal_clean);
  Cleanup(options);
}

TEST(UserWeightJournalTest, SnapshotAheadOfTornWalWinsOutright) {
  auto options = JournalOptions("uwj_ahead");
  std::vector<uint8_t> state = {1, 2, 3};
  {
    auto journal = UserWeightJournal::Open(options);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 4; ++i) ASSERT_TRUE((*journal)->Append(UpdateRecord(1, i)).ok());
    ASSERT_TRUE(
        (*journal)->WriteSnapshot(state, (*journal)->records(), (*journal)->bytes()).ok());
  }
  // Lose the whole WAL (more extreme than any torn tail).
  std::remove(options.wal_path.c_str());
  auto journal = UserWeightJournal::Open(options);
  ASSERT_TRUE(journal.ok());
  auto recovery = (*journal)->TakeRecovered();
  EXPECT_TRUE(recovery.snapshot_loaded);
  EXPECT_EQ(recovery.snapshot_state, state);
  // The snapshot alone is served: its cover point still stands (the
  // index space stays monotonic), the suffix is empty, and the loss is
  // flagged via wal_clean.
  EXPECT_EQ(recovery.snapshot_covers, 4u);
  EXPECT_TRUE(recovery.suffix.empty());
  EXPECT_FALSE(recovery.wal_clean);
  EXPECT_EQ((*journal)->records(), 4u);
  Cleanup(options);
}

TEST(UserWeightJournalTest, CorruptSnapshotDegradesToGenesisReplay) {
  auto options = JournalOptions("uwj_degrade");
  {
    auto journal = UserWeightJournal::Open(options);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(SeedRecord(1)).ok());
    ASSERT_TRUE((*journal)->Append(UpdateRecord(1, 2.0)).ok());
    ASSERT_TRUE(
        (*journal)->WriteSnapshot({5, 5}, (*journal)->records(), (*journal)->bytes()).ok());
  }
  { std::ofstream(options.snapshot_path) << "garbage"; }
  auto journal = UserWeightJournal::Open(options);
  ASSERT_TRUE(journal.ok());
  auto recovery = (*journal)->TakeRecovered();
  EXPECT_FALSE(recovery.snapshot_loaded);
  ASSERT_EQ(recovery.suffix.size(), 2u);  // full replay from genesis
  Cleanup(options);
}

TEST(UserWeightJournalTest, UndecodablePayloadStopsSuffixAtPrefix) {
  auto options = JournalOptions("uwj_undecodable");
  {
    auto journal = UserWeightJournal::Open(options);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(SeedRecord(1)).ok());
  }
  {
    // Append a CRC-valid payload that is not a user-weight record.
    auto wal = WriteAheadLog::Open(options.wal_path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendPayload({0x01, 0x02, 0x03}).ok());
  }
  auto journal = UserWeightJournal::Open(options);
  ASSERT_TRUE(journal.ok());
  auto recovery = (*journal)->TakeRecovered();
  ASSERT_EQ(recovery.suffix.size(), 1u);
  EXPECT_EQ(recovery.undecodable, 1u);
  EXPECT_FALSE(recovery.wal_clean);
  Cleanup(options);
}

TEST(UserWeightJournalTest, SnapshotDueFollowsCadence) {
  auto options = JournalOptions("uwj_cadence");
  options.snapshot_every = 3;
  auto journal = UserWeightJournal::Open(options);
  ASSERT_TRUE(journal.ok());
  EXPECT_FALSE((*journal)->SnapshotDue());
  ASSERT_TRUE((*journal)->Append(SeedRecord(1)).ok());
  ASSERT_TRUE((*journal)->Append(UpdateRecord(1, 1.0)).ok());
  EXPECT_FALSE((*journal)->SnapshotDue());
  ASSERT_TRUE((*journal)->Append(UpdateRecord(1, 2.0)).ok());
  EXPECT_TRUE((*journal)->SnapshotDue());
  ASSERT_TRUE(
      (*journal)->WriteSnapshot({1}, (*journal)->records(), (*journal)->bytes()).ok());
  EXPECT_FALSE((*journal)->SnapshotDue());  // counter rearmed
  ASSERT_TRUE((*journal)->Append(UpdateRecord(1, 3.0)).ok());
  EXPECT_FALSE((*journal)->SnapshotDue());
  Cleanup(options);
}

TEST(UserWeightJournalTest, NoSnapshotPathDisablesSnapshots) {
  UserWeightJournalOptions options;
  options.wal_path = TempPath("uwj_nosnap.wal");
  options.snapshot_every = 1;
  auto journal = UserWeightJournal::Open(options);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(SeedRecord(1)).ok());
  EXPECT_FALSE((*journal)->SnapshotDue());
  EXPECT_TRUE((*journal)->WriteSnapshot({1}, 1, 0).IsFailedPrecondition());
  std::remove(options.wal_path.c_str());
}

}  // namespace
}  // namespace velox
