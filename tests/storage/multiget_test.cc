// Batched storage plane: MultiGet/MultiPut semantics — per-key
// statuses, sub-batch message accounting, duplicate-key merging,
// re-sharding of only the still-missing keys across retries, and
// per-sub-batch (never per-key) hedge/retry/deadline stats.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "storage/storage_client.h"
#include "storage/storage_cluster.h"

namespace velox {
namespace {

StorageClusterOptions SmallCluster(int32_t nodes, int32_t replicas = 1) {
  StorageClusterOptions opts;
  opts.num_nodes = nodes;
  opts.partitions_per_table = 4;
  opts.replication_factor = replicas;
  opts.network.local_call_nanos = 10;
  opts.network.remote_latency_nanos = 1000;
  opts.network.nanos_per_byte = 0.0;
  return opts;
}

StorageClientOptions RobustClient() {
  StorageClientOptions opts;
  opts.max_attempts = 3;
  opts.backoff_base_nanos = 1000;
  opts.op_deadline_nanos = 50'000'000;
  opts.hedge_reads = false;  // hedging tested separately
  return opts;
}

Value Payload(uint8_t tag) { return Value{tag, tag, tag}; }

TEST(MultiGetTest, RoundTripsInOrderWithOneMessagePerNode) {
  constexpr Key kKeys = 100;
  StorageCluster cluster(SmallCluster(4));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient client(&cluster, 0, RobustClient());

  std::vector<std::pair<Key, Value>> entries;
  std::vector<Key> keys;
  for (Key k = 0; k < kKeys; ++k) {
    entries.emplace_back(k, Payload(static_cast<uint8_t>(k)));
    keys.push_back(k);
  }
  for (const Status& s : client.MultiPut("t", std::move(entries))) {
    ASSERT_TRUE(s.ok());
  }

  cluster.network()->ResetStats();
  MultiGetResult result = client.MultiGet("t", keys);
  ASSERT_EQ(result.values.size(), keys.size());
  EXPECT_EQ(result.found(), static_cast<size_t>(kKeys));
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(result.values[i].ok()) << "key " << keys[i];
    EXPECT_EQ(result.values[i].value(), Payload(static_cast<uint8_t>(keys[i])));
  }

  // The batched plane: 100 keys travel as at most one request plus one
  // response message per storage node, not one round trip per key.
  NetworkStats net = cluster.network()->stats();
  EXPECT_LE(net.batched_messages, 8u);
  EXPECT_EQ(net.batched_keys, static_cast<uint64_t>(2 * kKeys));
  StorageClientStats stats = client.stats();
  EXPECT_EQ(stats.multiget_batches, 1u);
  EXPECT_EQ(stats.multiget_keys, static_cast<uint64_t>(kKeys));
  EXPECT_LE(stats.multiget_sub_batches, 4u);
  EXPECT_EQ(stats.multiget_merged_misses, 0u);
}

TEST(MultiPutTest, PlacesEveryReplicaLikePut) {
  StorageCluster cluster(SmallCluster(3, 2));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient client(&cluster, 0, RobustClient());

  std::vector<std::pair<Key, Value>> entries;
  for (Key k = 0; k < 60; ++k) entries.emplace_back(k, Payload(1));
  for (const Status& s : client.MultiPut("t", std::move(entries))) {
    ASSERT_TRUE(s.ok());
  }
  for (Key k = 0; k < 60; ++k) {
    std::vector<NodeId> owners = cluster.OwnersOf(k).value();
    for (NodeId owner : owners) {
      EXPECT_TRUE(cluster.store(owner)->GetTable("t").value()->Contains(k))
          << "key " << k << " missing on replica " << owner;
    }
  }
  EXPECT_EQ(client.stats().multiput_batches, 1u);
  EXPECT_EQ(client.stats().multiput_keys, 60u);
}

TEST(MultiGetTest, DuplicateKeysMergeIntoOneFetch) {
  StorageCluster cluster(SmallCluster(2));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient client(&cluster, 0, RobustClient());
  ASSERT_TRUE(client.Put("t", 7, Payload(7)).ok());

  cluster.network()->ResetStats();
  MultiGetResult result = client.MultiGet("t", {7, 7, 7});
  ASSERT_EQ(result.values.size(), 3u);
  for (const auto& v : result.values) {
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), Payload(7));
  }
  EXPECT_EQ(client.stats().multiget_merged_misses, 2u);
  // Only the unique key crossed the wire: one on the request leg, one
  // on the response.
  EXPECT_EQ(cluster.network()->stats().batched_keys, 2u);
}

TEST(MultiGetTest, PartialResultsMixNotFoundAndUnavailable) {
  StorageCluster cluster(SmallCluster(2, 1));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient writer(&cluster, 0, RobustClient());

  // Sort keys by owner so the batch mixes local (node 0) and remote
  // (node 1) sub-batches deterministically.
  std::vector<Key> local_present, local_absent, remote;
  for (Key k = 0; k < 64 && (local_present.size() < 3 || local_absent.empty() ||
                             remote.size() < 3);
       ++k) {
    if (cluster.OwnerOf(k).value() == 0) {
      if (local_present.size() < 3) {
        ASSERT_TRUE(writer.Put("t", k, Payload(static_cast<uint8_t>(k))).ok());
        local_present.push_back(k);
      } else if (local_absent.empty()) {
        local_absent.push_back(k);
      }
    } else if (remote.size() < 3) {
      ASSERT_TRUE(writer.Put("t", k, Payload(static_cast<uint8_t>(k))).ok());
      remote.push_back(k);
    }
  }
  ASSERT_EQ(local_present.size(), 3u);
  ASSERT_EQ(local_absent.size(), 1u);
  ASSERT_EQ(remote.size(), 3u);

  cluster.network()->SetPartitioned(0, 1, true);
  StorageClient reader(&cluster, 0, RobustClient());
  std::vector<Key> keys;
  keys.insert(keys.end(), local_present.begin(), local_present.end());
  keys.insert(keys.end(), local_absent.begin(), local_absent.end());
  keys.insert(keys.end(), remote.begin(), remote.end());
  MultiGetResult result = reader.MultiGet("t", keys);
  ASSERT_EQ(result.values.size(), keys.size());

  // Per-key statuses: present local keys succeed, the absent local key
  // is a definitive NotFound, the partitioned node's keys come back
  // Unavailable — one batch, three different outcomes.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(result.values[i].ok()) << "key " << keys[i];
  }
  EXPECT_TRUE(result.values[3].status().IsNotFound());
  for (size_t i = 4; i < 7; ++i) {
    EXPECT_TRUE(result.values[i].status().IsUnavailable()) << "key " << keys[i];
  }
  EXPECT_EQ(result.found(), 3u);

  // Retries re-shard only the still-missing keys: the local sub-batch
  // resolves definitively on pass 1, so passes 2 and 3 send exactly one
  // sub-batch each (the node-1 keys).
  StorageClientStats stats = reader.stats();
  EXPECT_EQ(stats.multiget_sub_batches, 2u + 2u);
  // ...and stats count per pass / per sub-batch, never per key.
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.deadline_misses, 0u);
}

TEST(MultiGetTest, HedgeCountsOncePerSubBatchNotPerKey) {
  StorageCluster cluster(SmallCluster(4, 2));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient writer(&cluster, 0, RobustClient());

  // Collect >= 3 keys sharing the exact same (primary, secondary)
  // replica pair with distinct nodes, so they land in one sub-batch
  // with one viable hedge target.
  std::map<std::pair<NodeId, NodeId>, std::vector<Key>> by_pair;
  std::pair<NodeId, NodeId> pair{-1, -1};
  for (Key k = 0; k < 500; ++k) {
    auto owners = cluster.OwnersOf(k).value();
    if (owners.size() != 2 || owners[0] == owners[1]) continue;
    auto& bucket = by_pair[{owners[0], owners[1]}];
    bucket.push_back(k);
    if (bucket.size() >= 3) {
      pair = {owners[0], owners[1]};
      break;
    }
  }
  ASSERT_NE(pair.first, -1) << "no shared replica pair found";
  std::vector<Key> keys = by_pair[pair];
  for (Key k : keys) {
    ASSERT_TRUE(writer.Put("t", k, Payload(static_cast<uint8_t>(k))).ok());
  }

  // Slow the shared primary; read from the secondary's node so the
  // hedged path is cheap and local.
  cluster.network()->SetNodeSlowdown(pair.first, 10.0);
  StorageClientOptions opts = RobustClient();
  opts.hedge_reads = true;
  opts.hedge_delay_nanos = 500;
  StorageClient reader(&cluster, pair.second, opts);

  MultiGetResult result = reader.MultiGet("t", keys);
  EXPECT_EQ(result.found(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(result.values[i].ok());
    EXPECT_EQ(result.values[i].value(), Payload(static_cast<uint8_t>(keys[i])));
  }
  // The whole 3-key sub-batch hedged as a unit: one hedged read, one
  // win — not one per key.
  EXPECT_EQ(reader.stats().hedged_reads, 1u);
  EXPECT_EQ(reader.stats().hedge_wins, 1u);
}

TEST(MultiGetTest, DeadlineMissCountsOncePerOp) {
  StorageCluster cluster(SmallCluster(2, 1));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient writer(&cluster, 0, RobustClient());
  std::vector<Key> keys;
  for (Key k = 0; keys.size() < 5; ++k) {
    if (cluster.OwnerOf(k).value() != 1) continue;
    ASSERT_TRUE(writer.Put("t", k, Payload(1)).ok());
    keys.push_back(k);
  }

  cluster.network()->SetPartitioned(0, 1, true);
  StorageClientOptions opts = RobustClient();
  opts.op_deadline_nanos = 3'000'000;  // two 2ms timeout waits overrun it
  StorageClient reader(&cluster, 0, opts);
  MultiGetResult result = reader.MultiGet("t", keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(result.values[i].status().IsUnavailable()) << "key " << keys[i];
  }
  EXPECT_TRUE(result.report.deadline_missed);
  // Five stranded keys, one abandoned op — the miss counts once.
  EXPECT_EQ(reader.stats().deadline_misses, 1u);
}

TEST(MultiPutTest, PartialFailureReportsPerEntryStatus) {
  StorageClusterOptions opts = SmallCluster(3, 2);
  StorageCluster cluster(opts);
  ASSERT_TRUE(cluster.CreateTable("t").ok());

  // Wedge one node's writes: entries replicated there fail (partially
  // — the healthy replica still takes the value), the rest succeed.
  ASSERT_TRUE(cluster.SetNodeFailWrites(2, true).ok());
  StorageClient client(&cluster, 0, RobustClient());
  std::vector<std::pair<Key, Value>> entries;
  std::vector<bool> touches_wedged;
  for (Key k = 0; k < 40; ++k) {
    entries.emplace_back(k, Payload(static_cast<uint8_t>(k)));
    bool wedged = false;
    std::vector<NodeId> owners = cluster.OwnersOf(k).value();
    for (NodeId owner : owners) wedged |= (owner == 2);
    touches_wedged.push_back(wedged);
  }
  std::vector<Status> statuses = client.MultiPut("t", std::move(entries));
  ASSERT_EQ(statuses.size(), touches_wedged.size());
  size_t failed = 0;
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (touches_wedged[i]) {
      EXPECT_FALSE(statuses[i].ok()) << "key " << i;
      ++failed;
    } else {
      EXPECT_TRUE(statuses[i].ok()) << "key " << i;
    }
  }
  ASSERT_GT(failed, 0u);
  // Each failed entry still landed on its healthy replica.
  EXPECT_EQ(client.stats().partial_writes, static_cast<uint64_t>(failed));
}

}  // namespace
}  // namespace velox
