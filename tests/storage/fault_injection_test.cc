// The fault-injected storage path end to end: deterministic fault
// plans, client retries/hedging/deadlines, and the serving tier's
// degradation ladder (DESIGN.md §9).
#include <gtest/gtest.h>

#include <vector>

#include "core/velox_server.h"
#include "data/movielens.h"
#include "storage/storage_client.h"
#include "storage/storage_cluster.h"

namespace velox {
namespace {

StorageClusterOptions SmallCluster(int32_t nodes, int32_t replicas) {
  StorageClusterOptions opts;
  opts.num_nodes = nodes;
  opts.partitions_per_table = 4;
  opts.replication_factor = replicas;
  opts.network.local_call_nanos = 10;
  opts.network.remote_latency_nanos = 1000;
  opts.network.nanos_per_byte = 0.0;
  return opts;
}

StorageClientOptions RobustClient() {
  StorageClientOptions opts;
  opts.max_attempts = 3;
  opts.backoff_base_nanos = 1000;
  opts.op_deadline_nanos = 50'000'000;
  opts.hedge_reads = false;  // hedging tested separately
  return opts;
}

Value Payload(uint8_t tag) { return Value{tag, tag, tag}; }

Item MakeItem(uint64_t id) {
  Item item;
  item.id = id;
  return item;
}

// R in {2,3} x drop in {0, 1%, 10%}: every key written while the
// network was healthy stays readable under faults — retries plus
// replica fallback absorb the loss.
TEST(FaultInjectionTest, ReadsSurviveDropMatrix) {
  constexpr int kKeys = 400;
  for (int32_t replicas : {2, 3}) {
    for (double drop : {0.0, 0.01, 0.10}) {
      StorageCluster cluster(SmallCluster(4, replicas));
      ASSERT_TRUE(cluster.CreateTable("t").ok());
      StorageClient writer(&cluster, 0, RobustClient());
      for (Key k = 0; k < kKeys; ++k) {
        ASSERT_TRUE(writer.Put("t", k, Payload(static_cast<uint8_t>(k))).ok());
      }

      FaultInjectionOptions faults;
      faults.drop_probability = drop;
      faults.seed = 0xabc123 + replicas;
      cluster.network()->InjectFaults(faults);

      StorageClient reader(&cluster, 1, RobustClient());
      for (Key k = 0; k < kKeys; ++k) {
        auto v = reader.Get("t", k);
        ASSERT_TRUE(v.ok()) << "R=" << replicas << " drop=" << drop << " key=" << k
                            << ": " << v.status().ToString();
        EXPECT_EQ(v.value(), Payload(static_cast<uint8_t>(k)));
      }
      if (drop >= 0.10) {
        // A lost primary round trip falls over to another replica
        // within the pass; a retry needs every replica to fail at once,
        // which at 10% drop is only common with R=2.
        EXPECT_GT(reader.stats().failovers, 0u);
        if (replicas == 2) {
          EXPECT_GT(reader.stats().retries, 0u)
              << "10% drop with R=2 must force at least one retry";
        }
      }
      if (drop == 0.0) {
        EXPECT_EQ(reader.stats().retries, 0u);
        EXPECT_EQ(cluster.network()->stats().dropped_messages, 0u);
      }
    }
  }
}

// The constructor-installed fault plan is live from the first message,
// and ClearFaults restores clean delivery.
TEST(FaultInjectionTest, ConstructorPlanAndClearFaults) {
  StorageClusterOptions opts = SmallCluster(2, 1);
  opts.inject_faults = true;
  opts.faults.drop_probability = 1.0;
  StorageCluster cluster(opts);
  ASSERT_TRUE(cluster.CreateTable("t").ok());

  // Seed a remote key behind the network's back (direct store handle).
  Key key = 0;
  while (cluster.OwnerOf(key).value() == 0) ++key;
  NodeId owner = cluster.OwnerOf(key).value();
  ASSERT_TRUE(
      cluster.store(owner)->GetTable("t").value()->Put(key, Payload(1)).ok());

  StorageClientOptions copts = RobustClient();
  copts.op_deadline_nanos = 0;  // no deadline: exhaust all retries
  StorageClient client(&cluster, 0, copts);
  auto blocked = client.Get("t", key);
  EXPECT_TRUE(blocked.status().IsUnavailable()) << blocked.status().ToString();
  EXPECT_GT(cluster.network()->stats().dropped_messages, 0u);

  cluster.network()->ClearFaults();
  EXPECT_TRUE(client.Get("t", key).ok());
}

// A slow primary replica triggers a hedged read that the fast replica
// wins; the served value is correct and both counters move.
TEST(FaultInjectionTest, HedgedReadRacesFastReplica) {
  StorageCluster cluster(SmallCluster(4, 2));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient writer(&cluster, 0, RobustClient());
  for (Key k = 0; k < 50; ++k) {
    ASSERT_TRUE(writer.Put("t", k, Payload(static_cast<uint8_t>(k))).ok());
  }

  // Pick a key with two distinct owners; slow its primary 10x and read
  // from the secondary's node so the alternative path is cheap.
  Key key = 0;
  std::vector<NodeId> owners;
  for (; key < 50; ++key) {
    owners = cluster.OwnersOf(key).value();
    if (owners.size() == 2 && owners[0] != owners[1]) break;
  }
  ASSERT_EQ(owners.size(), 2u);
  cluster.network()->SetNodeSlowdown(owners[0], 10.0);

  StorageClientOptions opts = RobustClient();
  opts.hedge_reads = true;
  opts.hedge_delay_nanos = 500;  // primary RTT is 20'000ns when slowed
  StorageClient reader(&cluster, owners[1], opts);
  bool was_remote = true;
  auto v = reader.Get("t", key, &was_remote);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), Payload(static_cast<uint8_t>(key)));
  EXPECT_FALSE(was_remote);  // served by the hedged (origin-local) replica
  EXPECT_EQ(reader.stats().hedged_reads, 1u);
  EXPECT_EQ(reader.stats().hedge_wins, 1u);

  // Without hedging the same read pays the slow primary.
  StorageClientOptions no_hedge = RobustClient();
  StorageClient plain(&cluster, owners[1], no_hedge);
  ASSERT_TRUE(plain.Get("t", key).ok());
  EXPECT_EQ(plain.stats().hedged_reads, 0u);
}

// A partitioned owner makes the op burn timeouts until the deadline
// cuts it off — the op fails Unavailable with deadline_missed set
// instead of retrying forever.
TEST(FaultInjectionTest, DeadlineCutsOffPartitionedOwner) {
  StorageCluster cluster(SmallCluster(2, 1));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient writer(&cluster, 0, RobustClient());
  Key key = 0;
  while (cluster.OwnerOf(key).value() != 1) ++key;
  ASSERT_TRUE(writer.Put("t", key, Payload(3)).ok());

  cluster.network()->SetPartitioned(0, 1, true);
  StorageClientOptions opts = RobustClient();
  opts.op_deadline_nanos = 3'000'000;  // two 2ms timeout waits overrun it
  StorageClient reader(&cluster, 0, opts);
  StorageOpReport report;
  bool was_remote = true;
  auto v = reader.Get("t", key, &was_remote, &report);
  EXPECT_TRUE(v.status().IsUnavailable());
  EXPECT_FALSE(was_remote);  // never indeterminate on failure
  EXPECT_TRUE(report.deadline_missed);
  EXPECT_EQ(reader.stats().deadline_misses, 1u);

  // Healing the partition heals the read.
  cluster.network()->SetPartitioned(0, 1, false);
  EXPECT_TRUE(reader.Get("t", key).ok());
}

// ---- serving-tier degradation ladder ----

VeloxServerConfig ServingConfig() {
  VeloxServerConfig config;
  config.num_nodes = 4;
  config.dim = 4;
  config.bandit_policy = "";
  config.batch_workers = 2;
  config.evaluator.min_observations = 1000000;
  config.distribute_item_features = true;
  config.use_feature_cache = false;    // every predict resolves via storage
  config.use_prediction_cache = false;
  config.storage.replication_factor = 2;
  return config;
}

std::unique_ptr<VeloxModel> SmallModel() {
  AlsConfig als;
  als.rank = 4;
  als.iterations = 5;
  return std::make_unique<MatrixFactorizationModel>("songs", als);
}

SyntheticDataset SmallData() {
  SyntheticMovieLensConfig config;
  config.num_users = 50;
  config.num_items = 60;
  config.latent_rank = 4;
  config.seed = 21;
  auto ds = GenerateSyntheticMovieLens(config);
  VELOX_CHECK_OK(ds.status());
  return std::move(ds).value();
}

// Finds a (uid, item) pair whose item replicas all live off the uid's
// home node, so feature resolution must cross the (faultable) network.
bool FindRemotePair(VeloxServer& server, const SyntheticDataset& data, uint64_t* uid,
                    uint64_t* item) {
  for (const Observation& obs : data.ratings) {
    NodeId home = server.storage()->OwnerOf(obs.uid).value();
    auto owners = server.storage()->OwnersOf(obs.item_id).value();
    bool local = false;
    for (NodeId n : owners) local |= (n == home);
    if (!local) {
      *uid = obs.uid;
      *item = obs.item_id;
      return true;
    }
  }
  return false;
}

// When feature resolution ultimately fails, Predict serves the
// degradation ladder: the stale board's last known score for the pair
// (bit-for-bit), else the bootstrap-mean score (bit-for-bit).
TEST(FaultInjectionTest, DegradedPredictionsMatchLadderExactly) {
  VeloxServer server(ServingConfig(), SmallModel());
  SyntheticDataset data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());

  uint64_t uid = 0;
  uint64_t item = 0;
  ASSERT_TRUE(FindRemotePair(server, data, &uid, &item));
  NodeId home = server.storage()->OwnerOf(uid).value();

  // Healthy phase: compute a real score for (uid, item) — it lands on
  // the stale board — and a few more to move the bootstrap mean.
  auto healthy = server.Predict(uid, MakeItem(item));
  ASSERT_TRUE(healthy.ok());
  ASSERT_FALSE(healthy->degraded);
  for (int i = 0; i < 5; ++i) {
    auto r = server.Predict(uid, MakeItem(data.ratings[i].item_id));
    ASSERT_TRUE(r.ok());
  }

  // Fault phase: all remote traffic drops; retries cannot save it.
  FaultInjectionOptions faults;
  faults.drop_probability = 1.0;
  server.storage()->network()->InjectFaults(faults);

  // Rung 1: the stale board replays the last computed score exactly.
  auto stale = server.Predict(uid, MakeItem(item));
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_TRUE(stale->degraded);
  EXPECT_EQ(stale->score, healthy->score);  // bit-for-bit

  // Rung 2: a never-scored pair falls to the bootstrap-mean score. Any
  // item never predicted for this uid works; synthesize one far outside
  // the catalog that still hashes to a remote owner.
  uint64_t probe = 1'000'000;
  for (;; ++probe) {
    auto owners = server.storage()->OwnersOf(probe).value();
    bool local = false;
    for (NodeId n : owners) local |= (n == home);
    if (!local) break;
  }
  double expected_mean =
      server.prediction_service(home)->fallback_score();
  auto mean = server.Predict(uid, MakeItem(probe));
  ASSERT_TRUE(mean.ok()) << mean.status().ToString();
  EXPECT_TRUE(mean->degraded);
  EXPECT_EQ(mean->score, expected_mean);  // bit-for-bit
  EXPECT_GT(server.DegradedCount(), 0u);

  // With degradation disabled the same failure surfaces as an error.
  VeloxServerConfig strict = ServingConfig();
  strict.degrade_on_unavailable = false;
  strict.storage_client.max_attempts = 1;
  VeloxServer strict_server(strict, SmallModel());
  ASSERT_TRUE(strict_server.Bootstrap(data.ratings).ok());
  uint64_t suid = 0;
  uint64_t sitem = 0;
  ASSERT_TRUE(FindRemotePair(strict_server, data, &suid, &sitem));
  strict_server.storage()->network()->InjectFaults(faults);
  EXPECT_TRUE(strict_server.Predict(suid, MakeItem(sitem)).status().IsUnavailable());
}

// Observe under total storage failure: the weight update is skipped but
// the observation still reaches the node-local log, flagged degraded.
TEST(FaultInjectionTest, ObserveDegradesButKeepsTheObservation) {
  VeloxServer server(ServingConfig(), SmallModel());
  SyntheticDataset data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());

  uint64_t uid = 0;
  uint64_t item = 0;
  ASSERT_TRUE(FindRemotePair(server, data, &uid, &item));

  size_t logged_before = server.storage()->AllObservations().size();
  FaultInjectionOptions faults;
  faults.drop_probability = 1.0;
  server.storage()->network()->InjectFaults(faults);

  uint64_t degraded_before = server.DegradedCount();
  ASSERT_TRUE(server.Observe(uid, MakeItem(item), 4.0).ok());
  EXPECT_GT(server.DegradedCount(), degraded_before);
  EXPECT_EQ(server.storage()->AllObservations().size(), logged_before + 1);
}

// FailNode never leaves was_remote indeterminate: reads served by a
// surviving replica report their true origin, and reads of lost keys
// report false.
TEST(FaultInjectionTest, FailNodeKeepsWasRemoteDeterminate) {
  for (int32_t replicas : {1, 2}) {
    StorageCluster cluster(SmallCluster(3, replicas));
    ASSERT_TRUE(cluster.CreateTable("t").ok());
    StorageClient writer(&cluster, 0, RobustClient());
    constexpr Key kKeys = 60;
    for (Key k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(writer.Put("t", k, Payload(static_cast<uint8_t>(k))).ok());
    }
    ASSERT_TRUE(cluster.FailNode(2).ok());

    StorageClient reader(&cluster, 0, RobustClient());
    for (Key k = 0; k < kKeys; ++k) {
      // Poison the flag both ways: whatever Get leaves behind must be
      // the same value, i.e. always written, never residual.
      bool flag_a = true;
      auto v = reader.Get("t", k, &flag_a);
      bool flag_b = false;
      auto v2 = reader.Get("t", k, &flag_b);
      EXPECT_EQ(v.ok(), v2.ok());
      EXPECT_EQ(flag_a, flag_b) << "was_remote indeterminate for key " << k;
      if (!v.ok()) {
        // Lost with R=1; the flag still reports a determinate "no".
        EXPECT_EQ(replicas, 1);
        EXPECT_FALSE(flag_a);
      }
    }
    if (replicas == 2) {
      // Replication makes the failure invisible to readers.
      for (Key k = 0; k < kKeys; ++k) {
        EXPECT_TRUE(reader.Get("t", k).ok()) << "key " << k;
      }
    }
  }
}

}  // namespace
}  // namespace velox
