// Tests for Partition, KvTable/KvStore, and ObservationLog.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "storage/kv_store.h"
#include "storage/observation_log.h"
#include "storage/partition.h"

namespace velox {
namespace {

Value Bytes(std::initializer_list<uint8_t> init) { return Value(init); }

TEST(PartitionTest, PutGetDelete) {
  Partition p;
  p.Put(1, Bytes({1, 2, 3}));
  auto v = p.Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), Bytes({1, 2, 3}));
  ASSERT_TRUE(p.Delete(1).ok());
  EXPECT_TRUE(p.Get(1).status().IsNotFound());
  EXPECT_TRUE(p.Delete(1).IsNotFound());
}

TEST(PartitionTest, OverwriteReplacesValue) {
  Partition p;
  p.Put(1, Bytes({1}));
  p.Put(1, Bytes({2}));
  EXPECT_EQ(p.Get(1).value(), Bytes({2}));
  EXPECT_EQ(p.size(), 1u);
}

TEST(PartitionTest, ContainsAndSize) {
  Partition p;
  EXPECT_FALSE(p.Contains(5));
  p.Put(5, Bytes({9}));
  EXPECT_TRUE(p.Contains(5));
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.SizeBytes(), sizeof(Key) + 1);
}

TEST(PartitionTest, ScanVisitsAllEntries) {
  Partition p;
  for (Key k = 0; k < 10; ++k) p.Put(k, Bytes({static_cast<uint8_t>(k)}));
  std::set<Key> seen;
  p.Scan([&seen](Key k, const Value&) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 10u);
}

TEST(PartitionTest, DumpCopiesEverything) {
  Partition p;
  p.Put(1, Bytes({1}));
  p.Put(2, Bytes({2}));
  auto rows = p.Dump();
  EXPECT_EQ(rows.size(), 2u);
}

TEST(PartitionTest, ConcurrentWritersDontLoseEntries) {
  Partition p;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&p, t] {
      for (Key k = 0; k < 1000; ++k) {
        p.Put(static_cast<Key>(t) * 10000 + k, Bytes({1}));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(p.size(), 4000u);
}

TEST(KvTableTest, RoutesKeysAcrossPartitions) {
  KvTable table("t", 8);
  EXPECT_EQ(table.num_partitions(), 8);
  for (Key k = 0; k < 500; ++k) table.Put(k, Bytes({1}));
  EXPECT_EQ(table.size(), 500u);
  // No partition should hold everything.
  size_t max_partition = 0;
  for (int32_t i = 0; i < 8; ++i) {
    max_partition = std::max(max_partition, table.partition(i)->size());
  }
  EXPECT_LT(max_partition, 200u);
}

TEST(KvTableTest, GetRoutesToSamePartitionAsPut) {
  KvTable table("t", 4);
  for (Key k = 100; k < 200; ++k) table.Put(k, Bytes({static_cast<uint8_t>(k)}));
  for (Key k = 100; k < 200; ++k) {
    auto v = table.Get(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(v.value()[0], static_cast<uint8_t>(k));
  }
}

TEST(KvTableTest, SnapshotSeesAllRows) {
  KvTable table("t", 4);
  for (Key k = 0; k < 50; ++k) table.Put(k, Bytes({1}));
  auto rows = table.Snapshot();
  EXPECT_EQ(rows.size(), 50u);
}

TEST(KvStoreTest, CreateGetDropTables) {
  KvStore store;
  auto t = store.CreateTable("users", 4);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(store.CreateTable("users").status().IsAlreadyExists());
  EXPECT_TRUE(store.GetTable("users").ok());
  EXPECT_TRUE(store.GetTable("nope").status().IsNotFound());
  ASSERT_TRUE(store.DropTable("users").ok());
  EXPECT_TRUE(store.DropTable("users").IsNotFound());
}

TEST(KvStoreTest, GetOrCreateIdempotent) {
  KvStore store;
  KvTable* a = store.GetOrCreateTable("t");
  KvTable* b = store.GetOrCreateTable("t");
  EXPECT_EQ(a, b);
}

TEST(KvStoreTest, TableNamesSorted) {
  KvStore store;
  store.GetOrCreateTable("zeta");
  store.GetOrCreateTable("alpha");
  auto names = store.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(KvStoreTest, TotalSizeBytesSumsTables) {
  KvStore store;
  store.GetOrCreateTable("a")->Put(1, Bytes({1, 2}));
  store.GetOrCreateTable("b")->Put(2, Bytes({3}));
  EXPECT_EQ(store.TotalSizeBytes(), 2 * sizeof(Key) + 3);
}

TEST(ObservationTest, SerializationRoundTrip) {
  Observation obs{42, 7, 4.5, 123456};
  auto bytes = obs.Serialize();
  auto back = Observation::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), obs);
}

TEST(ObservationTest, DeserializeTruncatedFails) {
  Observation obs{1, 2, 3.0, 4};
  auto bytes = obs.Serialize();
  bytes.resize(bytes.size() - 1);
  EXPECT_TRUE(Observation::Deserialize(bytes).status().IsOutOfRange());
}

TEST(ObservationLogTest, AppendAssignsDenseSequence) {
  ObservationLog log;
  EXPECT_EQ(log.Append(Observation{1, 1, 1.0, 0}), 0u);
  EXPECT_EQ(log.Append(Observation{2, 2, 2.0, 1}), 1u);
  EXPECT_EQ(log.NextSeq(), 2u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(ObservationLogTest, ReadFromReturnsSuffix) {
  ObservationLog log;
  for (uint64_t i = 0; i < 10; ++i) {
    log.Append(Observation{i, i, static_cast<double>(i), 0});
  }
  auto tail = log.ReadFrom(7);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].uid, 7u);
  EXPECT_TRUE(log.ReadFrom(10).empty());
  EXPECT_TRUE(log.ReadFrom(999).empty());
}

TEST(ObservationLogTest, ReadRangeClampsBounds) {
  ObservationLog log;
  for (uint64_t i = 0; i < 5; ++i) log.Append(Observation{i, 0, 0.0, 0});
  EXPECT_EQ(log.ReadRange(1, 3).size(), 2u);
  EXPECT_EQ(log.ReadRange(0, 100).size(), 5u);
  EXPECT_TRUE(log.ReadRange(3, 3).empty());
  EXPECT_TRUE(log.ReadRange(4, 2).empty());
}

TEST(ObservationLogTest, CompactDropsPrefixKeepsSequenceNumbers) {
  ObservationLog log;
  for (uint64_t i = 0; i < 10; ++i) {
    log.Append(Observation{i, 0, 0.0, static_cast<int64_t>(i)});
  }
  EXPECT_EQ(log.Compact(4), 4u);
  EXPECT_EQ(log.FirstSeq(), 4u);
  EXPECT_EQ(log.size(), 6u);
  EXPECT_EQ(log.NextSeq(), 10u);
  // Sequence numbering is preserved: ReadFrom(4) starts at uid 4.
  auto tail = log.ReadFrom(4);
  ASSERT_EQ(tail.size(), 6u);
  EXPECT_EQ(tail[0].uid, 4u);
  // Reads below the compaction point see nothing extra.
  EXPECT_EQ(log.ReadFrom(0).size(), 6u);
  EXPECT_TRUE(log.ReadRange(0, 4).empty());
  EXPECT_EQ(log.ReadRange(3, 6).size(), 2u);  // seqs 4, 5
  // New appends continue the original numbering.
  EXPECT_EQ(log.Append(Observation{99, 0, 0.0, 0}), 10u);
}

TEST(ObservationLogTest, CompactIsIdempotentAndClampable) {
  ObservationLog log;
  for (uint64_t i = 0; i < 5; ++i) log.Append(Observation{i, 0, 0.0, 0});
  EXPECT_EQ(log.Compact(3), 3u);
  EXPECT_EQ(log.Compact(3), 0u);   // already compacted
  EXPECT_EQ(log.Compact(1), 0u);   // before the base: no-op
  EXPECT_EQ(log.Compact(100), 2u); // beyond the end: drops everything left
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.NextSeq(), 5u);
  EXPECT_EQ(log.Append(Observation{7, 0, 0.0, 0}), 5u);
}

TEST(ObservationLogTest, ConcurrentAppendsGetDistinctSeqs) {
  ObservationLog log;
  std::vector<std::thread> workers;
  std::vector<std::vector<uint64_t>> seqs(4);
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&log, &seqs, t] {
      for (int i = 0; i < 1000; ++i) {
        seqs[t].push_back(log.Append(Observation{0, 0, 0.0, 0}));
      }
    });
  }
  for (auto& w : workers) w.join();
  std::set<uint64_t> all;
  for (const auto& v : seqs) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), 4000u);
  EXPECT_EQ(log.NextSeq(), 4000u);
}

}  // namespace
}  // namespace velox
