// StorageCluster + StorageClient: placement, routing, and the locality
// accounting underpinning the paper's §5 claims.
#include "storage/storage_client.h"

#include <gtest/gtest.h>

#include "storage/storage_cluster.h"

namespace velox {
namespace {

StorageClusterOptions SmallCluster(int32_t nodes) {
  StorageClusterOptions opts;
  opts.num_nodes = nodes;
  opts.partitions_per_table = 4;
  opts.network.local_call_nanos = 10;
  opts.network.remote_latency_nanos = 1000;
  opts.network.nanos_per_byte = 0.0;
  return opts;
}

Value Payload(uint8_t tag) { return Value{tag, tag, tag}; }

TEST(StorageClusterTest, CreatesTablesOnEveryNode) {
  StorageCluster cluster(SmallCluster(3));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_TRUE(cluster.store(n)->GetTable("t").ok());
  }
  // Creating again fails everywhere.
  EXPECT_TRUE(cluster.CreateTable("t").IsAlreadyExists());
}

TEST(StorageClusterTest, OwnerIsStable) {
  StorageCluster cluster(SmallCluster(4));
  for (Key k = 0; k < 100; ++k) {
    EXPECT_EQ(cluster.OwnerOf(k).value(), cluster.OwnerOf(k).value());
  }
}

TEST(StorageClientTest, PutPlacesDataOnOwningNode) {
  StorageCluster cluster(SmallCluster(4));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient client(&cluster, 0);
  for (Key k = 0; k < 200; ++k) {
    ASSERT_TRUE(client.Put("t", k, Payload(static_cast<uint8_t>(k))).ok());
  }
  for (Key k = 0; k < 200; ++k) {
    NodeId owner = cluster.OwnerOf(k).value();
    auto table = cluster.store(owner)->GetTable("t");
    ASSERT_TRUE(table.ok());
    EXPECT_TRUE(table.value()->Contains(k)) << "key " << k;
    // And no other node has it.
    for (NodeId n = 0; n < 4; ++n) {
      if (n == owner) continue;
      EXPECT_FALSE(cluster.store(n)->GetTable("t").value()->Contains(k));
    }
  }
}

TEST(StorageClientTest, GetRoundTripsThroughOwner) {
  StorageCluster cluster(SmallCluster(3));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient writer(&cluster, 0);
  StorageClient reader(&cluster, 2);
  ASSERT_TRUE(writer.Put("t", 77, Payload(9)).ok());
  auto v = reader.Get("t", 77);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), Payload(9));
}

TEST(StorageClientTest, GetMissingKeyIsNotFound) {
  StorageCluster cluster(SmallCluster(2));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient client(&cluster, 0);
  EXPECT_TRUE(client.Get("t", 12345).status().IsNotFound());
}

TEST(StorageClientTest, UnknownTableIsNotFound) {
  StorageCluster cluster(SmallCluster(2));
  StorageClient client(&cluster, 0);
  EXPECT_TRUE(client.Get("missing", 1).status().IsNotFound());
  EXPECT_TRUE(client.Put("missing", 1, Payload(1)).IsNotFound());
}

TEST(StorageClientTest, DeleteRemovesFromOwner) {
  StorageCluster cluster(SmallCluster(2));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient client(&cluster, 0);
  ASSERT_TRUE(client.Put("t", 5, Payload(1)).ok());
  ASSERT_TRUE(client.Delete("t", 5).ok());
  EXPECT_TRUE(client.Get("t", 5).status().IsNotFound());
}

TEST(StorageClientTest, SingleNodeTrafficIsAllLocal) {
  StorageCluster cluster(SmallCluster(1));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient client(&cluster, 0);
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(client.Put("t", k, Payload(1)).ok());
    ASSERT_TRUE(client.Get("t", k).ok());
  }
  auto stats = cluster.network()->stats();
  EXPECT_EQ(stats.remote_messages, 0u);
  EXPECT_GT(stats.local_messages, 0u);
}

TEST(StorageClientTest, CrossNodeAccessesChargedRemote) {
  StorageCluster cluster(SmallCluster(4));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient client(&cluster, 0);
  for (Key k = 0; k < 400; ++k) {
    ASSERT_TRUE(client.Put("t", k, Payload(1)).ok());
  }
  auto stats = cluster.network()->stats();
  // With 4 nodes, ~3/4 of keys live remotely from node 0.
  double remote_fraction = stats.RemoteFraction();
  EXPECT_GT(remote_fraction, 0.55);
  EXPECT_LT(remote_fraction, 0.95);
}

TEST(StorageClientTest, AccessingOwnKeysIsLocal) {
  StorageCluster cluster(SmallCluster(4));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  // For every key, access it from its owner: traffic must be 100% local.
  for (Key k = 0; k < 200; ++k) {
    NodeId owner = cluster.OwnerOf(k).value();
    StorageClient client(&cluster, owner);
    ASSERT_TRUE(client.Put("t", k, Payload(1)).ok());
  }
  EXPECT_EQ(cluster.network()->stats().remote_messages, 0u);
}

TEST(StorageClientTest, PutSurfacesReplicaWriteFailure) {
  // Regression: Put used to ignore each replica table's Put() status,
  // reporting success while a wedged replica silently diverged.
  StorageClusterOptions opts = SmallCluster(3);
  opts.replication_factor = 2;
  StorageCluster cluster(opts);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient client(&cluster, 0);

  const Key key = 11;
  auto owners = cluster.OwnersOf(key).value();
  ASSERT_EQ(owners.size(), 2u);
  // Wedge the secondary replica's stores: reads fine, writes rejected.
  ASSERT_TRUE(cluster.SetNodeFailWrites(owners[1], true).ok());

  Status put = client.Put("t", key, Payload(7));
  EXPECT_FALSE(put.ok()) << "write failed on a replica but Put reported success";
  EXPECT_TRUE(put.IsUnavailable());
  // The primary still took the write, so this is a partial write.
  EXPECT_EQ(client.stats().partial_writes, 1u);
  EXPECT_TRUE(cluster.store(owners[0])->GetTable("t").value()->Contains(key));
  EXPECT_FALSE(cluster.store(owners[1])->GetTable("t").value()->Contains(key));

  // Unwedged, the same write replicates cleanly and the error clears.
  ASSERT_TRUE(cluster.SetNodeFailWrites(owners[1], false).ok());
  EXPECT_TRUE(client.Put("t", key, Payload(7)).ok());
  EXPECT_TRUE(cluster.store(owners[1])->GetTable("t").value()->Contains(key));
}

TEST(StorageClientTest, WasRemoteInitializedOnFailure) {
  // Regression: when every replica fails, Get used to leave the
  // caller's was_remote flag untouched (indeterminate).
  StorageCluster cluster(SmallCluster(2));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient client(&cluster, 0);
  bool was_remote = true;  // poisoned: must be overwritten
  EXPECT_TRUE(client.Get("t", 999, &was_remote).status().IsNotFound());
  EXPECT_FALSE(was_remote);

  was_remote = true;
  EXPECT_TRUE(client.Get("missing", 1, &was_remote).status().IsNotFound());
  EXPECT_FALSE(was_remote);
}

TEST(StorageClientTest, OpReportCountsAttempts) {
  StorageCluster cluster(SmallCluster(2));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  StorageClient client(&cluster, 0);
  ASSERT_TRUE(client.Put("t", 4, Payload(2)).ok());
  StorageOpReport report;
  ASSERT_TRUE(client.Get("t", 4, nullptr, &report).ok());
  EXPECT_EQ(report.attempts, 1);
  EXPECT_FALSE(report.hedged);
  EXPECT_FALSE(report.deadline_missed);
  EXPECT_EQ(report.backoff_nanos, 0);
  EXPECT_GT(report.sim_nanos, 0);
}

TEST(StorageClientTest, ObservationsAppendToOriginShard) {
  StorageCluster cluster(SmallCluster(3));
  StorageClient c0(&cluster, 0);
  StorageClient c2(&cluster, 2);
  c0.AppendObservation(Observation{1, 1, 1.0, 0});
  c0.AppendObservation(Observation{2, 2, 2.0, 1});
  c2.AppendObservation(Observation{3, 3, 3.0, 2});
  EXPECT_EQ(cluster.observation_log(0)->size(), 2u);
  EXPECT_EQ(cluster.observation_log(1)->size(), 0u);
  EXPECT_EQ(cluster.observation_log(2)->size(), 1u);
  EXPECT_EQ(cluster.AllObservations().size(), 3u);
  // Observation writes never cross the network.
  EXPECT_EQ(cluster.network()->stats().remote_messages, 0u);
}

}  // namespace
}  // namespace velox
