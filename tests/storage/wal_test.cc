#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/bytes.h"

namespace velox {
namespace {

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

Observation Obs(uint64_t uid, double label) {
  return Observation{uid, uid * 10, label, static_cast<int64_t>(uid)};
}

TEST(Crc32Test, KnownVectors) {
  // CRC-32("123456789") = 0xCBF43926 (the classic check value).
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(digits, sizeof(digits)), 0xcbf43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, SensitiveToEveryByte) {
  std::vector<uint8_t> buf = {1, 2, 3, 4, 5, 6, 7, 8};
  uint32_t base = Crc32(buf);
  for (size_t i = 0; i < buf.size(); ++i) {
    auto mutated = buf;
    mutated[i] ^= 0x01;
    EXPECT_NE(Crc32(mutated), base) << "byte " << i;
  }
}

TEST(WalTest, AppendAndRecoverRoundTrip) {
  std::string path = TempPath("wal_roundtrip.wal");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 0; i < 50; ++i) {
      ASSERT_TRUE((*wal)->Append(Obs(i, static_cast<double>(i) / 2)).ok());
    }
    EXPECT_EQ((*wal)->records_appended(), 50u);
  }
  auto recovery = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->clean);
  ASSERT_EQ(recovery->records.size(), 50u);
  EXPECT_EQ(recovery->records[7], Obs(7, 3.5));
  std::remove(path.c_str());
}

// ---- group commit (the write-batching amortization, DESIGN.md §15) ----

TEST(WalGroupCommitTest, WindowDefersSyncToOneEndGroupAndRecordsSurvive) {
  std::string path = TempPath("wal_group.wal");
  WalOptions options;
  options.sync = WalSyncPolicy::kFsync;
  options.fsync_every_n = 1;  // strict per-append sync outside a window
  {
    auto wal = WriteAheadLog::Open(path, options);
    ASSERT_TRUE(wal.ok());
    (*wal)->BeginGroup();
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE((*wal)->Append(Obs(i, 1.0)).ok());
    }
    // Inside the window nothing has committed yet.
    EXPECT_EQ((*wal)->group_commits(), 0u);
    ASSERT_TRUE((*wal)->EndGroup().ok());
    EXPECT_EQ((*wal)->group_commits(), 1u);
  }
  auto recovery = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->clean);
  EXPECT_EQ(recovery->records.size(), 5u);
  std::remove(path.c_str());
}

TEST(WalGroupCommitTest, WindowsNestAndOnlyTheOutermostEndSyncs) {
  std::string path = TempPath("wal_group_nest.wal");
  WalOptions options;
  options.sync = WalSyncPolicy::kFsync;
  auto wal = WriteAheadLog::Open(path, options);
  ASSERT_TRUE(wal.ok());
  (*wal)->BeginGroup();
  (*wal)->BeginGroup();
  ASSERT_TRUE((*wal)->Append(Obs(1, 2.0)).ok());
  ASSERT_TRUE((*wal)->EndGroup().ok());  // inner: still inside the window
  EXPECT_EQ((*wal)->group_commits(), 0u);
  ASSERT_TRUE((*wal)->EndGroup().ok());  // outermost: the one sync
  EXPECT_EQ((*wal)->group_commits(), 1u);
  std::remove(path.c_str());
}

TEST(WalGroupCommitTest, EndWithoutBeginIsANoOp) {
  std::string path = TempPath("wal_group_noop.wal");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE((*wal)->EndGroup().ok());
  EXPECT_EQ((*wal)->group_commits(), 0u);
  std::remove(path.c_str());
}

TEST(WalGroupCommitTest, EmptyWindowCommitsNothing) {
  std::string path = TempPath("wal_group_empty.wal");
  WalOptions options;
  options.sync = WalSyncPolicy::kFsync;
  auto wal = WriteAheadLog::Open(path, options);
  ASSERT_TRUE(wal.ok());
  (*wal)->BeginGroup();
  ASSERT_TRUE((*wal)->EndGroup().ok());
  // No deferred appends, so no group commit is counted.
  EXPECT_EQ((*wal)->group_commits(), 0u);
  std::remove(path.c_str());
}

TEST(WalGroupCommitTest, AppendsAfterTheWindowSyncPerPolicyAgain) {
  std::string path = TempPath("wal_group_after.wal");
  WalOptions options;
  options.sync = WalSyncPolicy::kFsync;
  options.fsync_every_n = 1;
  auto wal = WriteAheadLog::Open(path, options);
  ASSERT_TRUE(wal.ok());
  (*wal)->BeginGroup();
  ASSERT_TRUE((*wal)->Append(Obs(1, 1.0)).ok());
  ASSERT_TRUE((*wal)->EndGroup().ok());
  // Post-window appends are back on the strict per-append policy; they
  // must not leak into a (closed) group.
  ASSERT_TRUE((*wal)->Append(Obs(2, 2.0)).ok());
  EXPECT_EQ((*wal)->group_commits(), 1u);
  EXPECT_EQ((*wal)->records_appended(), 2u);
  std::remove(path.c_str());
}

TEST(WalTest, RecoverMissingFileIsIoError) {
  EXPECT_TRUE(WriteAheadLog::Recover("/no/such/file.wal").status().IsIoError());
}

TEST(WalTest, EmptyFileRecoversCleanly) {
  std::string path = TempPath("wal_empty.wal");
  { std::ofstream touch(path); }
  auto recovery = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->clean);
  EXPECT_TRUE(recovery->records.empty());
  std::remove(path.c_str());
}

TEST(WalTest, TornTailTruncatedNotFatal) {
  std::string path = TempPath("wal_torn.wal");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 0; i < 10; ++i) ASSERT_TRUE((*wal)->Append(Obs(i, 1.0)).ok());
  }
  // Simulate a crash mid-append: chop a few bytes off the tail.
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    auto size = in.tellg();
    in.close();
    ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size) - 5), 0);
  }
  auto recovery = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_FALSE(recovery->clean);
  EXPECT_EQ(recovery->records.size(), 9u);  // last record lost, rest intact
  std::remove(path.c_str());
}

TEST(WalTest, CorruptPayloadStopsRecovery) {
  std::string path = TempPath("wal_corrupt.wal");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 0; i < 5; ++i) ASSERT_TRUE((*wal)->Append(Obs(i, 1.0)).ok());
  }
  // Flip one byte inside the third record's payload.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    size_t record_size = 8 + Obs(0, 1.0).Serialize().size();
    f.seekp(static_cast<std::streamoff>(2 * record_size + 8 + 3));
    char b;
    f.read(&b, 1);
    f.seekp(static_cast<std::streamoff>(2 * record_size + 8 + 3));
    b = static_cast<char>(b ^ 0xff);
    f.write(&b, 1);
  }
  auto recovery = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_FALSE(recovery->clean);
  EXPECT_EQ(recovery->records.size(), 2u);  // records before the corruption
  std::remove(path.c_str());
}

TEST(WalTest, AbsurdLengthHeaderRejected) {
  std::string path = TempPath("wal_hugelen.wal");
  {
    std::ofstream out(path, std::ios::binary);
    ByteWriter w;
    w.PutU32(0x40000000u);  // 1 GiB claimed payload
    w.PutU32(0);
    out.write(reinterpret_cast<const char*>(w.data().data()),
              static_cast<std::streamsize>(w.size()));
  }
  auto recovery = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_FALSE(recovery->clean);
  EXPECT_TRUE(recovery->records.empty());
  std::remove(path.c_str());
}

TEST(WalTest, OpenRecoversAndTruncatesTornTailItself) {
  // Regression: Open() used to fopen("ab") blindly, so a writer that
  // reopened a torn log appended *after* the garbage tail — making its
  // own records unrecoverable (recovery stops at the first bad record).
  std::string path = TempPath("wal_open_torn.wal");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 0; i < 10; ++i) ASSERT_TRUE((*wal)->Append(Obs(i, 1.0)).ok());
  }
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    auto size = in.tellg();
    in.close();
    ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size) - 5), 0);
  }
  // Direct Open (not DurableObservationLog): must surface the 9 valid
  // records and place new appends at a valid boundary.
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ((*wal)->recovered_records(), 9u);
    EXPECT_FALSE((*wal)->recovered_clean());
    EXPECT_EQ((*wal)->total_records(), 9u);
    ASSERT_TRUE((*wal)->Append(Obs(100, 7.0)).ok());
    EXPECT_EQ((*wal)->total_records(), 10u);
  }
  auto recovery = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->clean);  // torn tail gone, new record valid
  ASSERT_EQ(recovery->records.size(), 10u);
  EXPECT_EQ(recovery->records[9], Obs(100, 7.0));
  std::remove(path.c_str());
}

TEST(WalTest, StatFailureOtherThanEnoentIsIoError) {
  // Regression: Open() treated *any* stat() failure as "fresh log". A
  // path whose parent is a regular file fails with ENOTDIR — such an
  // error may hide an existing log and must never silently start a new
  // one. (EACCES is untestable here: tests run as root.)
  std::string parent = TempPath("wal_not_a_dir");
  { std::ofstream touch(parent); }
  std::string path = parent + "/child.wal";
  auto wal = WriteAheadLog::Open(path);
  EXPECT_TRUE(wal.status().IsIoError()) << wal.status().ToString();
  // The observation-log wrapper must propagate the same error instead
  // of opening a fresh empty log.
  auto log = DurableObservationLog::Open(path);
  EXPECT_TRUE(log.status().IsIoError()) << log.status().ToString();
  std::remove(parent.c_str());
}

TEST(WalTest, MissingFileIsFreshLog) {
  std::string path = TempPath("wal_fresh.wal");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->recovered_records(), 0u);
  EXPECT_TRUE((*wal)->recovered_clean());
  std::remove(path.c_str());
}

TEST(WalTest, SyncPolicyNoneBuffersInProcess) {
  std::string path = TempPath("wal_none.wal");
  WalOptions options;
  options.sync = WalSyncPolicy::kNone;
  {
    auto wal = WriteAheadLog::Open(path, options);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Obs(1, 1.0)).ok());
    // Not flushed: the record sits in the stdio buffer, invisible to a
    // reader — exactly what "survives nothing" means.
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    EXPECT_EQ(in.tellg(), std::streampos(0));
  }
  // Clean close flushed it.
  auto recovery = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery->records.size(), 1u);
  std::remove(path.c_str());
}

TEST(WalTest, SyncPolicyFlushReachesOsImmediately) {
  std::string path = TempPath("wal_flush.wal");
  {
    auto wal = WriteAheadLog::Open(path);  // default kFlush
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Obs(1, 1.0)).ok());
    // Visible to other readers before close: a process crash here
    // would lose nothing.
    auto recovery = WriteAheadLog::Recover(path);
    ASSERT_TRUE(recovery.ok());
    EXPECT_EQ(recovery->records.size(), 1u);
  }
  std::remove(path.c_str());
}

TEST(WalTest, SyncPolicyFsyncGroupCommit) {
  std::string path = TempPath("wal_fsync.wal");
  WalOptions options;
  options.sync = WalSyncPolicy::kFsync;
  options.fsync_every_n = 3;
  {
    auto wal = WriteAheadLog::Open(path, options);
    ASSERT_TRUE(wal.ok());
    // 5 appends: syncs after #3, leaves a 2-record group-commit window
    // that the destructor must sync on clean shutdown.
    for (uint64_t i = 0; i < 5; ++i) ASSERT_TRUE((*wal)->Append(Obs(i, 1.0)).ok());
    ASSERT_TRUE((*wal)->Sync().ok());  // explicit sync also permitted
  }
  auto recovery = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->clean);
  EXPECT_EQ(recovery->records.size(), 5u);
  std::remove(path.c_str());
}

TEST(WalTest, RawPayloadRoundTrip) {
  std::string path = TempPath("wal_raw.wal");
  std::vector<uint8_t> a = {1, 2, 3};
  std::vector<uint8_t> b = {};  // empty payloads are legal
  std::vector<uint8_t> c(300, 0xab);
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendPayload(a).ok());
    ASSERT_TRUE((*wal)->AppendPayload(b).ok());
    ASSERT_TRUE((*wal)->AppendPayload(c).ok());
  }
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  auto payloads = (*wal)->TakeRecoveredPayloads();
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], a);
  EXPECT_EQ(payloads[1], b);
  EXPECT_EQ(payloads[2], c);
  // Destructive read: a second take is empty.
  EXPECT_TRUE((*wal)->TakeRecoveredPayloads().empty());
  std::remove(path.c_str());
}

TEST(WalTest, SyncPolicyNames) {
  EXPECT_STREQ(WalSyncPolicyName(WalSyncPolicy::kNone), "none");
  EXPECT_STREQ(WalSyncPolicyName(WalSyncPolicy::kFlush), "flush");
  EXPECT_STREQ(WalSyncPolicyName(WalSyncPolicy::kFsync), "fsync");
}

TEST(DurableLogTest, SurvivesRestart) {
  std::string path = TempPath("durable_log.wal");
  {
    auto log = DurableObservationLog::Open(path);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 0; i < 20; ++i) {
      auto seq = (*log)->Append(Obs(i, 2.0));
      ASSERT_TRUE(seq.ok());
      EXPECT_EQ(seq.value(), i);
    }
  }
  // "Restart": reopen and find everything, then keep appending.
  auto reopened = DurableObservationLog::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->log()->size(), 20u);
  auto seq = (*reopened)->Append(Obs(99, 3.0));
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value(), 20u);
  EXPECT_EQ((*reopened)->log()->ReadFrom(20)[0], Obs(99, 3.0));
  std::remove(path.c_str());
}

TEST(DurableLogTest, TornTailTruncatedOnReopenAndAppendable) {
  std::string path = TempPath("durable_torn.wal");
  {
    auto log = DurableObservationLog::Open(path);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 0; i < 10; ++i) ASSERT_TRUE((*log)->Append(Obs(i, 1.0)).ok());
  }
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    auto size = in.tellg();
    in.close();
    ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size) - 3), 0);
  }
  auto reopened = DurableObservationLog::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->log()->size(), 9u);
  // New appends land after the truncated tail and survive another
  // restart.
  ASSERT_TRUE((*reopened)->Append(Obs(50, 5.0)).ok());
  reopened->reset();
  auto again = DurableObservationLog::Open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->log()->size(), 10u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace velox
