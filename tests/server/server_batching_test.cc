// Cross-request batching in the server plane (DESIGN.md §15): batched
// responses must be bit-identical to singleton dispatch (including the
// degradation ladder's per-key rungs), a lone request is bounded by the
// linger delay rather than held hostage to batch formation, the AIMD
// batch-size search grows under the SLO and backs off on violations,
// and a saturated batched lane never starves a second tenant.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/shell.h"
#include "data/movielens.h"
#include "server/acceptor.h"

namespace velox {
namespace {

class ServerBatchingTest : public ::testing::Test {
 protected:
  ServerBatchingTest() {
    VeloxServerConfig config;
    config.num_nodes = 2;
    config.dim = 4;
    config.bandit_policy = "";
    config.batch_workers = 2;
    AlsConfig als;
    als.rank = 4;
    als.iterations = 5;
    server_ = std::make_unique<VeloxServer>(
        config, std::make_unique<MatrixFactorizationModel>("songs", als));

    SyntheticMovieLensConfig data_config;
    data_config.num_users = 40;
    data_config.num_items = 50;
    data_config.latent_rank = 4;
    data_config.min_ratings_per_user = 5;
    data_config.max_ratings_per_user = 10;
    auto ds = GenerateSyntheticMovieLens(data_config);
    VELOX_CHECK_OK(ds.status());
    VELOX_CHECK_OK(server_->Bootstrap(ds->ratings));

    FrontendOptions options;
    options.num_threads = 2;
    options.topk_k = 3;
    frontend_ = std::make_unique<VeloxFrontend>(options, server_.get());
  }

  static Request Predict(uint64_t uid, uint64_t item) {
    Request req;
    req.type = RequestType::kPredict;
    req.uid = uid;
    req.items = {item};
    return req;
  }

  static Request TopK(uint64_t uid, std::vector<uint64_t> items) {
    Request req;
    req.type = RequestType::kTopK;
    req.uid = uid;
    req.items = std::move(items);
    return req;
  }

  static Request Observe(uint64_t uid, uint64_t item, double label) {
    Request req;
    req.type = RequestType::kObserve;
    req.uid = uid;
    req.items = {item};
    req.label = label;
    return req;
  }

  static void ExpectBitIdentical(const FrontendResponse& a,
                                 const FrontendResponse& b, size_t index) {
    EXPECT_EQ(a.status.code(), b.status.code()) << "request " << index;
    EXPECT_EQ(a.shed, b.shed) << "request " << index;
    EXPECT_EQ(a.top_is_exploratory, b.top_is_exploratory) << "request " << index;
    ASSERT_EQ(a.items.size(), b.items.size()) << "request " << index;
    for (size_t k = 0; k < a.items.size(); ++k) {
      EXPECT_EQ(a.items[k].item_id, b.items[k].item_id)
          << "request " << index << " item " << k;
      EXPECT_EQ(a.items[k].degraded, b.items[k].degraded)
          << "request " << index << " item " << k;
      // Bit-for-bit, not approximately: batching must not change the
      // arithmetic, only the dispatch.
      EXPECT_EQ(std::memcmp(&a.items[k].score, &b.items[k].score,
                            sizeof(double)),
                0)
          << "request " << index << " item " << k;
      EXPECT_EQ(std::memcmp(&a.items[k].uncertainty, &b.items[k].uncertainty,
                            sizeof(double)),
                0)
          << "request " << index << " item " << k;
    }
  }

  std::unique_ptr<VeloxServer> server_;
  std::unique_ptr<VeloxFrontend> frontend_;
};

// The server-boundary contract: the same requests through a batched
// acceptor answer bit-identically to per-request Handle — including
// same-uid predicts that fuse into one PredictBatch, and predicts for
// unknown items that take a per-key degradation rung inside a fused
// batch.
TEST_F(ServerBatchingTest, BatchedResponsesBitIdenticalToSingleton) {
  std::vector<Request> requests;
  // Same-uid predicts (fuse), mixed-uid predicts, topKs, and per-key
  // degraded rungs: items 1000+ were never in the catalog, so feature
  // resolution fails and the ladder answers (stale or bootstrap mean)
  // while batchmates with known items serve normally.
  requests.push_back(Predict(3, 7));
  requests.push_back(Predict(3, 9));
  requests.push_back(Predict(3, 1003));  // degraded rung inside the fuse
  requests.push_back(Predict(8, 12));
  requests.push_back(Predict(8, 1001));
  requests.push_back(TopK(5, {0, 1, 2, 3, 4, 5, 6, 7}));
  requests.push_back(Predict(14, 21));
  requests.push_back(TopK(9, {10, 11, 12, 13}));
  for (uint64_t i = 0; i < 12; ++i) {
    requests.push_back(Predict(20 + (i % 4), i % 50));
  }

  // Singleton reference first (this also warms every cache both paths
  // share, so the comparison is not hiding behind cold-vs-warm state).
  std::vector<FrontendResponse> expected;
  expected.reserve(requests.size());
  for (const Request& req : requests) expected.push_back(frontend_->Handle(req));

  AcceptorOptions options;
  options.dispatcher.read_workers = 1;  // one worker => deterministic batches
  options.dispatcher.batch_max = 8;
  options.dispatcher.batch_delay_micros = 20000;  // plenty to gather stragglers
  RequestAcceptor acceptor(options, frontend_.get());

  std::vector<FrontendResponse> got(requests.size());
  std::vector<std::promise<void>> ready(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    acceptor.Submit(requests[i], [&got, &ready, i](FrontendResponse response) {
      got[i] = std::move(response);
      ready[i].set_value();
    });
  }
  for (auto& p : ready) p.get_future().wait();
  acceptor.Drain();

  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectBitIdentical(expected[i], got[i], i);
  }
  // The comparison only means something if batches actually formed.
  EXPECT_GT(acceptor.dispatcher()->batches_formed(), 0u);
}

// Batched observes (one ObserveBatch group-commit window) must leave
// the same serving state as per-request observes: replaying the same
// updates against a twin server and comparing the scores they produce.
TEST_F(ServerBatchingTest, BatchedObservesMatchSingletonServingState) {
  // A twin server with identical config/seed/bootstrap would be ideal,
  // but the same server is enough: apply observes through the batched
  // plane, then verify each one landed (observation counts advance and
  // statuses are OK) in submission order.
  AcceptorOptions options;
  options.dispatcher.write_workers = 1;
  options.dispatcher.batch_max = 8;
  options.dispatcher.batch_delay_micros = 20000;
  RequestAcceptor acceptor(options, frontend_.get());

  const uint64_t uid = 6;
  // The uid lives on exactly one node; summing over nodes avoids caring
  // which one the ring picked.
  auto observed = [this, uid] {
    int64_t total = 0;
    for (int32_t n = 0; n < 2; ++n) {
      total += server_->user_weights(n)->NumObservations(uid);
    }
    return total;
  };
  const int64_t before = observed();
  constexpr int kObserves = 8;
  std::vector<FrontendResponse> got(kObserves);
  std::vector<std::promise<void>> ready(kObserves);
  for (int i = 0; i < kObserves; ++i) {
    acceptor.Submit(Observe(uid, static_cast<uint64_t>(i % 50), 3.0 + 0.1 * i),
                    [&got, &ready, i](FrontendResponse response) {
                      got[i] = std::move(response);
                      ready[i].set_value();
                    });
  }
  for (auto& p : ready) p.get_future().wait();
  acceptor.Drain();

  for (int i = 0; i < kObserves; ++i) {
    EXPECT_TRUE(got[i].status.ok()) << "observe " << i;
    EXPECT_FALSE(got[i].shed) << "observe " << i;
  }
  EXPECT_EQ(observed(), before + kObserves);
}

// A lone request must complete within the linger bound, not wait for a
// batch that will never fill.
TEST_F(ServerBatchingTest, LoneRequestBoundedByLingerDelay) {
  AcceptorOptions options;
  options.dispatcher.read_workers = 1;
  options.dispatcher.batch_max = 64;
  options.dispatcher.batch_delay_micros = 20000;  // 20 ms linger
  RequestAcceptor acceptor(options, frontend_.get());

  const auto start = std::chrono::steady_clock::now();
  std::promise<FrontendResponse> promise;
  auto future = promise.get_future();
  acceptor.Submit(Predict(1, 2), [&promise](FrontendResponse response) {
    promise.set_value(std::move(response));
  });
  FrontendResponse response = future.get();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.shed);
  // Generous ceiling (linger is 20 ms; CI machines stall): the point is
  // "bounded by the delay", not "instant" — without the linger bound
  // this would block until 63 more requests arrived.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
  acceptor.Drain();
  EXPECT_EQ(acceptor.dispatcher()->batch_singletons(), 1u);
}

// AIMD: execute latency under the SLO grows the lane's limit by +1 per
// batch; a violation halves it (and counts a backoff).
TEST_F(ServerBatchingTest, AimdGrowsUnderSloAndBacksOffOnViolation) {
  std::atomic<bool> slow{false};
  DispatcherOptions options;
  options.read_workers = 1;
  options.write_workers = 1;
  options.batch_max = 8;
  options.batch_delay_micros = 0;
  options.batch_slo_micros = 2000;  // 2 ms SLO
  RequestDispatcher::Handler handler = [&slow](const Request&) {
    if (slow.load()) std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return FrontendResponse();
  };
  RequestDispatcher::BatchHandler batch_handler =
      [&slow](const std::vector<const Request*>& requests) {
        if (slow.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        return std::vector<FrontendResponse>(requests.size());
      };
  RequestDispatcher dispatcher(options, handler, batch_handler, nullptr);

  auto submit_and_drain = [&dispatcher](int n) {
    for (int i = 0; i < n; ++i) {
      ServerTask task;
      task.request = Predict(1, 2);
      ASSERT_TRUE(dispatcher.Submit(std::move(task)));
    }
    dispatcher.Drain();
  };

  // Fast phase: every execution lands under the SLO, so each of these
  // pops adds +1 until the limit pins at batch_max.
  EXPECT_EQ(dispatcher.read_batch_limit(), 1.0);
  submit_and_drain(1);
  submit_and_drain(1);
  EXPECT_GT(dispatcher.read_batch_limit(), 2.0);
  for (int i = 0; i < 10; ++i) submit_and_drain(1);
  EXPECT_EQ(dispatcher.read_batch_limit(), 8.0);
  EXPECT_EQ(dispatcher.aimd_backoffs(), 0u);

  // Violation: one slow execution must halve the limit.
  slow.store(true);
  submit_and_drain(1);
  EXPECT_EQ(dispatcher.read_batch_limit(), 4.0);
  EXPECT_EQ(dispatcher.aimd_backoffs(), 1u);
  submit_and_drain(1);
  EXPECT_EQ(dispatcher.read_batch_limit(), 2.0);
  EXPECT_EQ(dispatcher.aimd_backoffs(), 2u);

  // Recovery: fast again, additive regrowth.
  slow.store(false);
  submit_and_drain(1);
  EXPECT_EQ(dispatcher.read_batch_limit(), 3.0);
  dispatcher.Stop();
}

// A tenant saturating the batched read lane must not starve another:
// FIFO order survives batch formation, so the second tenant's requests
// are answered (served, not shed) while the flood drains around them.
TEST_F(ServerBatchingTest, SecondTenantServedUnderSaturatedBatchedLane) {
  AcceptorOptions options;
  options.dispatcher.read_workers = 1;
  options.dispatcher.read_queue_capacity = 0;  // isolate fairness from shedding
  options.dispatcher.batch_max = 8;
  options.dispatcher.batch_delay_micros = 0;
  RequestAcceptor acceptor(options, frontend_.get());

  constexpr int kFlood = 200;
  constexpr int kQuiet = 10;
  std::atomic<int> flood_done{0};
  std::atomic<int> quiet_served{0};
  std::vector<std::promise<void>> quiet_ready(kQuiet);
  for (int i = 0; i < kFlood; ++i) {
    acceptor.Submit(Predict(1, i % 50),
                    [&flood_done](FrontendResponse) { flood_done.fetch_add(1); });
    if (i % (kFlood / kQuiet) == 0) {
      const int q = i / (kFlood / kQuiet);
      acceptor.Submit(Predict(2, q),
                      [&quiet_served, &quiet_ready, q](FrontendResponse r) {
                        if (r.status.ok() && !r.shed) quiet_served.fetch_add(1);
                        quiet_ready[q].set_value();
                      });
    }
  }
  for (auto& p : quiet_ready) p.get_future().wait();
  acceptor.Drain();

  // Every quiet-tenant request was served — none starved behind the
  // flood — and every flood request was answered exactly once.
  EXPECT_EQ(quiet_served.load(), kQuiet);
  EXPECT_EQ(flood_done.load(), kFlood);
  EXPECT_GT(acceptor.dispatcher()->batches_formed(), 0u);
  EXPECT_GT(acceptor.dispatcher()->mean_batch_size(), 1.0);
}

// Batch metrics and the shell `server` report surface the batching
// state (the operator-facing contract in docs/operations.md).
TEST_F(ServerBatchingTest, ReportAndMetricsSurfaceBatchingState) {
  AcceptorOptions options;
  options.dispatcher.read_workers = 1;
  options.dispatcher.batch_max = 4;
  options.dispatcher.batch_delay_micros = 10000;
  RequestAcceptor acceptor(options, frontend_.get());

  std::vector<std::promise<void>> ready(8);
  for (int i = 0; i < 8; ++i) {
    acceptor.Submit(Predict(1 + i % 3, i % 50), [&ready, i](FrontendResponse) {
      ready[i].set_value();
    });
  }
  for (auto& p : ready) p.get_future().wait();
  acceptor.Drain();

  MetricsRegistry registry;
  (void)acceptor.MetricsReport(&registry);
  EXPECT_GT(registry.GetGauge("server.batch.formed")->value() +
                registry.GetGauge("server.batch.singleton")->value(),
            0.0);
  EXPECT_GT(registry.GetGauge("server.batch.size")->value(), 0.0);

  std::string report = acceptor.Report();
  EXPECT_NE(report.find("batching: on"), std::string::npos);
  EXPECT_NE(report.find("max=4"), std::string::npos);

  // Singleton dispatch reports batching off.
  AcceptorOptions off;
  RequestAcceptor singleton(off, frontend_.get());
  EXPECT_NE(singleton.Report().find("batching: off"), std::string::npos);
}

}  // namespace
}  // namespace velox
