#include "server/acceptor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "core/shell.h"
#include "data/movielens.h"
#include "server/bounded_queue.h"
#include "server/rate_limiter.h"

namespace velox {
namespace {

// ---- TenantRateLimiter ----

TEST(TenantRateLimiterTest, BurstThenRefillOnSimulatedClock) {
  SimulatedClock clock;
  TenantRateLimiterOptions options;
  options.default_rate_per_sec = 10.0;
  options.default_burst = 3.0;
  TenantRateLimiter limiter(options, &clock);

  // Full bucket: exactly `burst` admits, then shed.
  EXPECT_TRUE(limiter.Admit(7));
  EXPECT_TRUE(limiter.Admit(7));
  EXPECT_TRUE(limiter.Admit(7));
  EXPECT_FALSE(limiter.Admit(7));
  EXPECT_EQ(limiter.admitted(), 3u);
  EXPECT_EQ(limiter.rejected(), 1u);

  // 10 tokens/s: 100ms buys exactly one more.
  clock.AdvanceNanos(100'000'000);
  EXPECT_TRUE(limiter.Admit(7));
  EXPECT_FALSE(limiter.Admit(7));
}

TEST(TenantRateLimiterTest, TenantsAreIndependent) {
  SimulatedClock clock;
  TenantRateLimiterOptions options;
  options.default_rate_per_sec = 1.0;
  options.default_burst = 2.0;
  TenantRateLimiter limiter(options, &clock);

  // Tenant 1 drains its bucket; tenant 2's is untouched.
  EXPECT_TRUE(limiter.Admit(1));
  EXPECT_TRUE(limiter.Admit(1));
  EXPECT_FALSE(limiter.Admit(1));
  EXPECT_TRUE(limiter.Admit(2));
  EXPECT_TRUE(limiter.Admit(2));
}

TEST(TenantRateLimiterTest, ZeroDefaultRateMeansUnlimited) {
  SimulatedClock clock;
  TenantRateLimiter limiter(TenantRateLimiterOptions{}, &clock);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(limiter.Admit(42));
}

TEST(TenantRateLimiterTest, PerTenantOverride) {
  SimulatedClock clock;
  TenantRateLimiterOptions options;
  options.default_rate_per_sec = 0.0;  // unlimited default
  TenantRateLimiter limiter(options, &clock);
  limiter.SetLimit(9, 1.0, 1.0);
  EXPECT_TRUE(limiter.Admit(9));
  EXPECT_FALSE(limiter.Admit(9));
  EXPECT_TRUE(limiter.Admit(10));  // others stay unlimited
}

// ---- BoundedQueue ----

TEST(BoundedQueueTest, RefusesWhenFullAndLeavesItemIntact) {
  BoundedQueue<int> queue(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(queue.TryPush(std::move(a)));
  EXPECT_TRUE(queue.TryPush(std::move(b)));
  EXPECT_FALSE(queue.TryPush(std::move(c)));
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.peak_depth(), 2u);
}

TEST(BoundedQueueTest, WaitDrainedCoversInFlightItems) {
  BoundedQueue<int> queue(0);
  int v = 5;
  ASSERT_TRUE(queue.TryPush(std::move(v)));
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  // Queue is empty but the item is in flight: WaitDrained must block
  // until MarkDone.
  std::atomic<bool> drained{false};
  std::thread waiter([&] {
    queue.WaitDrained();
    drained.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(drained.load());
  queue.MarkDone();
  waiter.join();
  EXPECT_TRUE(drained.load());
}

TEST(BoundedQueueTest, CloseWakesPoppers) {
  BoundedQueue<int> queue(4);
  std::thread popper([&] {
    int out;
    EXPECT_FALSE(queue.Pop(&out));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  popper.join();
  int v = 1;
  EXPECT_FALSE(queue.TryPush(std::move(v)));
}

// ---- the assembled plane ----

class ServerPlaneTest : public ::testing::Test {
 protected:
  ServerPlaneTest() {
    VeloxServerConfig config;
    config.num_nodes = 1;
    config.dim = 4;
    config.bandit_policy = "";
    config.batch_workers = 2;
    AlsConfig als;
    als.rank = 4;
    als.iterations = 5;
    server_ = std::make_unique<VeloxServer>(
        config, std::make_unique<MatrixFactorizationModel>("songs", als));

    SyntheticMovieLensConfig data_config;
    data_config.num_users = 40;
    data_config.num_items = 50;
    data_config.latent_rank = 4;
    data_config.min_ratings_per_user = 5;
    data_config.max_ratings_per_user = 10;
    auto ds = GenerateSyntheticMovieLens(data_config);
    VELOX_CHECK_OK(ds.status());
    VELOX_CHECK_OK(server_->Bootstrap(ds->ratings));

    FrontendOptions options;
    options.num_threads = 2;
    options.topk_k = 3;
    frontend_ = std::make_unique<VeloxFrontend>(options, server_.get());
  }

  static Request Predict(uint64_t uid, uint64_t item) {
    Request req;
    req.type = RequestType::kPredict;
    req.uid = uid;
    req.items = {item};
    return req;
  }

  FrontendResponse SubmitAndWait(RequestAcceptor* acceptor, Request request) {
    std::promise<FrontendResponse> promise;
    auto future = promise.get_future();
    acceptor->Submit(std::move(request), [&promise](FrontendResponse response) {
      promise.set_value(std::move(response));
    });
    return future.get();
  }

  std::unique_ptr<VeloxServer> server_;
  std::unique_ptr<VeloxFrontend> frontend_;
};

TEST_F(ServerPlaneTest, AdmittedRequestsServeNormally) {
  AcceptorOptions options;  // unlimited admission, bounded queues
  RequestAcceptor acceptor(options, frontend_.get());
  FrontendResponse response = SubmitAndWait(&acceptor, Predict(1, 2));
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.shed);
  ASSERT_EQ(response.items.size(), 1u);
  EXPECT_FALSE(response.items[0].degraded);
  acceptor.Drain();
  EXPECT_EQ(acceptor.accepted(), 1u);
  EXPECT_EQ(acceptor.shed_total(), 0u);
  // The plane charged the dispatch-queue residency as a stage.
  EXPECT_GT(acceptor.StageData(Stage::kQueueWait).count(), 0u);
  EXPECT_NE(acceptor.StageBreakdownJson().find("\"queue_wait\""),
            std::string::npos);
}

// Shed answers must be *bit-identical* to the degradation ladder's
// rungs — overload and storage faults degrade through one code path.
TEST_F(ServerPlaneTest, ShedPredictMatchesStaleRungBitForBit) {
  // A served predict seeds the stale-score board for (uid, item).
  Item item;
  item.id = 7;
  auto real = server_->Predict(3, item);
  ASSERT_TRUE(real.ok());

  AcceptorOptions options;
  RequestAcceptor acceptor(options, frontend_.get());
  // Zero-burst tenant limit: every request from uid 3 sheds.
  acceptor.admission()->SetTenantLimit(3, 1.0, 0.0);

  FrontendResponse shed = SubmitAndWait(&acceptor, Predict(3, 7));
  ASSERT_TRUE(shed.status.ok());
  EXPECT_TRUE(shed.shed);
  ASSERT_EQ(shed.items.size(), 1u);
  EXPECT_TRUE(shed.items[0].degraded);
  // Stale rung: exactly the last computed score, no recomputation.
  EXPECT_EQ(shed.items[0].score, real.value().score);
  EXPECT_EQ(acceptor.admission()->shed_rate_limited(), 1u);
  // The shed path recorded its stage and the ladder counter.
  EXPECT_GT(acceptor.StageData(Stage::kShed).count(), 0u);
  EXPECT_GT(server_->prediction_service(0)->degraded_stale_count(), 0u);
}

TEST_F(ServerPlaneTest, ShedPredictFallsBackToBootstrapMeanRung) {
  AcceptorOptions options;
  RequestAcceptor acceptor(options, frontend_.get());
  acceptor.admission()->SetTenantLimit(11, 1.0, 0.0);

  // (11, 49) was never scored: the ladder's final rung answers with the
  // bootstrap-mean score, bit-identical to the service's own fallback.
  double expected = server_->prediction_service(0)->fallback_score();
  FrontendResponse shed = SubmitAndWait(&acceptor, Predict(11, 49));
  ASSERT_TRUE(shed.status.ok());
  EXPECT_TRUE(shed.shed);
  ASSERT_EQ(shed.items.size(), 1u);
  EXPECT_TRUE(shed.items[0].degraded);
  EXPECT_EQ(shed.items[0].score, expected);
  EXPECT_GT(server_->prediction_service(0)->degraded_mean_count(), 0u);
}

TEST_F(ServerPlaneTest, ShedTopKRanksLadderScores) {
  AcceptorOptions options;
  RequestAcceptor acceptor(options, frontend_.get());
  acceptor.admission()->SetTenantLimit(5, 1.0, 0.0);

  Request req;
  req.type = RequestType::kTopK;
  req.uid = 5;
  req.items = {0, 1, 2, 3, 4, 5, 6, 7};
  FrontendResponse shed = SubmitAndWait(&acceptor, std::move(req));
  ASSERT_TRUE(shed.status.ok());
  EXPECT_TRUE(shed.shed);
  ASSERT_EQ(shed.items.size(), 3u);  // topk_k = 3
  for (size_t i = 0; i + 1 < shed.items.size(); ++i) {
    EXPECT_GE(shed.items[i].score, shed.items[i + 1].score);
  }
  for (const ScoredItem& item : shed.items) EXPECT_TRUE(item.degraded);
}

TEST_F(ServerPlaneTest, ShedObserveAcknowledgesButDropsUpdate) {
  AcceptorOptions options;
  RequestAcceptor acceptor(options, frontend_.get());
  acceptor.admission()->SetTenantLimit(2, 1.0, 0.0);

  uint64_t before = frontend_->requests_served();
  Request req;
  req.type = RequestType::kObserve;
  req.uid = 2;
  req.items = {3};
  req.label = 4.0;
  FrontendResponse shed = SubmitAndWait(&acceptor, std::move(req));
  EXPECT_TRUE(shed.status.ok());
  EXPECT_TRUE(shed.shed);
  // The update never reached the pipeline.
  EXPECT_EQ(frontend_->requests_served(), before);
}

// A hot tenant must drain only its own bucket.
TEST_F(ServerPlaneTest, PerTenantLimitsIsolateHotTenant) {
  SimulatedClock clock;  // frozen: no refill during the test
  AcceptorOptions options;
  options.admission.rate_limit.default_rate_per_sec = 100.0;
  options.admission.rate_limit.default_burst = 5.0;
  RequestAcceptor acceptor(options, frontend_.get(), &clock);

  // Hot tenant 1 fires 20 requests: 5 admitted (its burst), 15 shed.
  std::atomic<int> hot_shed{0};
  for (int i = 0; i < 20; ++i) {
    FrontendResponse r = SubmitAndWait(&acceptor, Predict(1, i % 50));
    if (r.shed) hot_shed.fetch_add(1);
  }
  EXPECT_EQ(hot_shed.load(), 15);

  // Well-behaved tenant 4 still gets its full burst.
  std::atomic<int> cold_shed{0};
  for (int i = 0; i < 5; ++i) {
    FrontendResponse r = SubmitAndWait(&acceptor, Predict(4, i));
    if (r.shed) cold_shed.fetch_add(1);
  }
  EXPECT_EQ(cold_shed.load(), 0);
  acceptor.Drain();
}

// Under 2x overload with stalled workers the lanes must never exceed
// their configured depth — excess arrivals shed in O(1) — and every
// submission still gets exactly one answer.
TEST_F(ServerPlaneTest, BoundedQueuesNeverExceedCapacityUnderOverload) {
  constexpr size_t kCapacity = 4;
  AcceptorOptions options;
  options.dispatcher.read_queue_capacity = kCapacity;
  options.dispatcher.read_workers = 2;
  options.dispatcher.write_workers = 1;
  RequestAcceptor acceptor(options, frontend_.get());

  // Stall both read workers: their completion callbacks block on a
  // latch, so everything behind them piles into the read lane.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> stalled{0};
  std::atomic<int> completed{0};
  auto blocking_done = [&](FrontendResponse) {
    completed.fetch_add(1);
    stalled.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  acceptor.Submit(Predict(1, 1), blocking_done);
  acceptor.Submit(Predict(2, 2), blocking_done);
  while (stalled.load() < 2) std::this_thread::yield();

  // 2x overload: kCapacity fills the lane, kCapacity more must shed.
  std::atomic<int> shed{0};
  for (size_t i = 0; i < 2 * kCapacity; ++i) {
    EXPECT_LE(acceptor.dispatcher()->read_depth(), kCapacity);
    acceptor.Submit(Predict(3 + i, i % 50), [&](FrontendResponse response) {
      completed.fetch_add(1);
      if (response.shed) shed.fetch_add(1);
    });
  }
  EXPECT_LE(acceptor.dispatcher()->read_peak_depth(), kCapacity);
  EXPECT_EQ(shed.load(), static_cast<int>(kCapacity));
  EXPECT_EQ(acceptor.admission()->shed_queue_full(),
            static_cast<uint64_t>(kCapacity));

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  acceptor.Drain();
  // 100% availability: every submission answered exactly once.
  EXPECT_EQ(completed.load(), static_cast<int>(2 + 2 * kCapacity));
}

TEST_F(ServerPlaneTest, UnboundedQueueNeverShedsQueueFull) {
  AcceptorOptions options;
  options.dispatcher.read_queue_capacity = 0;  // the no-admission baseline
  options.dispatcher.write_queue_capacity = 0;
  RequestAcceptor acceptor(options, frontend_.get());
  std::atomic<int> completed{0};
  for (int i = 0; i < 200; ++i) {
    acceptor.Submit(Predict(i % 40, i % 50),
                    [&](FrontendResponse) { completed.fetch_add(1); });
  }
  acceptor.Drain();
  EXPECT_EQ(completed.load(), 200);
  EXPECT_EQ(acceptor.admission()->shed_queue_full(), 0u);
}

TEST_F(ServerPlaneTest, SubmitAfterStopStillAnswers) {
  AcceptorOptions options;
  RequestAcceptor acceptor(options, frontend_.get());
  acceptor.Stop();
  FrontendResponse response = SubmitAndWait(&acceptor, Predict(1, 2));
  // Answered inline off the degraded fast path; never dropped.
  EXPECT_TRUE(response.shed);
  EXPECT_TRUE(response.status.ok());
}

TEST_F(ServerPlaneTest, MetricsReportPublishesServerGauges) {
  AcceptorOptions options;
  RequestAcceptor acceptor(options, frontend_.get());
  acceptor.admission()->SetTenantLimit(30, 1.0, 0.0);
  (void)SubmitAndWait(&acceptor, Predict(1, 2));    // served
  (void)SubmitAndWait(&acceptor, Predict(30, 2));   // shed
  acceptor.Drain();

  MetricsRegistry registry;
  std::string report = acceptor.MetricsReport(&registry);
  EXPECT_EQ(registry.GetGauge("server.accepted")->value(), 1.0);
  EXPECT_EQ(registry.GetGauge("server.shed_total")->value(), 1.0);
  EXPECT_EQ(registry.GetGauge("server.shed_rate_limited")->value(), 1.0);
  EXPECT_NE(report.find("server.queue_depth.read"), std::string::npos);
  EXPECT_NE(report.find("server.served.p99_us"), std::string::npos);
  // The chained report still carries the frontend and node series.
  EXPECT_NE(report.find("frontend.requests"), std::string::npos);

  std::string text = acceptor.Report();
  EXPECT_NE(text.find("admission: on"), std::string::npos);
  EXPECT_NE(text.find("shed=1"), std::string::npos);
}

TEST_F(ServerPlaneTest, ShellServerCommandReportsAttachedPlane) {
  VeloxShell shell(server_.get(), {});
  auto unattached = shell.Execute("server");
  ASSERT_TRUE(unattached.ok());
  EXPECT_NE(unattached.value().find("no server plane attached"),
            std::string::npos);

  AcceptorOptions options;
  RequestAcceptor acceptor(options, frontend_.get());
  (void)SubmitAndWait(&acceptor, Predict(1, 2));
  acceptor.Drain();
  shell.AttachServingPlane(&acceptor);
  auto attached = shell.Execute("server");
  ASSERT_TRUE(attached.ok());
  EXPECT_NE(attached.value().find("server plane"), std::string::npos);
  EXPECT_NE(attached.value().find("accepted=1"), std::string::npos);
}

}  // namespace
}  // namespace velox
