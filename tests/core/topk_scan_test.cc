// Tier-1 coverage for the plane-based full-catalog top-K scan: the
// parallel sharded path must return exactly the same items, scores,
// and order as the serial plane scan, the legacy heap scan, and the
// generic TopK over the whole catalog — including on tie-heavy factor
// tables, k > catalog, and under ItemFilter pre-filtering.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/prediction_service.h"

namespace velox {
namespace {

using Mode = PredictionService::TopKAllMode;

class TopKScanTest : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 7;
  static constexpr size_t kCatalog = 1000;

  TopKScanTest()
      : registry_("scan_model"),
        bootstrapper_(kDim),
        weights_(MakeWeightOptions(), &bootstrapper_),
        feature_cache_(4 * kCatalog),
        prediction_cache_(4 * kCatalog),
        pool_(4),
        service_(MakeServiceOptions(), &registry_, &weights_, &bootstrapper_,
                 &feature_cache_, &prediction_cache_, FeatureResolver()) {
    // Tie-heavy catalog: factors depend only on id % 5, so scores
    // collapse onto 5 distinct values and tie-breaking is load-bearing.
    auto table = std::make_shared<MaterializedFeatureFunction::FactorTable>();
    for (uint64_t id = 0; id < kCatalog; ++id) {
      DenseVector f(kDim);
      for (size_t c = 0; c < kDim; ++c) {
        f[c] = static_cast<double>((id % 5) + 1) * (c + 1) * 0.125;
      }
      (*table)[id] = std::move(f);
    }
    registry_.Register(std::make_shared<MaterializedFeatureFunction>(table, kDim),
                       nullptr, 0.0);
    DenseVector w(kDim);
    for (size_t c = 0; c < kDim; ++c) w[c] = (c % 2 == 0 ? 1.0 : -0.5) * (c + 1);
    weights_.SeedUser(1, w, 1);
    service_.SetScanPool(&pool_);
  }

  static UserWeightStoreOptions MakeWeightOptions() {
    UserWeightStoreOptions opts;
    opts.dim = kDim;
    opts.lambda = 0.5;
    return opts;
  }

  static PredictionServiceOptions MakeServiceOptions() {
    PredictionServiceOptions opts;
    // Low shard floor so the 4-thread pool actually shards this small
    // catalog (1000 / 64 = 15 > 4 shards -> one shard per thread).
    opts.topk_min_shard_rows = 64;
    return opts;
  }

  std::vector<Item> AllItems() {
    std::vector<Item> items;
    items.reserve(kCatalog);
    for (uint64_t id = 0; id < kCatalog; ++id) {
      Item item;
      item.id = id;
      items.push_back(item);
    }
    return items;
  }

  static void ExpectSame(const TopKResult& a, const TopKResult& b) {
    ASSERT_EQ(a.items.size(), b.items.size());
    for (size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_EQ(a.items[i].item_id, b.items[i].item_id) << "rank " << i;
      // Bit-identical, not just close: every path shares the kernels
      // and the (score desc, item_id asc) total order.
      EXPECT_EQ(a.items[i].score, b.items[i].score) << "rank " << i;
    }
  }

  ModelRegistry registry_;
  Bootstrapper bootstrapper_;
  UserWeightStore weights_;
  FeatureCache feature_cache_;
  PredictionCache prediction_cache_;
  ThreadPool pool_;
  PredictionService service_;
};

TEST_F(TopKScanTest, ParallelMatchesSerialHeapAndGenericOnTieHeavyCatalog) {
  const size_t k = 37;
  auto parallel = service_.TopKAll(1, k, nullptr, Mode::kPlaneParallel);
  auto serial = service_.TopKAll(1, k, nullptr, Mode::kPlaneSerial);
  auto heap = service_.TopKAll(1, k, nullptr, Mode::kHeapScan);
  auto generic = service_.TopK(1, AllItems(), k, nullptr, nullptr);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(heap.ok());
  ASSERT_TRUE(generic.ok());
  ASSERT_EQ(parallel->items.size(), k);
  ExpectSame(*serial, *parallel);
  ExpectSame(*heap, *parallel);
  ExpectSame(*generic, *parallel);
  // Ties resolve to ascending item id at equal scores.
  for (size_t i = 1; i < parallel->items.size(); ++i) {
    if (parallel->items[i - 1].score == parallel->items[i].score) {
      EXPECT_LT(parallel->items[i - 1].item_id, parallel->items[i].item_id);
    }
  }
}

TEST_F(TopKScanTest, KLargerThanCatalogReturnsWholeCatalogInIdenticalOrder) {
  auto parallel = service_.TopKAll(1, kCatalog + 50, nullptr, Mode::kPlaneParallel);
  auto serial = service_.TopKAll(1, kCatalog + 50, nullptr, Mode::kPlaneSerial);
  auto heap = service_.TopKAll(1, kCatalog + 50, nullptr, Mode::kHeapScan);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(heap.ok());
  EXPECT_EQ(parallel->items.size(), kCatalog);
  ExpectSame(*serial, *parallel);
  ExpectSame(*heap, *parallel);
}

TEST_F(TopKScanTest, FilterInteractsIdenticallyAcrossPaths) {
  // Drop two of the five score classes, including the best one.
  auto filter = [](uint64_t item_id) { return item_id % 5 != 4 && item_id % 5 != 1; };
  auto parallel = service_.TopKAll(1, 20, filter, Mode::kPlaneParallel);
  auto serial = service_.TopKAll(1, 20, filter, Mode::kPlaneSerial);
  auto heap = service_.TopKAll(1, 20, filter, Mode::kHeapScan);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(heap.ok());
  ASSERT_EQ(parallel->items.size(), 20u);
  for (const ScoredItem& item : parallel->items) {
    EXPECT_TRUE(filter(item.item_id)) << item.item_id;
  }
  ExpectSame(*serial, *parallel);
  ExpectSame(*heap, *parallel);
}

TEST_F(TopKScanTest, AutoModeUsesPlaneAndAgreesWithExplicitModes) {
  auto auto_mode = service_.TopKAll(1, 10);
  auto parallel = service_.TopKAll(1, 10, nullptr, Mode::kPlaneParallel);
  ASSERT_TRUE(auto_mode.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectSame(*parallel, *auto_mode);
}

TEST_F(TopKScanTest, NoScanPoolFallsBackToSerialWithIdenticalOutput) {
  PredictionService no_pool(MakeServiceOptions(), &registry_, &weights_,
                            &bootstrapper_, &feature_cache_, &prediction_cache_,
                            FeatureResolver());
  auto serial = no_pool.TopKAll(1, 15, nullptr, Mode::kPlaneParallel);
  auto pooled = service_.TopKAll(1, 15, nullptr, Mode::kPlaneParallel);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(pooled.ok());
  ExpectSame(*serial, *pooled);
}

TEST_F(TopKScanTest, BatchMatchesPerUserCallsAndAmortizesLookup) {
  // Mix of seeded and bootstrap-on-first-touch users.
  std::vector<uint64_t> uids = {1, 42, 7, 1};
  auto batch = service_.TopKAllBatch(uids, 12);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), uids.size());
  for (size_t i = 0; i < uids.size(); ++i) {
    auto single = service_.TopKAll(uids[i], 12);
    ASSERT_TRUE(single.ok());
    ExpectSame(*single, (*batch)[i]);
    EXPECT_EQ((*batch)[i].model_version, 1);
  }
}

TEST_F(TopKScanTest, BatchValidatesArgumentsAndPreconditions) {
  EXPECT_TRUE(service_.TopKAllBatch({1}, 0).status().IsInvalidArgument());
  auto empty = service_.TopKAllBatch({}, 5);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  ModelRegistry computational("comp");
  computational.Register(std::make_shared<IdentityFeatureFunction>(kDim), nullptr,
                         0.0);
  PredictionService service(MakeServiceOptions(), &computational, &weights_,
                            &bootstrapper_, &feature_cache_, &prediction_cache_,
                            FeatureResolver());
  EXPECT_TRUE(service.TopKAllBatch({1}, 5).status().IsFailedPrecondition());
}

TEST_F(TopKScanTest, RepeatedParallelScansAreDeterministic) {
  auto first = service_.TopKAll(1, 33, nullptr, Mode::kPlaneParallel);
  ASSERT_TRUE(first.ok());
  for (int trial = 0; trial < 10; ++trial) {
    auto again = service_.TopKAll(1, 33, nullptr, Mode::kPlaneParallel);
    ASSERT_TRUE(again.ok());
    ExpectSame(*first, *again);
  }
}

// All factors identical -> every item ties; output must be the first k
// item ids in ascending order on every path.
TEST(TopKScanAllTiesTest, FullTieCatalogOrdersByItemId) {
  const size_t dim = 3, catalog = 300;
  ModelRegistry registry("ties");
  Bootstrapper bootstrapper(dim);
  UserWeightStoreOptions wopts;
  wopts.dim = dim;
  UserWeightStore weights(wopts, &bootstrapper);
  FeatureCache feature_cache(1024);
  PredictionCache prediction_cache(1024);
  ThreadPool pool(4);
  PredictionServiceOptions opts;
  opts.topk_min_shard_rows = 16;
  PredictionService service(opts, &registry, &weights, &bootstrapper, &feature_cache,
                            &prediction_cache, FeatureResolver());
  service.SetScanPool(&pool);

  auto table = std::make_shared<MaterializedFeatureFunction::FactorTable>();
  for (uint64_t id = 0; id < catalog; ++id) {
    (*table)[id] = DenseVector{1.0, 2.0, 3.0};
  }
  registry.Register(std::make_shared<MaterializedFeatureFunction>(table, dim),
                    nullptr, 0.0);
  weights.SeedUser(9, DenseVector{0.5, -1.0, 2.0}, 1);

  for (Mode mode : {Mode::kPlaneParallel, Mode::kPlaneSerial, Mode::kHeapScan}) {
    auto r = service.TopKAll(9, 25, nullptr, mode);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->items.size(), 25u);
    for (size_t i = 0; i < r->items.size(); ++i) {
      EXPECT_EQ(r->items[i].item_id, i) << "mode " << static_cast<int>(mode);
    }
  }
}

}  // namespace
}  // namespace velox
