#include "core/model_selector.h"

#include <gtest/gtest.h>

#include <map>

#include "common/logging.h"
#include "common/random.h"

namespace velox {
namespace {

ModelSelectorOptions Ucb() {
  ModelSelectorOptions opts;
  opts.policy = SelectionPolicy::kUcb1;
  return opts;
}

ModelSelectorOptions Exp() {
  ModelSelectorOptions opts;
  opts.policy = SelectionPolicy::kExpWeights;
  opts.exp_learning_rate = 0.3;
  return opts;
}

TEST(ModelSelectorTest, EmptySelectorFails) {
  ModelSelector selector(Ucb());
  EXPECT_TRUE(selector.SelectModel().status().IsFailedPrecondition());
  EXPECT_TRUE(selector.ReportLoss("x", 1.0).IsNotFound());
  EXPECT_EQ(selector.num_models(), 0u);
}

TEST(ModelSelectorTest, RegistrationValidation) {
  ModelSelector selector(Ucb());
  ASSERT_TRUE(selector.AddModel("a").ok());
  EXPECT_TRUE(selector.AddModel("a").IsAlreadyExists());
  EXPECT_TRUE(selector.AddModel("").IsInvalidArgument());
  EXPECT_EQ(selector.num_models(), 1u);
}

TEST(ModelSelectorTest, Ucb1PullsEachArmOnceFirst) {
  ModelSelector selector(Ucb());
  ASSERT_TRUE(selector.AddModel("a").ok());
  ASSERT_TRUE(selector.AddModel("b").ok());
  ASSERT_TRUE(selector.AddModel("c").ok());
  std::map<std::string, int> first_picks;
  for (int i = 0; i < 3; ++i) {
    auto pick = selector.SelectModel();
    ASSERT_TRUE(pick.ok());
    ++first_picks[pick.value()];
    ASSERT_TRUE(selector.ReportLoss(pick.value(), 1.0).ok());
  }
  EXPECT_EQ(first_picks.size(), 3u);
}

TEST(ModelSelectorTest, Ucb1ConvergesToBetterModel) {
  ModelSelector selector(Ucb());
  ASSERT_TRUE(selector.AddModel("good").ok());
  ASSERT_TRUE(selector.AddModel("bad").ok());
  Rng rng(5);
  std::map<std::string, int> picks;
  for (int i = 0; i < 2000; ++i) {
    auto pick = selector.SelectModel();
    ASSERT_TRUE(pick.ok());
    ++picks[pick.value()];
    double loss = pick.value() == "good" ? 0.2 + rng.Gaussian(0.0, 0.05)
                                         : 2.0 + rng.Gaussian(0.0, 0.05);
    ASSERT_TRUE(selector.ReportLoss(pick.value(), std::max(loss, 0.0)).ok());
  }
  EXPECT_GT(picks["good"], picks["bad"] * 5);
}

TEST(ModelSelectorTest, ExpWeightsConvergesToBetterModel) {
  ModelSelector selector(Exp());
  ASSERT_TRUE(selector.AddModel("good").ok());
  ASSERT_TRUE(selector.AddModel("bad").ok());
  Rng rng(7);
  std::map<std::string, int> picks;
  for (int i = 0; i < 3000; ++i) {
    auto pick = selector.SelectModel();
    ASSERT_TRUE(pick.ok());
    ++picks[pick.value()];
    double loss = pick.value() == "good" ? 0.2 : 3.0;
    ASSERT_TRUE(selector.ReportLoss(pick.value(), loss).ok());
  }
  EXPECT_GT(picks["good"], picks["bad"] * 3);
  // The floor keeps exploring the bad arm a little.
  EXPECT_GT(picks["bad"], 0);
}

TEST(ModelSelectorTest, ExpWeightsAdaptsWhenQualityFlips) {
  // The "dynamic weighting" property: mid-stream the good and bad
  // models swap quality; the selector must shift its traffic.
  ModelSelector selector(Exp());
  ASSERT_TRUE(selector.AddModel("a").ok());
  ASSERT_TRUE(selector.AddModel("b").ok());
  auto run_phase = [&](const std::string& good, int rounds) {
    std::map<std::string, int> picks;
    for (int i = 0; i < rounds; ++i) {
      auto pick = selector.SelectModel();
      VELOX_CHECK_OK(pick.status());
      ++picks[pick.value()];
      VELOX_CHECK_OK(selector.ReportLoss(pick.value(),
                                         pick.value() == good ? 0.2 : 3.0));
    }
    return picks;
  };
  auto phase1 = run_phase("a", 2000);
  EXPECT_GT(phase1["a"], phase1["b"] * 2);
  auto phase2 = run_phase("b", 4000);
  EXPECT_GT(phase2["b"], phase2["a"]);
}

TEST(ModelSelectorTest, StatsReflectPullsLossesAndWeights) {
  ModelSelector selector(Exp());
  ASSERT_TRUE(selector.AddModel("a").ok());
  ASSERT_TRUE(selector.AddModel("b").ok());
  ASSERT_TRUE(selector.ReportLoss("a", 1.0).ok());
  ASSERT_TRUE(selector.ReportLoss("a", 3.0).ok());
  auto stats = selector.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "a");
  EXPECT_EQ(stats[0].pulls, 2);
  EXPECT_DOUBLE_EQ(stats[0].mean_loss, 2.0);
  EXPECT_EQ(stats[1].pulls, 0);
  double total_weight = stats[0].weight + stats[1].weight;
  EXPECT_NEAR(total_weight, 1.0, 1e-9);
  // b has been lossier-by-absence: a's reward accrued, so a outweighs b.
  EXPECT_GT(stats[0].weight, stats[1].weight);
}

TEST(ModelSelectorTest, LossCapBoundsOutliers) {
  ModelSelectorOptions opts = Exp();
  opts.loss_cap = 1.0;
  ModelSelector selector(opts);
  ASSERT_TRUE(selector.AddModel("a").ok());
  ASSERT_TRUE(selector.ReportLoss("a", 1e9).ok());
  auto stats = selector.Stats();
  EXPECT_DOUBLE_EQ(stats[0].mean_loss, 1.0);
}

TEST(ModelSelectorTest, ManyArmsFloorFallsBackToUniform) {
  ModelSelectorOptions opts = Exp();
  opts.exp_min_probability = 0.3;  // infeasible with 5 arms
  ModelSelector selector(opts);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(selector.AddModel("m" + std::to_string(i)).ok());
  }
  auto stats = selector.Stats();
  for (const auto& arm : stats) EXPECT_NEAR(arm.weight, 0.2, 1e-9);
  EXPECT_TRUE(selector.SelectModel().ok());
}

TEST(ModelSelectorDeathTest, OptionValidation) {
  ModelSelectorOptions bad;
  bad.exp_learning_rate = 0.0;
  EXPECT_DEATH(ModelSelector{bad}, "Check failed");
  ModelSelectorOptions bad2;
  bad2.loss_cap = 0.0;
  EXPECT_DEATH(ModelSelector{bad2}, "Check failed");
}

}  // namespace
}  // namespace velox
