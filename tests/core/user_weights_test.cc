#include "core/user_weights.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/random.h"

namespace velox {
namespace {

UserWeightStoreOptions Opts(UpdateStrategy strategy, size_t dim = 3,
                            double lambda = 0.5) {
  UserWeightStoreOptions opts;
  opts.dim = dim;
  opts.lambda = lambda;
  opts.strategy = strategy;
  opts.num_stripes = 8;
  return opts;
}

TEST(UserWeightStoreTest, UnknownUserIsNotFound) {
  UserWeightStore store(Opts(UpdateStrategy::kShermanMorrison), nullptr);
  EXPECT_TRUE(store.GetWeights(1).status().IsNotFound());
  EXPECT_FALSE(store.HasUser(1));
  EXPECT_EQ(store.Epoch(1), 0u);
  EXPECT_EQ(store.NumObservations(1), 0);
  EXPECT_EQ(store.num_users(), 0u);
}

TEST(UserWeightStoreTest, BootstrapCreatesUserWithGivenWeights) {
  UserWeightStore store(Opts(UpdateStrategy::kShermanMorrison), nullptr);
  DenseVector boot = {1.0, 2.0, 3.0};
  DenseVector w = store.GetOrBootstrapWeights(42, boot);
  EXPECT_EQ(w, boot);
  EXPECT_TRUE(store.HasUser(42));
  // Second call returns the stored weights, not the new bootstrap.
  DenseVector other = {9.0, 9.0, 9.0};
  EXPECT_EQ(store.GetOrBootstrapWeights(42, other), boot);
}

TEST(UserWeightStoreTest, SeedUserInstallsWeightsAndBumpsEpochOnReplace) {
  UserWeightStore store(Opts(UpdateStrategy::kShermanMorrison), nullptr);
  store.SeedUser(1, DenseVector{1.0, 0.0, 0.0}, 1);
  uint64_t e1 = store.Epoch(1);
  store.SeedUser(1, DenseVector{0.0, 1.0, 0.0}, 2);
  EXPECT_GT(store.Epoch(1), e1);
  EXPECT_EQ(store.GetWeights(1).value(), (DenseVector{0.0, 1.0, 0.0}));
}

TEST(UserWeightStoreTest, ApplyObservationUpdatesWeightsAndCounters) {
  UserWeightStore store(Opts(UpdateStrategy::kShermanMorrison), nullptr);
  DenseVector f = {1.0, 0.0, 0.0};
  auto r1 = store.ApplyObservation(7, f, 2.0);
  ASSERT_TRUE(r1.ok());
  EXPECT_DOUBLE_EQ(r1->prediction_before, 0.0);  // fresh user predicts 0
  EXPECT_EQ(r1->num_observations, 1);
  EXPECT_GT(r1->new_weights.Norm2(), 0.0);
  EXPECT_EQ(store.NumObservations(7), 1);
  uint64_t e1 = store.Epoch(7);
  auto r2 = store.ApplyObservation(7, f, 2.0);
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(store.Epoch(7), e1);
  // Second prediction uses post-first-update weights.
  EXPECT_GT(r2->prediction_before, 0.0);
}

TEST(UserWeightStoreTest, DimensionMismatchRejected) {
  UserWeightStore store(Opts(UpdateStrategy::kShermanMorrison), nullptr);
  EXPECT_TRUE(
      store.ApplyObservation(1, DenseVector(4), 1.0).status().IsInvalidArgument());
}

// Property: both strategies implement the same Eq. 2 — their weights
// must agree on any observation stream.
class StrategyEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(StrategyEquivalenceTest, NaiveAndShermanMorrisonAgree) {
  const size_t d = GetParam();
  UserWeightStore naive(Opts(UpdateStrategy::kNaiveNormalEquations, d), nullptr);
  UserWeightStore sm(Opts(UpdateStrategy::kShermanMorrison, d), nullptr);
  Rng rng(900 + d);
  for (int n = 0; n < 40; ++n) {
    DenseVector f(d);
    for (size_t i = 0; i < d; ++i) f[i] = rng.Gaussian();
    double y = rng.Gaussian();
    auto rn = naive.ApplyObservation(5, f, y);
    auto rs = sm.ApplyObservation(5, f, y);
    ASSERT_TRUE(rn.ok());
    ASSERT_TRUE(rs.ok());
    EXPECT_LT(MaxAbsDiff(rn->new_weights, rs->new_weights), 1e-7)
        << "dim " << d << " step " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, StrategyEquivalenceTest,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(UserWeightStoreTest, OnlineLearningConvergesToTrueWeights) {
  const size_t d = 4;
  auto opts = Opts(UpdateStrategy::kShermanMorrison, d, 1e-4);
  UserWeightStore store(opts, nullptr);
  DenseVector truth = {2.0, -1.0, 0.5, 1.5};
  Rng rng(33);
  for (int n = 0; n < 300; ++n) {
    DenseVector f(d);
    for (size_t i = 0; i < d; ++i) f[i] = rng.Gaussian();
    ASSERT_TRUE(store.ApplyObservation(1, f, Dot(truth, f)).ok());
  }
  EXPECT_LT(MaxAbsDiff(store.GetWeights(1).value(), truth), 1e-2);
}

TEST(UserWeightStoreTest, UncertaintyDecreasesWithObservations) {
  UserWeightStore store(Opts(UpdateStrategy::kShermanMorrison), nullptr);
  DenseVector f = {1.0, 1.0, 1.0};
  store.GetOrBootstrapWeights(1, DenseVector(3));
  double before = store.Uncertainty(1, f);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.ApplyObservation(1, f, 1.0).ok());
  }
  EXPECT_LT(store.Uncertainty(1, f), before / 2.0);
}

TEST(UserWeightStoreTest, NaiveStrategyUsesCountProxyUncertainty) {
  UserWeightStore store(Opts(UpdateStrategy::kNaiveNormalEquations), nullptr);
  DenseVector f = {1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(store.Uncertainty(99, f), 1.0);  // unknown user
  ASSERT_TRUE(store.ApplyObservation(1, f, 1.0).ok());
  ASSERT_TRUE(store.ApplyObservation(1, f, 1.0).ok());
  ASSERT_TRUE(store.ApplyObservation(1, f, 1.0).ok());
  EXPECT_NEAR(store.Uncertainty(1, f), 0.5, 1e-12);  // 1/sqrt(1+3)
}

// Regression: an observe-first cold start must seed from the same
// bootstrap source as a predict-first cold start (GetOrBootstrapWeights
// uses the bootstrap mean; ApplyObservation used to seed from zero,
// giving observe-first users a different prior and a meaningless
// prediction_before).
TEST(UserWeightStoreTest, ObserveFirstAndPredictFirstColdStartsMatch) {
  const DenseVector f = {1.0, 0.0};
  const double label = 3.0;

  // Two stores with identical non-trivial bootstrap state.
  auto make_store = [](Bootstrapper* bootstrapper) {
    UserWeightStoreOptions opts;
    opts.dim = 2;
    opts.lambda = 0.5;
    auto store = std::make_unique<UserWeightStore>(opts, bootstrapper);
    store->SeedUser(1, DenseVector{2.0, 0.0}, 1);
    store->SeedUser(2, DenseVector{0.0, 4.0}, 1);
    return store;
  };
  Bootstrapper boot_a(2);
  Bootstrapper boot_b(2);
  auto observe_first = make_store(&boot_a);
  auto predict_first = make_store(&boot_b);
  const DenseVector mean = boot_a.MeanWeights();  // [1, 2]
  ASSERT_GT(mean.Norm2(), 0.0);

  // Path A: user 99's first contact is an observation.
  auto observed = observe_first->ApplyObservation(99, f, label);
  ASSERT_TRUE(observed.ok());
  // The pre-update prediction comes from the bootstrap mean, not zero.
  EXPECT_DOUBLE_EQ(observed->prediction_before, Dot(mean, f));

  // Path B: user 99 predicts first (bootstraps), then observes.
  DenseVector initial = predict_first->GetOrBootstrapWeights(99, mean);
  EXPECT_EQ(initial, mean);
  auto after_predict = predict_first->ApplyObservation(99, f, label);
  ASSERT_TRUE(after_predict.ok());

  // Identical initial weights => identical posterior weights.
  EXPECT_DOUBLE_EQ(after_predict->prediction_before, observed->prediction_before);
  EXPECT_LT(MaxAbsDiff(observed->new_weights, after_predict->new_weights), 1e-12);
}

// The null-bootstrapper fallback stays zero-seeded (pure solver tests
// rely on it).
TEST(UserWeightStoreTest, ObserveFirstWithoutBootstrapperSeedsZero) {
  UserWeightStore store(Opts(UpdateStrategy::kShermanMorrison), nullptr);
  auto r = store.ApplyObservation(5, DenseVector{1.0, 0.0, 0.0}, 2.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->prediction_before, 0.0);
}

TEST(UserWeightStoreTest, BootstrapperTracksMeanAcrossUpdates) {
  Bootstrapper bootstrapper(2);
  UserWeightStoreOptions opts;
  opts.dim = 2;
  opts.lambda = 0.5;
  UserWeightStore store(opts, &bootstrapper);
  store.SeedUser(1, DenseVector{2.0, 0.0}, 1);
  store.SeedUser(2, DenseVector{0.0, 4.0}, 1);
  DenseVector mean = bootstrapper.MeanWeights();
  EXPECT_DOUBLE_EQ(mean[0], 1.0);
  EXPECT_DOUBLE_EQ(mean[1], 2.0);
  // An update keeps the running mean exact.
  ASSERT_TRUE(store.ApplyObservation(1, DenseVector{1.0, 0.0}, 10.0).ok());
  DenseVector expected = store.GetWeights(1).value();
  expected.Axpy(1.0, store.GetWeights(2).value());
  expected.Scale(0.5);
  EXPECT_LT(MaxAbsDiff(bootstrapper.MeanWeights(), expected), 1e-10);
}

TEST(UserWeightStoreTest, ResetForNewVersionReplacesPopulation) {
  Bootstrapper bootstrapper(2);
  UserWeightStoreOptions opts;
  opts.dim = 2;
  opts.lambda = 0.5;
  UserWeightStore store(opts, &bootstrapper);
  store.SeedUser(1, DenseVector{1.0, 1.0}, 1);
  ASSERT_TRUE(store.ApplyObservation(1, DenseVector{1.0, 0.0}, 3.0).ok());

  FactorMap trained;
  trained[2] = DenseVector{5.0, 5.0};
  trained[3] = DenseVector{7.0, 7.0};
  store.ResetForNewVersion(trained, 2);
  EXPECT_FALSE(store.HasUser(1));
  EXPECT_TRUE(store.HasUser(2));
  EXPECT_TRUE(store.HasUser(3));
  EXPECT_EQ(store.num_users(), 2u);
  // Online statistics were reset.
  EXPECT_EQ(store.NumObservations(2), 0);
  // Bootstrapper mean reflects the new population.
  EXPECT_DOUBLE_EQ(bootstrapper.MeanWeights()[0], 6.0);
}

TEST(UserWeightStoreTest, ResetSkipsIncompatibleDimensions) {
  UserWeightStore store(Opts(UpdateStrategy::kShermanMorrison, 3), nullptr);
  FactorMap trained;
  trained[1] = DenseVector(3);
  trained[2] = DenseVector(5);  // wrong dim — must be skipped, not crash
  store.ResetForNewVersion(trained, 1);
  EXPECT_TRUE(store.HasUser(1));
  EXPECT_FALSE(store.HasUser(2));
}

TEST(UserWeightStoreTest, ExportWeightsRoundTrips) {
  UserWeightStore store(Opts(UpdateStrategy::kShermanMorrison, 2), nullptr);
  store.SeedUser(10, DenseVector{1.0, 2.0}, 1);
  store.SeedUser(20, DenseVector{3.0, 4.0}, 1);
  FactorMap exported = store.ExportWeights();
  ASSERT_EQ(exported.size(), 2u);
  EXPECT_EQ(exported.at(10), (DenseVector{1.0, 2.0}));
  EXPECT_EQ(exported.at(20), (DenseVector{3.0, 4.0}));
}

TEST(UserWeightStoreTest, ConcurrentUpdatesToDistinctUsersAreConflictFree) {
  UserWeightStore store(Opts(UpdateStrategy::kShermanMorrison, 2), nullptr);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&store, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 500; ++i) {
        uint64_t uid = static_cast<uint64_t>(t) * 1000 + (i % 50);
        DenseVector f = {rng.Gaussian(), rng.Gaussian()};
        ASSERT_TRUE(store.ApplyObservation(uid, f, rng.Gaussian()).ok());
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(store.num_users(), 200u);
  // Every user saw exactly 10 observations (500 / 50).
  for (uint64_t t = 0; t < 4; ++t) {
    for (uint64_t i = 0; i < 50; ++i) {
      EXPECT_EQ(store.NumObservations(t * 1000 + i), 10);
    }
  }
}

TEST(UpdateStrategyNameTest, Names) {
  EXPECT_STREQ(UpdateStrategyName(UpdateStrategy::kNaiveNormalEquations),
               "naive_normal_equations");
  EXPECT_STREQ(UpdateStrategyName(UpdateStrategy::kShermanMorrison),
               "sherman_morrison");
}

}  // namespace
}  // namespace velox
