// The serving-tier batched path: PredictBatch vs per-key Predict
// bit-identity, miss coalescing (duplicates merged, one MultiGet per
// batch), single-flight dedup of concurrent misses, and per-key
// degradation when one storage node's sub-batch drops.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/velox_server.h"
#include "data/movielens.h"

namespace velox {
namespace {

VeloxServerConfig BatchingConfig() {
  VeloxServerConfig config;
  config.num_nodes = 4;
  config.dim = 4;
  config.bandit_policy = "";
  config.batch_workers = 2;
  config.evaluator.min_observations = 1000000;
  config.distribute_item_features = true;  // resolution goes via storage
  config.storage.replication_factor = 2;
  return config;
}

std::unique_ptr<VeloxModel> SmallModel() {
  AlsConfig als;
  als.rank = 4;
  als.iterations = 5;
  return std::make_unique<MatrixFactorizationModel>("songs", als);
}

SyntheticDataset SmallData() {
  SyntheticMovieLensConfig config;
  config.num_users = 50;
  config.num_items = 60;
  config.latent_rank = 4;
  config.seed = 21;
  auto ds = GenerateSyntheticMovieLens(config);
  VELOX_CHECK_OK(ds.status());
  return std::move(ds).value();
}

Item MakeItem(uint64_t id) {
  Item item;
  item.id = id;
  return item;
}

TEST(PredictBatchTest, BitIdenticalToPerKeyPredict) {
  // Two identically-built servers: one answers through the batched
  // path, one per key. Every score must match bit for bit — batching
  // changes the wire shape, never the arithmetic.
  SyntheticDataset data = SmallData();
  VeloxServer batched(BatchingConfig(), SmallModel());
  VeloxServer per_key(BatchingConfig(), SmallModel());
  ASSERT_TRUE(batched.Bootstrap(data.ratings).ok());
  ASSERT_TRUE(per_key.Bootstrap(data.ratings).ok());

  const uint64_t uid = data.ratings[0].uid;
  std::vector<Item> items;
  for (uint64_t id = 0; id < 20; ++id) items.push_back(MakeItem(id));
  items.push_back(MakeItem(3));  // duplicates ride along
  items.push_back(MakeItem(3));

  auto batch = batched.PredictBatch(uid, items);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value().size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    auto single = per_key.Predict(uid, items[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch.value()[i].item_id, items[i].id);
    EXPECT_EQ(batch.value()[i].score, single->score) << "item " << items[i].id;
    EXPECT_FALSE(batch.value()[i].degraded);
  }
  // The duplicates got the same answer as their first occurrence.
  EXPECT_EQ(batch.value()[20].score, batch.value()[3].score);
  EXPECT_EQ(batch.value()[21].score, batch.value()[3].score);
}

TEST(PredictBatchTest, DuplicateItemsFetchStorageOnce) {
  SyntheticDataset data = SmallData();
  VeloxServer server(BatchingConfig(), SmallModel());
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());

  const uint64_t uid = data.ratings[0].uid;
  NodeId home = server.storage()->OwnerOf(uid).value();
  PredictionService* ps = server.prediction_service(home);
  ASSERT_NE(ps, nullptr);

  // Bootstrap's log replay warmed the feature cache; flush it so the
  // batch actually misses.
  server.feature_cache(home)->Clear();
  const uint64_t item = data.ratings[0].item_id;
  uint64_t fetches_before = ps->coalesce_fetches();
  uint64_t merged_before = ps->coalesce_merged();
  auto batch = server.PredictBatch(uid, {MakeItem(item), MakeItem(item),
                                         MakeItem(item)});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  // Three copies of an uncached item cost exactly one storage fetch;
  // the other two merged into it.
  EXPECT_EQ(ps->coalesce_fetches() - fetches_before, 1u);
  EXPECT_EQ(ps->coalesce_merged() - merged_before, 2u);
  EXPECT_EQ(batch.value()[1].score, batch.value()[0].score);
  EXPECT_EQ(batch.value()[2].score, batch.value()[0].score);
}

TEST(PredictBatchTest, ConcurrentMissesSingleFlightToStorage) {
  SyntheticDataset data = SmallData();
  VeloxServer server(BatchingConfig(), SmallModel());
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());

  // Two uids homed on the same node so both requests hit one
  // PredictionService (and its single-flight table).
  const uint64_t uid_a = data.ratings[0].uid;
  NodeId home = server.storage()->OwnerOf(uid_a).value();
  uint64_t uid_b = uid_a;
  for (const Observation& obs : data.ratings) {
    if (obs.uid != uid_a && server.storage()->OwnerOf(obs.uid).value() == home) {
      uid_b = obs.uid;
      break;
    }
  }
  ASSERT_NE(uid_b, uid_a);
  PredictionService* ps = server.prediction_service(home);
  server.feature_cache(home)->Clear();
  const uint64_t item = data.ratings[0].item_id;
  uint64_t fetches_before = ps->coalesce_fetches();

  // Whether the threads truly overlap (loser waits on the winner's
  // flight) or serialize (second is a cache hit), the item is fetched
  // from storage exactly once.
  std::atomic<int> ready{0};
  double score_a = 0.0;
  double score_b = 0.0;
  std::thread ta([&] {
    ready.fetch_add(1);
    while (ready.load() < 2) {
    }
    auto r = server.Predict(uid_a, MakeItem(item));
    ASSERT_TRUE(r.ok());
    score_a = r->score;
  });
  std::thread tb([&] {
    ready.fetch_add(1);
    while (ready.load() < 2) {
    }
    auto r = server.Predict(uid_b, MakeItem(item));
    ASSERT_TRUE(r.ok());
    score_b = r->score;
  });
  ta.join();
  tb.join();
  EXPECT_EQ(ps->coalesce_fetches() - fetches_before, 1u);

  // And each thread's answer matches a fresh recompute bit for bit.
  auto again_a = server.Predict(uid_a, MakeItem(item));
  auto again_b = server.Predict(uid_b, MakeItem(item));
  ASSERT_TRUE(again_a.ok());
  ASSERT_TRUE(again_b.ok());
  EXPECT_EQ(score_a, again_a->score);
  EXPECT_EQ(score_b, again_b->score);
}

TEST(PredictBatchTest, OneNodesDropDegradesOnlyItsKeys) {
  // Replication 1 so each item has exactly one owner: partitioning the
  // home node away from one storage node strands only that node's
  // sub-batch, and only its items degrade.
  VeloxServerConfig config = BatchingConfig();
  config.storage.replication_factor = 1;
  config.use_feature_cache = false;  // every item resolves via storage
  config.use_prediction_cache = false;
  SyntheticDataset data = SmallData();
  VeloxServer server(config, SmallModel());
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());

  const uint64_t uid = data.ratings[0].uid;
  NodeId home = server.storage()->OwnerOf(uid).value();
  NodeId dead = (home + 1) % 4;
  std::vector<Item> items;
  std::vector<bool> expect_degraded;
  for (uint64_t id = 0; id < 60 && items.size() < 12; ++id) {
    NodeId owner = server.storage()->OwnerOf(id).value();
    items.push_back(MakeItem(id));
    expect_degraded.push_back(owner == dead && owner != home);
  }
  ASSERT_GT(std::count(expect_degraded.begin(), expect_degraded.end(), true), 0);
  ASSERT_GT(std::count(expect_degraded.begin(), expect_degraded.end(), false), 0);

  server.storage()->network()->SetPartitioned(home, dead, true);
  auto batch = server.PredictBatch(uid, items);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(batch.value()[i].degraded, expect_degraded[i])
        << "item " << items[i].id << " owner "
        << server.storage()->OwnerOf(items[i].id).value();
  }

  // Healing the partition heals the whole batch.
  server.storage()->network()->SetPartitioned(home, dead, false);
  auto healed = server.PredictBatch(uid, items);
  ASSERT_TRUE(healed.ok());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_FALSE(healed.value()[i].degraded) << "item " << items[i].id;
  }
}

}  // namespace
}  // namespace velox
