#include "core/online_updater.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace velox {
namespace {

class OnlineUpdaterTest : public ::testing::Test {
 protected:
  OnlineUpdaterTest()
      : model_("mf", MakeAlsConfig()),
        registry_("mf"),
        bootstrapper_(2),
        weights_(MakeWeightOptions(), &bootstrapper_),
        feature_cache_(64),
        prediction_cache_(64),
        evaluator_(MakeEvaluatorOptions()),
        storage_(MakeStorageOptions()),
        client_(&storage_, 0),
        service_(PredictionServiceOptions{}, &registry_, &weights_, &bootstrapper_,
                 &feature_cache_, &prediction_cache_, FeatureResolver()),
        updater_(MakeUpdaterOptions(), &model_, &registry_, &weights_, &service_,
                 &evaluator_, &client_) {
    auto table = std::make_shared<MaterializedFeatureFunction::FactorTable>();
    (*table)[10] = DenseVector{1.0, 0.0};
    (*table)[20] = DenseVector{0.0, 1.0};
    auto features = std::make_shared<MaterializedFeatureFunction>(table, 2);
    registry_.Register(features, nullptr, 0.0);
    VELOX_CHECK_OK(storage_.CreateTable("user_weights"));
  }

  static AlsConfig MakeAlsConfig() {
    AlsConfig config;
    config.rank = 2;
    return config;
  }
  static UserWeightStoreOptions MakeWeightOptions() {
    UserWeightStoreOptions opts;
    opts.dim = 2;
    opts.lambda = 0.1;
    return opts;
  }
  static EvaluatorOptions MakeEvaluatorOptions() {
    EvaluatorOptions opts;
    opts.min_observations = 5;
    return opts;
  }
  static StorageClusterOptions MakeStorageOptions() {
    StorageClusterOptions opts;
    opts.num_nodes = 1;
    return opts;
  }
  static OnlineUpdaterOptions MakeUpdaterOptions() {
    OnlineUpdaterOptions opts;
    opts.cross_validation_every = 2;
    return opts;
  }

  Item MakeItem(uint64_t id) {
    Item item;
    item.id = id;
    return item;
  }

  MatrixFactorizationModel model_;
  ModelRegistry registry_;
  Bootstrapper bootstrapper_;
  UserWeightStore weights_;
  FeatureCache feature_cache_;
  PredictionCache prediction_cache_;
  Evaluator evaluator_;
  StorageCluster storage_;
  StorageClient client_;
  PredictionService service_;
  OnlineUpdater updater_;
};

TEST_F(OnlineUpdaterTest, ObserveUpdatesUserWeights) {
  auto r = updater_.Observe(1, MakeItem(10), 4.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->prediction_before, 0.0);
  EXPECT_EQ(r->user_observations, 1);
  auto w = weights_.GetWeights(1);
  ASSERT_TRUE(w.ok());
  EXPECT_GT(w.value()[0], 0.0);  // learned positive weight on dim 0
}

TEST_F(OnlineUpdaterTest, RepeatedObservationsConverge) {
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(updater_.Observe(1, MakeItem(10), 4.0).ok());
  }
  auto r = service_.Predict(1, MakeItem(10));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->score, 4.0, 0.1);
}

TEST_F(OnlineUpdaterTest, LossReportedToEvaluator) {
  ASSERT_TRUE(updater_.Observe(1, MakeItem(10), 4.0).ok());
  // Prequential loss of first observation: 0.5 * 4^2 = 8.
  EXPECT_DOUBLE_EQ(evaluator_.UserMeanLoss(1), 8.0);
  EXPECT_EQ(evaluator_.Report().observations_since_baseline, 1);
}

TEST_F(OnlineUpdaterTest, CrossValidationStreamSamplesEveryKth) {
  // cross_validation_every = 2: observations 2, 4, 6... feed held-out.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(updater_.Observe(1, MakeItem(10), 4.0).ok());
  }
  EXPECT_GT(evaluator_.Report().ewma_loss, 0.0);
}

TEST_F(OnlineUpdaterTest, ObservationLandsInLog) {
  ASSERT_TRUE(updater_.Observe(1, MakeItem(10), 4.5).ok());
  auto observations = storage_.AllObservations();
  ASSERT_EQ(observations.size(), 1u);
  EXPECT_EQ(observations[0].uid, 1u);
  EXPECT_EQ(observations[0].item_id, 10u);
  EXPECT_DOUBLE_EQ(observations[0].label, 4.5);
}

TEST_F(OnlineUpdaterTest, WeightsPersistedToStorage) {
  ASSERT_TRUE(updater_.Observe(1, MakeItem(10), 4.0).ok());
  auto table = storage_.store(0)->GetTable("user_weights");
  ASSERT_TRUE(table.ok());
  auto bytes = table.value()->Get(1);
  ASSERT_TRUE(bytes.ok());
  auto persisted = DecodeFactor(bytes.value());
  ASSERT_TRUE(persisted.ok());
  EXPECT_EQ(persisted.value(), weights_.GetWeights(1).value());
}

TEST_F(OnlineUpdaterTest, ExplorationSourcedObservationEntersValidationPool) {
  ASSERT_TRUE(updater_.Observe(1, MakeItem(10), 4.0, /*exploration_sourced=*/true).ok());
  ASSERT_TRUE(updater_.Observe(1, MakeItem(20), 2.0, /*exploration_sourced=*/false).ok());
  auto pool = evaluator_.ValidationPool();
  ASSERT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool[0].item_id, 10u);
}

TEST_F(OnlineUpdaterTest, UnknownItemFails) {
  EXPECT_TRUE(updater_.Observe(1, MakeItem(999), 1.0).status().IsNotFound());
}

TEST_F(OnlineUpdaterTest, ObserveSharesFeatureCacheWithPredictions) {
  ASSERT_TRUE(updater_.Observe(1, MakeItem(10), 4.0).ok());
  auto stats_before = feature_cache_.stats();
  ASSERT_TRUE(service_.Predict(2, MakeItem(10)).ok());
  auto stats_after = feature_cache_.stats();
  EXPECT_EQ(stats_after.hits, stats_before.hits + 1);
}

TEST_F(OnlineUpdaterTest, PredictAfterObserveSeesNewWeightsNotStaleCache) {
  // Warm the prediction cache, then observe, then re-predict: the
  // cached stale score must not resurface (epoch keying).
  auto before = service_.Predict(1, MakeItem(10));
  ASSERT_TRUE(before.ok());
  EXPECT_DOUBLE_EQ(before->score, 0.0);
  ASSERT_TRUE(updater_.Observe(1, MakeItem(10), 4.0).ok());
  auto after = service_.Predict(1, MakeItem(10));
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->score, 1.0);
}

}  // namespace
}  // namespace velox
