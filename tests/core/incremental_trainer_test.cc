// Nearline incremental retraining: drift tracking + selection policy,
// the bit-identity contract (select-all incremental == full retrain,
// byte for byte), partial refreshes that leave unselected factors
// untouched, kAuto escalation, drift-epoch resets, and the pinned
// volatility contract (drift stats never survive a restart).
#include "core/incremental_trainer.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ml/feature_function.h"

#include "core/velox_server.h"
#include "data/movielens.h"

namespace velox {
namespace {

VeloxServerConfig SmallServerConfig() {
  VeloxServerConfig config;
  config.num_nodes = 1;
  config.dim = 4;
  config.lambda = 0.1;
  config.bandit_policy = "";  // greedy, deterministic
  config.evaluator.min_observations = 20;
  config.updater.cross_validation_every = 1;
  config.batch_workers = 2;
  return config;
}

std::unique_ptr<VeloxModel> SmallModel() {
  AlsConfig als;
  als.rank = 4;
  als.lambda = 0.1;
  als.iterations = 8;
  return std::make_unique<MatrixFactorizationModel>("songs", als);
}

SyntheticDataset SmallData(uint64_t seed = 11) {
  SyntheticMovieLensConfig config;
  config.num_users = 60;
  config.num_items = 80;
  config.latent_rank = 4;
  config.min_ratings_per_user = 8;
  config.max_ratings_per_user = 16;
  config.seed = seed;
  auto ds = GenerateSyntheticMovieLens(config);
  VELOX_CHECK_OK(ds.status());
  return std::move(ds).value();
}

Item MakeItem(uint64_t id) {
  Item item;
  item.id = id;
  return item;
}

// Byte-level equality (catches even -0.0 vs 0.0, which == would not).
bool BitEqual(const DenseVector& a, const DenseVector& b) {
  return a.dim() == b.dim() &&
         std::memcmp(a.data(), b.data(), a.dim() * sizeof(double)) == 0;
}

bool BitEqual(const FactorMap& a, const FactorMap& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [id, vec] : a) {
    auto it = b.find(id);
    if (it == b.end() || !BitEqual(vec, it->second)) return false;
  }
  return true;
}

const MaterializedFeatureFunction::FactorTable& VersionTable(
    const ModelVersion& version) {
  const auto* materialized =
      dynamic_cast<const MaterializedFeatureFunction*>(version.features.get());
  VELOX_CHECK(materialized != nullptr);
  return materialized->table();
}

// --- ItemDriftTracker ---

TEST(ItemDriftTrackerTest, AccumulatesPerItem) {
  ItemDriftTracker tracker;
  tracker.Record(7, 0.25);
  tracker.Record(7, 0.75);
  tracker.Record(3, 4.0);
  EXPECT_EQ(tracker.total_observations(), 3);
  auto stats = tracker.Snapshot();
  ASSERT_EQ(stats.size(), 2u);
  // Sorted ascending by item id.
  EXPECT_EQ(stats[0].item_id, 3u);
  EXPECT_EQ(stats[0].observations, 1);
  EXPECT_DOUBLE_EQ(stats[0].squared_error, 4.0);
  EXPECT_EQ(stats[1].item_id, 7u);
  EXPECT_EQ(stats[1].observations, 2);
  EXPECT_DOUBLE_EQ(stats[1].squared_error, 1.0);
  EXPECT_DOUBLE_EQ(stats[1].MeanSquaredError(), 0.5);
}

TEST(ItemDriftTrackerTest, ResetItemsForgetsOnlyListed) {
  ItemDriftTracker tracker;
  tracker.Record(1, 1.0);
  tracker.Record(2, 1.0);
  tracker.Record(2, 1.0);
  tracker.ResetItems({2, 99});  // 99 absent: no-op
  EXPECT_EQ(tracker.total_observations(), 1);
  auto stats = tracker.Snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].item_id, 1u);
  tracker.Clear();
  EXPECT_EQ(tracker.total_observations(), 0);
  EXPECT_TRUE(tracker.Snapshot().empty());
}

TEST(ItemDriftTrackerTest, MergeCombinesNodeSnapshots) {
  ItemDriftTracker a, b;
  a.Record(5, 1.0);
  a.Record(9, 2.0);
  b.Record(5, 3.0);
  b.Record(1, 0.5);
  auto merged = MergeDriftSnapshots({&a, &b});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].item_id, 1u);
  EXPECT_EQ(merged[1].item_id, 5u);
  EXPECT_EQ(merged[1].observations, 2);
  EXPECT_DOUBLE_EQ(merged[1].squared_error, 4.0);
  EXPECT_EQ(merged[2].item_id, 9u);
}

// --- SelectDriftedItems ---

TEST(SelectDriftedItemsTest, VolumeAndErrorTriggers) {
  IncrementalPolicy policy;
  policy.min_observations = 4;
  policy.error_threshold = 2.0;
  policy.error_min_count = 2;
  std::vector<ItemDriftStat> stats = {
      {/*item_id=*/1, /*observations=*/4, /*squared_error=*/0.1},  // volume
      {/*item_id=*/2, /*observations=*/3, /*squared_error=*/9.0},  // mse 3.0
      {/*item_id=*/3, /*observations=*/1, /*squared_error=*/50.0},  // < min_count
      {/*item_id=*/4, /*observations=*/3, /*squared_error=*/0.3},  // neither
  };
  auto selection = SelectDriftedItems(stats, policy, /*catalog_items=*/10);
  EXPECT_EQ(selection.items, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(selection.candidates, 4u);
  EXPECT_EQ(selection.catalog_items, 10u);
  EXPECT_DOUBLE_EQ(selection.drift_fraction, 0.2);
  EXPECT_EQ(selection.drifted_observations, 7);
}

TEST(SelectDriftedItemsTest, ErrorTriggerDisabledByDefault) {
  IncrementalPolicy policy;  // error_threshold = 0 -> volume only
  std::vector<ItemDriftStat> stats = {
      {/*item_id=*/1, /*observations=*/2, /*squared_error=*/1000.0}};
  auto selection = SelectDriftedItems(stats, policy, 10);
  EXPECT_TRUE(selection.items.empty());
}

// --- the bit-identity contract ---

TEST(IncrementalRetrainTest, SelectAllIsBitIdenticalToFull) {
  auto data = SmallData();
  auto drive = [&](VeloxServer& server) {
    VELOX_CHECK_OK(server.Bootstrap(data.ratings));
    for (int i = 0; i < 90; ++i) {
      uint64_t uid = static_cast<uint64_t>(i % 60);
      uint64_t item = static_cast<uint64_t>((i * 7) % 80);
      VELOX_CHECK_OK(server.Observe(uid, MakeItem(item), 1.0 + (i % 9) * 0.5));
    }
  };
  VeloxServer full_server(SmallServerConfig(), SmallModel());
  VeloxServer incr_server(SmallServerConfig(), SmallModel());
  drive(full_server);
  drive(incr_server);

  auto full_report = full_server.RetrainNow();
  ASSERT_TRUE(full_report.ok());
  auto incr_report = incr_server.RetrainIncremental(/*refresh_all=*/true);
  ASSERT_TRUE(incr_report.ok()) << incr_report.status().ToString();
  EXPECT_EQ(incr_report->mode_used, RetrainMode::kIncremental);
  EXPECT_EQ(incr_report->observations_used, full_report->observations_used);

  auto full_version = full_server.registry()->Current();
  auto incr_version = incr_server.registry()->Current();
  ASSERT_TRUE(full_version.ok());
  ASSERT_TRUE(incr_version.ok());

  // θ byte-identical.
  const auto& full_table = VersionTable(**full_version);
  const auto& incr_table = VersionTable(**incr_version);
  ASSERT_EQ(full_table.size(), incr_table.size());
  for (const auto& [item, factor] : full_table) {
    auto it = incr_table.find(item);
    ASSERT_NE(it, incr_table.end()) << "item " << item;
    EXPECT_TRUE(BitEqual(factor, it->second)) << "item " << item;
  }
  // Trained W byte-identical, RMSE the same double.
  EXPECT_TRUE(BitEqual(*(*full_version)->trained_user_weights,
                       *(*incr_version)->trained_user_weights));
  EXPECT_EQ((*full_version)->training_rmse, (*incr_version)->training_rmse);
  EXPECT_EQ(full_report->training_rmse, incr_report->training_rmse);

  // And the serving surface agrees exactly.
  for (uint64_t u = 0; u < 60; u += 7) {
    auto a = full_server.Predict(u, MakeItem(u % 80));
    auto b = incr_server.Predict(u, MakeItem(u % 80));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->score, b->score);
  }
}

// --- partial refresh ---

TEST(IncrementalRetrainTest, RefreshTouchesOnlyDriftedItems) {
  VeloxServer server(SmallServerConfig(), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  auto before = server.registry()->Current();
  ASSERT_TRUE(before.ok());

  // Concentrated drift: two items cross the default volume trigger (8),
  // everything else stays below it.
  for (uint64_t u = 0; u < 12; ++u) {
    ASSERT_TRUE(server.Observe(u, MakeItem(3), 5.0).ok());
    ASSERT_TRUE(server.Observe(u, MakeItem(17), 0.5).ok());
  }
  auto report = server.RetrainIncremental();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->mode_used, RetrainMode::kIncremental);
  EXPECT_EQ(report->items_refreshed, 2u);
  EXPECT_FALSE(report->escalated);
  EXPECT_EQ(server.current_version(), 2);

  auto after = server.registry()->Current();
  ASSERT_TRUE(after.ok());
  const auto& old_table = VersionTable(**before);
  const auto& new_table = VersionTable(**after);
  EXPECT_EQ(old_table.size(), new_table.size());
  size_t unchanged = 0;
  for (const auto& [item, factor] : old_table) {
    auto it = new_table.find(item);
    ASSERT_NE(it, new_table.end());
    if (item == 3 || item == 17) continue;
    EXPECT_TRUE(BitEqual(factor, it->second)) << "item " << item;
    ++unchanged;
  }
  EXPECT_GT(unchanged, 0u);
  // The refreshed items moved toward the new labels.
  EXPECT_FALSE(BitEqual(old_table.at(3), new_table.at(3)));
  EXPECT_FALSE(BitEqual(old_table.at(17), new_table.at(17)));

  auto stats = server.RetrainStats();
  EXPECT_EQ(stats.incremental_retrains, 1u);
  EXPECT_EQ(stats.full_retrains, 1u);  // the bootstrap train
  EXPECT_EQ(stats.items_refreshed, 2u);
}

TEST(IncrementalRetrainTest, RefreshImprovesFitOnDriftedItems) {
  VeloxServer server(SmallServerConfig(), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  // Every user now loves item 0 — drift concentrated on one item.
  for (uint64_t u = 0; u < 60; ++u) {
    ASSERT_TRUE(server.Observe(u, MakeItem(0), 5.0).ok());
  }
  ASSERT_TRUE(server.RetrainIncremental().ok());
  double total = 0.0;
  for (uint64_t u = 0; u < 60; ++u) {
    auto pred = server.Predict(u, MakeItem(0));
    ASSERT_TRUE(pred.ok());
    total += pred->score;
  }
  EXPECT_GT(total / 60.0, 3.5);
}

// --- preconditions / kAuto ---

TEST(IncrementalRetrainTest, IncrementalWithoutVersionFails) {
  VeloxServer server(SmallServerConfig(), SmallModel());
  EXPECT_TRUE(server.RetrainIncremental().status().IsFailedPrecondition());
}

TEST(IncrementalRetrainTest, IncrementalWithoutDriftFails) {
  VeloxServer server(SmallServerConfig(), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  // No observations since bootstrap -> nothing qualified.
  EXPECT_TRUE(server.RetrainIncremental().status().IsFailedPrecondition());
  EXPECT_EQ(server.current_version(), 1);
}

TEST(IncrementalRetrainTest, AutoEscalatesOnWideDrift) {
  auto config = SmallServerConfig();
  config.retrain.incremental.min_observations = 1;  // every item qualifies fast
  VeloxServer server(config, SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  // Touch most of the catalog: qualified fraction >> auto_full_fraction.
  for (uint64_t item = 0; item < 60; ++item) {
    ASSERT_TRUE(server.Observe(item % 60, MakeItem(item), 3.0).ok());
  }
  auto report = server.Retrain(RetrainMode::kAuto);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->mode_used, RetrainMode::kFull);
  EXPECT_TRUE(report->escalated);
  EXPECT_GT(report->drift_fraction, config.retrain.incremental.auto_full_fraction);
  EXPECT_EQ(server.RetrainStats().auto_escalations, 1u);
}

TEST(IncrementalRetrainTest, AutoStaysIncrementalOnNarrowDrift) {
  VeloxServer server(SmallServerConfig(), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  for (uint64_t u = 0; u < 10; ++u) {
    ASSERT_TRUE(server.Observe(u, MakeItem(5), 4.5).ok());
  }
  auto report = server.Retrain(RetrainMode::kAuto);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->mode_used, RetrainMode::kIncremental);
  EXPECT_FALSE(report->escalated);
  EXPECT_EQ(report->items_refreshed, 1u);
}

TEST(IncrementalRetrainTest, AutoWithNoDriftEscalatesToFull) {
  VeloxServer server(SmallServerConfig(), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  auto report = server.Retrain(RetrainMode::kAuto);
  // No drift at all -> kAuto escalates to full rather than failing.
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->mode_used, RetrainMode::kFull);
  EXPECT_TRUE(report->escalated);
}

// --- drift-epoch resets ---

TEST(IncrementalRetrainTest, FullRetrainClearsAllDriftStats) {
  VeloxServer server(SmallServerConfig(), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  for (uint64_t u = 0; u < 6; ++u) {
    ASSERT_TRUE(server.Observe(u, MakeItem(2), 3.0).ok());
  }
  ASSERT_GT(server.drift_tracker(0)->total_observations(), 0);
  ASSERT_TRUE(server.RetrainNow().ok());
  EXPECT_EQ(server.drift_tracker(0)->total_observations(), 0);
}

TEST(IncrementalRetrainTest, IncrementalResetsOnlyRefreshedItems) {
  VeloxServer server(SmallServerConfig(), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  // Item 3 crosses the trigger; item 9 accumulates but stays below it.
  for (uint64_t u = 0; u < 10; ++u) {
    ASSERT_TRUE(server.Observe(u, MakeItem(3), 4.0).ok());
  }
  for (uint64_t u = 0; u < 3; ++u) {
    ASSERT_TRUE(server.Observe(u, MakeItem(9), 2.0).ok());
  }
  auto report = server.RetrainIncremental();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->items_refreshed, 1u);
  // Item 9's accumulation survives the refresh and keeps counting
  // toward its own trigger; item 3 starts a fresh epoch.
  auto stats = server.drift_tracker(0)->Snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].item_id, 9u);
  EXPECT_EQ(stats[0].observations, 3);
}

TEST(IncrementalRetrainTest, RollbackClearsDriftStats) {
  VeloxServer server(SmallServerConfig(), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  ASSERT_TRUE(server.RetrainNow().ok());
  for (uint64_t u = 0; u < 5; ++u) {
    ASSERT_TRUE(server.Observe(u, MakeItem(1), 2.0).ok());
  }
  ASSERT_GT(server.drift_tracker(0)->total_observations(), 0);
  ASSERT_TRUE(server.Rollback(1).ok());
  // The stats described drift against the now-abandoned version.
  EXPECT_EQ(server.drift_tracker(0)->total_observations(), 0);
}

// --- the pinned volatility contract ---

TEST(IncrementalRetrainTest, DriftStatsAreVolatileAcrossRestart) {
  std::string dir = ::testing::TempDir() + "/drift_volatile";
  ::mkdir(dir.c_str(), 0755);
  for (int n = 0; n < 4; ++n) {
    std::remove((dir + "/user_weights_node" + std::to_string(n) + ".wal").c_str());
    std::remove((dir + "/user_weights_node" + std::to_string(n) + ".snap").c_str());
  }
  auto config = SmallServerConfig();
  config.durability.dir = dir;
  config.durability.recover_on_start = false;
  auto data = SmallData();
  {
    VeloxServer server(config, SmallModel());
    VELOX_CHECK_OK(server.Bootstrap(data.ratings));
    ASSERT_TRUE(server.RecoverDurability().ok());
    for (uint64_t u = 0; u < 10; ++u) {
      ASSERT_TRUE(server.Observe(u, MakeItem(4), 4.0).ok());
    }
    ASSERT_GT(server.drift_tracker(0)->total_observations(), 0);
  }  // "kill"

  VeloxServer restarted(config, SmallModel());
  ASSERT_TRUE(restarted.Bootstrap(data.ratings).ok());
  ASSERT_TRUE(restarted.RecoverDurability().ok());
  // Weights were journaled and recovered; drift stats were NOT — they
  // are a scheduling hint, deliberately never written to the WAL
  // (core/incremental_trainer.h). Pinned: a restart starts drift-blind.
  EXPECT_EQ(restarted.drift_tracker(0)->total_observations(), 0);
  EXPECT_TRUE(restarted.drift_tracker(0)->Snapshot().empty());
  EXPECT_TRUE(restarted.RetrainIncremental().status().IsFailedPrecondition());
}

// --- multi-node ---

TEST(IncrementalRetrainTest, MultiNodeIncrementalMergesNodeDrift) {
  auto config = SmallServerConfig();
  config.num_nodes = 3;
  config.distribute_item_features = true;
  VeloxServer server(config, SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  // Users spread across nodes by ownership; two items cross the trigger
  // from observations landing on different nodes' trackers.
  for (uint64_t u = 0; u < 24; ++u) {
    ASSERT_TRUE(server.Observe(u % 60, MakeItem(11), 4.0).ok());
    ASSERT_TRUE(server.Observe(u % 60, MakeItem(42), 1.0).ok());
  }
  int64_t pending = 0;
  for (int32_t n = 0; n < 3; ++n) {
    pending += server.drift_tracker(n)->total_observations();
  }
  EXPECT_EQ(pending, 48);
  auto report = server.RetrainIncremental();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->mode_used, RetrainMode::kIncremental);
  EXPECT_EQ(report->items_refreshed, 2u);
  EXPECT_EQ(server.current_version(), 2);
  // Serving still healthy on every node's items after the partial swap.
  for (uint64_t u = 0; u < 12; ++u) {
    EXPECT_TRUE(server.Predict(u, MakeItem(11)).ok());
    EXPECT_TRUE(server.Predict(u, MakeItem(42)).ok());
  }
}

}  // namespace
}  // namespace velox
