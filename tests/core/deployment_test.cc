#include "core/deployment.h"

#include <gtest/gtest.h>

#include "data/movielens.h"

namespace velox {
namespace {

Item MakeItem(uint64_t id) {
  Item item;
  item.id = id;
  return item;
}

VeloxServerConfig SmallConfig() {
  VeloxServerConfig config;
  config.num_nodes = 1;
  config.dim = 4;
  config.bandit_policy = "";
  config.batch_workers = 2;
  config.evaluator.min_observations = 1LL << 40;
  return config;
}

std::unique_ptr<VeloxModel> NamedModel(const std::string& name) {
  AlsConfig als;
  als.rank = 4;
  als.iterations = 5;
  return std::make_unique<MatrixFactorizationModel>(name, als);
}

SyntheticDataset SmallData(uint64_t seed) {
  SyntheticMovieLensConfig config;
  config.num_users = 40;
  config.num_items = 50;
  config.latent_rank = 4;
  config.min_ratings_per_user = 6;
  config.max_ratings_per_user = 10;
  config.seed = seed;
  auto ds = GenerateSyntheticMovieLens(config);
  VELOX_CHECK_OK(ds.status());
  return std::move(ds).value();
}

TEST(DeploymentTest, AddAndListModels) {
  VeloxDeployment deployment;
  ASSERT_TRUE(deployment.AddModel(SmallConfig(), NamedModel("songs")).ok());
  ASSERT_TRUE(deployment.AddModel(SmallConfig(), NamedModel("ads")).ok());
  EXPECT_EQ(deployment.num_models(), 2u);
  auto models = deployment.ListModels();
  ASSERT_EQ(models.size(), 2u);
  EXPECT_EQ(models[0].name, "ads");  // sorted map order
  EXPECT_EQ(models[1].name, "songs");
  EXPECT_EQ(models[0].current_version, 0);  // not yet bootstrapped
}

TEST(DeploymentTest, DuplicateAndInvalidModelsRejected) {
  VeloxDeployment deployment;
  ASSERT_TRUE(deployment.AddModel(SmallConfig(), NamedModel("songs")).ok());
  EXPECT_TRUE(deployment.AddModel(SmallConfig(), NamedModel("songs"))
                  .status()
                  .IsAlreadyExists());
  EXPECT_TRUE(deployment.AddModel(SmallConfig(), nullptr).status().IsInvalidArgument());
  EXPECT_TRUE(
      deployment.AddModel(SmallConfig(), NamedModel("")).status().IsInvalidArgument());
}

TEST(DeploymentTest, RemoveModel) {
  VeloxDeployment deployment;
  ASSERT_TRUE(deployment.AddModel(SmallConfig(), NamedModel("songs")).ok());
  ASSERT_TRUE(deployment.RemoveModel("songs").ok());
  EXPECT_EQ(deployment.num_models(), 0u);
  EXPECT_TRUE(deployment.RemoveModel("songs").IsNotFound());
  EXPECT_TRUE(deployment.GetModel("songs").status().IsNotFound());
}

TEST(DeploymentTest, UnknownModelRequestsAreNotFound) {
  VeloxDeployment deployment;
  EXPECT_TRUE(deployment.Predict("nope", 1, MakeItem(1)).status().IsNotFound());
  EXPECT_TRUE(deployment.TopK("nope", 1, {MakeItem(1)}, 1).status().IsNotFound());
  EXPECT_TRUE(deployment.Observe("nope", 1, MakeItem(1), 1.0).IsNotFound());
}

TEST(DeploymentTest, ModelsServeIndependently) {
  VeloxDeployment deployment;
  auto songs = deployment.AddModel(SmallConfig(), NamedModel("songs"));
  auto ads = deployment.AddModel(SmallConfig(), NamedModel("ads"));
  ASSERT_TRUE(songs.ok());
  ASSERT_TRUE(ads.ok());
  auto songs_data = SmallData(1);
  auto ads_data = SmallData(2);
  ASSERT_TRUE(songs.value()->Bootstrap(songs_data.ratings).ok());
  ASSERT_TRUE(ads.value()->Bootstrap(ads_data.ratings).ok());

  // The same (uid, item) scores differently under the two models.
  const Observation& obs = songs_data.ratings[0];
  auto s = deployment.Predict("songs", obs.uid, MakeItem(obs.item_id));
  auto a = deployment.Predict("ads", obs.uid, MakeItem(obs.item_id));
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(a.ok());
  EXPECT_NE(s->score, a->score);

  // Observing through one model leaves the other untouched.
  uint64_t uid = obs.uid;
  uint64_t item = obs.item_id;
  auto ads_before = deployment.Predict("ads", uid, MakeItem(item));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(deployment.Observe("songs", uid, MakeItem(item), 5.0).ok());
  }
  auto songs_after = deployment.Predict("songs", uid, MakeItem(item));
  auto ads_after = deployment.Predict("ads", uid, MakeItem(item));
  ASSERT_TRUE(songs_after.ok());
  ASSERT_TRUE(ads_after.ok());
  EXPECT_NEAR(songs_after->score, 5.0, 1.0);
  EXPECT_DOUBLE_EQ(ads_after->score, ads_before->score);
}

TEST(DeploymentTest, TopKDispatchesToNamedModel) {
  VeloxDeployment deployment;
  auto songs = deployment.AddModel(SmallConfig(), NamedModel("songs"));
  ASSERT_TRUE(songs.ok());
  auto data = SmallData(3);
  ASSERT_TRUE(songs.value()->Bootstrap(data.ratings).ok());
  std::vector<Item> candidates;
  for (size_t i = 0; i < 8; ++i) candidates.push_back(MakeItem(data.ratings[i].item_id));
  auto top = deployment.TopK("songs", 1, candidates, 3);
  ASSERT_TRUE(top.ok());
  EXPECT_LE(top->items.size(), 3u);
}

TEST(DeploymentTest, MaybeRetrainAllReportsRetrainedModels) {
  VeloxDeployment deployment;
  auto config = SmallConfig();
  config.evaluator.min_observations = 20;
  config.evaluator.ewma_alpha = 0.3;
  config.updater.cross_validation_every = 1;
  auto drifting = deployment.AddModel(config, NamedModel("drifting"));
  auto healthy = deployment.AddModel(SmallConfig(), NamedModel("healthy"));
  ASSERT_TRUE(drifting.ok());
  ASSERT_TRUE(healthy.ok());
  auto data = SmallData(4);
  ASSERT_TRUE(drifting.value()->Bootstrap(data.ratings).ok());
  ASSERT_TRUE(healthy.value()->Bootstrap(data.ratings).ok());

  // Drift only the first model.
  for (int i = 0; i < 80; ++i) {
    const Observation& obs = data.ratings[static_cast<size_t>(i) % data.ratings.size()];
    ASSERT_TRUE(
        deployment.Observe("drifting", obs.uid, MakeItem(obs.item_id), 5.5 - obs.label)
            .ok());
  }
  auto retrained = deployment.MaybeRetrainAll();
  ASSERT_TRUE(retrained.ok());
  ASSERT_EQ(retrained->size(), 1u);
  EXPECT_EQ((*retrained)[0], "drifting");
  EXPECT_EQ(drifting.value()->current_version(), 2);
  EXPECT_EQ(healthy.value()->current_version(), 1);
}

TEST(DeploymentTest, ListModelsReflectsLifecycle) {
  VeloxDeployment deployment;
  auto songs = deployment.AddModel(SmallConfig(), NamedModel("songs"));
  ASSERT_TRUE(songs.ok());
  auto data = SmallData(5);
  ASSERT_TRUE(songs.value()->Bootstrap(data.ratings).ok());
  ASSERT_TRUE(songs.value()->RetrainNow().ok());
  auto models = deployment.ListModels();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].current_version, 2);
  EXPECT_GT(models[0].users, 0u);
  EXPECT_FALSE(models[0].stale);
}

}  // namespace
}  // namespace velox
