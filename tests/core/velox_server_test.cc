// End-to-end VeloxServer behaviour: serving API, multi-node routing
// locality (§5), distributed item features, and cache accounting.
#include "core/velox_server.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/movielens.h"

namespace velox {
namespace {

VeloxServerConfig BaseConfig(int32_t nodes) {
  VeloxServerConfig config;
  config.num_nodes = nodes;
  config.dim = 4;
  config.lambda = 0.1;
  config.bandit_policy = "";
  config.batch_workers = 2;
  config.evaluator.min_observations = 1000000;  // keep auto-staleness off
  return config;
}

std::unique_ptr<VeloxModel> SmallModel() {
  AlsConfig als;
  als.rank = 4;
  als.lambda = 0.1;
  als.iterations = 6;
  return std::make_unique<MatrixFactorizationModel>("songs", als);
}

SyntheticDataset SmallData(uint64_t seed = 21) {
  SyntheticMovieLensConfig config;
  config.num_users = 50;
  config.num_items = 60;
  config.latent_rank = 4;
  config.min_ratings_per_user = 6;
  config.max_ratings_per_user = 12;
  config.seed = seed;
  auto ds = GenerateSyntheticMovieLens(config);
  VELOX_CHECK_OK(ds.status());
  return std::move(ds).value();
}

Item MakeItem(uint64_t id) {
  Item item;
  item.id = id;
  return item;
}

TEST(VeloxServerTest, PredictBeforeBootstrapFails) {
  VeloxServer server(BaseConfig(1), SmallModel());
  EXPECT_TRUE(server.Predict(1, MakeItem(1)).status().IsFailedPrecondition());
}

TEST(VeloxServerTest, BootstrapRequiresData) {
  VeloxServer server(BaseConfig(1), SmallModel());
  EXPECT_TRUE(server.Bootstrap({}).IsInvalidArgument());
}

TEST(VeloxServerTest, ListingOneApiWorksEndToEnd) {
  VeloxServer server(BaseConfig(1), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());

  // predict
  auto pred = server.Predict(1, MakeItem(2));
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->item_id, 2u);

  // topK
  std::vector<Item> candidates;
  for (uint64_t i = 0; i < 10; ++i) candidates.push_back(MakeItem(i));
  auto top = server.TopK(1, candidates, 3);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->items.size(), 3u);
  EXPECT_GE(top->items[0].score, top->items[1].score);

  // observe
  ASSERT_TRUE(server.Observe(1, MakeItem(2), 5.0).ok());
  EXPECT_GT(server.QualityReport().observations_since_baseline, 0);
}

TEST(VeloxServerTest, PredictionsApproximatePlantedScores) {
  VeloxServer server(BaseConfig(1), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  // Training-set predictions should correlate with labels: RMSE well
  // below the rating spread.
  double sq = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < data.ratings.size(); i += 3) {
    const auto& obs = data.ratings[i];
    auto pred = server.Predict(obs.uid, MakeItem(obs.item_id));
    ASSERT_TRUE(pred.ok());
    double e = pred->score - obs.label;
    sq += e * e;
    ++n;
  }
  EXPECT_LT(std::sqrt(sq / static_cast<double>(n)), 1.0);
}

TEST(VeloxServerTest, ObserveMovesPredictionTowardLabel) {
  VeloxServer server(BaseConfig(1), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  uint64_t uid = 3;
  uint64_t item = 7;
  auto before = server.Predict(uid, MakeItem(item));
  ASSERT_TRUE(before.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server.Observe(uid, MakeItem(item), 5.0).ok());
  }
  auto after = server.Predict(uid, MakeItem(item));
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->score, before->score);
  EXPECT_NEAR(after->score, 5.0, 1.0);
}

TEST(VeloxServerTest, ColdStartUserGetsMeanPrediction) {
  VeloxServer server(BaseConfig(1), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  size_t users_before = server.TotalUsers();
  auto pred = server.Predict(999999, MakeItem(1));
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(server.TotalUsers(), users_before + 1);
  // The mean-user prediction lands inside the rating scale.
  EXPECT_GT(pred->score, -1.0);
  EXPECT_LT(pred->score, 7.0);
}

TEST(VeloxServerTest, UidRoutingKeepsWeightTrafficLocal) {
  auto config = BaseConfig(4);
  config.route_by_uid = true;
  VeloxServer server(config, SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  server.ResetNetworkStats();
  // All predictions route to the user's home node; with in-process θ
  // there is no remote traffic at all. Query only items that appear in
  // the training data (others have no factor — NotFound by contract).
  for (size_t i = 0; i < 200; ++i) {
    const Observation& obs = data.ratings[i];
    ASSERT_TRUE(server.Predict(obs.uid, MakeItem(obs.item_id)).ok());
    ASSERT_TRUE(server.Observe(obs.uid, MakeItem(obs.item_id), 3.0).ok());
  }
  EXPECT_EQ(server.NetworkStatistics().remote_messages, 0u);
}

TEST(VeloxServerTest, DisablingRoutingCausesRemoteTraffic) {
  auto config = BaseConfig(4);
  config.route_by_uid = false;
  VeloxServer server(config, SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  server.ResetNetworkStats();
  for (size_t i = 0; i < 200; ++i) {
    const Observation& obs = data.ratings[i];
    ASSERT_TRUE(server.Predict(obs.uid, MakeItem(obs.item_id)).ok());
  }
  EXPECT_GT(server.NetworkStatistics().remote_messages, 0u);
}

TEST(VeloxServerTest, UnratedItemIsNotFound) {
  // Items absent from every training rating have no latent factor; the
  // serving contract surfaces NotFound rather than a fabricated score.
  VeloxServer server(BaseConfig(1), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  EXPECT_TRUE(server.Predict(1, MakeItem(123456)).status().IsNotFound());
}

TEST(VeloxServerTest, DistributedItemFeaturesServeCorrectScores) {
  // Same data, one server with in-process θ and one fetching factors
  // from distributed storage: predictions must agree.
  auto data = SmallData();
  VeloxServer local(BaseConfig(1), SmallModel());
  ASSERT_TRUE(local.Bootstrap(data.ratings).ok());

  auto dist_config = BaseConfig(3);
  dist_config.distribute_item_features = true;
  VeloxServer distributed(dist_config, SmallModel());
  ASSERT_TRUE(distributed.Bootstrap(data.ratings).ok());

  for (uint64_t u = 0; u < 20; ++u) {
    auto a = local.Predict(u, MakeItem(u % 60));
    auto b = distributed.Predict(u, MakeItem(u % 60));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(a->score, b->score, 1e-9) << "user " << u;
  }
}

TEST(VeloxServerTest, DistributedFeaturesHitCacheOnRepeat) {
  auto config = BaseConfig(3);
  config.distribute_item_features = true;
  VeloxServer server(config, SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  server.ResetCacheStats();
  server.ResetNetworkStats();
  // Two passes over the same items from the same users: second pass is
  // served by the prediction/feature caches.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t u = 0; u < 20; ++u) {
      ASSERT_TRUE(server.Predict(u, MakeItem(u % 10)).ok());
    }
  }
  auto stats = server.AggregatedCacheStats();
  EXPECT_GT(stats.prediction.hits, 0u);
}

TEST(VeloxServerTest, TopKWithBanditPolicyRuns) {
  auto config = BaseConfig(1);
  config.bandit_policy = "linucb:1.0";
  VeloxServer server(config, SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  std::vector<Item> candidates;
  for (uint64_t i = 0; i < 15; ++i) candidates.push_back(MakeItem(i));
  auto top = server.TopK(1, candidates, 5);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->items.size(), 5u);
  // LinUCB exposes uncertainties.
  EXPECT_GT(top->items[0].uncertainty + top->items[1].uncertainty, 0.0);
}

TEST(VeloxServerTest, ExploratoryObservationFeedsValidationPool) {
  auto config = BaseConfig(1);
  config.bandit_policy = "linucb:100.0";  // exploration-heavy
  VeloxServer server(config, SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  std::vector<Item> candidates;
  for (uint64_t i = 0; i < 10; ++i) candidates.push_back(MakeItem(i));
  size_t explored = 0;
  for (uint64_t u = 0; u < 30; ++u) {
    auto top = server.TopK(u, candidates, 1);
    ASSERT_TRUE(top.ok());
    ASSERT_TRUE(server
                    .ObserveWithProvenance(u, MakeItem(top->items[0].item_id), 4.0,
                                           top->top_is_exploratory)
                    .ok());
    if (top->top_is_exploratory) ++explored;
  }
  if (explored > 0) {
    EXPECT_EQ(server.QualityReport().validation_pool_size, explored);
  }
}

TEST(VeloxServerTest, InstallVersionDirectly) {
  VeloxServer server(BaseConfig(1), SmallModel());
  RetrainOutput output;
  auto table = std::make_shared<MaterializedFeatureFunction::FactorTable>();
  (*table)[1] = DenseVector{1.0, 0.0, 0.0, 0.0};
  output.features = std::make_shared<MaterializedFeatureFunction>(
      std::shared_ptr<const MaterializedFeatureFunction::FactorTable>(table), 4);
  output.user_weights[7] = DenseVector{2.0, 0.0, 0.0, 0.0};
  output.training_rmse = 0.5;
  auto version = server.InstallVersion(output);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version.value(), 1);
  auto pred = server.Predict(7, MakeItem(1));
  ASSERT_TRUE(pred.ok());
  EXPECT_DOUBLE_EQ(pred->score, 2.0);
}

TEST(VeloxServerTest, AutoRetrainCadenceFiresWithoutPolling) {
  auto config = BaseConfig(1);
  config.auto_retrain_check_every = 25;
  config.evaluator.min_observations = 30;
  config.evaluator.ewma_alpha = 0.3;
  config.evaluator.staleness_threshold_ratio = 1.5;
  config.updater.cross_validation_every = 1;
  VeloxServer server(config, SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  // Stream drifted observations; no MaybeRetrain polling anywhere.
  for (int i = 0; i < 200 && server.current_version() == 1; ++i) {
    const Observation& obs = data.ratings[static_cast<size_t>(i) % data.ratings.size()];
    ASSERT_TRUE(server.Observe(obs.uid, MakeItem(obs.item_id), 5.5 - obs.label).ok());
  }
  EXPECT_GT(server.current_version(), 1);
}

TEST(VeloxServerTest, AutoRetrainDisabledByDefault) {
  auto config = BaseConfig(1);
  config.evaluator.min_observations = 10;
  config.evaluator.ewma_alpha = 0.5;
  config.updater.cross_validation_every = 1;
  VeloxServer server(config, SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  for (int i = 0; i < 100; ++i) {
    const Observation& obs = data.ratings[static_cast<size_t>(i) % data.ratings.size()];
    ASSERT_TRUE(server.Observe(obs.uid, MakeItem(obs.item_id), 5.5 - obs.label).ok());
  }
  EXPECT_EQ(server.current_version(), 1);  // nothing retrained on its own
}

TEST(VeloxServerTest, MetricsReportPublishesKeySeries) {
  VeloxServer server(BaseConfig(1), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  for (size_t i = 0; i < 50; ++i) {
    const Observation& obs = data.ratings[i];
    ASSERT_TRUE(server.Predict(obs.uid, MakeItem(obs.item_id)).ok());
    ASSERT_TRUE(server.Observe(obs.uid, MakeItem(obs.item_id), obs.label).ok());
  }
  MetricsRegistry registry;
  std::string report = server.MetricsReport(&registry);
  EXPECT_NE(report.find("velox.songs.feature_cache.hit_rate"), std::string::npos);
  EXPECT_NE(report.find("velox.songs.quality.mean_online_loss"), std::string::npos);
  EXPECT_NE(report.find("velox.songs.model.version 1"), std::string::npos);
  EXPECT_GT(registry.GetGauge("velox.songs.users.total")->value(), 0.0);
  // Report-only mode works without an external registry.
  EXPECT_FALSE(server.MetricsReport().empty());
}

TEST(VeloxServerTest, StageBreakdownExportedAfterTraffic) {
  VeloxServer server(BaseConfig(2), SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());
  ASSERT_EQ(server.StageBreakdownJson(), "{}");  // no traffic yet
  for (size_t i = 0; i < 30; ++i) {
    const Observation& obs = data.ratings[i];
    ASSERT_TRUE(server.Predict(obs.uid, MakeItem(obs.item_id)).ok());
    ASSERT_TRUE(server.Observe(obs.uid, MakeItem(obs.item_id), obs.label).ok());
  }
  // Cluster-merged per-stage histograms: every predict touches the
  // weight lookup, every observe runs the solver.
  EXPECT_GE(server.StageData(Stage::kUserWeightLookup).count(), 30u);
  EXPECT_GE(server.StageData(Stage::kOnlineSolve).count(), 30u);

  MetricsRegistry registry;
  std::string report = server.MetricsReport(&registry);
  EXPECT_NE(report.find("velox.songs.stage.user_weight_lookup.count"),
            std::string::npos);
  EXPECT_NE(report.find("velox.songs.stage.online_solve.p99_us"),
            std::string::npos);
  EXPECT_GT(registry.GetGauge("velox.songs.stage.kernel_score.count")->value(),
            0.0);

  std::string human = server.StageReport();
  EXPECT_NE(human.find("user_weight_lookup"), std::string::npos);
  std::string json = server.StageBreakdownJson();
  EXPECT_NE(json.find("\"kernel_score\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);

  server.ResetStageStats();
  EXPECT_EQ(server.StageBreakdownJson(), "{}");
  EXPECT_NE(server.StageReport().find("no traced requests yet"),
            std::string::npos);
}

TEST(VeloxServerTest, AnnServingSurfacesCountersStagesAndMetrics) {
  auto config = BaseConfig(1);
  // Force the candidate path on the tiny test catalog: build an index
  // for any plane and route kAuto through it from the first row.
  config.ann.min_items = 1;
  config.topk_auto_ann_min_rows = 1;
  VeloxServer server(config, SmallModel());
  auto data = SmallData();
  ASSERT_TRUE(server.Bootstrap(data.ratings).ok());

  auto exact = server.TopKAll(data.ratings[0].uid, 5, nullptr,
                              PredictionService::TopKAllMode::kPlaneSerial);
  auto ann = server.TopKAll(data.ratings[0].uid, 5);  // kAuto -> ANN
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(ann.ok());
  ASSERT_FALSE(ann->items.empty());

  VeloxServer::AnnServeStats stats = server.AggregatedAnnStats();
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_GT(stats.probes, 0u);
  EXPECT_GT(stats.rescored, 0u);

  // The candidate path reports its stages and counters everywhere the
  // exact path reports its own: stage histograms, the human report
  // behind the shell's `stages` command, and the metrics registry.
  EXPECT_GT(server.StageData(Stage::kAnnCandidateProbe).count(), 0u);
  EXPECT_GT(server.StageData(Stage::kAnnRescore).count(), 0u);
  std::string human = server.StageReport();
  EXPECT_NE(human.find("ann_candidate_probe"), std::string::npos);
  EXPECT_NE(human.find("ann: queries=1"), std::string::npos);

  MetricsRegistry registry;
  server.MetricsReport(&registry);
  EXPECT_EQ(registry.GetCounter("velox.songs.ann.queries")->value(), 1u);
  EXPECT_GT(registry.GetCounter("velox.songs.ann.rescored")->value(), 0u);
  EXPECT_EQ(registry.GetGauge("velox.songs.ann.recall_mode")->value(), 1.0);
}

// Property: caching and feature distribution are pure optimizations —
// every configuration must serve identical scores.
struct CacheConfigCase {
  bool use_feature_cache;
  bool use_prediction_cache;
  bool distribute_item_features;
  int32_t nodes;
};

class CacheConfigEquivalenceTest : public ::testing::TestWithParam<CacheConfigCase> {};

TEST_P(CacheConfigEquivalenceTest, ScoresMatchBaseline) {
  const CacheConfigCase& test_case = GetParam();
  auto data = SmallData(/*seed=*/33);

  VeloxServer baseline(BaseConfig(1), SmallModel());
  ASSERT_TRUE(baseline.Bootstrap(data.ratings).ok());

  auto config = BaseConfig(test_case.nodes);
  config.use_feature_cache = test_case.use_feature_cache;
  config.use_prediction_cache = test_case.use_prediction_cache;
  config.distribute_item_features = test_case.distribute_item_features;
  VeloxServer variant(config, SmallModel());
  ASSERT_TRUE(variant.Bootstrap(data.ratings).ok());

  for (size_t i = 0; i < 150; ++i) {
    const Observation& obs = data.ratings[i % data.ratings.size()];
    auto a = baseline.Predict(obs.uid, MakeItem(obs.item_id));
    auto b = variant.Predict(obs.uid, MakeItem(obs.item_id));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(a->score, b->score, 1e-9) << "observation " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CacheConfigEquivalenceTest,
    ::testing::Values(CacheConfigCase{false, false, false, 1},
                      CacheConfigCase{true, false, false, 1},
                      CacheConfigCase{false, true, false, 1},
                      CacheConfigCase{true, true, true, 1},
                      CacheConfigCase{true, true, false, 3},
                      CacheConfigCase{false, false, true, 3},
                      CacheConfigCase{true, true, true, 4}));

TEST(VeloxServerDeathTest, DimMismatchWithModelAborts) {
  auto config = BaseConfig(1);
  config.dim = 7;  // model rank is 4
  EXPECT_DEATH(VeloxServer(config, SmallModel()), "Check failed");
}

}  // namespace
}  // namespace velox
