#include "core/shell.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/movielens.h"

namespace velox {
namespace {

class ShellTest : public ::testing::Test {
 protected:
  ShellTest() {
    SyntheticMovieLensConfig data_config;
    data_config.num_users = 40;
    data_config.num_items = 50;
    data_config.latent_rank = 4;
    data_config.seed = 13;
    auto data = GenerateSyntheticMovieLens(data_config);
    VELOX_CHECK_OK(data.status());
    first_uid_ = data->ratings[0].uid;
    first_item_ = data->ratings[0].item_id;

    AlsConfig als;
    als.rank = 4;
    als.iterations = 5;
    VeloxServerConfig config;
    config.num_nodes = 1;
    config.dim = 4;
    config.bandit_policy = "";
    config.batch_workers = 2;
    server_ = std::make_unique<VeloxServer>(
        config, std::make_unique<MatrixFactorizationModel>("shell", als));
    shell_ = std::make_unique<VeloxShell>(server_.get(), data->ratings);
  }

  std::string MustExecute(const std::string& line) {
    auto result = shell_->Execute(line);
    EXPECT_TRUE(result.ok()) << line << ": " << result.status().ToString();
    return result.ok() ? result.value() : "";
  }

  uint64_t first_uid_ = 0;
  uint64_t first_item_ = 0;
  std::unique_ptr<VeloxServer> server_;
  std::unique_ptr<VeloxShell> shell_;
};

TEST_F(ShellTest, EmptyLineIsNoOp) {
  EXPECT_EQ(MustExecute(""), "");
  EXPECT_EQ(MustExecute("   "), "");
}

TEST_F(ShellTest, HelpListsCommands) {
  std::string help = MustExecute("help");
  EXPECT_NE(help.find("predict"), std::string::npos);
  EXPECT_NE(help.find("rollback"), std::string::npos);
}

TEST_F(ShellTest, UnknownCommandIsError) {
  auto result = shell_->Execute("frobnicate 1 2");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("help"), std::string_view::npos);
}

TEST_F(ShellTest, TrainPredictObserveFlow) {
  std::string trained = MustExecute("train");
  EXPECT_NE(trained.find("version 1"), std::string::npos);

  std::string prediction = MustExecute(
      "predict " + std::to_string(first_uid_) + " " + std::to_string(first_item_));
  EXPECT_NE(prediction.find("predict(u"), std::string::npos);

  MustExecute("observe " + std::to_string(first_uid_) + " " +
              std::to_string(first_item_) + " 5.0");
  std::string report = MustExecute("report");
  EXPECT_NE(report.find("healthy"), std::string::npos);
}

TEST_F(ShellTest, StagesCommandShowsBreakdown) {
  std::string help = MustExecute("help");
  EXPECT_NE(help.find("stages"), std::string::npos);
  MustExecute("train");
  EXPECT_NE(MustExecute("stages").find("no traced requests yet"),
            std::string::npos);
  MustExecute("predict " + std::to_string(first_uid_) + " " +
              std::to_string(first_item_));
  MustExecute("observe " + std::to_string(first_uid_) + " " +
              std::to_string(first_item_) + " 4.0");
  std::string stages = MustExecute("stages");
  EXPECT_NE(stages.find("user_weight_lookup"), std::string::npos);
  EXPECT_NE(stages.find("online_solve"), std::string::npos);
}

TEST_F(ShellTest, PredictBeforeTrainFails) {
  auto result = shell_->Execute("predict 1 2");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST_F(ShellTest, TopKCatalogAndCandidateForms) {
  MustExecute("train");
  std::string scan = MustExecute("topk " + std::to_string(first_uid_) + " 3");
  EXPECT_NE(scan.find("top-3"), std::string::npos);
  std::string candidates =
      MustExecute("topk " + std::to_string(first_uid_) + " 2 " +
                  std::to_string(first_item_));
  EXPECT_NE(candidates.find("top-1"), std::string::npos);
}

TEST_F(ShellTest, RetrainVersionsRollback) {
  MustExecute("train");
  std::string retrained = MustExecute("retrain");
  EXPECT_NE(retrained.find("version 2"), std::string::npos);
  std::string versions = MustExecute("versions");
  EXPECT_NE(versions.find("v1"), std::string::npos);
  EXPECT_NE(versions.find("v2  "), std::string::npos);
  EXPECT_NE(versions.find("*current*"), std::string::npos);
  MustExecute("rollback 1");
  versions = MustExecute("versions");
  EXPECT_NE(versions.find("v1  "), std::string::npos);
  // v1 must now carry the current marker.
  EXPECT_LT(versions.find("*current*"), versions.find("v2"));
}

TEST_F(ShellTest, MaybeRetrainWhenHealthy) {
  MustExecute("train");
  EXPECT_NE(MustExecute("maybe-retrain").find("healthy"), std::string::npos);
}

TEST_F(ShellTest, SaveAndLoadSnapshot) {
  MustExecute("train");
  std::string path = ::testing::TempDir() + "/shell_snapshot.vxms";
  std::string saved = MustExecute("save " + path);
  EXPECT_NE(saved.find("item factors"), std::string::npos);
  std::string loaded = MustExecute("load " + path);
  EXPECT_NE(loaded.find("installed snapshot"), std::string::npos);
  EXPECT_EQ(server_->current_version(), 2);
  std::remove(path.c_str());
}

TEST_F(ShellTest, MalformedArgumentsRejected) {
  MustExecute("train");
  EXPECT_FALSE(shell_->Execute("predict").ok());
  EXPECT_FALSE(shell_->Execute("predict abc 2").ok());
  EXPECT_FALSE(shell_->Execute("predict 1 -3").ok());
  EXPECT_FALSE(shell_->Execute("observe 1 2").ok());
  EXPECT_FALSE(shell_->Execute("observe 1 2 notanumber").ok());
  EXPECT_FALSE(shell_->Execute("topk 1").ok());
  EXPECT_FALSE(shell_->Execute("rollback").ok());
  EXPECT_FALSE(shell_->Execute("rollback 99").ok());
  EXPECT_FALSE(shell_->Execute("save").ok());
  EXPECT_FALSE(shell_->Execute("load /no/such/file.vxms").ok());
}

}  // namespace
}  // namespace velox
