// Durable user-weight serving state: crash-recovery properties of the
// journal (every-byte-offset truncation), snapshot + suffix replay
// equivalence, and kill-and-restart VeloxServer recovery.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/shell.h"
#include "core/velox_server.h"
#include "data/movielens.h"
#include "storage/snapshot.h"

namespace velox {
namespace {

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

// A fresh per-test durability directory (fixed journal file names mean
// stale files from a previous run would be replayed as real state).
std::string DurabilityDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  for (int n = 0; n < 8; ++n) {
    std::remove((dir + "/user_weights_node" + std::to_string(n) + ".wal").c_str());
    std::remove((dir + "/user_weights_node" + std::to_string(n) + ".snap").c_str());
  }
  return dir;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

UserWeightStoreOptions SmallStoreOptions() {
  UserWeightStoreOptions options;
  options.dim = 3;
  options.num_stripes = 4;
  return options;
}

// --- property: recovery from ANY torn write is a valid record prefix ---

TEST(DurabilityPropertyTest, RecoveryFromEveryTruncationIsAValidPrefix) {
  std::string wal_path = TempPath("dur_prop.wal");
  // Drive a pseudo-random mutation mix (seeds, online updates, a
  // version reset now and then) through a journaled store.
  {
    UserWeightJournalOptions jopts;
    jopts.wal_path = wal_path;
    auto journal = UserWeightJournal::Open(jopts);
    ASSERT_TRUE(journal.ok());
    Bootstrapper boot(3);
    UserWeightStore store(SmallStoreOptions(), &boot);
    store.AttachJournal(journal->get());
    uint64_t s = 88172645463325252ULL;  // xorshift64: deterministic mix
    auto next = [&]() {
      s ^= s << 13;
      s ^= s >> 7;
      s ^= s << 17;
      return s;
    };
    for (int i = 0; i < 30; ++i) {
      uint64_t roll = next() % 10;
      uint64_t uid = next() % 6;
      DenseVector v{static_cast<double>(next() % 100) / 10.0, 1.0, -0.5};
      if (roll < 2) {
        store.SeedUser(uid, v, 1);
      } else if (roll < 9) {
        ASSERT_TRUE(
            store.ApplyObservation(uid, v, static_cast<double>(next() % 50) / 10.0).ok());
      } else {
        FactorMap trained;
        trained[uid] = v;
        store.ResetForNewVersion(trained, 2);
      }
    }
  }
  // Ground truth: the full payload sequence as written.
  std::vector<std::vector<uint8_t>> full;
  {
    auto wal = WriteAheadLog::Open(wal_path);
    ASSERT_TRUE(wal.ok());
    full = (*wal)->TakeRecoveredPayloads();
  }
  ASSERT_GE(full.size(), 30u);  // every mutation journaled
  std::vector<uint8_t> bytes = ReadFileBytes(wal_path);
  ASSERT_GT(bytes.size(), 0u);

  // Truncate the log at EVERY byte offset — simulating a crash torn
  // mid-write at any point — and require: open never fails, the
  // recovered suffix is an exact prefix of the full sequence, and
  // every recovered record replays cleanly into a fresh store.
  std::string trunc_path = TempPath("dur_prop_trunc.wal");
  size_t last_count = 0;
  for (size_t len = 0; len <= bytes.size(); ++len) {
    {
      std::ofstream out(trunc_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(len));
    }
    UserWeightJournalOptions jopts;
    jopts.wal_path = trunc_path;
    auto journal = UserWeightJournal::Open(jopts);
    ASSERT_TRUE(journal.ok()) << "truncated at byte " << len;
    auto recovery = (*journal)->TakeRecovered();
    ASSERT_LE(recovery.suffix.size(), full.size()) << "truncated at byte " << len;
    for (size_t i = 0; i < recovery.suffix.size(); ++i) {
      ASSERT_EQ(recovery.suffix[i].Serialize(), full[i])
          << "truncated at byte " << len << ", record " << i;
    }
    // Longer physical prefix can never recover fewer records.
    ASSERT_GE(recovery.suffix.size(), last_count) << "truncated at byte " << len;
    last_count = recovery.suffix.size();
    Bootstrapper boot(3);
    UserWeightStore store(SmallStoreOptions(), &boot);
    for (const auto& record : recovery.suffix) {
      ASSERT_TRUE(store.ApplyWalRecord(record).ok()) << "truncated at byte " << len;
    }
  }
  EXPECT_EQ(last_count, full.size());  // untruncated file loses nothing
  std::remove(wal_path.c_str());
  std::remove(trunc_path.c_str());
}

TEST(DurabilityPropertyTest, MismatchedRecordRejectedNotFatal) {
  Bootstrapper boot(3);
  UserWeightStore store(SmallStoreOptions(), &boot);
  UserWeightWalRecord record;
  record.kind = UserWeightWalRecord::Kind::kSeed;
  record.uid = 1;
  record.weights = DenseVector{1.0, 2.0, 3.0, 4.0, 5.0};  // dim 5 != 3
  EXPECT_FALSE(store.ApplyWalRecord(record).ok());
  EXPECT_EQ(store.num_users(), 0u);
}

// --- snapshot + suffix replay ≡ genesis replay ≡ original state ---

TEST(DurabilityEquivalenceTest, SnapshotPlusSuffixMatchesGenesisReplay) {
  UserWeightJournalOptions jopts;
  jopts.wal_path = TempPath("dur_equiv.wal");
  jopts.snapshot_path = TempPath("dur_equiv.snap");
  jopts.snapshot_every = 7;
  std::vector<uint8_t> blob_original;
  {
    auto journal = UserWeightJournal::Open(jopts);
    ASSERT_TRUE(journal.ok());
    Bootstrapper boot(3);
    UserWeightStore store(SmallStoreOptions(), &boot);
    store.AttachJournal(journal->get());
    for (uint64_t u = 0; u < 5; ++u) {
      store.SeedUser(u, DenseVector{0.1 * u, 1.0, -0.5}, 1);
    }
    for (int i = 0; i < 40; ++i) {
      uint64_t uid = static_cast<uint64_t>(i) % 6;  // uid 5 cold-starts mid-stream
      DenseVector f{1.0, 0.1 * (i % 7), -0.2 * (i % 3)};
      ASSERT_TRUE(store.ApplyObservation(uid, f, 0.5 + 0.1 * i).ok());
      ASSERT_TRUE(store.MaybeSnapshot().ok());  // the observe-path cadence hook
    }
    EXPECT_GT((*journal)->snapshots_written(), 0u);
    blob_original = store.SerializeState();
  }
  // Path B: newest snapshot + WAL suffix (the production recovery).
  {
    auto journal = UserWeightJournal::Open(jopts);
    ASSERT_TRUE(journal.ok());
    auto recovery = (*journal)->TakeRecovered();
    ASSERT_TRUE(recovery.snapshot_loaded);
    EXPECT_FALSE(recovery.suffix.empty());
    EXPECT_LT(recovery.suffix.size(), recovery.wal_records);  // bounded replay
    Bootstrapper boot(3);
    UserWeightStore store(SmallStoreOptions(), &boot);
    ASSERT_TRUE(store.RestoreState(recovery.snapshot_state).ok());
    for (const auto& record : recovery.suffix) {
      ASSERT_TRUE(store.ApplyWalRecord(record).ok());
    }
    EXPECT_EQ(store.SerializeState(), blob_original);
  }
  // Path C: full replay from genesis (no snapshot consulted).
  {
    auto wal = WriteAheadLog::Open(jopts.wal_path);
    ASSERT_TRUE(wal.ok());
    Bootstrapper boot(3);
    UserWeightStore store(SmallStoreOptions(), &boot);
    for (const auto& payload : (*wal)->TakeRecoveredPayloads()) {
      auto record = UserWeightWalRecord::Deserialize(payload);
      ASSERT_TRUE(record.ok());
      ASSERT_TRUE(store.ApplyWalRecord(*record).ok());
    }
    EXPECT_EQ(store.SerializeState(), blob_original);
  }
  std::remove(jopts.wal_path.c_str());
  std::remove(jopts.snapshot_path.c_str());
}

// --- server kill-and-restart ---

VeloxServerConfig DurableConfig(int32_t nodes, const std::string& dir) {
  VeloxServerConfig config;
  config.num_nodes = nodes;
  config.dim = 4;
  config.bandit_policy = "";
  config.batch_workers = 2;
  config.evaluator.min_observations = 1000000;
  config.durability.dir = dir;
  return config;
}

std::unique_ptr<VeloxModel> SmallModel() {
  AlsConfig als;
  als.rank = 4;
  als.iterations = 4;
  return std::make_unique<MatrixFactorizationModel>("songs", als);
}

RetrainOutput SmallOutput() {
  auto table = std::make_shared<MaterializedFeatureFunction::FactorTable>();
  for (uint64_t i = 0; i < 20; ++i) {
    (*table)[i] = DenseVector{1.0, 0.1 * i, 0.05 * i, -0.2};
  }
  RetrainOutput output;
  output.features = std::make_shared<MaterializedFeatureFunction>(
      std::shared_ptr<const MaterializedFeatureFunction::FactorTable>(table), 4);
  for (uint64_t u = 0; u < 10; ++u) {
    output.user_weights[u] = DenseVector{0.5, 0.01 * u, -0.1, 0.3};
  }
  output.training_rmse = 0.4;
  return output;
}

Item MakeItem(uint64_t id) {
  Item item;
  item.id = id;
  return item;
}

TEST(ServerDurabilityTest, KillAndRestartBitIdenticalUnderFsync) {
  std::string dir = DurabilityDir("dur_fsync");
  auto config = DurableConfig(2, dir);
  config.durability.wal.sync = WalSyncPolicy::kFsync;
  config.durability.wal.fsync_every_n = 1;  // strict: every ack durable
  config.durability.snapshot_every = 8;
  std::vector<std::vector<uint8_t>> blobs;
  std::vector<double> scores;
  {
    VeloxServer server(config, SmallModel());
    ASSERT_TRUE(server.InstallVersion(SmallOutput()).ok());
    for (int i = 0; i < 100; ++i) {
      uint64_t uid = static_cast<uint64_t>(i) % 10;
      uint64_t item = static_cast<uint64_t>(i) % 20;
      ASSERT_TRUE(server.Observe(uid, MakeItem(item), 1.0 + 0.05 * i).ok());
    }
    for (int n = 0; n < 2; ++n) blobs.push_back(server.user_weights(n)->SerializeState());
    for (uint64_t u = 0; u < 10; ++u) {
      auto pred = server.Predict(u, MakeItem(u % 20));
      ASSERT_TRUE(pred.ok());
      scores.push_back(pred->score);
    }
  }  // "kill": the server (and every journal handle) is gone

  auto config2 = config;
  config2.durability.recover_on_start = false;
  VeloxServer server2(config2, SmallModel());
  // Install the same version first (unjournaled — the journal is not
  // attached yet), then let recovery overwrite with the logged truth.
  ASSERT_TRUE(server2.InstallVersion(SmallOutput()).ok());
  auto report = server2.RecoverDurability();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->clean);
  EXPECT_EQ(report->skipped_records, 0u);
  EXPECT_GT(report->replayed_records, 0u);
  EXPECT_GE(report->snapshot_restored_nodes, 1u);  // cadence 8 fired
  EXPECT_GT(report->snapshot_covered_records, 0u);

  // Bit-identical serving state: same table blobs, same predictions.
  for (int n = 0; n < 2; ++n) {
    EXPECT_EQ(server2.user_weights(n)->SerializeState(), blobs[static_cast<size_t>(n)]);
  }
  for (uint64_t u = 0; u < 10; ++u) {
    auto pred = server2.Predict(u, MakeItem(u % 20));
    ASSERT_TRUE(pred.ok());
    EXPECT_EQ(pred->score, scores[u]) << "uid " << u;
  }

  // Observability: replay time landed in its stage, metrics exported.
  EXPECT_GT(server2.StageData(Stage::kRecoveryReplay).count(), 0u);
  EXPECT_NE(server2.StageReport().find("recovery_replay"), std::string::npos);
  std::string metrics = server2.MetricsReport();
  EXPECT_NE(metrics.find("recovery.replayed_records"), std::string::npos);
  EXPECT_NE(metrics.find("wal.appends"), std::string::npos);

  // Recovery is once-only; a second call is an error, not a wipe.
  EXPECT_TRUE(server2.RecoverDurability().status().IsFailedPrecondition());
}

TEST(ServerDurabilityTest, RestartedNodeKeepsJournalingNewMutations) {
  std::string dir = DurabilityDir("dur_rejournal");
  auto config = DurableConfig(1, dir);
  {
    VeloxServer server(config, SmallModel());
    ASSERT_TRUE(server.InstallVersion(SmallOutput()).ok());
    ASSERT_TRUE(server.Observe(2, MakeItem(3), 4.0).ok());
  }
  int64_t observations = 0;
  {
    auto config2 = config;
    config2.durability.recover_on_start = false;
    VeloxServer server(config2, SmallModel());
    ASSERT_TRUE(server.InstallVersion(SmallOutput()).ok());
    ASSERT_TRUE(server.RecoverDurability().ok());
    // Post-recovery mutations append to the same journal...
    ASSERT_TRUE(server.Observe(2, MakeItem(3), 4.5).ok());
    observations = server.user_weights(0)->NumObservations(2);
    EXPECT_EQ(observations, 2);
  }
  {
    // ...and a third incarnation recovers both generations of updates.
    auto config3 = config;
    config3.durability.recover_on_start = false;
    VeloxServer server(config3, SmallModel());
    ASSERT_TRUE(server.InstallVersion(SmallOutput()).ok());
    ASSERT_TRUE(server.RecoverDurability().ok());
    EXPECT_EQ(server.user_weights(0)->NumObservations(2), observations);
  }
}

TEST(ServerDurabilityTest, TornTailLosesBoundedSuffixUnderFlush) {
  std::string dir = DurabilityDir("dur_flush");
  auto config = DurableConfig(1, dir);
  config.durability.snapshot_every = 0;  // genesis replay keeps the loss math exact
  {
    VeloxServer server(config, SmallModel());  // default policy: kFlush
    ASSERT_TRUE(server.InstallVersion(SmallOutput()).ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(server.Observe(3, MakeItem(5), 4.0).ok());
    }
    EXPECT_EQ(server.user_weights(0)->NumObservations(3), 20);
  }
  // A machine crash under kFlush can tear the OS-buffered tail: chop a
  // few bytes mid-record.
  std::string wal = dir + "/user_weights_node0.wal";
  std::vector<uint8_t> bytes = ReadFileBytes(wal);
  ASSERT_GT(bytes.size(), 7u);
  ASSERT_EQ(::truncate(wal.c_str(), static_cast<off_t>(bytes.size()) - 7), 0);

  auto config2 = config;
  config2.durability.recover_on_start = false;
  VeloxServer server2(config2, SmallModel());
  ASSERT_TRUE(server2.InstallVersion(SmallOutput()).ok());
  auto report = server2.RecoverDurability();
  ASSERT_TRUE(report.ok());
  // Documented bounded loss: exactly the torn final record is gone,
  // the recovery is flagged unclean, and serving continues.
  EXPECT_FALSE(report->clean);
  EXPECT_FALSE(server2.durability_recovery().clean);
  EXPECT_EQ(server2.user_weights(0)->NumObservations(3), 19);
  EXPECT_TRUE(server2.Predict(3, MakeItem(5)).ok());
  ASSERT_TRUE(server2.Observe(3, MakeItem(5), 4.0).ok());
  EXPECT_EQ(server2.user_weights(0)->NumObservations(3), 20);
}

TEST(ServerDurabilityTest, RecoverWithoutDurabilityConfiguredFails) {
  VeloxServerConfig config = DurableConfig(1, "");
  VeloxServer server(config, SmallModel());
  EXPECT_TRUE(server.RecoverDurability().status().IsFailedPrecondition());
  EXPECT_EQ(server.user_weight_journal(0), nullptr);
}

TEST(ServerDurabilityTest, ShellReportShowsDurabilityLine) {
  std::string dir = DurabilityDir("dur_shell");
  auto config = DurableConfig(1, dir);
  VeloxServer server(config, SmallModel());
  ASSERT_TRUE(server.InstallVersion(SmallOutput()).ok());
  ASSERT_TRUE(server.Observe(1, MakeItem(1), 3.0).ok());
  VeloxShell shell(&server, {});
  auto report = shell.Execute("report");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("durability: policy=flush"), std::string::npos) << *report;
  EXPECT_NE(report->find("recovered("), std::string::npos) << *report;
}

}  // namespace
}  // namespace velox
